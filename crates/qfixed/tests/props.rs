//! Property-based tests for the fixed-point substrate.
//!
//! These pin down the algebraic contracts the rest of the stack leans on:
//! the FPGA simulator and the fixed-point software reference must agree
//! bit-for-bit, which only holds if these operations are deterministic,
//! total, and within the documented error of real arithmetic.

use proptest::prelude::*;
use qfixed::{isqrt_u64, Fix, Fix16, Mac, MacPolicy, QFormat, Q20};

/// f64 values that fit comfortably in Q11.20 even after one multiply.
fn q20_safe() -> impl Strategy<Value = f64> {
    (-40.0f64..40.0).prop_map(|v| (v * 1e4).round() / 1e4)
}

proptest! {
    #[test]
    fn roundtrip_within_half_lsb(v in -2000.0f64..2000.0) {
        let q = Q20::from_f64(v);
        prop_assert!((q.to_f64() - v).abs() <= Q20::RESOLUTION / 2.0 + f64::EPSILON);
    }

    #[test]
    fn bits_roundtrip_exact(bits in any::<i32>()) {
        prop_assert_eq!(Q20::from_bits(bits).to_bits(), bits);
    }

    #[test]
    fn add_matches_f64(a in q20_safe(), b in q20_safe()) {
        let qa = Q20::from_f64(a);
        let qb = Q20::from_f64(b);
        let sum = (qa + qb).to_f64();
        prop_assert!((sum - (qa.to_f64() + qb.to_f64())).abs() < f64::EPSILON,
            "Q20 add must be exact when no overflow occurs");
    }

    #[test]
    fn add_commutes(a in q20_safe(), b in q20_safe()) {
        let (qa, qb) = (Q20::from_f64(a), Q20::from_f64(b));
        prop_assert_eq!(qa + qb, qb + qa);
    }

    #[test]
    fn add_associates(a in q20_safe(), b in q20_safe(), c in q20_safe()) {
        let (qa, qb, qc) = (Q20::from_f64(a), Q20::from_f64(b), Q20::from_f64(c));
        prop_assert_eq!((qa + qb) + qc, qa + (qb + qc));
    }

    #[test]
    fn neg_is_additive_inverse(a in q20_safe()) {
        let qa = Q20::from_f64(a);
        prop_assert_eq!(qa + (-qa), Q20::ZERO);
    }

    #[test]
    fn mul_trunc_error_bound(a in q20_safe(), b in q20_safe()) {
        let (qa, qb) = (Q20::from_f64(a), Q20::from_f64(b));
        let exact = qa.to_f64() * qb.to_f64();
        let got = (qa * qb).to_f64();
        // Truncation floors on the Q20 grid: error in [0, 1 LSB).
        prop_assert!(got <= exact + f64::EPSILON);
        prop_assert!(exact - got < Q20::RESOLUTION);
    }

    #[test]
    fn mul_round_error_bound(a in q20_safe(), b in q20_safe()) {
        let (qa, qb) = (Q20::from_f64(a), Q20::from_f64(b));
        let exact = qa.to_f64() * qb.to_f64();
        let got = qa.mul_round(qb).to_f64();
        prop_assert!((exact - got).abs() <= Q20::RESOLUTION / 2.0 + f64::EPSILON);
    }

    #[test]
    fn mul_commutes(a in q20_safe(), b in q20_safe()) {
        let (qa, qb) = (Q20::from_f64(a), Q20::from_f64(b));
        prop_assert_eq!(qa * qb, qb * qa);
    }

    #[test]
    fn mul_by_one_is_identity(a in q20_safe()) {
        let qa = Q20::from_f64(a);
        prop_assert_eq!(qa * Q20::ONE, qa);
        prop_assert_eq!(qa * Q20::ZERO, Q20::ZERO);
    }

    #[test]
    fn div_then_mul_close(a in q20_safe(), b in 0.01f64..40.0) {
        let (qa, qb) = (Q20::from_f64(a), Q20::from_f64(b));
        let q = qa / qb;
        let back = (q * qb).to_f64();
        // One truncating division followed by one truncating multiply:
        // error bounded by (1 + |b|) LSBs plus representation error.
        let tol = (1.0 + b.abs()) * Q20::RESOLUTION * 2.0;
        prop_assert!((back - qa.to_f64()).abs() <= tol,
            "a={a} b={b} back={back}");
    }

    #[test]
    fn div_truncates_toward_zero(a in q20_safe(), b in 0.01f64..40.0) {
        let (qa, qb) = (Q20::from_f64(a), Q20::from_f64(b));
        let exact = qa.to_f64() / qb.to_f64();
        let got = (qa / qb).to_f64();
        prop_assert!(got.abs() <= exact.abs() + f64::EPSILON);
        prop_assert!((exact - got).abs() < Q20::RESOLUTION * 1.0001);
    }

    #[test]
    fn sqrt_bounds(a in 0.0f64..2000.0) {
        let qa = Q20::from_f64(a);
        let r = qa.sqrt();
        let exact = qa.to_f64().sqrt();
        prop_assert!(r.to_f64() <= exact + f64::EPSILON);
        prop_assert!(exact - r.to_f64() < Q20::RESOLUTION, "sqrt({a})");
    }

    #[test]
    fn sqrt_monotone(a in 0.0f64..2000.0, b in 0.0f64..2000.0) {
        let (qa, qb) = (Q20::from_f64(a), Q20::from_f64(b));
        if qa <= qb {
            prop_assert!(qa.sqrt() <= qb.sqrt());
        }
    }

    #[test]
    fn isqrt_is_floor_sqrt(n in any::<u64>()) {
        let r = isqrt_u64(n);
        prop_assert!((r as u128) * (r as u128) <= n as u128);
        prop_assert!(((r + 1) as u128) * ((r + 1) as u128) > n as u128);
    }

    #[test]
    fn relu_idempotent(a in q20_safe()) {
        let qa = Q20::from_f64(a);
        prop_assert_eq!(qa.relu().relu(), qa.relu());
        prop_assert!(qa.relu() >= Q20::ZERO);
    }

    #[test]
    fn abs_non_negative(bits in any::<i32>()) {
        prop_assert!(Q20::from_bits(bits).abs() >= Q20::ZERO);
    }

    #[test]
    fn ordering_agrees_with_f64(a in q20_safe(), b in q20_safe()) {
        let (qa, qb) = (Q20::from_f64(a), Q20::from_f64(b));
        prop_assert_eq!(
            qa.partial_cmp(&qb),
            qa.to_f64().partial_cmp(&qb.to_f64())
        );
    }

    #[test]
    fn saturating_mul_never_panics(a in any::<i32>(), b in any::<i32>()) {
        let _ = Q20::from_bits(a).saturating_mul(Q20::from_bits(b));
    }

    #[test]
    fn fix16_mul_error_bound(a in -60.0f64..60.0, b in -2.0f64..2.0) {
        let (qa, qb) = (Fix16::<8>::from_f64(a), Fix16::<8>::from_f64(b));
        let exact = qa.to_f64() * qb.to_f64();
        let got = (qa * qb).to_f64();
        prop_assert!(exact - got < Fix16::<8>::RESOLUTION && got <= exact + f64::EPSILON);
    }

    #[test]
    fn qformat_quantize_matches_fix(v in -2000.0f64..2000.0) {
        prop_assert_eq!(QFormat::Q20_32.quantize(v), Q20::from_f64(v).to_f64());
    }

    #[test]
    fn qformat_idempotent(v in -100.0f64..100.0, frac in 4u32..28) {
        let fmt = QFormat::new(32, frac);
        let q = fmt.quantize(v);
        prop_assert_eq!(fmt.quantize(q), q);
    }

    #[test]
    fn mac_wide_matches_exact_sum(
        // Keep |Σ a·b| ≤ 5·5·64 = 1600 < 2047 so the Q20 result cannot wrap.
        pairs in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 1..64)
    ) {
        let mut mac = Mac::<20>::new(MacPolicy::WideAccumulate);
        let mut exact = 0.0f64;
        for (a, b) in &pairs {
            let (qa, qb) = (Q20::from_f64(*a), Q20::from_f64(*b));
            mac.mac(qa, qb);
            exact += qa.to_f64() * qb.to_f64();
        }
        // The wide accumulator truncates exactly once -> error < 1 LSB.
        prop_assert!((mac.finish().to_f64() - exact).abs() < Q20::RESOLUTION + 1e-9);
    }

    #[test]
    fn mac_policies_deterministic(pairs in prop::collection::vec((q20_safe(), q20_safe()), 1..32)) {
        for policy in [MacPolicy::WideAccumulate, MacPolicy::TruncateEach] {
            let run = || {
                let mut m = Mac::<20>::new(policy);
                for (a, b) in &pairs {
                    m.mac(Q20::from_f64(*a), Q20::from_f64(*b));
                }
                m.finish()
            };
            prop_assert_eq!(run(), run());
        }
    }

    #[test]
    fn fix16_roundtrip_within_half_lsb(v in -100.0f64..100.0) {
        let q = Fix16::<8>::from_f64(v);
        prop_assert!((q.to_f64() - v).abs() <= Fix16::<8>::RESOLUTION / 2.0 + f64::EPSILON);
    }

    #[test]
    fn fix16_sqrt_bounds(v in 0.0f64..100.0) {
        let q = Fix16::<8>::from_f64(v);
        let r = q.sqrt().to_f64();
        let exact = q.to_f64().sqrt();
        prop_assert!(r <= exact + f64::EPSILON);
        prop_assert!(exact - r < Fix16::<8>::RESOLUTION);
    }

    #[test]
    fn fix16_saturates_not_wraps_on_conversion(v in 200.0f64..1e6) {
        prop_assert_eq!(Fix16::<8>::from_f64(v), Fix16::<8>::MAX);
        prop_assert_eq!(Fix16::<8>::from_f64(-v), Fix16::<8>::MIN);
    }

    #[test]
    fn qformat_roundtrip_within_one_ulp(total in 8u32..=32, frac_seed in 0u32..32, v in -5000.0f64..5000.0) {
        // Every storage width the precision-polymorphic engine can plan
        // for (8–32 bits), every legal binary point: quantize→dequantize
        // lands within 1 ULP of any in-range value, and re-quantizing
        // the result is exact (the grid is a fixed point of itself).
        let frac = frac_seed % total;
        let fmt = QFormat::new(total, frac);
        let v = v.clamp(fmt.min_value(), fmt.max_value());
        let q = fmt.quantize(v);
        prop_assert!(
            (q - v).abs() <= fmt.resolution(),
            "{fmt}: quantize({v}) = {q} off by more than 1 ULP ({})",
            fmt.resolution()
        );
        prop_assert_eq!(fmt.quantize(q), q, "re-quantization must be exact on {}", fmt);
    }

    #[test]
    fn qformat_agrees_with_fix_types(v in -30.0f64..30.0) {
        // The runtime-described formats and the compile-time types the
        // engine executes must be the same grid.
        prop_assert_eq!(QFormat::new(32, 20).quantize(v), Fix::<20>::from_f64(v).to_f64());
        prop_assert_eq!(QFormat::new(32, 16).quantize(v), Fix::<16>::from_f64(v).to_f64());
        prop_assert_eq!(QFormat::new(16, 10).quantize(v), Fix16::<10>::from_f64(v).to_f64());
        prop_assert_eq!(QFormat::new(16, 8).quantize(v), Fix16::<8>::from_f64(v).to_f64());
    }

    #[test]
    fn generic_frac_one_is_identity(v in -3.0f64..3.0) {
        // Same contract across several fractional widths.
        macro_rules! check {
            ($f:expr) => {{
                let q = Fix::<$f>::from_f64(v);
                prop_assert_eq!(q * Fix::<$f>::ONE, q);
            }};
        }
        check!(12);
        check!(16);
        check!(20);
        check!(24);
    }
}
