//! Multiply–accumulate unit emulation.
//!
//! The convolution and ReLU steps of the paper's ODEBlock use 1–64
//! multiply-add units. How the accumulator is built changes the numerics:
//!
//! * [`MacPolicy::WideAccumulate`] — each 32×32 product is kept at full
//!   64-bit width (Q2F) and summed in a 64-bit register; the result is
//!   truncated **once** at write-back. This is the natural DSP48 cascade
//!   structure and the default for the simulated PL and the fixed-point
//!   software reference (they must agree bit-for-bit).
//! * [`MacPolicy::TruncateEach`] — each product is truncated back to the
//!   storage width before being added (a narrower, cheaper adder tree).
//!   More truncation noise; offered for ablations.
//!
//! ```
//! use qfixed::{Mac, MacPolicy, Q20};
//!
//! let w = [Q20::from_f64(0.5), Q20::from_f64(-1.25)];
//! let x = [Q20::from_f64(2.0), Q20::from_f64(4.0)];
//! let mut mac = Mac::new(MacPolicy::WideAccumulate);
//! for (wi, xi) in w.iter().zip(&x) {
//!     mac.mac(*wi, *xi);
//! }
//! assert_eq!(mac.finish().to_f64(), 0.5 * 2.0 - 1.25 * 4.0);
//! ```

use crate::Fix;

/// Accumulator construction policy (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MacPolicy {
    /// 64-bit Q2F accumulator, single truncation at write-back (default).
    WideAccumulate,
    /// Truncate every product to the storage width before accumulating.
    TruncateEach,
}

/// A software model of one Q-format multiply–accumulate unit.
#[derive(Clone, Copy, Debug)]
pub struct Mac<const F: u32> {
    policy: MacPolicy,
    wide: i64,
    narrow: Fix<F>,
    ops: u64,
}

impl<const F: u32> Mac<F> {
    /// A fresh, zeroed accumulator with the given policy.
    #[inline]
    pub fn new(policy: MacPolicy) -> Self {
        Self {
            policy,
            wide: 0,
            narrow: Fix::ZERO,
            ops: 0,
        }
    }

    /// Reset the accumulator, keeping the policy and op counter.
    #[inline]
    pub fn clear(&mut self) {
        self.wide = 0;
        self.narrow = Fix::ZERO;
    }

    /// Accumulate one product.
    #[inline]
    pub fn mac(&mut self, w: Fix<F>, x: Fix<F>) {
        self.ops += 1;
        match self.policy {
            MacPolicy::WideAccumulate => {
                self.wide = w.mac_wide(x, self.wide);
            }
            MacPolicy::TruncateEach => {
                self.narrow = self.narrow.wrapping_add(w.mul_trunc(x));
            }
        }
    }

    /// Add a pre-formed Q-format value (bias / residual input) to the
    /// accumulator without a multiplication.
    #[inline]
    pub fn add(&mut self, v: Fix<F>) {
        match self.policy {
            MacPolicy::WideAccumulate => {
                self.wide = self.wide.wrapping_add((v.to_bits() as i64) << F);
            }
            MacPolicy::TruncateEach => {
                self.narrow = self.narrow.wrapping_add(v);
            }
        }
    }

    /// Truncate to the storage format and return the accumulated value.
    #[inline]
    pub fn finish(&self) -> Fix<F> {
        match self.policy {
            MacPolicy::WideAccumulate => Fix::from_bits((self.wide >> F) as i32),
            MacPolicy::TruncateEach => self.narrow,
        }
    }

    /// Number of multiply–accumulate operations issued since construction
    /// (feeds the cycle model: the paper's datapath spends 5 cycles per MAC).
    #[inline]
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    type Q20 = Fix<20>;

    fn dot(policy: MacPolicy, w: &[f64], x: &[f64]) -> f64 {
        let mut mac = Mac::<20>::new(policy);
        for (a, b) in w.iter().zip(x) {
            mac.mac(Q20::from_f64(*a), Q20::from_f64(*b));
        }
        mac.finish().to_f64()
    }

    #[test]
    fn wide_accumulate_exact_dot() {
        let w = [0.5, -0.25, 1.0, 2.0];
        let x = [2.0, 4.0, -1.5, 0.125];
        let exact: f64 = w.iter().zip(&x).map(|(a, b)| a * b).sum();
        assert_eq!(dot(MacPolicy::WideAccumulate, &w, &x), exact);
    }

    #[test]
    fn truncate_each_accumulates_more_error() {
        // Products that are inexact in Q20 make TruncateEach lossier than
        // WideAccumulate (which truncates exactly once).
        let w: Vec<f64> = (0..1000).map(|i| 1e-3 + i as f64 * 1e-6).collect();
        let x: Vec<f64> = (0..1000).map(|i| 3e-3 + i as f64 * 1e-6).collect();
        let exact: f64 = w.iter().zip(&x).map(|(a, b)| a * b).sum();
        let wide_err = (dot(MacPolicy::WideAccumulate, &w, &x) - exact).abs();
        let narrow_err = (dot(MacPolicy::TruncateEach, &w, &x) - exact).abs();
        assert!(
            wide_err <= narrow_err,
            "wide {wide_err} vs narrow {narrow_err}"
        );
        assert!(wide_err < 1e-4);
    }

    #[test]
    fn add_injects_bias() {
        let mut mac = Mac::<20>::new(MacPolicy::WideAccumulate);
        mac.mac(Q20::from_f64(2.0), Q20::from_f64(3.0));
        mac.add(Q20::from_f64(-1.5));
        assert_eq!(mac.finish().to_f64(), 4.5);
    }

    #[test]
    fn clear_resets_value_not_ops() {
        let mut mac = Mac::<20>::new(MacPolicy::WideAccumulate);
        mac.mac(Q20::ONE, Q20::ONE);
        mac.clear();
        assert_eq!(mac.finish(), Q20::ZERO);
        assert_eq!(mac.ops(), 1);
    }

    #[test]
    fn policies_agree_on_exact_products() {
        let w = [1.0, 2.0, -3.0];
        let x = [4.0, 0.5, 0.25];
        assert_eq!(
            dot(MacPolicy::WideAccumulate, &w, &x),
            dot(MacPolicy::TruncateEach, &w, &x)
        );
    }
}
