//! # qfixed — Qm.n fixed-point arithmetic for the ODENet FPGA datapath
//!
//! The paper implements the ODEBlock on the Zynq XC7Z020 programmable logic
//! with a **32-bit Q20** fixed-point format (20 fractional bits, 11 integer
//! bits, 1 sign bit). This crate provides that format — and the general
//! `Qm.n` family around it — with *hardware-faithful* semantics:
//!
//! * multiplication produces a double-width product and truncates
//!   (arithmetic shift right), exactly like a DSP48-based multiplier
//!   followed by a fixed tap selection;
//! * division is truncating long division on the pre-shifted dividend,
//!   matching a restoring divider unit;
//! * square root is a non-restoring bit-serial integer square root on the
//!   pre-shifted radicand, matching the square-root unit the paper
//!   instantiates for the batch-normalization σ computation;
//! * addition/subtraction wrap by default (registers wrap); saturating and
//!   checked variants are provided for the software layers that want them.
//!
//! Two storage widths are generated from one macro so that the paper's
//! future-work ablation ("using reduced bit widths, e.g. 16-bit or less,
//! can implement more layers in PL") can be explored:
//!
//! * [`Fix<F>`] — 32-bit storage, 64-bit intermediates (the paper's format
//!   is [`Q20`] = `Fix<20>`);
//! * [`Fix16<F>`] — 16-bit storage, 32-bit intermediates.
//!
//! A runtime-described [`QFormat`] complements the compile-time types for
//! resource modelling and quantization sweeps over arbitrary widths.
//!
//! ```
//! use qfixed::Q20;
//!
//! let a = Q20::from_f64(1.5);
//! let b = Q20::from_f64(-2.25);
//! assert_eq!((a * b).to_f64(), -3.375);
//! let r = Q20::from_f64(2.0).sqrt().to_f64();
//! assert!((r - std::f64::consts::SQRT_2).abs() < Q20::RESOLUTION);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fix;
mod format;
mod isqrt;
mod mac;

pub use fix::{Fix, Fix16};
pub use format::QFormat;
pub use isqrt::{isqrt_u32, isqrt_u64};
pub use mac::{Mac, MacPolicy};

/// The paper's programmable-logic datapath format: 32-bit, 20 fractional bits.
pub type Q20 = Fix<20>;
/// 32-bit, 16 fractional bits (coarser, wider-range alternative).
pub type Q16 = Fix<16>;
/// 32-bit, 24 fractional bits (finer, narrower-range alternative).
pub type Q24 = Fix<24>;
/// 16-bit, 8 fractional bits — the "16-bit or less" future-work format.
pub type Q8x16 = Fix16<8>;
/// 16-bit, 10 fractional bits.
pub type Q10x16 = Fix16<10>;
