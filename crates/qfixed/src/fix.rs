//! The `Fix`/`Fix16` fixed-point types.
//!
//! Both types are generated from one macro so their semantics are identical
//! modulo storage width. All arithmetic follows the conventions of the
//! paper's Verilog datapath (see crate docs).

use crate::isqrt::{isqrt_u32, isqrt_u64};
use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

macro_rules! impl_fix {
    (
        $(#[$outer:meta])*
        $name:ident, $repr:ty, $urepr:ty, $wide:ty, $uwide:ty, $bits:expr, $isqrt:ident
    ) => {
        $(#[$outer])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
        #[repr(transparent)]
        pub struct $name<const F: u32>($repr);

        impl<const F: u32> $name<F> {
            /// Number of storage bits.
            pub const BITS: u32 = $bits;
            /// Number of fractional bits.
            pub const FRAC: u32 = F;
            /// Number of integer (non-sign) bits.
            pub const INT: u32 = $bits - 1 - F;
            /// The additive identity.
            pub const ZERO: Self = Self(0);
            /// The multiplicative identity.
            pub const ONE: Self = Self(1 << F);
            /// The smallest positive representable value (one LSB).
            pub const EPSILON: Self = Self(1);
            /// Largest representable value.
            pub const MAX: Self = Self(<$repr>::MAX);
            /// Smallest (most negative) representable value.
            pub const MIN: Self = Self(<$repr>::MIN);
            /// Magnitude of one LSB as an `f64` (2^-F).
            pub const RESOLUTION: f64 = 1.0 / (1u64 << F) as f64;

            /// Construct from the raw two's-complement bit pattern.
            #[inline]
            pub const fn from_bits(bits: $repr) -> Self {
                Self(bits)
            }

            /// The raw two's-complement bit pattern.
            #[inline]
            pub const fn to_bits(self) -> $repr {
                self.0
            }

            /// Convert from an integer, saturating on overflow.
            #[inline]
            pub fn from_int(v: i32) -> Self {
                let shifted = (v as $wide) << F;
                Self(Self::saturate_wide(shifted))
            }

            /// Convert from `f64`, rounding to nearest and saturating at the
            /// format boundaries. NaN maps to zero (hardware converters
            /// never see NaN; this keeps the software path total).
            #[inline]
            pub fn from_f64(v: f64) -> Self {
                if v.is_nan() {
                    return Self::ZERO;
                }
                let scaled = v * (1u64 << F) as f64;
                if scaled >= <$repr>::MAX as f64 {
                    Self::MAX
                } else if scaled <= <$repr>::MIN as f64 {
                    Self::MIN
                } else {
                    Self(scaled.round_ties_even() as $repr)
                }
            }

            /// Convert from `f32` (via `f64`, so no double rounding below
            /// 2^-F occurs for the 32-bit formats).
            #[inline]
            pub fn from_f32(v: f32) -> Self {
                Self::from_f64(v as f64)
            }

            /// Exact conversion to `f64` (every representable value fits).
            #[inline]
            pub fn to_f64(self) -> f64 {
                self.0 as f64 * Self::RESOLUTION
            }

            /// Conversion to `f32` (rounds when F is large).
            #[inline]
            pub fn to_f32(self) -> f32 {
                self.to_f64() as f32
            }

            /// Truncate toward negative infinity to an integer.
            #[inline]
            pub const fn floor_int(self) -> i32 {
                (self.0 >> F) as i32
            }

            /// Clamp a double-width value into storage range.
            #[inline]
            fn saturate_wide(v: $wide) -> $repr {
                if v > <$repr>::MAX as $wide {
                    <$repr>::MAX
                } else if v < <$repr>::MIN as $wide {
                    <$repr>::MIN
                } else {
                    v as $repr
                }
            }

            /// Wrapping addition (hardware register semantics).
            #[inline]
            pub const fn wrapping_add(self, rhs: Self) -> Self {
                Self(self.0.wrapping_add(rhs.0))
            }

            /// Wrapping subtraction (hardware register semantics).
            #[inline]
            pub const fn wrapping_sub(self, rhs: Self) -> Self {
                Self(self.0.wrapping_sub(rhs.0))
            }

            /// Saturating addition.
            #[inline]
            pub const fn saturating_add(self, rhs: Self) -> Self {
                Self(self.0.saturating_add(rhs.0))
            }

            /// Saturating subtraction.
            #[inline]
            pub const fn saturating_sub(self, rhs: Self) -> Self {
                Self(self.0.saturating_sub(rhs.0))
            }

            /// Checked addition; `None` on overflow.
            #[inline]
            pub fn checked_add(self, rhs: Self) -> Option<Self> {
                self.0.checked_add(rhs.0).map(Self)
            }

            /// Checked subtraction; `None` on overflow.
            #[inline]
            pub fn checked_sub(self, rhs: Self) -> Option<Self> {
                self.0.checked_sub(rhs.0).map(Self)
            }

            /// Hardware multiplication: double-width product, arithmetic
            /// shift right by F (truncation toward −∞), wrap on overflow.
            ///
            /// This matches a DSP-slice multiplier whose output tap selects
            /// bits `[F .. F+BITS)` of the product.
            #[inline]
            pub const fn mul_trunc(self, rhs: Self) -> Self {
                let p = (self.0 as $wide) * (rhs.0 as $wide);
                Self((p >> F) as $repr)
            }

            /// Multiplication with round-to-nearest (adds half an LSB before
            /// the shift). Slightly more accurate, slightly more LUTs — the
            /// default PL build truncates, so [`Self::mul_trunc`] is what the
            /// `Mul` operator uses.
            #[inline]
            pub const fn mul_round(self, rhs: Self) -> Self {
                let p = (self.0 as $wide) * (rhs.0 as $wide);
                let half = 1 as $wide << (F - 1);
                Self(((p + half) >> F) as $repr)
            }

            /// Saturating hardware multiplication.
            #[inline]
            pub fn saturating_mul(self, rhs: Self) -> Self {
                let p = ((self.0 as $wide) * (rhs.0 as $wide)) >> F;
                Self(Self::saturate_wide(p))
            }

            /// Checked multiplication; `None` when the truncated product does
            /// not fit the storage width.
            #[inline]
            pub fn checked_mul(self, rhs: Self) -> Option<Self> {
                let p = ((self.0 as $wide) * (rhs.0 as $wide)) >> F;
                if p > <$repr>::MAX as $wide || p < <$repr>::MIN as $wide {
                    None
                } else {
                    Some(Self(p as $repr))
                }
            }

            /// Hardware division: the dividend is pre-shifted by F and then
            /// divided with truncation toward zero, exactly like a signed
            /// restoring divider. Division by zero saturates toward the sign
            /// of the dividend (an all-ones quotient in hardware).
            #[inline]
            pub fn div_trunc(self, rhs: Self) -> Self {
                if rhs.0 == 0 {
                    return if self.0 >= 0 { Self::MAX } else { Self::MIN };
                }
                let q = ((self.0 as $wide) << F) / (rhs.0 as $wide);
                Self(Self::saturate_wide(q))
            }

            /// Checked division; `None` for a zero divisor or overflow.
            #[inline]
            pub fn checked_div(self, rhs: Self) -> Option<Self> {
                if rhs.0 == 0 {
                    return None;
                }
                let q = ((self.0 as $wide) << F) / (rhs.0 as $wide);
                if q > <$repr>::MAX as $wide || q < <$repr>::MIN as $wide {
                    None
                } else {
                    Some(Self(q as $repr))
                }
            }

            /// Hardware square root: non-restoring integer square root of the
            /// radicand pre-shifted by F. Negative inputs clamp to zero — the
            /// batch-norm variance can round a hair below zero in fixed point
            /// and the hardware unit treats that as zero.
            #[inline]
            pub fn sqrt(self) -> Self {
                if self.0 <= 0 {
                    return Self::ZERO;
                }
                let shifted = (self.0 as $uwide) << F;
                Self($isqrt(shifted) as $repr)
            }

            /// Absolute value (saturating: |MIN| = MAX).
            #[inline]
            pub const fn abs(self) -> Self {
                if self.0 == <$repr>::MIN {
                    Self::MAX
                } else if self.0 < 0 {
                    Self(-self.0)
                } else {
                    self
                }
            }

            /// `max(self, 0)` — the ReLU activation as the PL implements it
            /// (a sign-bit multiplexer).
            #[inline]
            pub const fn relu(self) -> Self {
                if self.0 < 0 {
                    Self::ZERO
                } else {
                    self
                }
            }

            /// Clamp into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                debug_assert!(lo.0 <= hi.0);
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Minimum of two values.
            #[inline]
            pub const fn min(self, rhs: Self) -> Self {
                if self.0 <= rhs.0 {
                    self
                } else {
                    rhs
                }
            }

            /// Maximum of two values.
            #[inline]
            pub const fn max(self, rhs: Self) -> Self {
                if self.0 >= rhs.0 {
                    self
                } else {
                    rhs
                }
            }

            /// True if the value is negative.
            #[inline]
            pub const fn is_negative(self) -> bool {
                self.0 < 0
            }

            /// True if the value is exactly zero.
            #[inline]
            pub const fn is_zero(self) -> bool {
                self.0 == 0
            }

            /// Multiply-accumulate with a double-width accumulator:
            /// `acc + self·rhs` where `acc` and the result are raw
            /// double-width product words (Q(2F)). Used by [`crate::Mac`].
            #[inline]
            pub const fn mac_wide(self, rhs: Self, acc: $wide) -> $wide {
                acc.wrapping_add((self.0 as $wide) * (rhs.0 as $wide))
            }
        }

        impl<const F: u32> Add for $name<F> {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                debug_assert!(
                    self.0.checked_add(rhs.0).is_some(),
                    concat!(stringify!($name), " addition overflow: {} + {}"),
                    self.to_f64(),
                    rhs.to_f64()
                );
                self.wrapping_add(rhs)
            }
        }

        impl<const F: u32> Sub for $name<F> {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                debug_assert!(
                    self.0.checked_sub(rhs.0).is_some(),
                    concat!(stringify!($name), " subtraction overflow: {} - {}"),
                    self.to_f64(),
                    rhs.to_f64()
                );
                self.wrapping_sub(rhs)
            }
        }

        impl<const F: u32> Mul for $name<F> {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: Self) -> Self {
                self.mul_trunc(rhs)
            }
        }

        impl<const F: u32> Div for $name<F> {
            type Output = Self;
            #[inline]
            fn div(self, rhs: Self) -> Self {
                self.div_trunc(rhs)
            }
        }

        impl<const F: u32> Neg for $name<F> {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(self.0.wrapping_neg())
            }
        }

        impl<const F: u32> AddAssign for $name<F> {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }

        impl<const F: u32> SubAssign for $name<F> {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }

        impl<const F: u32> MulAssign for $name<F> {
            #[inline]
            fn mul_assign(&mut self, rhs: Self) {
                *self = *self * rhs;
            }
        }

        impl<const F: u32> DivAssign for $name<F> {
            #[inline]
            fn div_assign(&mut self, rhs: Self) {
                *self = *self / rhs;
            }
        }

        impl<const F: u32> PartialOrd for $name<F> {
            #[inline]
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        impl<const F: u32> Ord for $name<F> {
            #[inline]
            fn cmp(&self, other: &Self) -> Ordering {
                self.0.cmp(&other.0)
            }
        }

        impl<const F: u32> fmt::Debug for $name<F> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(
                    f,
                    concat!(stringify!($name), "<{}>({} = {:.6})"),
                    F,
                    self.0,
                    self.to_f64()
                )
            }
        }

        impl<const F: u32> fmt::Display for $name<F> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(&self.to_f64(), f)
            }
        }

        impl<const F: u32> From<$name<F>> for f64 {
            #[inline]
            fn from(v: $name<F>) -> f64 {
                v.to_f64()
            }
        }

        impl<const F: u32> From<$name<F>> for f32 {
            #[inline]
            fn from(v: $name<F>) -> f32 {
                v.to_f32()
            }
        }
    };
}

impl_fix!(
    /// 32-bit fixed point with `F` fractional bits (two's complement,
    /// 64-bit intermediates). `Fix<20>` is the paper's Q20 format: range
    /// ±2048, resolution 2⁻²⁰ ≈ 9.5·10⁻⁷.
    Fix,
    i32,
    u32,
    i64,
    u64,
    32,
    isqrt_u64
);

impl_fix!(
    /// 16-bit fixed point with `F` fractional bits (two's complement,
    /// 32-bit intermediates) — the reduced-width format of the paper's
    /// future-work discussion.
    Fix16,
    i16,
    u16,
    i32,
    u32,
    16,
    isqrt_u32
);

#[cfg(test)]
mod tests {
    use super::*;
    type Q20 = Fix<20>;
    type Q8 = Fix16<8>;

    #[test]
    fn constants() {
        assert_eq!(Q20::ONE.to_f64(), 1.0);
        assert_eq!(Q20::ZERO.to_f64(), 0.0);
        assert_eq!(Q20::FRAC, 20);
        assert_eq!(Q20::INT, 11);
        assert_eq!(Q20::RESOLUTION, (2.0f64).powi(-20));
        assert_eq!(Q8::INT, 7);
    }

    #[test]
    fn roundtrip_exact_values() {
        for v in [
            0.0,
            1.0,
            -1.0,
            0.5,
            -0.5,
            1023.75,
            -1024.25,
            0.0000019073486328125,
        ] {
            assert_eq!(Q20::from_f64(v).to_f64(), v, "round-trip of {v}");
        }
    }

    #[test]
    fn from_f64_rounds_to_nearest() {
        let third = Q20::from_f64(1.0 / 3.0);
        assert!((third.to_f64() - 1.0 / 3.0).abs() <= Q20::RESOLUTION / 2.0);
    }

    #[test]
    fn from_f64_saturates() {
        assert_eq!(Q20::from_f64(1e12), Q20::MAX);
        assert_eq!(Q20::from_f64(-1e12), Q20::MIN);
        assert_eq!(Q20::from_f64(f64::NAN), Q20::ZERO);
    }

    #[test]
    fn from_int_saturates() {
        assert_eq!(Q20::from_int(5).to_f64(), 5.0);
        assert_eq!(Q20::from_int(100_000), Q20::MAX);
        assert_eq!(Q20::from_int(-100_000), Q20::MIN);
    }

    #[test]
    fn mul_truncates_toward_neg_infinity() {
        // -epsilon * epsilon is a tiny negative product; truncation (asr)
        // floors it to -1 LSB of the double-width grid -> -epsilon here.
        let e = Q20::EPSILON;
        assert_eq!((-e).mul_trunc(e), -e);
        // Round-to-nearest sends it to zero instead.
        assert_eq!((-e).mul_round(e), Q20::ZERO);
    }

    #[test]
    fn mul_exact_small_values() {
        let a = Q20::from_f64(1.5);
        let b = Q20::from_f64(2.5);
        assert_eq!((a * b).to_f64(), 3.75);
        assert_eq!((a * -b).to_f64(), -3.75);
    }

    #[test]
    fn div_matches_f64_on_exact_cases() {
        let a = Q20::from_f64(7.5);
        let b = Q20::from_f64(2.5);
        assert_eq!((a / b).to_f64(), 3.0);
        assert_eq!((-a / b).to_f64(), -3.0);
    }

    #[test]
    fn div_by_zero_saturates_by_sign() {
        assert_eq!(Q20::ONE / Q20::ZERO, Q20::MAX);
        assert_eq!(-Q20::ONE / Q20::ZERO, Q20::MIN);
        assert_eq!(Q20::ONE.checked_div(Q20::ZERO), None);
    }

    #[test]
    fn sqrt_perfect_squares() {
        for v in [0.0, 1.0, 4.0, 9.0, 0.25, 2.25, 1024.0] {
            assert_eq!(Q20::from_f64(v).sqrt().to_f64(), v.sqrt(), "sqrt({v})");
        }
    }

    #[test]
    fn sqrt_truncates_downward() {
        let two = Q20::from_f64(2.0);
        let r = two.sqrt().to_f64();
        let exact = 2.0f64.sqrt();
        assert!(r <= exact && exact - r < Q20::RESOLUTION, "{r} vs {exact}");
    }

    #[test]
    fn sqrt_of_negative_is_zero() {
        assert_eq!(Q20::from_f64(-3.0).sqrt(), Q20::ZERO);
    }

    #[test]
    fn relu_is_sign_mux() {
        assert_eq!(Q20::from_f64(-0.5).relu(), Q20::ZERO);
        assert_eq!(Q20::from_f64(0.5).relu().to_f64(), 0.5);
        assert_eq!(Q20::ZERO.relu(), Q20::ZERO);
    }

    #[test]
    fn abs_saturates_at_min() {
        assert_eq!(Q20::MIN.abs(), Q20::MAX);
        assert_eq!(Q20::from_f64(-2.0).abs().to_f64(), 2.0);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Q20::MAX.saturating_add(Q20::ONE), Q20::MAX);
        assert_eq!(Q20::MIN.saturating_sub(Q20::ONE), Q20::MIN);
        let big = Q20::from_f64(1500.0);
        assert_eq!(big.saturating_mul(big), Q20::MAX);
        assert_eq!(big.checked_mul(big), None);
    }

    #[test]
    fn ordering_matches_f64() {
        let a = Q20::from_f64(-1.25);
        let b = Q20::from_f64(0.75);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn fix16_basics() {
        let a = Q8::from_f64(1.5);
        let b = Q8::from_f64(2.0);
        assert_eq!((a * b).to_f64(), 3.0);
        assert_eq!(Q8::from_f64(500.0), Q8::MAX);
        assert_eq!(Q8::from_f64(9.0).sqrt().to_f64(), 3.0);
    }

    #[test]
    fn display_and_debug() {
        let v = Q20::from_f64(1.5);
        assert_eq!(format!("{v}"), "1.5");
        assert!(format!("{v:?}").contains("Fix<20>"));
    }

    #[test]
    fn floor_int() {
        assert_eq!(Q20::from_f64(3.9).floor_int(), 3);
        assert_eq!(Q20::from_f64(-3.1).floor_int(), -4);
    }
}
