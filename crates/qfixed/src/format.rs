//! Runtime-described Q formats for quantization sweeps and resource models.
//!
//! The compile-time [`crate::Fix`] types cover the execution paths; this
//! module covers *analysis*: "what if the PL datapath used Qm.n?" questions
//! from the paper's footnote 2 ("using reduced bit widths (e.g., 16-bit or
//! less) can implement more layers in PL").

use core::fmt;

/// A two's-complement fixed-point format described at runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QFormat {
    /// Total storage bits, including the sign bit (2..=64).
    pub total_bits: u32,
    /// Fractional bits (`< total_bits`).
    pub frac_bits: u32,
}

impl QFormat {
    /// The paper's PL format: 32-bit Q20.
    pub const Q20_32: QFormat = QFormat {
        total_bits: 32,
        frac_bits: 20,
    };
    /// A 16-bit Q8 format (future-work reduced width).
    pub const Q8_16: QFormat = QFormat {
        total_bits: 16,
        frac_bits: 8,
    };

    /// Construct, panicking on degenerate parameters.
    pub fn new(total_bits: u32, frac_bits: u32) -> Self {
        assert!(
            (2..=64).contains(&total_bits),
            "total_bits {total_bits} out of range"
        );
        assert!(
            frac_bits < total_bits,
            "frac_bits {frac_bits} >= total_bits {total_bits}"
        );
        QFormat {
            total_bits,
            frac_bits,
        }
    }

    /// Integer (non-sign) bits.
    pub fn int_bits(&self) -> u32 {
        self.total_bits - 1 - self.frac_bits
    }

    /// Storage size in bytes, rounded up to whole bytes (what the BRAM
    /// packing model and parameter-size accounting use).
    pub fn bytes(&self) -> usize {
        self.total_bits.div_ceil(8) as usize
    }

    /// Magnitude of one LSB.
    pub fn resolution(&self) -> f64 {
        (2.0f64).powi(-(self.frac_bits as i32))
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f64 {
        (((1i128 << (self.total_bits - 1)) - 1) as f64) * self.resolution()
    }

    /// Most negative representable value.
    pub fn min_value(&self) -> f64 {
        (-(1i128 << (self.total_bits - 1)) as f64) * self.resolution()
    }

    /// Quantize an `f64` through this format (round-to-nearest, saturate).
    /// Returns the dequantized value, i.e. the value the hardware would see.
    pub fn quantize(&self, v: f64) -> f64 {
        if v.is_nan() {
            return 0.0;
        }
        let scale = (2.0f64).powi(self.frac_bits as i32);
        let max_raw = ((1i128 << (self.total_bits - 1)) - 1) as f64;
        let min_raw = (-(1i128 << (self.total_bits - 1))) as f64;
        let raw = (v * scale).round_ties_even().clamp(min_raw, max_raw);
        raw / scale
    }

    /// Quantization error of representing `v` in this format.
    pub fn error(&self, v: f64) -> f64 {
        (self.quantize(v) - v).abs()
    }

    /// Signal-to-quantization-noise ratio (dB) of quantizing `signal`
    /// through this format. Returns `f64::INFINITY` for an exactly
    /// representable signal.
    pub fn sqnr_db(&self, signal: &[f64]) -> f64 {
        let mut sig = 0.0f64;
        let mut noise = 0.0f64;
        for &v in signal {
            sig += v * v;
            let e = self.quantize(v) - v;
            noise += e * e;
        }
        if noise == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (sig / noise).log10()
        }
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Q{}.{} ({}-bit)",
            self.int_bits(),
            self.frac_bits,
            self.total_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Q20;

    #[test]
    fn q20_matches_fix20() {
        let fmt = QFormat::Q20_32;
        assert_eq!(fmt.resolution(), Q20::RESOLUTION);
        assert_eq!(fmt.bytes(), 4);
        assert_eq!(fmt.int_bits(), 11);
        for v in [0.1, -3.75, 1000.5, -2047.0] {
            assert_eq!(fmt.quantize(v), Q20::from_f64(v).to_f64(), "quantize({v})");
        }
    }

    #[test]
    fn quantize_saturates() {
        let fmt = QFormat::Q8_16;
        assert_eq!(fmt.quantize(1e9), fmt.max_value());
        assert_eq!(fmt.quantize(-1e9), fmt.min_value());
    }

    #[test]
    fn wider_formats_have_lower_error() {
        let narrow = QFormat::new(16, 8);
        let wide = QFormat::new(32, 20);
        for v in [0.123456, -9.87654, 0.000123] {
            assert!(wide.error(v) <= narrow.error(v));
        }
    }

    #[test]
    fn sqnr_improves_with_width() {
        let signal: Vec<f64> = (0..256).map(|i| ((i as f64) * 0.37).sin()).collect();
        let s16 = QFormat::new(16, 12).sqnr_db(&signal);
        let s32 = QFormat::new(32, 20).sqnr_db(&signal);
        assert!(s32 > s16 + 20.0, "expected ≥20 dB gain: {s16} -> {s32}");
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", QFormat::Q20_32), "Q11.20 (32-bit)");
    }

    #[test]
    #[should_panic(expected = "frac_bits")]
    fn rejects_degenerate() {
        QFormat::new(8, 8);
    }

    #[test]
    fn exact_signal_is_infinite_sqnr() {
        let fmt = QFormat::Q20_32;
        assert_eq!(fmt.sqnr_db(&[1.0, 0.5, -0.25]), f64::INFINITY);
    }
}
