//! Bit-serial integer square root.
//!
//! This is the classical non-restoring ("binary digit-by-digit") algorithm:
//! one result bit is resolved per iteration from a trial subtraction, which
//! is exactly the structure of the iterative square-root unit the paper
//! instantiates for the batch-normalization standard deviation. The result
//! is `floor(sqrt(n))`.

/// `floor(sqrt(n))` for a 64-bit radicand (32 iterations in hardware).
#[inline]
pub fn isqrt_u64(n: u64) -> u64 {
    let mut rem = n;
    let mut res: u64 = 0;
    // Highest power-of-four at or below n.
    let mut bit: u64 = if n == 0 {
        0
    } else {
        1 << ((63 - n.leading_zeros()) & !1)
    };
    while bit != 0 {
        if rem >= res + bit {
            rem -= res + bit;
            res = (res >> 1) + bit;
        } else {
            res >>= 1;
        }
        bit >>= 2;
    }
    res
}

/// `floor(sqrt(n))` for a 32-bit radicand (16 iterations in hardware).
#[inline]
pub fn isqrt_u32(n: u32) -> u32 {
    let mut rem = n;
    let mut res: u32 = 0;
    let mut bit: u32 = if n == 0 {
        0
    } else {
        1 << ((31 - n.leading_zeros()) & !1)
    };
    while bit != 0 {
        if rem >= res + bit {
            rem -= res + bit;
            res = (res >> 1) + bit;
        } else {
            res >>= 1;
        }
        bit >>= 2;
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_u64() {
        let expect = [0, 1, 1, 1, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 4];
        for (n, &e) in expect.iter().enumerate().map(|(i, e)| (i as u64, e)) {
            assert_eq!(isqrt_u64(n), e, "isqrt({n})");
        }
    }

    #[test]
    fn perfect_squares_u64() {
        for r in [0u64, 1, 2, 3, 1000, 65535, 65536, 1 << 31] {
            assert_eq!(isqrt_u64(r * r), r);
            if r > 0 {
                assert_eq!(isqrt_u64(r * r - 1), r - 1);
                assert_eq!(isqrt_u64(r * r + 1), r);
            }
        }
    }

    #[test]
    fn extreme_u64() {
        assert_eq!(isqrt_u64(u64::MAX), (1u64 << 32) - 1);
        assert_eq!(isqrt_u64(0), 0);
    }

    #[test]
    fn matches_float_sqrt_u32() {
        for n in (0u32..100_000).step_by(37) {
            let f = (n as f64).sqrt() as u32;
            let i = isqrt_u32(n);
            assert!(
                i == f || i + 1 == f || f + 1 == i,
                "isqrt_u32({n}) = {i}, float {f}"
            );
            assert!((i as u64) * (i as u64) <= n as u64);
            assert!(((i as u64) + 1) * ((i as u64) + 1) > n as u64);
        }
    }

    #[test]
    fn extreme_u32() {
        assert_eq!(isqrt_u32(u32::MAX), (1u32 << 16) - 1);
    }
}
