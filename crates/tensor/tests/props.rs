//! Property tests for the tensor kernels: linear-algebra identities that
//! must hold regardless of shapes, plus fixed/float agreement bounds.

use proptest::prelude::*;
use qfixed::{Q16, Q20};
use tensor::conv::{
    conv2d, conv2d_backward_input, conv2d_backward_weights, conv2d_im2col_3x3, conv2d_reference,
    Conv2dParams,
};
use tensor::ops::{concat_time_channel, euler_step, relu, relu_backward, split_time_channel_grad};
use tensor::pool::{global_avg_pool, shortcut_a};
use tensor::softmax::{cross_entropy, softmax};
use tensor::{Shape4, Tensor};

fn small_tensor(max_c: usize, max_hw: usize) -> impl Strategy<Value = Tensor<f32>> {
    (1usize..=2, 1usize..=max_c, 2usize..=max_hw, 2usize..=max_hw).prop_flat_map(|(n, c, h, w)| {
        let len = n * c * h * w;
        prop::collection::vec(-2.0f32..2.0, len)
            .prop_map(move |data| Tensor::from_vec(Shape4::new(n, c, h, w), data))
    })
}

/// Random 3×3 convolution instances over the fast path's whole domain:
/// both strides, 1–2 batch items, and spatial extents from the degenerate
/// 1×1 (all 9 taps padded for stride 1) through border-dominated 4×4 up
/// to 8×8.
fn conv3x3_instance() -> impl Strategy<Value = (Tensor<f32>, Tensor<f32>, Conv2dParams)> {
    (
        1usize..=2,
        1usize..=4,
        1usize..=8,
        1usize..=8,
        1usize..=4,
        1usize..=2,
    )
        .prop_flat_map(|(n, c, h, w, o, stride)| {
            let xlen = n * c * h * w;
            let wlen = o * c * 9;
            (
                prop::collection::vec(-2.0f32..2.0, xlen),
                prop::collection::vec(-0.5f32..0.5, wlen),
            )
                .prop_map(move |(xd, wd)| {
                    (
                        Tensor::from_vec(Shape4::new(n, c, h, w), xd),
                        Tensor::from_vec(Shape4::new(o, c, 3, 3), wd),
                        Conv2dParams { stride, pad: 1 },
                    )
                })
        })
}

fn weights_for(c: usize) -> impl Strategy<Value = Tensor<f32>> {
    (1usize..=4).prop_flat_map(move |o| {
        prop::collection::vec(-0.5f32..0.5, o * c * 9)
            .prop_map(move |data| Tensor::from_vec(Shape4::new(o, c, 3, 3), data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conv_zero_input_gives_zero(x in small_tensor(3, 6)) {
        let w = Tensor::<f32>::full(Shape4::new(2, x.shape().c, 3, 3), 0.3);
        let zero = Tensor::<f32>::zeros(x.shape());
        let y = conv2d(&zero, &w, Conv2dParams::same_3x3());
        prop_assert!(y.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn conv_scales_linearly((x, s) in (small_tensor(3, 6), -2.0f32..2.0)) {
        let c = x.shape().c;
        let w = Tensor::<f32>::from_fn(Shape4::new(2, c, 3, 3), |o, i, kh, kw| {
            ((o + i + kh + kw) % 3) as f32 * 0.25 - 0.25
        });
        let p = Conv2dParams::same_3x3();
        let y1 = conv2d(&x, &w, p);
        let xs = x.map(|v| v * s);
        let y2 = conv2d(&xs, &w, p);
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            prop_assert!((a * s - b).abs() < 1e-3, "{a} * {s} vs {b}");
        }
    }

    #[test]
    fn conv_q20_tracks_f32(x in small_tensor(2, 5)) {
        let c = x.shape().c;
        let w = Tensor::<f32>::from_fn(Shape4::new(2, c, 3, 3), |o, i, kh, kw| {
            ((o * 7 + i * 3 + kh + kw) % 5) as f32 * 0.125 - 0.25
        });
        // Quantize inputs first so both paths see the same values.
        let xq: Tensor<Q20> = Tensor::from_f32_tensor(&x);
        let wq: Tensor<Q20> = Tensor::from_f32_tensor(&w);
        let yf = conv2d(&xq.to_f32(), &wq.to_f32(), Conv2dParams::same_3x3());
        let yq = conv2d(&xq, &wq, Conv2dParams::same_3x3());
        // Each output truncates once; inputs/weights are identical, so the
        // divergence is bounded by ~1 LSB plus f32 rounding noise.
        prop_assert!(yf.max_abs_diff(&yq.to_f32()) < 1e-4);
    }

    #[test]
    fn conv_grad_input_is_adjoint(x in small_tensor(2, 5)) {
        // <conv(x), r> == <x, conv_backward_input(r)> — the backward op is
        // the linear adjoint of the forward op.
        let c = x.shape().c;
        let w = Tensor::<f32>::from_fn(Shape4::new(3, c, 3, 3), |o, i, kh, kw| {
            ((o + i * 2 + kh * 3 + kw) % 7) as f32 * 0.1 - 0.3
        });
        let p = Conv2dParams::same_3x3();
        let y = conv2d(&x, &w, p);
        let r = Tensor::<f32>::from_fn(y.shape(), |n, cc, h, ww| {
            ((n + cc * 3 + h + ww * 2) % 5) as f32 * 0.2 - 0.4
        });
        let lhs: f64 = y.as_slice().iter().zip(r.as_slice()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let gx = conv2d_backward_input(&r, &w, x.shape(), p);
        let rhs: f64 = x.as_slice().iter().zip(gx.as_slice()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn conv_grad_weights_is_adjoint((x, w) in small_tensor(2, 5).prop_flat_map(|x| {
        let c = x.shape().c;
        (Just(x), weights_for(c))
    })) {
        let p = Conv2dParams::same_3x3();
        let y = conv2d(&x, &w, p);
        let r = Tensor::<f32>::from_fn(y.shape(), |n, c, h, ww| {
            ((n * 2 + c + h * 5 + ww) % 9) as f32 * 0.1 - 0.4
        });
        let lhs: f64 = y.as_slice().iter().zip(r.as_slice()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let gw = conv2d_backward_weights(&r, &x, w.shape(), p);
        let rhs: f64 = w.as_slice().iter().zip(gw.as_slice()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn fast_conv_matches_reference_f32((x, w, p) in conv3x3_instance()) {
        // The im2col/GEMM path must be bit-identical to the scalar
        // reference on every geometry, including fully-padded 1×1 inputs.
        let fast = conv2d_im2col_3x3(&x, &w, p);
        let reference = conv2d_reference(&x, &w, p);
        prop_assert_eq!(fast.as_slice(), reference.as_slice());
    }

    #[test]
    fn fast_conv_matches_reference_q20((x, w, p) in conv3x3_instance()) {
        let xq: Tensor<Q20> = Tensor::from_f32_tensor(&x);
        let wq: Tensor<Q20> = Tensor::from_f32_tensor(&w);
        let fast = conv2d_im2col_3x3(&xq, &wq, p);
        let reference = conv2d_reference(&xq, &wq, p);
        prop_assert_eq!(fast.as_slice(), reference.as_slice());
    }

    #[test]
    fn fast_conv_matches_reference_q16((x, w, p) in conv3x3_instance()) {
        let xq: Tensor<Q16> = Tensor::from_f32_tensor(&x);
        let wq: Tensor<Q16> = Tensor::from_f32_tensor(&w);
        let fast = conv2d_im2col_3x3(&xq, &wq, p);
        let reference = conv2d_reference(&xq, &wq, p);
        prop_assert_eq!(fast.as_slice(), reference.as_slice());
    }

    #[test]
    fn relu_backward_zero_where_inactive(x in small_tensor(3, 6)) {
        let g = Tensor::<f32>::full(x.shape(), 1.0);
        let gx = relu_backward(&g, &x);
        for (gv, xv) in gx.as_slice().iter().zip(x.as_slice()) {
            prop_assert_eq!(*gv != 0.0, *xv > 0.0);
        }
    }

    #[test]
    fn relu_forward_is_max_zero(x in small_tensor(3, 6)) {
        let y = relu(&x);
        for (a, b) in y.as_slice().iter().zip(x.as_slice()) {
            prop_assert_eq!(*a, b.max(0.0));
        }
    }

    #[test]
    fn euler_h_zero_is_identity(x in small_tensor(3, 6)) {
        let f = Tensor::<f32>::full(x.shape(), 3.21);
        let y = euler_step(&x, &f, 0.0);
        prop_assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn concat_then_split_roundtrips(x in small_tensor(3, 6), t in -1.0f32..1.0) {
        let cat = concat_time_channel(&x, t);
        prop_assert_eq!(cat.shape().c, x.shape().c + 1);
        let back = split_time_channel_grad(&cat);
        prop_assert_eq!(back.as_slice(), x.as_slice());
    }

    #[test]
    fn avg_pool_of_constant_is_constant(v in -3.0f32..3.0) {
        let x = Tensor::<f32>::full(Shape4::new(2, 3, 5, 5), v);
        let y = global_avg_pool(&x);
        for &o in y.as_slice() {
            prop_assert!((o - v).abs() < 1e-5);
        }
    }

    #[test]
    fn shortcut_preserves_subsampled_values(x in small_tensor(2, 6)) {
        let s = x.shape();
        let y = shortcut_a(&x, s.c + 2, 2);
        for n in 0..s.n {
            for c in 0..s.c {
                prop_assert_eq!(y.get(n, c, 0, 0), x.get(n, c, 0, 0));
            }
            for c in s.c..s.c + 2 {
                prop_assert!(y.plane(n, c).iter().all(|&v| v == 0.0));
            }
        }
    }

    #[test]
    fn softmax_is_distribution(logits in prop::collection::vec(-5.0f32..5.0, 2..12)) {
        let k = logits.len();
        let t = Tensor::from_vec(Shape4::new(1, k, 1, 1), logits);
        let p = softmax(&t);
        let sum: f32 = p.as_slice().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-5);
        prop_assert!(p.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn cross_entropy_nonnegative(
        logits in prop::collection::vec(-5.0f32..5.0, 3..9),
        label_seed in 0usize..100
    ) {
        let k = logits.len();
        let t = Tensor::from_vec(Shape4::new(1, k, 1, 1), logits);
        let (loss, grad) = cross_entropy(&t, &[label_seed % k]);
        prop_assert!(loss >= 0.0);
        let gsum: f32 = grad.as_slice().iter().sum();
        prop_assert!(gsum.abs() < 1e-5);
    }
}
