//! 2-D convolution: the workhorse of the ODEBlock.
//!
//! The paper's blocks only ever use 3×3 kernels with stride 1 (pad 1) or
//! stride 2 (pad 1, the downsample blocks); the kernels here accept any
//! odd kernel size but are tuned for that case.
//!
//! The forward pass is generic over [`Scalar`]: with `f32` it is the PS
//! software path, with [`qfixed::Q20`] it computes exactly what the PL
//! multiply–add array computes (double-width accumulation, one truncation
//! per output element — see [`crate::scalar`]).
//!
//! Layout: input `(N, I, H, W)`, weights `(O, I, K, K)`, output
//! `(N, O, OH, OW)` with `OH = (H + 2·pad − K)/stride + 1`. Convolutions
//! are bias-free, as in the paper (batch norm immediately follows every
//! convolution, so a bias would be redundant).
//!
//! # Fast path
//!
//! [`conv2d`] dispatches the paper's hot case — 3×3, pad 1, stride 1 or 2
//! — to an im2col + blocked micro-GEMM kernel ([`conv2d_im2col_3x3`])
//! whose inner loops carry **zero bounds checks**: each im2col row is
//! packed as `zero border | contiguous interior copy | zero border`, and
//! the GEMM walks fixed-size slices. Every other geometry (and
//! [`set_force_reference`]) falls back to the original scalar kernel,
//! retained verbatim as [`conv2d_reference`].
//!
//! Both paths are **bit-identical**, for every [`Scalar`]: the GEMM keeps
//! the K-dimension accumulation in the reference's `(i, ky, kx)` order and
//! blocks only over output channels / output pixels (independent
//! accumulator chains). Padded taps contribute `w·0`: exact `0` on the
//! wide fixed-point accumulator, and `acc + (±0.0)` in `f32` — a bitwise
//! no-op because the accumulator can never hold `-0.0` (it starts at
//! `+0.0`, and IEEE-754 addition only produces `-0.0` from two negative
//! zeros). The equivalence is pinned by unit tests here and a proptest in
//! `tensor/tests/props.rs` across shapes × strides × scalar types.

use crate::{par, Scalar, Shape4, Tensor};
use std::sync::atomic::{AtomicBool, Ordering};

/// Stride / padding configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Spatial stride (1 in ODE blocks, 2 in the downsample blocks).
    pub stride: usize,
    /// Zero padding on every border.
    pub pad: usize,
}

impl Conv2dParams {
    /// 3×3, stride 1, pad 1 — shape preserving.
    pub const fn same_3x3() -> Self {
        Conv2dParams { stride: 1, pad: 1 }
    }

    /// 3×3, stride 2, pad 1 — halves the feature map.
    pub const fn down_3x3() -> Self {
        Conv2dParams { stride: 2, pad: 1 }
    }

    /// Output spatial extent for an input extent and kernel size.
    pub fn out_extent(&self, extent: usize, k: usize) -> usize {
        assert!(
            extent + 2 * self.pad >= k,
            "kernel larger than padded input"
        );
        (extent + 2 * self.pad - k) / self.stride + 1
    }
}

/// Output shape of a convolution.
pub fn conv2d_out_shape(x: Shape4, w: Shape4, p: Conv2dParams) -> Shape4 {
    assert_eq!(
        x.c, w.c,
        "input channels {} != weight input channels {}",
        x.c, w.c
    );
    assert_eq!(w.h, w.w, "only square kernels are supported");
    Shape4::new(x.n, w.n, p.out_extent(x.h, w.h), p.out_extent(x.w, w.w))
}

/// When set, [`conv2d`] always takes the scalar reference path — used by
/// the hot-path benches and `repro -- hotpath` to measure the fast kernel
/// against its baseline without duplicating the call sites. Numerics are
/// identical either way; only wall-clock differs.
static FORCE_REFERENCE: AtomicBool = AtomicBool::new(false);

/// Route all [`conv2d`] calls through [`conv2d_reference`] (`true`) or
/// restore fast-path dispatch (`false`). Process-global; intended for
/// benchmarking, not concurrent toggling mid-inference.
pub fn set_force_reference(force: bool) {
    FORCE_REFERENCE.store(force, Ordering::SeqCst);
}

/// Whether [`set_force_reference`] currently pins the reference path.
pub fn force_reference() -> bool {
    FORCE_REFERENCE.load(Ordering::SeqCst)
}

/// Forward convolution, generic over the scalar type.
///
/// Dispatches 3×3 / pad 1 / stride 1-or-2 (the only geometries the
/// paper's networks use) to the im2col fast path; everything else runs
/// the scalar reference kernel. Both produce bit-identical outputs.
pub fn conv2d<S: Scalar>(x: &Tensor<S>, w: &Tensor<S>, p: Conv2dParams) -> Tensor<S> {
    let ws = w.shape();
    let hot = ws.h == 3 && ws.w == 3 && p.pad == 1 && (p.stride == 1 || p.stride == 2);
    if hot && !force_reference() {
        conv2d_im2col_3x3(x, w, p)
    } else {
        conv2d_reference(x, w, p)
    }
}

/// The original scalar convolution kernel, kept verbatim as the reference
/// implementation: any kernel size, per-tap bounds checks, one `(n, o)`
/// output plane per parallel chunk. The fast path is pinned bit-identical
/// to this.
pub fn conv2d_reference<S: Scalar>(x: &Tensor<S>, w: &Tensor<S>, p: Conv2dParams) -> Tensor<S> {
    let xs = x.shape();
    let ws = w.shape();
    let os = conv2d_out_shape(xs, ws, p);
    let mut out = Tensor::<S>::zeros(os);
    let k = ws.h;
    let plane = os.plane();
    let wsl = w.as_slice();

    // One chunk = one (n, o) output plane; disjoint, so freely parallel.
    par_chunks_mut(&mut out, plane, xs.c * k * k, |chunk_idx, oplane| {
        let n = chunk_idx / os.c;
        let o = chunk_idx % os.c;
        for oy in 0..os.h {
            for ox in 0..os.w {
                let mut acc = S::acc_zero();
                for i in 0..xs.c {
                    let xplane = x.plane(n, i);
                    let wbase = ((o * ws.c + i) * k) * k;
                    let wk = &wsl[wbase..wbase + k * k];
                    for ky in 0..k {
                        let y = (oy * p.stride + ky) as isize - p.pad as isize;
                        if y < 0 || y >= xs.h as isize {
                            continue;
                        }
                        let xrow = &xplane[(y as usize) * xs.w..(y as usize + 1) * xs.w];
                        let wrow = &wk[ky * k..(ky + 1) * k];
                        for (kx, &wv) in wrow.iter().enumerate() {
                            let xcol = (ox * p.stride + kx) as isize - p.pad as isize;
                            if xcol < 0 || xcol >= xs.w as isize {
                                continue;
                            }
                            acc = S::mac(acc, wv, xrow[xcol as usize]);
                        }
                    }
                }
                oplane[oy * os.w + ox] = S::acc_finish(acc);
            }
        }
    });
    out
}

/// Output-channel block height of the micro-GEMM (register-tiled rows).
const GEMM_MB: usize = 4;
/// Output-pixel block width of the micro-GEMM; 128 f32 lanes fit easily
/// in L1 alongside the weight broadcasts.
const GEMM_NB: usize = 128;

/// im2col + blocked micro-GEMM fast path for 3×3 / pad 1 / stride 1 or 2.
///
/// Per batch item the input is packed into a `K × (OH·OW)` column matrix
/// (`K = C·9`, rows ordered `(i, ky, kx)` — the reference kernel's tap
/// order), then multiplied by the `(O × K)` weight matrix in `MB × NB`
/// blocks. The K loop stays outermost-sequential, so each output's
/// accumulator chain visits taps in exactly the reference order; padded
/// taps are packed as explicit zeros, which leave every accumulator
/// bit-unchanged (see the module docs). The packed rows are built from
/// precomputed interior ranges — `copy_from_slice` for stride 1, a
/// `step_by(2)` zip for stride 2 — so neither packing nor GEMM performs a
/// per-element bounds check.
pub fn conv2d_im2col_3x3<S: Scalar>(x: &Tensor<S>, w: &Tensor<S>, p: Conv2dParams) -> Tensor<S> {
    let xs = x.shape();
    let ws = w.shape();
    assert_eq!(ws.h, 3, "fast path is 3x3 only");
    assert_eq!(p.pad, 1, "fast path needs pad 1");
    assert!(p.stride == 1 || p.stride == 2, "fast path needs stride 1/2");
    let os = conv2d_out_shape(xs, ws, p);
    let mut out = Tensor::<S>::zeros(os);
    let kdim = xs.c * 9; // GEMM K: taps per output, (i, ky, kx) order.
    let nc = os.h * os.w; // GEMM N: output pixels of one plane.
    let wsl = w.as_slice();

    // The packed column matrix is reused across batch items; batch-level
    // parallelism lives a layer up (Engine::infer_batch), so packing
    // sequentially here wastes nothing.
    let mut cols = vec![S::ZERO; kdim * nc];
    for n in 0..xs.n {
        for i in 0..xs.c {
            let xplane = x.plane(n, i);
            for ky in 0..3 {
                for kx in 0..3 {
                    let row = (i * 9 + ky * 3 + kx) * nc;
                    pack_row_3x3(
                        &mut cols[row..row + nc],
                        xplane,
                        xs.h,
                        xs.w,
                        os.h,
                        os.w,
                        p.stride,
                        ky,
                        kx,
                    );
                }
            }
        }

        // out[n] is an (O × NC) row-major matrix; hand each worker a
        // block of GEMM_MB output-channel rows.
        let oitem = out.item_mut(n);
        par::par_chunks_mut(oitem, GEMM_MB * nc, kdim, |blk, chunk| {
            let m0 = blk * GEMM_MB;
            let rows = chunk.len() / nc;
            let mut acc = [S::acc_zero(); GEMM_MB * GEMM_NB];
            let mut j0 = 0;
            while j0 < nc {
                let nb = GEMM_NB.min(nc - j0);
                for a in acc[..rows * GEMM_NB].iter_mut() {
                    *a = S::acc_zero();
                }
                // K stays sequential: each (m, j) accumulator sees taps
                // in the reference (i, ky, kx) order.
                for r in 0..kdim {
                    let crow = &cols[r * nc + j0..r * nc + j0 + nb];
                    for m in 0..rows {
                        let wv = wsl[(m0 + m) * kdim + r];
                        let arow = &mut acc[m * GEMM_NB..m * GEMM_NB + nb];
                        for (a, &c) in arow.iter_mut().zip(crow) {
                            *a = S::mac(*a, wv, c);
                        }
                    }
                }
                for m in 0..rows {
                    let orow = &mut chunk[m * nc + j0..m * nc + j0 + nb];
                    let arow = &acc[m * GEMM_NB..m * GEMM_NB + nb];
                    for (o, &a) in orow.iter_mut().zip(arow) {
                        *o = S::acc_finish(a);
                    }
                }
                j0 += nb;
            }
        });
    }
    out
}

/// Pack one im2col row: the values tap `(ky, kx)` reads for every output
/// pixel, zero-filled where the tap falls in the padding border.
///
/// For output column `ox`, the tap reads
/// `x[oy·stride + ky − 1][ox·stride + kx − 1]`. With pad 1 and
/// `kx ∈ {0,1,2}` the in-bounds `ox` range is a single contiguous
/// interval `[lo, hi)` computed up front, so the borders are bulk
/// zero-fills and the interior is a straight copy (stride 1) or a
/// strided gather (stride 2) — no per-element branches.
#[allow(clippy::too_many_arguments)]
fn pack_row_3x3<S: Scalar>(
    dst: &mut [S],
    xplane: &[S],
    h: usize,
    w: usize,
    oh: usize,
    ow: usize,
    stride: usize,
    ky: usize,
    kx: usize,
) {
    // In-bounds ox interval: ox·stride + kx − 1 ∈ [0, w).
    let lo = if kx == 0 { 1 } else { 0 };
    let hi = if w < kx {
        0
    } else {
        ow.min((w - kx) / stride + 1)
    }
    .max(lo);
    let x0 = lo * stride + kx - 1; // first in-bounds x column
    for oy in 0..oh {
        let drow = &mut dst[oy * ow..(oy + 1) * ow];
        let y = (oy * stride + ky) as isize - 1;
        if y < 0 || y >= h as isize {
            drow.fill(S::ZERO);
            continue;
        }
        let xrow = &xplane[(y as usize) * w..(y as usize + 1) * w];
        drow[..lo].fill(S::ZERO);
        drow[hi..].fill(S::ZERO);
        if stride == 1 {
            drow[lo..hi].copy_from_slice(&xrow[x0..x0 + (hi - lo)]);
        } else {
            for (d, &v) in drow[lo..hi].iter_mut().zip(xrow[x0..].iter().step_by(2)) {
                *d = v;
            }
        }
    }
}

fn par_chunks_mut<S: Scalar>(
    t: &mut Tensor<S>,
    chunk: usize,
    cost: usize,
    f: impl Fn(usize, &mut [S]) + Sync,
) {
    par::par_chunks_mut(t.as_mut_slice(), chunk, cost, f);
}

/// Gradient of the loss w.r.t. the convolution **input**.
///
/// `gout` has the output shape; the result has shape `x_shape`.
pub fn conv2d_backward_input(
    gout: &Tensor<f32>,
    w: &Tensor<f32>,
    x_shape: Shape4,
    p: Conv2dParams,
) -> Tensor<f32> {
    let os = gout.shape();
    let ws = w.shape();
    assert_eq!(
        os.c, ws.n,
        "gout channels must match weight output channels"
    );
    assert_eq!(
        x_shape.c, ws.c,
        "x channels must match weight input channels"
    );
    let k = ws.h;
    let mut gx = Tensor::<f32>::zeros(x_shape);
    let plane = x_shape.plane();
    let wsl = w.as_slice();

    // One chunk = one (n, i) input-gradient plane.
    par_chunks_mut(&mut gx, plane, os.c * k * k, |chunk_idx, gplane| {
        let n = chunk_idx / x_shape.c;
        let i = chunk_idx % x_shape.c;
        for o in 0..os.c {
            let gout_plane = gout.plane(n, o);
            let wbase = ((o * ws.c + i) * k) * k;
            let wk = &wsl[wbase..wbase + k * k];
            for oy in 0..os.h {
                for ox in 0..os.w {
                    let g = gout_plane[oy * os.w + ox];
                    if g == 0.0 {
                        continue;
                    }
                    for ky in 0..k {
                        let y = (oy * p.stride + ky) as isize - p.pad as isize;
                        if y < 0 || y >= x_shape.h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let xcol = (ox * p.stride + kx) as isize - p.pad as isize;
                            if xcol < 0 || xcol >= x_shape.w as isize {
                                continue;
                            }
                            gplane[(y as usize) * x_shape.w + xcol as usize] += wk[ky * k + kx] * g;
                        }
                    }
                }
            }
        }
    });
    gx
}

/// Gradient of the loss w.r.t. the convolution **weights**.
pub fn conv2d_backward_weights(
    gout: &Tensor<f32>,
    x: &Tensor<f32>,
    w_shape: Shape4,
    p: Conv2dParams,
) -> Tensor<f32> {
    let os = gout.shape();
    let xs = x.shape();
    assert_eq!(os.c, w_shape.n);
    assert_eq!(xs.c, w_shape.c);
    let k = w_shape.h;
    let mut gw = Tensor::<f32>::zeros(w_shape);
    let per_o = w_shape.c * k * k;

    // One chunk = all weights of one output channel.
    par_chunks_mut(&mut gw, per_o, os.n * os.plane(), |o, gw_o| {
        for n in 0..os.n {
            let gout_plane = gout.plane(n, o);
            for (i, gw_oi) in gw_o.chunks_mut(k * k).enumerate() {
                let xplane = x.plane(n, i);
                for oy in 0..os.h {
                    for ox in 0..os.w {
                        let g = gout_plane[oy * os.w + ox];
                        if g == 0.0 {
                            continue;
                        }
                        for ky in 0..k {
                            let y = (oy * p.stride + ky) as isize - p.pad as isize;
                            if y < 0 || y >= xs.h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let xcol = (ox * p.stride + kx) as isize - p.pad as isize;
                                if xcol < 0 || xcol >= xs.w as isize {
                                    continue;
                                }
                                gw_oi[ky * k + kx] +=
                                    xplane[(y as usize) * xs.w + xcol as usize] * g;
                            }
                        }
                    }
                }
            }
        }
    });
    gw
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfixed::{Q16, Q20};

    fn seq_tensor(shape: Shape4, scale: f32) -> Tensor<f32> {
        let mut k = 0.0f32;
        Tensor::from_fn(shape, |_, _, _, _| {
            k += 1.0;
            (k % 7.0 - 3.0) * scale
        })
    }

    #[test]
    fn identity_kernel_passes_through() {
        let x = seq_tensor(Shape4::new(1, 1, 5, 5), 0.5);
        let mut w = Tensor::<f32>::zeros(Shape4::new(1, 1, 3, 3));
        w.set(0, 0, 1, 1, 1.0); // centre tap
        let y = conv2d(&x, &w, Conv2dParams::same_3x3());
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn known_small_case() {
        // 1x1x3x3 input, all-ones 3x3 kernel, pad 1: centre output = sum of
        // all inputs, corner output = sum of its 2x2 neighbourhood.
        let x = Tensor::<f32>::from_fn(Shape4::new(1, 1, 3, 3), |_, _, h, w| (h * 3 + w) as f32);
        let w = Tensor::<f32>::full(Shape4::new(1, 1, 3, 3), 1.0);
        let y = conv2d(&x, &w, Conv2dParams::same_3x3());
        assert_eq!(y.get(0, 0, 1, 1), 36.0);
        assert_eq!(y.get(0, 0, 0, 0), 0.0 + 1.0 + 3.0 + 4.0);
        assert_eq!(y.get(0, 0, 2, 2), 4.0 + 5.0 + 7.0 + 8.0);
    }

    #[test]
    fn multi_channel_sums_inputs() {
        let x = Tensor::<f32>::full(Shape4::new(1, 4, 4, 4), 1.0);
        let mut w = Tensor::<f32>::zeros(Shape4::new(2, 4, 3, 3));
        for i in 0..4 {
            w.set(0, i, 1, 1, 1.0);
            w.set(1, i, 1, 1, 2.0);
        }
        let y = conv2d(&x, &w, Conv2dParams::same_3x3());
        assert_eq!(y.get(0, 0, 2, 2), 4.0);
        assert_eq!(y.get(0, 1, 2, 2), 8.0);
    }

    #[test]
    fn stride2_shapes_and_values() {
        let x = Tensor::<f32>::from_fn(Shape4::new(1, 1, 6, 6), |_, _, h, w| (h * 6 + w) as f32);
        let mut w = Tensor::<f32>::zeros(Shape4::new(1, 1, 3, 3));
        w.set(0, 0, 1, 1, 1.0);
        let y = conv2d(&x, &w, Conv2dParams::down_3x3());
        assert_eq!(y.shape(), Shape4::new(1, 1, 3, 3));
        // Centre taps at stride 2 pick x[0,0], x[0,2], ...
        assert_eq!(y.get(0, 0, 0, 0), 0.0);
        assert_eq!(y.get(0, 0, 0, 1), 2.0);
        assert_eq!(y.get(0, 0, 1, 0), 12.0);
    }

    #[test]
    fn conv_is_linear() {
        let p = Conv2dParams::same_3x3();
        let x1 = seq_tensor(Shape4::new(1, 2, 6, 6), 0.3);
        let x2 = seq_tensor(Shape4::new(1, 2, 6, 6), -0.7);
        let w = seq_tensor(Shape4::new(3, 2, 3, 3), 0.1);
        let sum = x1.zip_map(&x2, |a, b| a + b);
        let y_sum = conv2d(&sum, &w, p);
        let y1 = conv2d(&x1, &w, p);
        let y2 = conv2d(&x2, &w, p);
        let y12 = y1.zip_map(&y2, |a, b| a + b);
        assert!(y_sum.max_abs_diff(&y12) < 1e-4);
    }

    #[test]
    fn q20_matches_f32_on_dyadic_values() {
        // Weights and inputs representable exactly in Q20; products and sums
        // stay exact, so both paths must agree to the last bit.
        let xs = Shape4::new(1, 3, 5, 5);
        let ws = Shape4::new(4, 3, 3, 3);
        let xf = Tensor::<f32>::from_fn(xs, |_, c, h, w| ((c + h + w) % 5) as f32 * 0.25 - 0.5);
        let wf = Tensor::<f32>::from_fn(ws, |o, i, kh, kw| {
            ((o + 2 * i + kh + kw) % 7) as f32 * 0.125 - 0.375
        });
        let yf = conv2d(&xf, &wf, Conv2dParams::same_3x3());
        let xq: Tensor<Q20> = Tensor::from_f32_tensor(&xf);
        let wq: Tensor<Q20> = Tensor::from_f32_tensor(&wf);
        let yq = conv2d(&xq, &wq, Conv2dParams::same_3x3());
        assert_eq!(yq.to_f32().as_slice(), yf.as_slice());
    }

    /// Central-difference gradient check for both backward kernels.
    #[test]
    fn gradients_match_finite_differences() {
        let p = Conv2dParams::same_3x3();
        let xs = Shape4::new(2, 2, 4, 4);
        let ws = Shape4::new(3, 2, 3, 3);
        let x = seq_tensor(xs, 0.17);
        let w = seq_tensor(ws, 0.09);
        // Loss = sum(conv(x, w) * r) for a fixed random-ish r.
        let os = conv2d_out_shape(xs, ws, p);
        let r = seq_tensor(os, 0.23);
        let loss = |x: &Tensor<f32>, w: &Tensor<f32>| -> f32 {
            conv2d(x, w, p)
                .as_slice()
                .iter()
                .zip(r.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let gx = conv2d_backward_input(&r, &w, xs, p);
        let gw = conv2d_backward_weights(&r, &x, ws, p);
        let eps = 1e-2f32;
        for probe in [0usize, 7, 23, xs.len() - 1] {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[probe] -= eps;
            let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!(
                (num - gx.as_slice()[probe]).abs() < 1e-2,
                "gx[{probe}] analytic {} vs numeric {num}",
                gx.as_slice()[probe]
            );
        }
        for probe in [0usize, 11, ws.len() - 1] {
            let mut wp = w.clone();
            wp.as_mut_slice()[probe] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[probe] -= eps;
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!(
                (num - gw.as_slice()[probe]).abs() < 1e-1,
                "gw[{probe}] analytic {} vs numeric {num}",
                gw.as_slice()[probe]
            );
        }
    }

    #[test]
    fn backward_input_transposes_stride2() {
        // Shape sanity for the downsample case.
        let p = Conv2dParams::down_3x3();
        let xs = Shape4::new(1, 2, 8, 8);
        let ws = Shape4::new(4, 2, 3, 3);
        let os = conv2d_out_shape(xs, ws, p);
        assert_eq!(os, Shape4::new(1, 4, 4, 4));
        let gout = Tensor::<f32>::full(os, 1.0);
        let w = Tensor::<f32>::full(ws, 0.5);
        let gx = conv2d_backward_input(&gout, &w, xs, p);
        assert_eq!(gx.shape(), xs);
        // Every input pixel receives at least one contribution.
        assert!(gx.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn one_by_one_kernels_are_channel_mixing() {
        // 1×1 convolution with pad 0 = per-pixel channel mix.
        let x = Tensor::<f32>::from_fn(Shape4::new(1, 2, 3, 3), |_, c, h, w| {
            (c * 9 + h * 3 + w) as f32
        });
        let mut w = Tensor::<f32>::zeros(Shape4::new(1, 2, 1, 1));
        w.set(0, 0, 0, 0, 1.0);
        w.set(0, 1, 0, 0, 10.0);
        let y = conv2d(&x, &w, Conv2dParams { stride: 1, pad: 0 });
        assert_eq!(y.shape(), Shape4::new(1, 1, 3, 3));
        assert_eq!(y.get(0, 0, 1, 1), 4.0 + 10.0 * 13.0);
    }

    #[test]
    fn five_by_five_kernels_supported() {
        let x = Tensor::<f32>::full(Shape4::new(1, 1, 7, 7), 1.0);
        let w = Tensor::<f32>::full(Shape4::new(1, 1, 5, 5), 1.0);
        let y = conv2d(&x, &w, Conv2dParams { stride: 1, pad: 2 });
        assert_eq!(y.shape(), Shape4::new(1, 1, 7, 7));
        // Centre sees the full 25-tap window; corner sees 3×3 of it.
        assert_eq!(y.get(0, 0, 3, 3), 25.0);
        assert_eq!(y.get(0, 0, 0, 0), 9.0);
    }

    #[test]
    fn batch_dimension_independent() {
        let p = Conv2dParams::same_3x3();
        let a = seq_tensor(Shape4::new(1, 2, 4, 4), 0.2);
        let b = seq_tensor(Shape4::new(1, 2, 4, 4), -0.4);
        let w = seq_tensor(Shape4::new(2, 2, 3, 3), 0.1);
        // Concatenate a and b into one batch; outputs must match the
        // separate runs exactly.
        let mut joint = Tensor::<f32>::zeros(Shape4::new(2, 2, 4, 4));
        joint.item_mut(0).copy_from_slice(a.as_slice());
        joint.item_mut(1).copy_from_slice(b.as_slice());
        let yj = conv2d(&joint, &w, p);
        let ya = conv2d(&a, &w, p);
        let yb = conv2d(&b, &w, p);
        assert_eq!(yj.item(0), ya.as_slice());
        assert_eq!(yj.item(1), yb.as_slice());
    }

    #[test]
    #[should_panic(expected = "input channels")]
    fn channel_mismatch_panics() {
        let x = Tensor::<f32>::zeros(Shape4::new(1, 3, 4, 4));
        let w = Tensor::<f32>::zeros(Shape4::new(2, 4, 3, 3));
        let _ = conv2d(&x, &w, Conv2dParams::same_3x3());
    }

    #[test]
    fn fast_path_matches_reference_f32() {
        // Geometry sweep over both hot strides, odd/even extents, and a
        // border-dominated 4×4 map; outputs must be bit-identical.
        for (c, o, h, w) in [(1, 1, 4, 4), (3, 5, 7, 9), (16, 16, 8, 8), (2, 3, 1, 1)] {
            for p in [Conv2dParams::same_3x3(), Conv2dParams::down_3x3()] {
                let x = seq_tensor(Shape4::new(2, c, h, w), 0.13);
                let wt = seq_tensor(Shape4::new(o, c, 3, 3), 0.07);
                let fast = conv2d_im2col_3x3(&x, &wt, p);
                let reference = conv2d_reference(&x, &wt, p);
                assert_eq!(
                    fast.as_slice(),
                    reference.as_slice(),
                    "c={c} o={o} h={h} w={w} stride={}",
                    p.stride
                );
            }
        }
    }

    #[test]
    fn fast_path_matches_reference_fixed_point() {
        let x = seq_tensor(Shape4::new(1, 4, 6, 5), 0.21);
        let wt = seq_tensor(Shape4::new(3, 4, 3, 3), 0.11);
        for p in [Conv2dParams::same_3x3(), Conv2dParams::down_3x3()] {
            let xq: Tensor<Q20> = Tensor::from_f32_tensor(&x);
            let wq: Tensor<Q20> = Tensor::from_f32_tensor(&wt);
            assert_eq!(
                conv2d_im2col_3x3(&xq, &wq, p).as_slice(),
                conv2d_reference(&xq, &wq, p).as_slice()
            );
            let x16: Tensor<Q16> = Tensor::from_f32_tensor(&x);
            let w16: Tensor<Q16> = Tensor::from_f32_tensor(&wt);
            assert_eq!(
                conv2d_im2col_3x3(&x16, &w16, p).as_slice(),
                conv2d_reference(&x16, &w16, p).as_slice()
            );
        }
    }

    #[test]
    fn force_reference_toggle_routes_dispatch() {
        // Both routes are bit-identical, so this only checks the toggle
        // round-trips and conv2d still works under it.
        let x = seq_tensor(Shape4::new(1, 2, 5, 5), 0.3);
        let w = seq_tensor(Shape4::new(2, 2, 3, 3), 0.2);
        let fast = conv2d(&x, &w, Conv2dParams::same_3x3());
        set_force_reference(true);
        assert!(force_reference());
        let slow = conv2d(&x, &w, Conv2dParams::same_3x3());
        set_force_reference(false);
        assert!(!force_reference());
        assert_eq!(fast.as_slice(), slow.as_slice());
    }
}
