//! Pooling and the ResNet option-A shortcut.
//!
//! The post-processing `fc` layer starts with **global average pooling**;
//! the stride-2 building blocks (layer2_1, layer3_1) use the
//! parameter-free **option-A shortcut**: spatially subsample the input by
//! 2 and zero-pad the channel dimension. Table 2 contains no projection
//! weights, so option A is the reading consistent with the paper.

use crate::{Scalar, Shape4, Tensor};

/// Global average pooling: `(N, C, H, W) → (N, C, 1, 1)`.
pub fn global_avg_pool<S: Scalar>(x: &Tensor<S>) -> Tensor<S> {
    let s = x.shape();
    let m = S::from_f32(s.plane() as f32);
    let mut out = Tensor::<S>::zeros(Shape4::new(s.n, s.c, 1, 1));
    for n in 0..s.n {
        for c in 0..s.c {
            let mut acc = S::acc_zero();
            for &v in x.plane(n, c) {
                acc = S::acc_add(acc, v);
            }
            out.set(n, c, 0, 0, S::acc_finish(acc).div(m));
        }
    }
    out
}

/// Backward of global average pooling: spreads each gradient uniformly.
pub fn global_avg_pool_backward(gout: &Tensor<f32>, x_shape: Shape4) -> Tensor<f32> {
    let os = gout.shape();
    assert_eq!(os.c, x_shape.c);
    assert_eq!(os.n, x_shape.n);
    let m = x_shape.plane() as f32;
    let mut gx = Tensor::<f32>::zeros(x_shape);
    for n in 0..os.n {
        for c in 0..os.c {
            let g = gout.get(n, c, 0, 0) / m;
            gx.plane_mut(n, c).fill(g);
        }
    }
    gx
}

/// Option-A shortcut: subsample by `stride` and zero-pad channels to
/// `out_channels`. Parameter-free, as in the original ResNet option A.
pub fn shortcut_a<S: Scalar>(x: &Tensor<S>, out_channels: usize, stride: usize) -> Tensor<S> {
    let s = x.shape();
    assert!(
        out_channels >= s.c,
        "option-A shortcut only widens channels"
    );
    let oh = s.h.div_ceil(stride);
    let ow = s.w.div_ceil(stride);
    let mut out = Tensor::<S>::zeros(Shape4::new(s.n, out_channels, oh, ow));
    for n in 0..s.n {
        for c in 0..s.c {
            let xp = x.plane(n, c);
            let op = out.plane_mut(n, c);
            for y in 0..oh {
                for xcol in 0..ow {
                    op[y * ow + xcol] = xp[y * stride * s.w + xcol * stride];
                }
            }
        }
    }
    out
}

/// Backward of [`shortcut_a`]: scatter gradients back to the sampled
/// positions; padded channels contribute nothing.
pub fn shortcut_a_backward(gout: &Tensor<f32>, x_shape: Shape4, stride: usize) -> Tensor<f32> {
    let os = gout.shape();
    let mut gx = Tensor::<f32>::zeros(x_shape);
    for n in 0..x_shape.n {
        for c in 0..x_shape.c {
            let gp = gout.plane(n, c);
            let gxp = gx.plane_mut(n, c);
            for y in 0..os.h {
                for xcol in 0..os.w {
                    gxp[y * stride * x_shape.w + xcol * stride] = gp[y * os.w + xcol];
                }
            }
        }
    }
    gx
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfixed::Q20;

    #[test]
    fn avg_pool_means() {
        let x = Tensor::<f32>::from_fn(Shape4::new(1, 2, 2, 2), |_, c, h, w| {
            (c * 10 + h * 2 + w) as f32
        });
        let y = global_avg_pool(&x);
        assert_eq!(y.shape(), Shape4::new(1, 2, 1, 1));
        assert_eq!(y.get(0, 0, 0, 0), 1.5);
        assert_eq!(y.get(0, 1, 0, 0), 11.5);
    }

    #[test]
    fn avg_pool_q20_matches_f32_on_exact() {
        let x = Tensor::<f32>::from_fn(Shape4::new(1, 1, 4, 4), |_, _, h, w| {
            (h * 4 + w) as f32 * 0.25
        });
        let xq: Tensor<Q20> = Tensor::from_f32_tensor(&x);
        assert_eq!(
            global_avg_pool(&xq).to_f32().as_slice(),
            global_avg_pool(&x).as_slice()
        );
    }

    #[test]
    fn avg_pool_backward_uniform() {
        let g = Tensor::<f32>::full(Shape4::new(1, 1, 1, 1), 8.0);
        let gx = global_avg_pool_backward(&g, Shape4::new(1, 1, 2, 4));
        assert_eq!(gx.as_slice(), &[1.0; 8]);
    }

    #[test]
    fn shortcut_subsamples_and_pads() {
        let x = Tensor::<f32>::from_fn(Shape4::new(1, 2, 4, 4), |_, c, h, w| {
            (c * 100 + h * 10 + w) as f32
        });
        let y = shortcut_a(&x, 4, 2);
        assert_eq!(y.shape(), Shape4::new(1, 4, 2, 2));
        assert_eq!(y.plane(0, 0), &[0.0, 2.0, 20.0, 22.0]);
        assert_eq!(y.plane(0, 1), &[100.0, 102.0, 120.0, 122.0]);
        assert_eq!(y.plane(0, 2), &[0.0; 4], "padded channel is zero");
        assert_eq!(y.plane(0, 3), &[0.0; 4]);
    }

    #[test]
    fn shortcut_identity_when_stride1_same_channels() {
        let x = Tensor::<f32>::from_fn(Shape4::new(1, 3, 3, 3), |_, c, h, w| (c + h + w) as f32);
        let y = shortcut_a(&x, 3, 1);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn shortcut_backward_scatters() {
        let x_shape = Shape4::new(1, 1, 4, 4);
        let g = Tensor::<f32>::full(Shape4::new(1, 2, 2, 2), 1.0);
        let gx = shortcut_a_backward(&g, x_shape, 2);
        let mut expect = [0.0f32; 16];
        for (y, xcol) in [(0, 0), (0, 2), (2, 0), (2, 2)] {
            expect[y * 4 + xcol] = 1.0;
        }
        assert_eq!(gx.as_slice(), &expect[..]);
    }

    #[test]
    fn shortcut_gradcheck() {
        let x = Tensor::<f32>::from_fn(Shape4::new(1, 2, 4, 4), |_, c, h, w| {
            ((c * 31 + h * 7 + w * 3) % 11) as f32 * 0.1
        });
        let r = Tensor::<f32>::from_fn(Shape4::new(1, 3, 2, 2), |_, c, h, w| {
            ((c * 5 + h * 3 + w) % 7) as f32 * 0.2 - 0.4
        });
        let loss = |x: &Tensor<f32>| -> f32 {
            shortcut_a(x, 3, 2)
                .as_slice()
                .iter()
                .zip(r.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let gx = shortcut_a_backward(&r, x.shape(), 2);
        let eps = 1e-2;
        for probe in [0usize, 5, 10, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[probe] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!((num - gx.as_slice()[probe]).abs() < 1e-3, "probe {probe}");
        }
    }
}
