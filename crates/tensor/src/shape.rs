//! The 4-dimensional NCHW shape descriptor.

use core::fmt;

/// Shape of an NCHW tensor: batch `n`, channels `c`, height `h`, width `w`.
///
/// Weight tensors reuse the same struct with the reading (O, I, Kh, Kw).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Shape4 {
    /// Batch size (or output channels for weights).
    pub n: usize,
    /// Channels (or input channels for weights).
    pub c: usize,
    /// Height (or kernel height).
    pub h: usize,
    /// Width (or kernel width).
    pub w: usize,
}

impl Shape4 {
    /// Construct a shape.
    #[inline]
    pub const fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape4 { n, c, h, w }
    }

    /// Total number of elements.
    #[inline]
    pub const fn len(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// True when any extent is zero.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Elements in one (n, c) plane.
    #[inline]
    pub const fn plane(&self) -> usize {
        self.h * self.w
    }

    /// Elements in one batch item (all channels).
    #[inline]
    pub const fn item(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Linear offset of `(n, c, h, w)`.
    #[inline]
    pub const fn idx(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Same spatial extents and batch, different channel count.
    #[inline]
    pub const fn with_channels(&self, c: usize) -> Self {
        Shape4 {
            n: self.n,
            c,
            h: self.h,
            w: self.w,
        }
    }

    /// Same layout, different batch size.
    #[inline]
    pub const fn with_batch(&self, n: usize) -> Self {
        Shape4 {
            n,
            c: self.c,
            h: self.h,
            w: self.w,
        }
    }
}

impl fmt::Display for Shape4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}×{}×{}×{}", self.n, self.c, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.len(), 120);
        assert_eq!(s.plane(), 20);
        assert_eq!(s.item(), 60);
        assert!(!s.is_empty());
        assert!(Shape4::new(0, 3, 4, 5).is_empty());
    }

    #[test]
    fn idx_is_row_major_nchw() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.idx(0, 0, 0, 0), 0);
        assert_eq!(s.idx(0, 0, 0, 1), 1);
        assert_eq!(s.idx(0, 0, 1, 0), 5);
        assert_eq!(s.idx(0, 1, 0, 0), 20);
        assert_eq!(s.idx(1, 0, 0, 0), 60);
        assert_eq!(s.idx(1, 2, 3, 4), 119);
    }

    #[test]
    fn derived_shapes() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.with_channels(7), Shape4::new(2, 7, 4, 5));
        assert_eq!(s.with_batch(1), Shape4::new(1, 3, 4, 5));
    }

    #[test]
    fn display() {
        assert_eq!(Shape4::new(1, 16, 32, 32).to_string(), "1×16×32×32");
    }
}
