//! The [`Scalar`] abstraction over `f32` and Q-format fixed point.
//!
//! Kernels that run on both the PS (float software) and the PL (Q20
//! dedicated circuit) are written once against this trait. The associated
//! [`Scalar::Acc`] type models the accumulator of a multiply–add unit: for
//! fixed point it is the double-width (Q2F) register of a DSP48 cascade, so
//! a dot product truncates exactly once — matching the hardware and the
//! [`qfixed::Mac`] unit with [`qfixed::MacPolicy::WideAccumulate`].

use qfixed::{Fix, Fix16};

/// Element type usable by the generic forward kernels.
pub trait Scalar:
    Copy + Clone + Send + Sync + PartialEq + core::fmt::Debug + Default + 'static
{
    /// Accumulator for dot products (double-width for fixed point).
    type Acc: Copy + Send;

    /// Storage bytes per value — what the BRAM packing and AXI DMA
    /// models charge for one element of this type (4 for `f32` and the
    /// 32-bit fixed formats, 2 for the 16-bit reduced-width formats).
    const BYTES: usize;

    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Lossy conversion from `f32` (quantizes for fixed point).
    fn from_f32(v: f32) -> Self;
    /// Conversion to `f32`.
    fn to_f32(self) -> f32;

    /// Addition (wrapping for fixed point, as hardware registers do).
    fn add(self, rhs: Self) -> Self;
    /// Subtraction.
    fn sub(self, rhs: Self) -> Self;
    /// Multiplication (single truncation for fixed point).
    fn mul(self, rhs: Self) -> Self;
    /// Division (hardware divider semantics for fixed point: truncating,
    /// saturating on zero divisor).
    fn div(self, rhs: Self) -> Self;
    /// Negation.
    fn neg(self) -> Self;
    /// Square root (hardware non-restoring unit for fixed point); negative
    /// inputs clamp to zero.
    fn sqrt(self) -> Self;
    /// The ReLU activation.
    fn relu(self) -> Self;
    /// Maximum.
    fn max(self, rhs: Self) -> Self;

    /// Fresh zero accumulator.
    fn acc_zero() -> Self::Acc;
    /// `acc + w·x` at accumulator precision.
    fn mac(acc: Self::Acc, w: Self, x: Self) -> Self::Acc;
    /// Inject a pre-formed value (bias, residual) into the accumulator.
    fn acc_add(acc: Self::Acc, v: Self) -> Self::Acc;
    /// Collapse the accumulator back to the storage format (the single
    /// truncation point for fixed point).
    fn acc_finish(acc: Self::Acc) -> Self;
}

impl Scalar for f32 {
    type Acc = f32;

    const BYTES: usize = 4;

    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn from_f32(v: f32) -> Self {
        v
    }
    #[inline]
    fn to_f32(self) -> f32 {
        self
    }
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self / rhs
    }
    #[inline]
    fn neg(self) -> Self {
        -self
    }
    #[inline]
    fn sqrt(self) -> Self {
        if self <= 0.0 {
            0.0
        } else {
            self.sqrt()
        }
    }
    #[inline]
    fn relu(self) -> Self {
        if self > 0.0 {
            self
        } else {
            0.0
        }
    }
    #[inline]
    fn max(self, rhs: Self) -> Self {
        f32::max(self, rhs)
    }

    #[inline]
    fn acc_zero() -> f32 {
        0.0
    }
    #[inline]
    fn mac(acc: f32, w: f32, x: f32) -> f32 {
        acc + w * x
    }
    #[inline]
    fn acc_add(acc: f32, v: f32) -> f32 {
        acc + v
    }
    #[inline]
    fn acc_finish(acc: f32) -> f32 {
        acc
    }
}

impl<const F: u32> Scalar for Fix<F> {
    /// Double-width Q(2F) register, as produced by a DSP48 cascade.
    type Acc = i64;

    const BYTES: usize = 4;

    const ZERO: Self = Fix::ZERO;
    const ONE: Self = Fix::ONE;

    #[inline]
    fn from_f32(v: f32) -> Self {
        Fix::from_f32(v)
    }
    #[inline]
    fn to_f32(self) -> f32 {
        Fix::to_f32(self)
    }
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self.wrapping_add(rhs)
    }
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.wrapping_sub(rhs)
    }
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self.mul_trunc(rhs)
    }
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self.div_trunc(rhs)
    }
    #[inline]
    fn neg(self) -> Self {
        -self
    }
    #[inline]
    fn sqrt(self) -> Self {
        Fix::sqrt(self)
    }
    #[inline]
    fn relu(self) -> Self {
        Fix::relu(self)
    }
    #[inline]
    fn max(self, rhs: Self) -> Self {
        Fix::max(self, rhs)
    }

    #[inline]
    fn acc_zero() -> i64 {
        0
    }
    #[inline]
    fn mac(acc: i64, w: Self, x: Self) -> i64 {
        w.mac_wide(x, acc)
    }
    #[inline]
    fn acc_add(acc: i64, v: Self) -> i64 {
        acc.wrapping_add((v.to_bits() as i64) << F)
    }
    #[inline]
    fn acc_finish(acc: i64) -> Self {
        Fix::from_bits((acc >> F) as i32)
    }
}

impl<const F: u32> Scalar for Fix16<F> {
    /// Wide Q(2F) accumulator. Even a 16-bit datapath accumulates in the
    /// DSP slice's wide register (48-bit on DSP48E1) — a 32-bit
    /// accumulator would overflow after ~100 products; i64 models the
    /// hardware faithfully.
    type Acc = i64;

    const BYTES: usize = 2;

    const ZERO: Self = Fix16::ZERO;
    const ONE: Self = Fix16::ONE;

    #[inline]
    fn from_f32(v: f32) -> Self {
        Fix16::from_f32(v)
    }
    #[inline]
    fn to_f32(self) -> f32 {
        Fix16::to_f32(self)
    }
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self.wrapping_add(rhs)
    }
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.wrapping_sub(rhs)
    }
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self.mul_trunc(rhs)
    }
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self.div_trunc(rhs)
    }
    #[inline]
    fn neg(self) -> Self {
        -self
    }
    #[inline]
    fn sqrt(self) -> Self {
        Fix16::sqrt(self)
    }
    #[inline]
    fn relu(self) -> Self {
        Fix16::relu(self)
    }
    #[inline]
    fn max(self, rhs: Self) -> Self {
        Fix16::max(self, rhs)
    }

    #[inline]
    fn acc_zero() -> i64 {
        0
    }
    #[inline]
    fn mac(acc: i64, w: Self, x: Self) -> i64 {
        acc.wrapping_add((w.to_bits() as i64) * (x.to_bits() as i64))
    }
    #[inline]
    fn acc_add(acc: i64, v: Self) -> i64 {
        acc.wrapping_add((v.to_bits() as i64) << F)
    }
    #[inline]
    fn acc_finish(acc: i64) -> Self {
        // Saturate at write-back: the DSP's wide value is clamped into
        // the 16-bit storage format, as hardware write-back logic does.
        let v = acc >> F;
        Fix16::from_bits(v.clamp(i16::MIN as i64, i16::MAX as i64) as i16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfixed::Q20;

    fn generic_dot<S: Scalar>(w: &[f32], x: &[f32]) -> f32 {
        let mut acc = S::acc_zero();
        for (a, b) in w.iter().zip(x) {
            acc = S::mac(acc, S::from_f32(*a), S::from_f32(*b));
        }
        S::acc_finish(acc).to_f32()
    }

    #[test]
    fn dot_agrees_between_f32_and_q20_on_exact_values() {
        let w = [0.5, -1.25, 2.0, 0.0625];
        let x = [4.0, 0.5, -0.25, 8.0];
        assert_eq!(generic_dot::<f32>(&w, &x), generic_dot::<Q20>(&w, &x));
    }

    #[test]
    fn q20_acc_truncates_once() {
        // 3 products, each inexact by < 1 LSB at Q40, truncated once:
        // total error under 1 LSB of Q20.
        let w = [0.1, 0.2, 0.3];
        let x = [0.7, 0.8, 0.9];
        let exact: f32 = w.iter().zip(&x).map(|(a, b)| a * b).sum();
        let got = generic_dot::<Q20>(&w, &x);
        assert!((got - exact).abs() < 2.0 * Q20::RESOLUTION as f32);
    }

    #[test]
    fn f32_scalar_ops() {
        assert_eq!(Scalar::relu(-1.0f32), 0.0);
        assert_eq!(Scalar::sqrt(4.0f32), 2.0);
        assert_eq!(Scalar::sqrt(-4.0f32), 0.0);
        assert_eq!(Scalar::max(1.0f32, 2.0), 2.0);
        assert_eq!(Scalar::div(1.0f32, 2.0), 0.5);
    }

    #[test]
    fn fixed_scalar_matches_qfixed() {
        let a = Q20::from_f64(1.5);
        let b = Q20::from_f64(-2.0);
        assert_eq!(Scalar::mul(a, b), a.mul_trunc(b));
        assert_eq!(Scalar::add(a, b), a.wrapping_add(b));
        assert_eq!(Scalar::relu(b), Q20::ZERO);
    }

    #[test]
    fn fix16_dot_tracks_f32() {
        use qfixed::Fix16;
        let w = [0.5, -1.25, 2.0];
        let x = [4.0, 0.5, -0.25];
        let f = generic_dot::<f32>(&w, &x);
        let q = generic_dot::<Fix16<8>>(&w, &x);
        assert!((f - q).abs() < 0.01, "{f} vs {q}");
    }

    #[test]
    fn acc_add_injects_residual() {
        let mut acc = <Q20 as Scalar>::acc_zero();
        acc = <Q20 as Scalar>::mac(acc, Q20::from_f64(2.0), Q20::from_f64(3.0));
        acc = <Q20 as Scalar>::acc_add(acc, Q20::from_f64(0.5));
        assert_eq!(<Q20 as Scalar>::acc_finish(acc).to_f64(), 6.5);
    }
}
