//! Minimal deterministic data parallelism on `std::thread::scope`.
//!
//! The hpc guides recommend rayon-style *data* parallelism — disjoint
//! chunks, no shared mutable state, results independent of thread count.
//! The kernels here only ever need two shapes of it:
//!
//! * [`par_for`] — run `f(i)` for every index in `0..n`, statically
//!   partitioned into contiguous blocks;
//! * [`par_chunks_mut`] — split a mutable slice into fixed-size chunks and
//!   hand each `(chunk_index, chunk)` to `f`, again statically partitioned.
//!
//! Static partitioning (rather than work stealing) keeps the scheduling
//! deterministic and the implementation dependency-light; conv workloads
//! are uniform enough that stealing buys nothing here.
//!
//! The pool size defaults to the machine's available parallelism, can be
//! pinned with [`set_threads`], and can be initialised from the
//! `ODENET_THREADS` environment variable.

use std::cell::Cell;
use std::sync::{OnceLock, RwLock};

static THREADS: OnceLock<RwLock<usize>> = OnceLock::new();

thread_local! {
    /// Set while the current thread is one of our spawned workers, so
    /// nested [`par_for`]/[`par_chunks_mut`] calls run sequentially
    /// instead of oversubscribing the pool (batch-level parallelism in
    /// `Engine::infer_batch` wraps the plane-level parallelism of the
    /// kernels; without the guard each of T workers would spawn T more).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is already inside a parallel worker (in
/// which case further parallel calls degrade to sequential loops).
pub fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

fn run_as_worker(f: impl FnOnce()) {
    IN_WORKER.with(|w| w.set(true));
    f();
    IN_WORKER.with(|w| w.set(false));
}

fn threads_lock() -> &'static RwLock<usize> {
    THREADS.get_or_init(|| {
        let default = std::env::var("ODENET_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        RwLock::new(default)
    })
}

/// Number of worker threads the parallel helpers will use.
pub fn threads() -> usize {
    *threads_lock().read().expect("thread-count lock poisoned")
}

/// Pin the worker thread count (1 = fully sequential). Affects subsequent
/// calls process-wide; useful for making benchmarks comparable.
pub fn set_threads(n: usize) {
    assert!(n >= 1, "thread count must be at least 1");
    *threads_lock().write().expect("thread-count lock poisoned") = n;
}

/// Execute `f(i)` for all `i in 0..n`.
///
/// Work is split into at most [`threads`] contiguous blocks, but only when
/// `n * cost_hint` is large enough to amortize thread spawning; `cost_hint`
/// is a rough per-item cost in arbitrary units (use 1 for cheap items).
pub fn par_for<F>(n: usize, cost_hint: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let t = threads().min(n.max(1));
    // Spawning threads costs ~10µs each; only parallelize meaty loops.
    // Workers never re-spawn: nested parallelism runs sequentially.
    if t <= 1 || in_worker() || n.saturating_mul(cost_hint.max(1)) < 4096 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let per = n.div_ceil(t);
    std::thread::scope(|s| {
        for b in 0..t {
            let lo = b * per;
            let hi = ((b + 1) * per).min(n);
            if lo >= hi {
                break;
            }
            let f = &f;
            s.spawn(move || {
                run_as_worker(|| {
                    for i in lo..hi {
                        f(i);
                    }
                })
            });
        }
    });
}

/// Split `data` into chunks of `chunk_len` elements (the last may be short)
/// and run `f(chunk_index, chunk)` over all of them in parallel.
///
/// Chunks are disjoint `&mut` borrows, so the borrow checker guarantees
/// data-race freedom; output is identical for any thread count.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, cost_hint: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let t = threads().min(n_chunks.max(1));
    if t <= 1 || in_worker() || data.len().saturating_mul(cost_hint.max(1)) < 4096 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let per = n_chunks.div_ceil(t);
    std::thread::scope(|s| {
        // Hand each worker a contiguous run of chunks.
        let mut rest = data;
        let mut chunk_base = 0usize;
        for _ in 0..t {
            if rest.is_empty() {
                break;
            }
            let take = (per * chunk_len).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let base = chunk_base;
            chunk_base += per;
            let f = &f;
            s.spawn(move || {
                run_as_worker(|| {
                    for (i, chunk) in head.chunks_mut(chunk_len).enumerate() {
                        f(base + i, chunk);
                    }
                })
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_for_visits_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        par_for(1000, 100, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_small_runs_sequentially() {
        let count = AtomicUsize::new(0);
        par_for(3, 1, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn par_chunks_mut_covers_all_chunks() {
        let mut data = vec![0u32; 1037];
        par_chunks_mut(&mut data, 100, 100, |i, chunk| {
            for v in chunk.iter_mut() {
                *v = i as u32 + 1;
            }
        });
        for (j, &v) in data.iter().enumerate() {
            assert_eq!(v, (j / 100) as u32 + 1, "element {j}");
        }
    }

    #[test]
    fn results_independent_of_thread_count() {
        let run = |t: usize| {
            set_threads(t);
            let mut data = vec![0f32; 4096];
            par_chunks_mut(&mut data, 64, 100, |i, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = (i * 64 + j) as f32 * 0.5;
                }
            });
            set_threads(default());
            data
        };
        fn default() -> usize {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn nested_parallelism_runs_sequentially() {
        let orig = threads();
        set_threads(4);
        let outer = AtomicUsize::new(0);
        par_for(8, 4096, |_| {
            assert!(in_worker(), "worker flag set inside spawned closure");
            // The nested call must degrade to a sequential loop but
            // still cover every index exactly once.
            let inner = AtomicUsize::new(0);
            par_for(100, 4096, |_| {
                inner.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(inner.load(Ordering::Relaxed), 100);
            outer.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(outer.load(Ordering::Relaxed), 8);
        assert!(!in_worker(), "flag cleared after the scope ends");
        set_threads(orig);
    }

    #[test]
    fn threads_settable() {
        let orig = threads();
        set_threads(2);
        assert_eq!(threads(), 2);
        set_threads(orig);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threads_rejected() {
        set_threads(0);
    }
}
