//! The fully-connected classification head (`fc` in Table 2).
//!
//! Runs on the PS in `f32`; the paper never offloads it. Input is the
//! pooled feature vector `(N, C, 1, 1)`, weights are `(out, in)` row
//! major, bias is per output. Table 2's 26.00 kB comes from
//! 64·100 weights + 100 biases at 4 bytes.

use crate::{Scalar, Shape4, Tensor};

/// Scalar-generic `y = W·x + b` — the classification head in the PL's
/// number system. Dot products run at accumulator precision
/// ([`Scalar::Acc`]) with the bias injected before the single
/// truncation, matching a DSP48 cascade; over `f32` this reduces to
/// [`fc_forward`] exactly.
pub fn fc_forward_s<S: Scalar>(x: &Tensor<S>, w: &[S], b: &[S], out_features: usize) -> Tensor<S> {
    let s = x.shape();
    let in_features = s.item();
    assert_eq!(
        w.len(),
        out_features * in_features,
        "weight matrix must be out×in = {out_features}×{in_features}"
    );
    assert_eq!(b.len(), out_features, "bias length");
    let mut out = Tensor::<S>::zeros(Shape4::new(s.n, out_features, 1, 1));
    for n in 0..s.n {
        let xv = x.item(n);
        let ov = out.item_mut(n);
        for (o, ov_o) in ov.iter_mut().enumerate() {
            let row = &w[o * in_features..(o + 1) * in_features];
            let mut acc = S::acc_zero();
            for (&wv, &xvv) in row.iter().zip(xv) {
                acc = S::mac(acc, wv, xvv);
            }
            acc = S::acc_add(acc, b[o]);
            *ov_o = S::acc_finish(acc);
        }
    }
    out
}

/// `y = W·x + b` for every batch item.
///
/// Thin wrapper over [`fc_forward_s`] at `S = f32`: the generic kernel's
/// `mac`/`acc_add` chain is literally `acc + w·x` / `(Σ products) + b` in
/// `f32`, so the results are bit-identical to the hand-written float loop
/// this used to duplicate — one iterator-shaped dot product to optimize
/// instead of two.
pub fn fc_forward(x: &Tensor<f32>, w: &[f32], b: &[f32], out_features: usize) -> Tensor<f32> {
    fc_forward_s::<f32>(x, w, b, out_features)
}

/// Backward pass: returns `(grad_x, grad_w, grad_b)`.
pub fn fc_backward(
    gout: &Tensor<f32>,
    x: &Tensor<f32>,
    w: &[f32],
) -> (Tensor<f32>, Vec<f32>, Vec<f32>) {
    let s = x.shape();
    let os = gout.shape();
    let in_features = s.item();
    let out_features = os.item();
    assert_eq!(w.len(), out_features * in_features);
    let mut gx = Tensor::<f32>::zeros(s);
    let mut gw = vec![0.0f32; w.len()];
    let mut gb = vec![0.0f32; out_features];
    for n in 0..s.n {
        let xv = x.item(n);
        let gv = gout.item(n);
        let gxv = gx.item_mut(n);
        for (o, &g) in gv.iter().enumerate() {
            gb[o] += g;
            let row = &w[o * in_features..(o + 1) * in_features];
            let grow = &mut gw[o * in_features..(o + 1) * in_features];
            for i in 0..in_features {
                gxv[i] += row[i] * g;
                grow[i] += xv[i] * g;
            }
        }
    }
    (gx, gw, gb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_known_values() {
        let x = Tensor::from_vec(Shape4::new(1, 2, 1, 1), vec![1.0, 2.0]);
        // W = [[1, 2], [3, 4], [0, -1]], b = [0.5, -0.5, 0]
        let w = vec![1.0, 2.0, 3.0, 4.0, 0.0, -1.0];
        let b = vec![0.5, -0.5, 0.0];
        let y = fc_forward(&x, &w, &b, 3);
        assert_eq!(y.item(0), &[5.5, 10.5, -2.0]);
    }

    #[test]
    fn forward_batched() {
        let x = Tensor::from_vec(Shape4::new(2, 2, 1, 1), vec![1.0, 0.0, 0.0, 1.0]);
        let w = vec![2.0, 3.0];
        let b = vec![1.0];
        let y = fc_forward(&x, &w, &b, 1);
        assert_eq!(y.item(0), &[3.0]);
        assert_eq!(y.item(1), &[4.0]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let x = Tensor::from_vec(
            Shape4::new(2, 3, 1, 1),
            vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6],
        );
        let w: Vec<f32> = (0..12).map(|i| (i as f32 - 6.0) * 0.1).collect();
        let b = vec![0.05, -0.05, 0.1, 0.0];
        let r = Tensor::from_vec(
            Shape4::new(2, 4, 1, 1),
            (0..8).map(|i| ((i * 7) % 5) as f32 * 0.2 - 0.4).collect(),
        );
        let loss = |x: &Tensor<f32>, w: &[f32], b: &[f32]| -> f32 {
            fc_forward(x, w, b, 4)
                .as_slice()
                .iter()
                .zip(r.as_slice())
                .map(|(a, c)| a * c)
                .sum()
        };
        let (gx, gw, gb) = fc_backward(&r, &x, &w);
        let eps = 1e-3;
        for probe in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[probe] -= eps;
            let num = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps);
            assert!((num - gx.as_slice()[probe]).abs() < 1e-3, "gx[{probe}]");
        }
        for probe in 0..w.len() {
            let mut wp = w.clone();
            wp[probe] += eps;
            let mut wm = w.clone();
            wm[probe] -= eps;
            let num = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps);
            assert!((num - gw[probe]).abs() < 1e-3, "gw[{probe}]");
        }
        for probe in 0..b.len() {
            let mut bp = b.clone();
            bp[probe] += eps;
            let mut bm = b.clone();
            bm[probe] -= eps;
            let num = (loss(&x, &w, &bp) - loss(&x, &w, &bm)) / (2.0 * eps);
            assert!((num - gb[probe]).abs() < 1e-3, "gb[{probe}]");
        }
    }

    #[test]
    #[should_panic(expected = "weight matrix")]
    fn shape_mismatch_panics() {
        let x = Tensor::from_vec(Shape4::new(1, 2, 1, 1), vec![1.0, 2.0]);
        let _ = fc_forward(&x, &[1.0; 5], &[0.0; 2], 2);
    }
}
