//! # tensor — NCHW tensors and neural-network kernels for the ODENet stack
//!
//! This crate is the software substrate under both execution domains of the
//! paper's system:
//!
//! * the **PS part** (ARM Cortex-A9 software) runs `f32` kernels;
//! * the **PL part** (the FPGA ODEBlock) runs 32-bit Q20 fixed-point
//!   kernels — simulated bit-exactly via [`qfixed`].
//!
//! Every forward kernel that can be offloaded (3×3 convolution, batch
//! normalization, ReLU, residual/Euler update) is generic over the
//! [`Scalar`] trait so the identical code path serves `f32` and
//! [`qfixed::Q20`]. Backward kernels (training happens offline in float,
//! as in the paper) are `f32`-only.
//!
//! Parallelism is plain data parallelism over disjoint output planes built
//! on `std::thread::scope` (see [`par`]); results are independent of
//! the thread count.
//!
//! ```
//! use tensor::{Tensor, Shape4, conv::{conv2d, Conv2dParams}};
//!
//! let x = Tensor::<f32>::from_fn(Shape4::new(1, 3, 8, 8), |_, c, h, w| {
//!     (c + h + w) as f32 * 0.01
//! });
//! let weight = Tensor::<f32>::from_fn(Shape4::new(4, 3, 3, 3), |o, i, kh, kw| {
//!     ((o + i + kh + kw) % 3) as f32 * 0.1 - 0.1
//! });
//! let y = conv2d(&x, &weight, Conv2dParams::same_3x3());
//! assert_eq!(y.shape(), Shape4::new(1, 4, 8, 8));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bn;
pub mod conv;
pub mod linear;
pub mod ops;
pub mod par;
pub mod pool;
pub mod scalar;
mod shape;
pub mod softmax;
#[allow(clippy::module_inception)]
mod tensor;

pub use scalar::Scalar;
pub use shape::Shape4;
pub use tensor::Tensor;
