//! Batch normalization in the three modes the system needs.
//!
//! * **Batch statistics** (`bn_train_forward` / `bn_backward`): the
//!   training path, `f32`, differentiable.
//! * **Frozen statistics** (`bn_apply`): inference with stored
//!   mean/variance — the standard deployment mode.
//! * **On-the-fly statistics** (`bn_onthefly`): the mode the paper's PL
//!   circuit implements. The FPGA has no batch: it receives one feature
//!   map and computes mean, variance and standard deviation *of that map*
//!   with its multiply-add, divider and square-root units, then applies
//!   the learned scale/shift. Generic over [`Scalar`] so the Q20 path is
//!   bit-exact with the simulated hardware.
//!
//! Normalization is per channel; the on-the-fly mode is per (sample,
//! channel). The operation order of the fixed-point path mirrors the
//! datapath: `σ = sqrt(var + ε)`, `inv = 1/σ` (one divider pass), then
//! `y = γ·((x − μ)·inv) + β` per element.

use crate::{Scalar, Tensor};

/// Default ε, matching common framework defaults.
pub const DEFAULT_EPS: f32 = 1e-5;

/// Per-channel mean and **biased** variance over (N, H, W).
pub fn batch_stats(x: &Tensor<f32>) -> (Vec<f32>, Vec<f32>) {
    let s = x.shape();
    let m = (s.n * s.plane()) as f32;
    let mut mean = vec![0.0f32; s.c];
    let mut var = vec![0.0f32; s.c];
    for c in 0..s.c {
        let mut sum = 0.0f64;
        for n in 0..s.n {
            for &v in x.plane(n, c) {
                sum += v as f64;
            }
        }
        mean[c] = (sum / m as f64) as f32;
        let mut sq = 0.0f64;
        for n in 0..s.n {
            for &v in x.plane(n, c) {
                let d = v as f64 - mean[c] as f64;
                sq += d * d;
            }
        }
        var[c] = (sq / m as f64) as f32;
    }
    (mean, var)
}

/// Apply normalization with externally supplied per-channel statistics.
pub fn bn_apply<S: Scalar>(
    x: &Tensor<S>,
    gamma: &[S],
    beta: &[S],
    mean: &[S],
    var: &[S],
    eps: S,
) -> Tensor<S> {
    let s = x.shape();
    assert_eq!(gamma.len(), s.c, "gamma length");
    assert_eq!(beta.len(), s.c, "beta length");
    assert_eq!(mean.len(), s.c, "mean length");
    assert_eq!(var.len(), s.c, "var length");
    let mut out = Tensor::<S>::zeros(s);
    // The statistics are frozen, so 1/σ is the same for every sample:
    // hoist the divide+sqrt into a per-channel table instead of
    // recomputing it N times (bit-identical — same value, same uses).
    let inv: Vec<S> = var.iter().map(|&v| S::ONE.div(v.add(eps).sqrt())).collect();
    for n in 0..s.n {
        for c in 0..s.c {
            let (g, b, mu, is) = (gamma[c], beta[c], mean[c], inv[c]);
            let xp = x.plane(n, c);
            for (o, &v) in out.plane_mut(n, c).iter_mut().zip(xp) {
                *o = g.mul(v.sub(mu).mul(is)).add(b);
            }
        }
    }
    out
}

/// The PL mode: statistics computed from each (sample, channel) plane.
///
/// With `S = Q20` this reproduces the hardware datapath bit-for-bit:
/// wide-accumulated sums, one truncating division for the mean, one for
/// the variance, one for the reciprocal of the non-restoring square root.
pub fn bn_onthefly<S: Scalar>(x: &Tensor<S>, gamma: &[S], beta: &[S], eps: S) -> Tensor<S> {
    let s = x.shape();
    assert_eq!(gamma.len(), s.c, "gamma length");
    assert_eq!(beta.len(), s.c, "beta length");
    let mut out = Tensor::<S>::zeros(s);
    let m = S::from_f32(s.plane() as f32);
    for n in 0..s.n {
        for c in 0..s.c {
            let xp = x.plane(n, c);
            // Mean: wide-accumulated sum, one division. This pass cannot
            // fuse with the next — every deviation depends on the final
            // mean (the hardware streams the plane twice for the same
            // reason).
            let mut acc = S::acc_zero();
            for &v in xp {
                acc = S::acc_add(acc, v);
            }
            let mean = S::acc_finish(acc).div(m);
            // Fused variance + deviation pass: accumulate Σd² while
            // materializing d = x − μ into the output plane, so the
            // apply pass below reads the (cache-hot) deviations instead
            // of re-walking x and re-subtracting. Operation-for-operation
            // identical to the separate passes — `d` is computed once and
            // used for both the square and the scale — so the result is
            // bit-identical (pinned by `fused_pass_matches_two_pass_*`).
            let op = out.plane_mut(n, c);
            let mut acc = S::acc_zero();
            for (o, &v) in op.iter_mut().zip(xp) {
                let d = v.sub(mean);
                acc = S::mac(acc, d, d);
                *o = d;
            }
            let var = S::acc_finish(acc).div(m);
            let inv = S::ONE.div(var.add(eps).sqrt());
            let (g, b) = (gamma[c], beta[c]);
            for o in op.iter_mut() {
                *o = g.mul(o.mul(inv)).add(b);
            }
        }
    }
    out
}

/// Cache produced by the training forward pass, consumed by
/// [`bn_backward`].
#[derive(Clone, Debug)]
pub struct BnCache {
    /// Normalized activations x̂.
    pub xhat: Tensor<f32>,
    /// Per-channel 1/σ.
    pub invstd: Vec<f32>,
    /// Per-channel batch mean.
    pub mean: Vec<f32>,
    /// Per-channel biased batch variance.
    pub var: Vec<f32>,
}

/// Training-mode forward: batch statistics, returns output and cache.
pub fn bn_train_forward(
    x: &Tensor<f32>,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
) -> (Tensor<f32>, BnCache) {
    let s = x.shape();
    let (mean, var) = batch_stats(x);
    let invstd: Vec<f32> = var.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
    let mut xhat = Tensor::<f32>::zeros(s);
    let mut out = Tensor::<f32>::zeros(s);
    for n in 0..s.n {
        for c in 0..s.c {
            let xp = x.plane(n, c);
            let (mu, is, g, b) = (mean[c], invstd[c], gamma[c], beta[c]);
            let xh = xhat.plane_mut(n, c);
            for (j, &v) in xp.iter().enumerate() {
                xh[j] = (v - mu) * is;
            }
            let op = out.plane_mut(n, c);
            for (j, &v) in xh.iter().enumerate() {
                op[j] = g * v + b;
            }
        }
    }
    (
        out,
        BnCache {
            xhat,
            invstd,
            mean,
            var,
        },
    )
}

/// Gradients of the batch-statistics forward pass.
///
/// Returns `(grad_x, grad_gamma, grad_beta)` using the standard closed
/// form: with M elements per channel,
/// `dx = γ·invstd/M · (M·dy − Σdy − x̂·Σ(dy·x̂))`.
pub fn bn_backward(
    gout: &Tensor<f32>,
    cache: &BnCache,
    gamma: &[f32],
) -> (Tensor<f32>, Vec<f32>, Vec<f32>) {
    let s = gout.shape();
    assert_eq!(s, cache.xhat.shape(), "cache shape mismatch");
    let m = (s.n * s.plane()) as f32;
    let mut dgamma = vec![0.0f32; s.c];
    let mut dbeta = vec![0.0f32; s.c];
    for c in 0..s.c {
        let mut dg = 0.0f64;
        let mut db = 0.0f64;
        for n in 0..s.n {
            let gp = gout.plane(n, c);
            let xp = cache.xhat.plane(n, c);
            for (g, xh) in gp.iter().zip(xp) {
                dg += (*g * *xh) as f64;
                db += *g as f64;
            }
        }
        dgamma[c] = dg as f32;
        dbeta[c] = db as f32;
    }
    let mut gx = Tensor::<f32>::zeros(s);
    for n in 0..s.n {
        for c in 0..s.c {
            let gp = gout.plane(n, c);
            let xp = cache.xhat.plane(n, c);
            let coeff = gamma[c] * cache.invstd[c] / m;
            let gxp = gx.plane_mut(n, c);
            for j in 0..gp.len() {
                gxp[j] = coeff * (m * gp[j] - dbeta[c] - xp[j] * dgamma[c]);
            }
        }
    }
    (gx, dgamma, dbeta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape4;
    use qfixed::Q20;

    fn probe(shape: Shape4, seed: f32) -> Tensor<f32> {
        let mut k = seed;
        Tensor::from_fn(shape, |_, _, _, _| {
            k = (k * 16807.0) % 31.0 + 0.123;
            k / 7.0 - 2.0
        })
    }

    #[test]
    fn batch_stats_constant_input() {
        let x = Tensor::<f32>::full(Shape4::new(2, 3, 4, 4), 5.0);
        let (m, v) = batch_stats(&x);
        assert_eq!(m, vec![5.0; 3]);
        assert_eq!(v, vec![0.0; 3]);
    }

    #[test]
    fn batch_stats_known_values() {
        // Channel 0 holds 0..8 over a 2-batch of 2x2 planes: mean 3.5.
        let x = Tensor::<f32>::from_fn(Shape4::new(2, 1, 2, 2), |n, _, h, w| {
            (n * 4 + h * 2 + w) as f32
        });
        let (m, v) = batch_stats(&x);
        assert_eq!(m[0], 3.5);
        assert!((v[0] - 5.25).abs() < 1e-6);
    }

    #[test]
    fn train_forward_normalizes() {
        let s = Shape4::new(4, 3, 5, 5);
        let x = probe(s, 3.0);
        let gamma = vec![1.0f32; 3];
        let beta = vec![0.0f32; 3];
        let (y, _) = bn_train_forward(&x, &gamma, &beta, DEFAULT_EPS);
        let (m, v) = batch_stats(&y);
        for c in 0..3 {
            assert!(m[c].abs() < 1e-4, "mean[{c}] = {}", m[c]);
            assert!((v[c] - 1.0).abs() < 1e-3, "var[{c}] = {}", v[c]);
        }
    }

    #[test]
    fn gamma_beta_scale_shift() {
        let s = Shape4::new(2, 2, 3, 3);
        let x = probe(s, 5.0);
        let (y0, _) = bn_train_forward(&x, &[1.0, 1.0], &[0.0, 0.0], DEFAULT_EPS);
        let (y1, _) = bn_train_forward(&x, &[2.0, 3.0], &[1.0, -1.0], DEFAULT_EPS);
        for n in 0..2 {
            for (j, (&a, &b)) in y0.plane(n, 0).iter().zip(y1.plane(n, 0)).enumerate() {
                assert!((b - (2.0 * a + 1.0)).abs() < 1e-5, "n={n} j={j}");
            }
            for (&a, &b) in y0.plane(n, 1).iter().zip(y1.plane(n, 1)) {
                assert!((b - (3.0 * a - 1.0)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn onthefly_single_sample_matches_batch_of_one() {
        let s = Shape4::new(1, 2, 4, 4);
        let x = probe(s, 7.0);
        let gamma = [1.5f32, 0.5];
        let beta = [0.25f32, -0.25];
        let (batch, _) = bn_train_forward(&x, &gamma, &beta, DEFAULT_EPS);
        let fly = bn_onthefly(&x, &gamma, &beta, DEFAULT_EPS);
        assert!(batch.max_abs_diff(&fly) < 1e-4);
    }

    #[test]
    fn onthefly_q20_close_to_f32() {
        let s = Shape4::new(1, 4, 8, 8);
        let x = probe(s, 11.0);
        let gamma = vec![1.0f32; 4];
        let beta = vec![0.0f32; 4];
        let yf = bn_onthefly(&x, &gamma, &beta, DEFAULT_EPS);
        let xq: Tensor<Q20> = Tensor::from_f32_tensor(&x);
        let gq: Vec<Q20> = gamma.iter().map(|&g| Q20::from_f32(g)).collect();
        let bq: Vec<Q20> = beta.iter().map(|&b| Q20::from_f32(b)).collect();
        let yq = bn_onthefly(&xq, &gq, &bq, Q20::from_f32(DEFAULT_EPS));
        // Divider + sqrt truncation noise stays in the 1e-3 band for
        // activations of O(1).
        assert!(yf.max_abs_diff(&yq.to_f32()) < 5e-3);
    }

    #[test]
    fn apply_with_frozen_stats() {
        let s = Shape4::new(2, 1, 2, 2);
        let x = Tensor::<f32>::from_fn(s, |n, _, h, w| (n * 4 + h * 2 + w) as f32);
        let y = bn_apply(&x, &[2.0], &[1.0], &[3.5], &[5.25], 0.0);
        // (0 - 3.5)/sqrt(5.25) * 2 + 1
        let expect = (0.0f32 - 3.5) / 5.25f32.sqrt() * 2.0 + 1.0;
        assert!((y.get(0, 0, 0, 0) - expect).abs() < 1e-5);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let s = Shape4::new(2, 2, 3, 3);
        let x = probe(s, 13.0);
        let gamma = [1.3f32, 0.7];
        let beta = [0.1f32, -0.2];
        let r = probe(s, 17.0); // loss = sum(y * r)
        let loss = |x: &Tensor<f32>, gamma: &[f32], beta: &[f32]| -> f32 {
            let (y, _) = bn_train_forward(x, gamma, beta, DEFAULT_EPS);
            y.as_slice()
                .iter()
                .zip(r.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let (_, cache) = bn_train_forward(&x, &gamma, &beta, DEFAULT_EPS);
        let (gx, dgamma, dbeta) = bn_backward(&r, &cache, &gamma);
        let eps = 1e-3f32;
        for probe_i in [0usize, 5, 17, s.len() - 1] {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe_i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[probe_i] -= eps;
            let num = (loss(&xp, &gamma, &beta) - loss(&xm, &gamma, &beta)) / (2.0 * eps);
            assert!(
                (num - gx.as_slice()[probe_i]).abs() < 2e-2,
                "gx[{probe_i}]: analytic {} numeric {num}",
                gx.as_slice()[probe_i]
            );
        }
        for c in 0..2 {
            let mut gp = gamma;
            gp[c] += eps;
            let mut gm = gamma;
            gm[c] -= eps;
            let num = (loss(&x, &gp, &beta) - loss(&x, &gm, &beta)) / (2.0 * eps);
            assert!((num - dgamma[c]).abs() < 2e-2, "dgamma[{c}]");
            let mut bp = beta;
            bp[c] += eps;
            let mut bm = beta;
            bm[c] -= eps;
            let num = (loss(&x, &gamma, &bp) - loss(&x, &gamma, &bm)) / (2.0 * eps);
            assert!((num - dbeta[c]).abs() < 2e-2, "dbeta[{c}]");
        }
    }

    /// The original two-pass on-the-fly kernel (separate variance and
    /// apply walks over x), kept as the oracle for the fused pass.
    fn onthefly_two_pass<S: Scalar>(x: &Tensor<S>, gamma: &[S], beta: &[S], eps: S) -> Tensor<S> {
        let s = x.shape();
        let mut out = Tensor::<S>::zeros(s);
        let m = S::from_f32(s.plane() as f32);
        for n in 0..s.n {
            for c in 0..s.c {
                let xp = x.plane(n, c);
                let mut acc = S::acc_zero();
                for &v in xp {
                    acc = S::acc_add(acc, v);
                }
                let mean = S::acc_finish(acc).div(m);
                let mut acc = S::acc_zero();
                for &v in xp {
                    let d = v.sub(mean);
                    acc = S::mac(acc, d, d);
                }
                let var = S::acc_finish(acc).div(m);
                let inv = S::ONE.div(var.add(eps).sqrt());
                let (g, b) = (gamma[c], beta[c]);
                for (o, &v) in out.plane_mut(n, c).iter_mut().zip(xp) {
                    *o = g.mul(v.sub(mean).mul(inv)).add(b);
                }
            }
        }
        out
    }

    #[test]
    fn fused_pass_matches_two_pass_f32() {
        let s = Shape4::new(3, 4, 8, 8);
        let x = probe(s, 19.0);
        let gamma = [1.5f32, 0.5, -0.75, 2.0];
        let beta = [0.25f32, -0.25, 0.0, 1.0];
        let fused = bn_onthefly(&x, &gamma, &beta, DEFAULT_EPS);
        let two_pass = onthefly_two_pass(&x, &gamma, &beta, DEFAULT_EPS);
        assert_eq!(fused.as_slice(), two_pass.as_slice(), "bit-identical");
    }

    #[test]
    fn fused_pass_matches_two_pass_q20() {
        let s = Shape4::new(2, 3, 6, 6);
        let x = probe(s, 23.0);
        let xq: Tensor<Q20> = Tensor::from_f32_tensor(&x);
        let gq: Vec<Q20> = [1.25f32, 0.5, 2.0]
            .iter()
            .map(|&g| Q20::from_f32(g))
            .collect();
        let bq: Vec<Q20> = [0.5f32, -0.5, 0.0]
            .iter()
            .map(|&b| Q20::from_f32(b))
            .collect();
        let eps = Q20::from_f32(DEFAULT_EPS);
        let fused = bn_onthefly(&xq, &gq, &bq, eps);
        let two_pass = onthefly_two_pass(&xq, &gq, &bq, eps);
        assert_eq!(fused.as_slice(), two_pass.as_slice(), "bit-identical");
    }

    #[test]
    fn apply_hoisted_inv_matches_per_sample_recompute() {
        // bn_apply's per-channel 1/σ table must not change numerics vs
        // recomputing inside the sample loop.
        let s = Shape4::new(4, 2, 5, 5);
        let x = probe(s, 29.0);
        let (gamma, beta) = ([1.1f32, 0.9], [0.2f32, -0.3]);
        let (mean, var) = ([0.5f32, -0.25], [1.5f32, 0.75]);
        let y = bn_apply(&x, &gamma, &beta, &mean, &var, DEFAULT_EPS);
        let mut expect = Tensor::<f32>::zeros(s);
        for n in 0..s.n {
            for c in 0..s.c {
                let inv = 1.0 / (var[c] + DEFAULT_EPS).sqrt();
                for (o, &v) in expect.plane_mut(n, c).iter_mut().zip(x.plane(n, c)) {
                    *o = gamma[c] * ((v - mean[c]) * inv) + beta[c];
                }
            }
        }
        assert_eq!(y.as_slice(), expect.as_slice(), "bit-identical");
    }

    #[test]
    fn zero_variance_plane_is_finite() {
        // A constant plane must not produce NaN/inf thanks to ε.
        let x = Tensor::<f32>::full(Shape4::new(1, 1, 4, 4), 2.0);
        let y = bn_onthefly(&x, &[1.0], &[0.5], DEFAULT_EPS);
        for &v in y.as_slice() {
            assert!(v.is_finite());
            assert!((v - 0.5).abs() < 1e-4, "normalized constant = beta");
        }
    }
}
