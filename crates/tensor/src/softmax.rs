//! Softmax and cross-entropy (the classification head's activation and
//! the training loss). PS-side, `f32` only.

#[cfg(test)]
use crate::Shape4;
use crate::Tensor;

/// Numerically-stable softmax over the channel dimension of `(N, K, 1, 1)`.
pub fn softmax(logits: &Tensor<f32>) -> Tensor<f32> {
    let s = logits.shape();
    assert_eq!(s.plane(), 1, "softmax expects (N, K, 1, 1) logits");
    let k = s.item().max(1);
    let mut out = Tensor::<f32>::zeros(s);
    // Flat slice iteration — one exact chunk per batch item, no indexed
    // loads for the bounds checker to re-prove. The normalization stays
    // a per-element division (not a multiply by the reciprocal), which
    // keeps results bit-identical to the original kernel.
    for (lv, ov) in logits
        .as_slice()
        .chunks_exact(k)
        .zip(out.as_mut_slice().chunks_exact_mut(k))
    {
        let max = lv.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for (o, &l) in ov.iter_mut().zip(lv) {
            *o = (l - max).exp();
            sum += *o;
        }
        for o in ov.iter_mut() {
            *o /= sum;
        }
    }
    out
}

/// Mean cross-entropy of `logits` against integer `labels`, together with
/// the gradient w.r.t. the logits (`(softmax − onehot)/N`).
pub fn cross_entropy(logits: &Tensor<f32>, labels: &[usize]) -> (f32, Tensor<f32>) {
    let s = logits.shape();
    assert_eq!(labels.len(), s.n, "one label per batch item");
    let probs = softmax(logits);
    let mut grad = probs.clone();
    let mut loss = 0.0f64;
    let k = s.item();
    for (n, &label) in labels.iter().enumerate() {
        assert!(label < k, "label {label} out of range for {k} classes");
        let p = probs.item(n)[label].max(1e-30);
        loss -= (p as f64).ln();
        let gv = grad.item_mut(n);
        gv[label] -= 1.0;
        for g in gv.iter_mut() {
            *g /= s.n as f32;
        }
    }
    ((loss / s.n as f64) as f32, grad)
}

/// Index of the maximum logit for every batch item.
pub fn argmax(logits: &Tensor<f32>) -> Vec<usize> {
    let s = logits.shape();
    (0..s.n)
        .map(|n| {
            logits
                .item(n)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

/// Fraction of items whose argmax equals the label.
pub fn accuracy(logits: &Tensor<f32>, labels: &[usize]) -> f32 {
    let preds = argmax(logits);
    let hits = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    hits as f32 / labels.len().max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits(values: &[f32]) -> Tensor<f32> {
        Tensor::from_vec(Shape4::new(1, values.len(), 1, 1), values.to_vec())
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&logits(&[1.0, 2.0, 3.0]));
        let sum: f32 = p.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p.get(0, 2, 0, 0) > p.get(0, 1, 0, 0));
    }

    #[test]
    fn softmax_shift_invariant() {
        let a = softmax(&logits(&[1.0, 2.0, 3.0]));
        let b = softmax(&logits(&[101.0, 102.0, 103.0]));
        assert!(a.max_abs_diff(&b) < 1e-6);
    }

    #[test]
    fn softmax_handles_large_logits() {
        let p = softmax(&logits(&[1000.0, -1000.0]));
        assert!(p.get(0, 0, 0, 0) > 0.999);
        assert!(p.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cross_entropy_uniform_is_log_k() {
        let (loss, _) = cross_entropy(&logits(&[0.0, 0.0, 0.0, 0.0]), &[2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_confident_correct_is_small() {
        let (loss, _) = cross_entropy(&logits(&[10.0, -10.0]), &[0]);
        assert!(loss < 1e-3);
        let (loss_wrong, _) = cross_entropy(&logits(&[10.0, -10.0]), &[1]);
        assert!(loss_wrong > 10.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let l = Tensor::from_vec(
            Shape4::new(2, 3, 1, 1),
            vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0],
        );
        let labels = [2usize, 0];
        let (_, grad) = cross_entropy(&l, &labels);
        let eps = 1e-3;
        for probe in 0..l.len() {
            let mut lp = l.clone();
            lp.as_mut_slice()[probe] += eps;
            let mut lm = l.clone();
            lm.as_mut_slice()[probe] -= eps;
            let (fp, _) = cross_entropy(&lp, &labels);
            let (fm, _) = cross_entropy(&lm, &labels);
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - grad.as_slice()[probe]).abs() < 1e-3,
                "grad[{probe}]: analytic {} vs numeric {num}",
                grad.as_slice()[probe]
            );
        }
    }

    #[test]
    fn gradient_sums_to_zero_per_item() {
        let l = logits(&[0.3, -0.7, 1.1]);
        let (_, grad) = cross_entropy(&l, &[1]);
        let sum: f32 = grad.as_slice().iter().sum();
        assert!(sum.abs() < 1e-6, "softmax-CE gradient rows sum to zero");
    }

    #[test]
    fn argmax_and_accuracy() {
        let l = Tensor::from_vec(Shape4::new(2, 3, 1, 1), vec![0.1, 0.9, 0.0, 0.8, 0.1, 0.1]);
        assert_eq!(argmax(&l), vec![1, 0]);
        assert_eq!(accuracy(&l, &[1, 0]), 1.0);
        assert_eq!(accuracy(&l, &[1, 2]), 0.5);
    }
}
