//! Element-wise and structural operations: ReLU, residual/Euler updates,
//! and the time-channel concatenation of the ODE block.

#[cfg(test)]
use crate::Shape4;
use crate::{Scalar, Tensor};

/// ReLU forward (generic; on the PL this is a sign-bit multiplexer).
pub fn relu<S: Scalar>(x: &Tensor<S>) -> Tensor<S> {
    x.map(|v| v.relu())
}

/// ReLU backward: passes `gout` where the **forward input** was positive.
pub fn relu_backward(gout: &Tensor<f32>, x: &Tensor<f32>) -> Tensor<f32> {
    assert_eq!(gout.shape(), x.shape(), "relu_backward shape mismatch");
    gout.zip_map(x, |g, v| if v > 0.0 { g } else { 0.0 })
}

/// Residual add: `z + f` (the ResNet shortcut, Euler step with h = 1).
pub fn residual_add<S: Scalar>(z: &Tensor<S>, f: &Tensor<S>) -> Tensor<S> {
    z.zip_map(f, |a, b| a.add(b))
}

/// Euler update: `z + h·f` — one step of the paper's ODE solver.
pub fn euler_step<S: Scalar>(z: &Tensor<S>, f: &Tensor<S>, h: S) -> Tensor<S> {
    z.zip_map(f, |a, b| a.add(h.mul(b)))
}

/// `a + s·b` for arbitrary scalar `s` (used by the RK solvers).
pub fn axpy<S: Scalar>(a: &Tensor<S>, s: S, b: &Tensor<S>) -> Tensor<S> {
    a.zip_map(b, |x, y| x.add(s.mul(y)))
}

/// Scale in place: `x *= s`.
pub fn scale_inplace<S: Scalar>(x: &mut Tensor<S>, s: S) {
    x.map_inplace(|v| v.mul(s));
}

/// Prepend a constant plane holding the solver time `t` to every batch
/// item: `(N, C, H, W) → (N, C+1, H, W)` with channel 0 equal to `t`.
///
/// This is the `ConcatConv2d` trick of the reference Neural-ODE
/// implementation; it is what makes the ODE-block convolutions have
/// `C+1` input channels and is the reading under which the paper's
/// Table 2 parameter sizes are exact (see DESIGN.md §4).
pub fn concat_time_channel<S: Scalar>(x: &Tensor<S>, t: S) -> Tensor<S> {
    let s = x.shape();
    let os = s.with_channels(s.c + 1);
    let mut out = Tensor::<S>::zeros(os);
    for n in 0..s.n {
        out.plane_mut(n, 0).fill(t);
        for c in 0..s.c {
            out.plane_mut(n, c + 1).copy_from_slice(x.plane(n, c));
        }
    }
    out
}

/// Inverse of [`concat_time_channel`] for the backward pass: drops the
/// gradient of the constant t plane and returns the data-channel gradient.
pub fn split_time_channel_grad(g: &Tensor<f32>) -> Tensor<f32> {
    let s = g.shape();
    assert!(s.c >= 2, "gradient must include the time channel");
    let os = s.with_channels(s.c - 1);
    let mut out = Tensor::<f32>::zeros(os);
    for n in 0..s.n {
        for c in 0..os.c {
            out.plane_mut(n, c).copy_from_slice(g.plane(n, c + 1));
        }
    }
    out
}

/// Sum of squares of all elements (L2 regularization helper).
pub fn sum_squares(x: &Tensor<f32>) -> f64 {
    x.as_slice().iter().map(|&v| (v as f64) * (v as f64)).sum()
}

/// Mean of all elements.
pub fn mean(x: &Tensor<f32>) -> f32 {
    if x.is_empty() {
        return 0.0;
    }
    (x.as_slice().iter().map(|&v| v as f64).sum::<f64>() / x.len() as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfixed::Q20;

    fn t(values: &[f32]) -> Tensor<f32> {
        Tensor::from_vec(Shape4::new(1, 1, 1, values.len()), values.to_vec())
    }

    #[test]
    fn relu_clamps_negatives() {
        let y = relu(&t(&[-1.0, 0.0, 2.5]));
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.5]);
    }

    #[test]
    fn relu_backward_masks() {
        let g = relu_backward(&t(&[1.0, 1.0, 1.0]), &t(&[-1.0, 0.0, 2.0]));
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn euler_step_matches_formula() {
        let z = t(&[1.0, 2.0]);
        let f = t(&[0.5, -0.5]);
        let y = euler_step(&z, &f, 0.5);
        assert_eq!(y.as_slice(), &[1.25, 1.75]);
        let r = residual_add(&z, &f);
        assert_eq!(r.as_slice(), &[1.5, 1.5]);
    }

    #[test]
    fn euler_step_q20_exact_on_dyadics() {
        let z: Tensor<Q20> = Tensor::from_f32_tensor(&t(&[1.0, -0.25]));
        let f: Tensor<Q20> = Tensor::from_f32_tensor(&t(&[0.5, 0.125]));
        let y = euler_step(&z, &f, Q20::from_f32(0.25));
        assert_eq!(y.to_f32().as_slice(), &[1.125, -0.21875]);
    }

    #[test]
    fn concat_prepends_t_plane() {
        let x = Tensor::<f32>::from_fn(Shape4::new(2, 2, 2, 2), |n, c, _, _| (n * 2 + c) as f32);
        let y = concat_time_channel(&x, 9.0);
        assert_eq!(y.shape(), Shape4::new(2, 3, 2, 2));
        assert_eq!(y.plane(0, 0), &[9.0; 4]);
        assert_eq!(y.plane(1, 0), &[9.0; 4]);
        assert_eq!(y.plane(0, 1), x.plane(0, 0));
        assert_eq!(y.plane(1, 2), x.plane(1, 1));
    }

    #[test]
    fn split_undoes_concat() {
        let x = Tensor::<f32>::from_fn(Shape4::new(1, 3, 2, 2), |_, c, h, w| {
            (c * 4 + h * 2 + w) as f32
        });
        let cat = concat_time_channel(&x, 0.5);
        let back = split_time_channel_grad(&cat);
        assert_eq!(back.as_slice(), x.as_slice());
    }

    #[test]
    fn helpers() {
        assert_eq!(sum_squares(&t(&[3.0, 4.0])), 25.0);
        assert_eq!(mean(&t(&[1.0, 2.0, 3.0])), 2.0);
        let mut v = t(&[2.0, -4.0]);
        scale_inplace(&mut v, 0.5);
        assert_eq!(v.as_slice(), &[1.0, -2.0]);
        let a = axpy(&t(&[1.0]), 2.0, &t(&[3.0]));
        assert_eq!(a.as_slice(), &[7.0]);
    }
}
