//! The owning NCHW tensor.

use crate::{Scalar, Shape4};
use core::fmt;

/// A dense, row-major NCHW tensor over a [`Scalar`] element type.
///
/// This is deliberately a small, concrete container — no views, no
/// broadcasting, no autograd. The kernels in this crate read and write
/// whole planes (`&[T]` slices), which both keeps bounds checks out of hot
/// loops and maps one-to-one onto the per-channel BRAM banks of the PL
/// implementation.
#[derive(Clone, PartialEq)]
pub struct Tensor<T> {
    shape: Shape4,
    data: Vec<T>,
}

impl<T: Scalar> Tensor<T> {
    /// A zero-filled tensor.
    pub fn zeros(shape: Shape4) -> Self {
        Tensor {
            shape,
            data: vec![T::ZERO; shape.len()],
        }
    }

    /// A tensor filled with `v`.
    pub fn full(shape: Shape4, v: T) -> Self {
        Tensor {
            shape,
            data: vec![v; shape.len()],
        }
    }

    /// Wrap an existing buffer; `data.len()` must equal `shape.len()`.
    pub fn from_vec(shape: Shape4, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer length {} does not match shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// Build element-wise from a function of the NCHW index.
    pub fn from_fn(shape: Shape4, mut f: impl FnMut(usize, usize, usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for n in 0..shape.n {
            for c in 0..shape.c {
                for h in 0..shape.h {
                    for w in 0..shape.w {
                        data.push(f(n, c, h, w));
                    }
                }
            }
        }
        Tensor { shape, data }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read one element.
    #[inline]
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> T {
        self.data[self.shape.idx(n, c, h, w)]
    }

    /// Write one element.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: T) {
        let i = self.shape.idx(n, c, h, w);
        self.data[i] = v;
    }

    /// The whole buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The whole buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// One (n, c) spatial plane as a slice of length `h·w`.
    #[inline]
    pub fn plane(&self, n: usize, c: usize) -> &[T] {
        let p = self.shape.plane();
        let start = (n * self.shape.c + c) * p;
        &self.data[start..start + p]
    }

    /// One (n, c) spatial plane, mutably.
    #[inline]
    pub fn plane_mut(&mut self, n: usize, c: usize) -> &mut [T] {
        let p = self.shape.plane();
        let start = (n * self.shape.c + c) * p;
        &mut self.data[start..start + p]
    }

    /// All channels of batch item `n` as one contiguous slice.
    #[inline]
    pub fn item(&self, n: usize) -> &[T] {
        let sz = self.shape.item();
        &self.data[n * sz..(n + 1) * sz]
    }

    /// All channels of batch item `n`, mutably.
    #[inline]
    pub fn item_mut(&mut self, n: usize) -> &mut [T] {
        let sz = self.shape.item();
        &mut self.data[n * sz..(n + 1) * sz]
    }

    /// Copy batch item `n` into a new single-item tensor.
    pub fn item_tensor(&self, n: usize) -> Tensor<T> {
        Tensor::from_vec(self.shape.with_batch(1), self.item(n).to_vec())
    }

    /// Element-wise map into a possibly different scalar type.
    pub fn map<U: Scalar>(&self, f: impl Fn(T) -> U) -> Tensor<U> {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise in-place update.
    pub fn map_inplace(&mut self, f: impl Fn(T) -> T) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise combination of two same-shaped tensors.
    pub fn zip_map(&self, rhs: &Tensor<T>, f: impl Fn(T, T) -> T) -> Tensor<T> {
        assert_eq!(self.shape, rhs.shape, "shape mismatch in zip_map");
        Tensor {
            shape: self.shape,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += rhs` element-wise.
    pub fn add_assign(&mut self, rhs: &Tensor<T>) {
        assert_eq!(self.shape, rhs.shape, "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a = a.add(*b);
        }
    }

    /// Convert every element to `f32`.
    pub fn to_f32(&self) -> Tensor<f32> {
        self.map(|v| v.to_f32())
    }

    /// Quantize an `f32` tensor into this scalar type (identity for `f32`).
    pub fn from_f32_tensor(src: &Tensor<f32>) -> Tensor<T> {
        src.map(|v| T::from_f32(v))
    }

    /// Largest absolute difference against another tensor, in f32.
    pub fn max_abs_diff(&self, rhs: &Tensor<T>) -> f32 {
        assert_eq!(self.shape, rhs.shape, "shape mismatch in max_abs_diff");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| (a.to_f32() - b.to_f32()).abs())
            .fold(0.0f32, f32::max)
    }
}

impl<T: Scalar> fmt::Debug for Tensor<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}; {} elems]", self.shape, self.data.len())?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfixed::Q20;

    #[test]
    fn zeros_and_full() {
        let t = Tensor::<f32>::zeros(Shape4::new(1, 2, 3, 3));
        assert_eq!(t.len(), 18);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
        let u = Tensor::<f32>::full(Shape4::new(1, 1, 2, 2), 7.0);
        assert!(u.as_slice().iter().all(|&v| v == 7.0));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::<f32>::zeros(Shape4::new(2, 3, 4, 5));
        t.set(1, 2, 3, 4, 42.0);
        assert_eq!(t.get(1, 2, 3, 4), 42.0);
        assert_eq!(t.get(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn from_fn_layout() {
        let t = Tensor::<f32>::from_fn(Shape4::new(1, 2, 2, 2), |_, c, h, w| {
            (c * 100 + h * 10 + w) as f32
        });
        assert_eq!(t.as_slice(), &[0., 1., 10., 11., 100., 101., 110., 111.]);
    }

    #[test]
    fn planes_are_disjoint_views() {
        let t = Tensor::<f32>::from_fn(Shape4::new(2, 2, 2, 2), |n, c, _, _| (n * 2 + c) as f32);
        assert_eq!(t.plane(0, 1), &[1.0; 4]);
        assert_eq!(t.plane(1, 0), &[2.0; 4]);
        assert_eq!(t.item(1), &[2.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn quantize_roundtrip() {
        let t = Tensor::<f32>::from_fn(Shape4::new(1, 1, 2, 2), |_, _, h, w| {
            (h as f32) * 0.5 - (w as f32) * 0.25
        });
        let q: Tensor<Q20> = Tensor::from_f32_tensor(&t);
        let back = q.to_f32();
        assert_eq!(
            back.as_slice(),
            t.as_slice(),
            "exact dyadic values round-trip"
        );
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Tensor::<f32>::full(Shape4::new(1, 1, 1, 3), 1.0);
        let mut b = a.clone();
        b.set(0, 0, 0, 2, 1.5);
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_checks_len() {
        let _ = Tensor::<f32>::from_vec(Shape4::new(1, 1, 2, 2), vec![0.0; 3]);
    }

    #[test]
    fn add_assign_elementwise() {
        let mut a = Tensor::<f32>::full(Shape4::new(1, 1, 1, 2), 1.0);
        let b = Tensor::<f32>::full(Shape4::new(1, 1, 1, 2), 2.5);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[3.5, 3.5]);
    }
}
