//! Per-stage precision policies — the mixed-width generalization of the
//! single global [`PlFormat`].
//!
//! Since the precision-polymorphic engine (PR 2) the PL word format was
//! one builder argument applied to every offloaded stage. That leaves
//! the paper's footnote-2 observation half-exploited: the stages have
//! very different dynamic ranges and BRAM footprints, so a deployment
//! often wants layer1 in a narrow 16-bit format (its envelope is small,
//! its feature buffers are the largest) next to layer3_2 at the paper's
//! Q20. This module owns that vocabulary:
//!
//! * [`Precision`] — the *policy* a caller configures on
//!   [`crate::engine::EngineBuilder::precision`]: one uniform format,
//!   an explicit per-stage table, or [`Precision::Calibrated`], which
//!   measures per-stage activation envelopes on a sample batch
//!   ([`rodenet::calibrate`]) and picks the largest executable `frac`
//!   with a requested integer-bit headroom — the ROADMAP's
//!   "reduced-width accuracy calibration" pass, zero training.
//! * [`StageFormats`] — the *resolved* table: a base format plus
//!   optional per-stage overrides for the three offloadable layers.
//!   Everything width-aware downstream (feasibility, DMA timing, the
//!   partitioner's makespan cost, cluster sharding, the engine's
//!   per-stage circuits) consumes this, so a rack can place layer1 at
//!   Q16 next to layer3_2 at Q20 and every stage is priced at its own
//!   width.
//!
//! ## Calibration model
//!
//! [`Precision::Calibrated`] runs the **float** network forward on the
//! sample and records, per offloadable stage, the max |value| over the
//! stage input, every Euler state, every `f(z, t)` evaluation, and the
//! stage parameters (see [`rodenet::calibrate::stage_ranges`]). The
//! chosen format is the largest-`frac` executable width of the
//! requested `total_bits` whose integer bits cover that envelope plus
//! `headroom_bits` more — headroom absorbs the float-vs-quantized
//! trajectory gap the float proxy cannot see. The pass is
//! deterministic, needs no labels and no training, and is the one
//! place in the planning stack that touches weights and numerics
//! (documented on [`crate::engine::EngineBuilder::plan`]).

use crate::engine::EngineError;
use crate::plan::PlFormat;
use qfixed::QFormat;
use rodenet::calibrate::{stage_ranges, OFFLOADABLE_LAYERS};
use rodenet::{BnMode, LayerName, Network};
use tensor::Tensor;

/// Index of an offloadable layer in the per-stage override table.
fn slot(layer: LayerName) -> Option<usize> {
    OFFLOADABLE_LAYERS.iter().position(|&l| l == layer)
}

/// A resolved per-stage PL word-format table: one base format plus
/// optional overrides for the three offloadable stages. This is what a
/// [`Precision`] policy resolves to and what every width-aware layer
/// of the planning stack consumes ([`crate::plan::PlanRequest`],
/// [`crate::cluster::ClusterRequest`], feasibility, timing, sharding).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageFormats {
    base: PlFormat,
    overrides: [Option<PlFormat>; 3],
}

impl Default for StageFormats {
    fn default() -> Self {
        StageFormats::uniform(PlFormat::Q20)
    }
}

impl From<PlFormat> for StageFormats {
    fn from(format: PlFormat) -> Self {
        StageFormats::uniform(format)
    }
}

impl StageFormats {
    /// Every stage in one format — the pre-policy behavior.
    pub fn uniform(format: PlFormat) -> Self {
        StageFormats {
            base: format,
            overrides: [None; 3],
        }
    }

    /// Override the format of one offloadable stage (layer1, layer2_2
    /// or layer3_2). Panics on a non-offloadable layer — those never
    /// live in a PL circuit, so they have no word format to set.
    pub fn with(mut self, layer: LayerName, format: PlFormat) -> Self {
        let i = slot(layer)
            .unwrap_or_else(|| panic!("{layer} is not offloadable — no PL word format applies"));
        self.overrides[i] = Some(format);
        self
    }

    /// The base format (stages without an override; also the number
    /// system a fully-fixed-point backend would run the whole network
    /// in, which is why that backend requires [`StageFormats::uniform_format`]).
    pub fn base(&self) -> PlFormat {
        self.base
    }

    /// The format `layer` deploys in. Non-offloadable layers report the
    /// base format (they never reach a DMA boundary, so it is only
    /// ever used for display).
    pub fn format_of(&self, layer: LayerName) -> PlFormat {
        slot(layer)
            .and_then(|i| self.overrides[i])
            .unwrap_or(self.base)
    }

    /// `Some(format)` when every stage resolves to the same bit layout
    /// — the policies the single-`S` backends can execute. Formats are
    /// compared by layout ([`PlFormat::same_layout`]), not spelling:
    /// `Q20` next to `Custom(QFormat::new(32, 20))` is still uniform.
    pub fn uniform_format(&self) -> Option<PlFormat> {
        if OFFLOADABLE_LAYERS
            .iter()
            .all(|&l| self.format_of(l).same_layout(&self.base))
        {
            Some(self.base)
        } else {
            None
        }
    }

    /// Storage bytes per value of `layer`'s format.
    ///
    /// # Panics
    ///
    /// On a degenerate format — call [`StageFormats::validate`] first
    /// for a typed error instead (every planning entry point does;
    /// this is only reachable by handing an unvalidated table straight
    /// to a low-level width-aware helper).
    pub fn bytes_of(&self, layer: LayerName) -> usize {
        self.format_of(layer)
            .bytes()
            .unwrap_or_else(|_| panic!("degenerate format for {layer}: run validate() first"))
    }

    /// `(layer, bytes)` pairs for a placement's layers — the shape the
    /// width-aware resource/timing models consume.
    pub fn bytes_for(&self, layers: &[LayerName]) -> Vec<(LayerName, usize)> {
        layers.iter().map(|&l| (l, self.bytes_of(l))).collect()
    }

    /// Reject degenerate formats, naming the offending *stage* when a
    /// per-stage override (rather than the base) is broken — the error
    /// a caller of a mixed policy needs to act on.
    pub fn validate(&self) -> Result<(), EngineError> {
        // The base's own error already carries `stage: None`.
        self.base.qformat()?;
        for (i, o) in self.overrides.iter().enumerate() {
            if let Some(f) = o {
                f.qformat().map_err(|e| match e {
                    EngineError::UnsupportedFormat {
                        total_bits,
                        frac_bits,
                        ..
                    } => EngineError::UnsupportedFormat {
                        total_bits,
                        frac_bits,
                        stage: Some(OFFLOADABLE_LAYERS[i]),
                    },
                    other => other,
                })?;
            }
        }
        Ok(())
    }
}

impl core::fmt::Display for StageFormats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.uniform_format() {
            Some(u) => write!(f, "{u}"),
            None => {
                write!(f, "mixed[")?;
                for (i, &layer) in OFFLOADABLE_LAYERS.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{layer}: {}", self.format_of(layer))?;
                }
                write!(f, "]")
            }
        }
    }
}

/// How the engine chooses each stage's PL word format. Resolves to a
/// [`StageFormats`] table at plan/build time
/// ([`Precision::resolve`]).
#[derive(Clone, Debug)]
pub enum Precision {
    /// One format for every stage — exactly the pre-policy
    /// `pl_format(..)` behavior.
    Uniform(PlFormat),
    /// An explicit per-stage table (base + overrides), e.g.
    /// `StageFormats::uniform(Q20).with(Layer1, Q16 { frac: 10 })`.
    PerStage(StageFormats),
    /// Measure per-stage activation envelopes on `sample` (float
    /// forward, no training, no labels) and pick, per stage, the
    /// largest-`frac` executable format of `total_bits` whose integer
    /// bits cover the envelope plus `headroom_bits` of margin. An
    /// empty sample is a typed error
    /// ([`EngineError::CalibrationEmpty`]); an envelope no executable
    /// `frac` can cover is [`EngineError::CalibrationRange`].
    Calibrated {
        /// Storage bits of every chosen format (32 or 16 — the widths
        /// with monomorphized datapaths).
        total_bits: u32,
        /// Extra integer bits beyond the measured envelope, absorbing
        /// the float-vs-quantized trajectory gap (1–2 is typical).
        headroom_bits: u32,
        /// The calibration inputs (CIFAR-shaped tensors).
        sample: Vec<Tensor<f32>>,
    },
}

impl Default for Precision {
    fn default() -> Self {
        Precision::Uniform(PlFormat::Q20)
    }
}

impl From<PlFormat> for Precision {
    fn from(format: PlFormat) -> Self {
        Precision::Uniform(format)
    }
}

impl From<StageFormats> for Precision {
    fn from(table: StageFormats) -> Self {
        Precision::PerStage(table)
    }
}

/// Integer bits needed to represent magnitudes up to `max_abs`
/// (smallest `i ≥ 0` with `max_abs < 2^i`).
fn needed_int_bits(max_abs: f64) -> u32 {
    let mut i = 0u32;
    while max_abs >= (2.0f64).powi(i as i32) {
        i += 1;
        if i > 64 {
            break;
        }
    }
    i
}

/// The largest-`frac` executable format of `total_bits` whose integer
/// bits cover `max_abs` plus `headroom_bits` — the calibration rule.
pub fn choose_format(
    total_bits: u32,
    headroom_bits: u32,
    max_abs: f64,
    layer: LayerName,
) -> Result<PlFormat, EngineError> {
    let mut fracs: Vec<u32> = PlFormat::EXECUTABLE_WIDTHS
        .iter()
        .filter(|(t, _)| *t == total_bits)
        .map(|(_, fr)| *fr)
        .collect();
    if fracs.is_empty() {
        return Err(EngineError::UnsupportedFormat {
            total_bits,
            frac_bits: 0,
            stage: Some(layer),
        });
    }
    fracs.sort_unstable_by(|a, b| b.cmp(a)); // largest frac first
    let needed = needed_int_bits(max_abs) + headroom_bits;
    for frac in fracs {
        if total_bits - 1 - frac >= needed {
            return Ok(PlFormat::Custom(QFormat::new(total_bits, frac)));
        }
    }
    Err(EngineError::CalibrationRange {
        layer,
        max_abs,
        total_bits,
        headroom_bits,
    })
}

impl Precision {
    /// Resolve the policy against `net` into the per-stage format
    /// table. `Uniform`/`PerStage` are pure table lookups; `Calibrated`
    /// runs the measurement pass of [`rodenet::calibrate`] on the
    /// sample (the one planning step that executes numerics). `bn` is
    /// the PS-side statistics mode the deployment will run with, so
    /// the calibration forward matches the deployed float path.
    pub fn resolve(&self, net: &Network, bn: BnMode) -> Result<StageFormats, EngineError> {
        match self {
            Precision::Uniform(f) => Ok(StageFormats::uniform(*f)),
            Precision::PerStage(t) => Ok(*t),
            Precision::Calibrated {
                total_bits,
                headroom_bits,
                sample,
            } => {
                if sample.is_empty() {
                    return Err(EngineError::CalibrationEmpty);
                }
                let ranges = stage_ranges(net, sample, bn);
                let mut formats: Vec<(LayerName, PlFormat)> = Vec::with_capacity(ranges.len());
                for r in &ranges {
                    formats.push((
                        r.layer,
                        choose_format(*total_bits, *headroom_bits, r.max_abs() as f64, r.layer)?,
                    ));
                }
                // Base = the widest-range (smallest-frac) choice, so
                // anything falling back to the base is covered too.
                let base = match formats
                    .iter()
                    .map(|(_, f)| *f)
                    .min_by_key(|f| f.qformat().expect("chosen formats are valid").frac_bits)
                {
                    Some(f) => f,
                    // No measurable stages (a stacked ResNet): fall
                    // back to the widest-range executable frac of the
                    // requested width, erroring only if the width has
                    // no datapath at all.
                    None => PlFormat::Custom(QFormat::new(
                        *total_bits,
                        PlFormat::EXECUTABLE_WIDTHS
                            .iter()
                            .filter(|(t, _)| t == total_bits)
                            .map(|(_, fr)| *fr)
                            .min()
                            .ok_or(EngineError::UnsupportedFormat {
                                total_bits: *total_bits,
                                frac_bits: 0,
                                stage: None,
                            })?,
                    )),
                };
                let mut table = StageFormats::uniform(base);
                for (layer, format) in formats {
                    table = table.with(layer, format);
                }
                Ok(table)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodenet::{NetSpec, Variant};
    use tensor::Shape4;

    fn image(seed: u64) -> Tensor<f32> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(Shape4::new(1, 3, 16, 16), |_, _, _, _| {
            rng.random::<f32>() - 0.5
        })
    }

    #[test]
    fn uniform_table_has_no_overrides() {
        let t = StageFormats::uniform(PlFormat::Q20);
        assert_eq!(t.uniform_format(), Some(PlFormat::Q20));
        for layer in OFFLOADABLE_LAYERS {
            assert_eq!(t.format_of(layer), PlFormat::Q20);
            assert_eq!(t.bytes_of(layer), 4);
        }
        assert_eq!(format!("{t}"), "Q11.20 (32-bit)");
    }

    #[test]
    fn overrides_resolve_per_stage() {
        let t = StageFormats::uniform(PlFormat::Q20)
            .with(LayerName::Layer1, PlFormat::Q16 { frac: 10 });
        assert_eq!(t.uniform_format(), None);
        assert_eq!(t.bytes_of(LayerName::Layer1), 2);
        assert_eq!(t.bytes_of(LayerName::Layer3_2), 4);
        assert_eq!(
            t.format_of(LayerName::Conv1),
            PlFormat::Q20,
            "base fallback"
        );
        let d = format!("{t}");
        assert!(d.contains("mixed[") && d.contains("Q5.10"), "{d}");
        assert_eq!(
            t.bytes_for(&[LayerName::Layer1, LayerName::Layer3_2]),
            vec![(LayerName::Layer1, 2), (LayerName::Layer3_2, 4)]
        );
    }

    #[test]
    fn uniformity_ignores_format_spelling() {
        // Calibration always emits `Custom`; a table mixing spellings
        // of one layout is still uniform (the fixed-point backend can
        // execute it, Display prints one format).
        let t = StageFormats::uniform(PlFormat::Q20)
            .with(LayerName::Layer1, PlFormat::Custom(QFormat::new(32, 20)));
        assert_eq!(t.uniform_format(), Some(PlFormat::Q20));
        assert_eq!(format!("{t}"), "Q11.20 (32-bit)");
        let t16 = StageFormats::uniform(PlFormat::Q16 { frac: 10 })
            .with(LayerName::Layer3_2, PlFormat::Custom(QFormat::new(16, 10)));
        assert_eq!(t16.uniform_format(), Some(PlFormat::Q16 { frac: 10 }));
        // A genuinely different layout still reads as mixed.
        assert_eq!(
            StageFormats::uniform(PlFormat::Q20)
                .with(LayerName::Layer1, PlFormat::Custom(QFormat::new(32, 16)))
                .uniform_format(),
            None
        );
    }

    #[test]
    #[should_panic(expected = "not offloadable")]
    fn override_of_downsample_layer_panics() {
        let _ = StageFormats::uniform(PlFormat::Q20)
            .with(LayerName::Layer2_1, PlFormat::Q16 { frac: 10 });
    }

    #[test]
    fn validate_names_the_offending_stage() {
        let bad = PlFormat::Q16 { frac: 16 };
        let t = StageFormats::uniform(PlFormat::Q20).with(LayerName::Layer2_2, bad);
        match t.validate() {
            Err(EngineError::UnsupportedFormat { stage, .. }) => {
                assert_eq!(stage, Some(LayerName::Layer2_2));
            }
            other => panic!("expected stage-naming error, got {other:?}"),
        }
        // A degenerate base carries no stage (the policy is uniform
        // in the broken format).
        match StageFormats::uniform(bad).validate() {
            Err(EngineError::UnsupportedFormat { stage: None, .. }) => {}
            other => panic!("expected base error, got {other:?}"),
        }
        assert!(StageFormats::uniform(PlFormat::Q20).validate().is_ok());
    }

    #[test]
    fn choose_format_takes_largest_covering_frac() {
        // 16-bit executable fracs {6, 8, 10, 12} → int bits {9, 7, 5, 3}.
        let l = LayerName::Layer1;
        // |v| < 2 with headroom 1 needs 2 int bits → frac 12 (3 int bits).
        assert_eq!(
            choose_format(16, 1, 1.5, l).unwrap(),
            PlFormat::Custom(QFormat::new(16, 12))
        );
        // |v| up to 6 with headroom 1 needs 4 int bits → frac 10.
        assert_eq!(
            choose_format(16, 1, 6.0, l).unwrap(),
            PlFormat::Custom(QFormat::new(16, 10))
        );
        // A huge envelope exceeds every executable frac.
        assert!(matches!(
            choose_format(16, 1, 1e6, l),
            Err(EngineError::CalibrationRange { .. })
        ));
        // A width with no datapath at all is the format error.
        assert!(matches!(
            choose_format(24, 1, 1.0, l),
            Err(EngineError::UnsupportedFormat { total_bits: 24, .. })
        ));
        // 32-bit: small envelope → frac 24 (7 int bits).
        assert_eq!(
            choose_format(32, 2, 3.0, l).unwrap(),
            PlFormat::Custom(QFormat::new(32, 24))
        );
    }

    #[test]
    fn calibrated_resolution_covers_the_measured_envelope() {
        let net = Network::new(NetSpec::new(Variant::OdeNet, 20).with_classes(5), 21);
        let sample = vec![image(1), image(2)];
        let policy = Precision::Calibrated {
            total_bits: 16,
            headroom_bits: 1,
            sample: sample.clone(),
        };
        let table = policy.resolve(&net, BnMode::OnTheFly).expect("resolves");
        let ranges = rodenet::calibrate::stage_ranges(&net, &sample, BnMode::OnTheFly);
        for r in &ranges {
            let q = table.format_of(r.layer).qformat().expect("valid");
            assert_eq!(q.total_bits, 16, "{}", r.layer);
            // The chosen format represents the envelope (headroom makes
            // this strict, not marginal).
            assert!(
                q.max_value() >= r.max_abs() as f64,
                "{}: {} ≥ {}",
                r.layer,
                q.max_value(),
                r.max_abs()
            );
        }
        assert!(table.validate().is_ok());
    }

    #[test]
    fn empty_sample_is_a_typed_error() {
        let net = Network::new(NetSpec::new(Variant::OdeNet, 20).with_classes(5), 22);
        let err = Precision::Calibrated {
            total_bits: 16,
            headroom_bits: 1,
            sample: Vec::new(),
        }
        .resolve(&net, BnMode::OnTheFly)
        .expect_err("no sample, no envelope");
        assert_eq!(err, EngineError::CalibrationEmpty);
    }
}
