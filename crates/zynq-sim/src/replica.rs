//! Replication — stage replicas and data-parallel placement groups.
//!
//! The pipelined cluster model ([`crate::cluster`]) caps batch
//! throughput at the busiest single resource's per-image busy time.
//! Once the partitioner ([`crate::partition`]) has balanced the
//! boards, the remaining scaling axis is **duplication**, in two
//! grains:
//!
//! * [`Replication::Stage`] — the bottleneck PL stage's circuit is
//!   burned onto `k` fabrics and images round-robin between them
//!   (image `i` → replica `i mod k`), so each replica is busy only
//!   `seconds / k` per image in steady state and the pipelined ceiling
//!   drops below one board's busy time. The replica boards are chosen
//!   **jointly** with the rest of the assignment
//!   (`partition::replicated_assignment`) — the best
//!   unreplicated base often has no room for replicas.
//! * [`Replication::Placement`] — the whole placement (software stages
//!   included) is cloned across `g` disjoint board groups and images
//!   round-robin between the groups: data parallelism for racks with
//!   more boards than stages, and the only mode that scales past the
//!   head PS's busy time, because each group brings its own ARM
//!   ([`crate::cluster::StageResource::PsOn`]).
//!
//! Both grains express as one mechanism: every
//! [`crate::cluster::StageTiming`] row names the **replica set** that
//! serves it round-robin, and the event-driven scheduler treats each
//! replica as a distinct resource. Stage replication gives one row a
//! replica set; placement groups give every row the same-length set,
//! so image `i` consistently runs inside group `i mod g`.
//!
//! ## What replication never does
//!
//! Replication decides *where and when* an image runs — never *what*:
//! every replica holds a bit-identical copy of the stage's quantized
//! circuit, so logits are bit-identical to the unreplicated (and
//! single-board) deployment. Pinned in `tests/replica.rs`.
//!
//! ## Cost model
//!
//! Staging the parameters onto replica boards is a **one-time weight
//! broadcast**: each extra carrier receives the stage's parameter
//! block ([`crate::resources::stage_param_bytes`]) over the modelled
//! [`crate::cluster::Interconnect`]. The plan reports it
//! ([`ReplicaPlan::broadcast_seconds`]) but never adds it to a
//! per-image latency or batch makespan — deployment overlaps the
//! broadcast (recorded, with the round-robin assumption, in the
//! ROADMAP). Per-image hand-offs into a replica are priced like the
//! hand-off into the primary: replica boards sit symmetric on the
//! interconnect.

use crate::cluster::{
    build_timeline, resolve_placement, Cluster, ClusterRequest, ShardAssignment, StageResource,
    StageTiming,
};
use crate::engine::EngineError;
use crate::partition::{reference_makespan, replicated_assignment};
use crate::planner::OffloadTarget;
use rodenet::{LayerName, NetSpec};

/// Replication policy for a cluster deployment (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Replication {
    /// No replication — the planner behaves exactly as before the
    /// replica layer existed (bit-identical plans and timings).
    #[default]
    None,
    /// Replicate one offloaded stage's circuit across `.1` boards,
    /// serving images round-robin. The layer must be offloaded by the
    /// resolved placement and at least two replicas are required.
    Stage(LayerName, usize),
    /// Replicate the **entire placement** across `.0` disjoint board
    /// groups of `boards / groups` boards each (board `j·size` is
    /// group `j`'s head and runs its PS stages); images round-robin
    /// between groups. Leftover boards (when `boards % groups ≠ 0`)
    /// stay idle.
    Placement(usize),
    /// Try every concrete policy this cluster admits — nothing, each
    /// `Stage(layer, k)`, each `Placement(g)` — and keep the one with
    /// the smallest reference-batch makespan under the request's
    /// schedule (strict improvement, so `None` wins ties; under
    /// [`crate::cluster::Schedule::Sequential`] replication never
    /// helps and Auto resolves to `None`).
    Auto,
}

/// The replica layer's slice of a [`crate::cluster::ClusterPlan`]:
/// which resources were duplicated and what the one-time broadcast
/// costs.
#[derive(Clone, Debug)]
pub struct ReplicaPlan {
    /// The **resolved** policy ([`Replication::Auto`] never appears —
    /// it resolves to the winning concrete policy).
    pub replication: Replication,
    /// Per replicated stage: the boards carrying its circuit, primary
    /// first, in round-robin order.
    pub stage_replicas: Vec<(LayerName, Vec<usize>)>,
    /// Placement groups as board-index lists (group 0 — the original
    /// placement — first). Empty for stage replication.
    pub groups: Vec<Vec<usize>>,
    /// One-time seconds to broadcast every replica's parameters over
    /// the interconnect. Reported, never added to a makespan (the
    /// broadcast overlaps deployment — see the module docs).
    pub broadcast_seconds: f64,
}

impl ReplicaPlan {
    /// One-line human description for logs and plan summaries.
    pub fn describe(&self) -> String {
        let what = match self.replication {
            Replication::Stage(layer, k) => {
                let boards = self
                    .stage_replicas
                    .iter()
                    .find(|(l, _)| *l == layer)
                    .map(|(_, bs)| format!("{bs:?}"))
                    .unwrap_or_default();
                format!("{layer}×{k} on boards {boards}")
            }
            Replication::Placement(g) => format!("{g} placement groups"),
            _ => "unreplicated".to_string(),
        };
        format!(
            "replicas: {what} · broadcast {:.1} ms",
            self.broadcast_seconds * 1e3
        )
    }
}

/// Seconds to (re-)stage `plan`'s weights onto its non-head boards
/// over the modelled interconnect: every parameter payload a non-head
/// shard carries is broadcast from the head exactly once. This is the
/// price [`crate::fault::serve_faulted`] bills into a failover's
/// recovery window — the same per-stage payloads PR 7's replica
/// broadcast prices, but summed over the whole placement (a failover
/// re-ships everything, clone and primary alike).
pub fn restage_seconds(plan: &crate::cluster::ClusterPlan) -> f64 {
    let link = plan.cluster().interconnect();
    plan.shards()
        .iter()
        .filter(|s| s.board != 0)
        .flat_map(|s| s.stages.iter())
        .map(|st| link.transfer_seconds(st.param_bytes))
        .sum()
}

/// The replica resolver's output — everything [`crate::cluster::plan_cluster`]
/// needs to finish a plan.
pub(crate) struct Resolved {
    /// The overall placement (union of all shards, replicas included).
    pub target: OffloadTarget,
    /// Per-board placement slices; a replicated layer appears in
    /// several entries, a placement group repeats the base entries at
    /// a board offset.
    pub shards: ShardAssignment,
    /// The replica-aware per-image pipeline.
    pub timeline: Vec<StageTiming>,
    /// The replica plan (`None` when the resolution is unreplicated).
    pub plan: Option<ReplicaPlan>,
}

/// Resolve a request's [`Replication`] policy into a concrete sharded
/// placement + replica-aware timeline. [`Replication::None`] delegates
/// straight to the unreplicated resolution and is bit-identical to the
/// pre-replica planner.
pub(crate) fn resolve(spec: &NetSpec, req: &ClusterRequest) -> Result<Resolved, EngineError> {
    match req.replication {
        Replication::None => resolve_none(spec, req),
        Replication::Stage(layer, k) => resolve_stage(spec, req, layer, k),
        Replication::Placement(g) => resolve_groups(spec, req, g),
        Replication::Auto => resolve_auto(spec, req),
    }
}

fn resolve_none(spec: &NetSpec, req: &ClusterRequest) -> Result<Resolved, EngineError> {
    let (target, shards) = resolve_placement(spec, req)?;
    let timeline = build_timeline(spec, &shards, req);
    Ok(Resolved {
        target,
        shards,
        timeline,
        plan: None,
    })
}

fn resolve_stage(
    spec: &NetSpec,
    req: &ClusterRequest,
    layer: LayerName,
    k: usize,
) -> Result<Resolved, EngineError> {
    // The placement itself (which layers leave the PS) is resolved
    // unreplicated; replication then decides how many fabrics carry
    // the chosen stage.
    let (target, _) = resolve_placement(spec, req)?;
    if !target.layers().contains(&layer) {
        return Err(EngineError::ReplicationInfeasible {
            reason: format!(
                "{layer} is not offloaded by the resolved placement {target:?} — \
                 only PL stages can be replicated"
            ),
        });
    }
    let shards = replicated_assignment(spec, target, req, layer, k)?;
    let timeline = build_timeline(spec, &shards, req);
    let carriers: Vec<usize> = shards
        .iter()
        .filter(|(_, t)| t.layers().contains(&layer))
        .map(|(b, _)| *b)
        .collect();
    debug_assert_eq!(carriers.len(), k, "the search placed every replica");
    let bytes = req.precision.bytes_of(layer);
    let payload = crate::resources::stage_param_bytes(spec, layer, bytes);
    let broadcast_seconds = (k - 1) as f64 * req.cluster.interconnect().transfer_seconds(payload);
    Ok(Resolved {
        target,
        shards,
        timeline,
        plan: Some(ReplicaPlan {
            replication: Replication::Stage(layer, k),
            stage_replicas: vec![(layer, carriers)],
            groups: Vec::new(),
            broadcast_seconds,
        }),
    })
}

fn resolve_groups(spec: &NetSpec, req: &ClusterRequest, g: usize) -> Result<Resolved, EngineError> {
    let boards = req.cluster.boards();
    let n = boards.len();
    let infeasible = |reason: String| EngineError::ReplicationInfeasible { reason };
    if g < 2 {
        return Err(infeasible(format!(
            "placement replication needs at least 2 groups, got {g}"
        )));
    }
    if g > n {
        return Err(infeasible(format!(
            "{g} placement groups exceed the cluster's {n} board(s)"
        )));
    }
    let size = n / g;

    // Plan the base placement against group 0's sub-rack; groups are
    // disjoint consecutive board ranges, so the sub-request only trims
    // the board list (head, interconnect, and indices are unchanged).
    let mut sub = req.clone();
    sub.cluster = Cluster::new(boards[..size].to_vec(), *req.cluster.interconnect());
    sub.replication = Replication::None;
    let (target, base) = resolve_placement(spec, &sub)?;

    // Every clone board must admit its shard *and* serve it at exactly
    // the primary's modelled speed — round-robin assumes groups are
    // interchangeable. Same for each group head's PS clock.
    let mut shards = base.clone();
    let mut broadcast_seconds = 0.0f64;
    for j in 1..g {
        let head = j * size;
        if boards[head].ps_clock_hz != boards[0].ps_clock_hz {
            return Err(infeasible(format!(
                "group {j}'s head (board {head}, {}) runs its PS at a different clock \
                 than the head board — groups must be timing-identical",
                boards[head].name
            )));
        }
        for (b, t) in &base {
            let clone = b + j * size;
            if !t.fits_with(&boards[clone], req.pl.parallelism, &req.precision) {
                return Err(infeasible(format!(
                    "group {j}'s board {clone} ({}) cannot carry {t:?}",
                    boards[clone].name
                )));
            }
            for &l in t.layers() {
                let plan = spec.plan(l);
                let execs = if plan.is_ode { plan.execs } else { 1 };
                let bytes = req.precision.bytes_of(l);
                let primary = req.pl.stage_seconds_at(l, execs, &boards[*b], bytes);
                let cloned = req.pl.stage_seconds_at(l, execs, &boards[clone], bytes);
                if primary != cloned {
                    return Err(infeasible(format!(
                        "group {j}'s board {clone} ({}) would serve {l} in {cloned:.6} s \
                         vs the primary's {primary:.6} s — groups must be timing-identical",
                        boards[clone].name
                    )));
                }
                broadcast_seconds += req
                    .cluster
                    .interconnect()
                    .transfer_seconds(crate::resources::stage_param_bytes(spec, l, bytes));
            }
            shards.push((clone, *t));
        }
    }

    // The merged timeline: PL rows pick up their group replicas from
    // the duplicated shards; PS rows are replicated here (one ARM per
    // group head).
    let mut timeline = build_timeline(spec, &shards, req);
    let ps_replicas: Vec<StageResource> = (0..g)
        .map(|j| {
            if j == 0 {
                StageResource::Ps
            } else {
                StageResource::PsOn(j * size)
            }
        })
        .collect();
    for row in &mut timeline {
        if row.resource.is_ps() {
            row.replicas = ps_replicas.clone();
        }
    }
    debug_assert!(
        timeline.iter().all(|r| r.replica_count() == g),
        "every row of a grouped timeline has one replica per group"
    );

    let stage_replicas = target
        .layers()
        .iter()
        .map(|&l| {
            (
                l,
                shards
                    .iter()
                    .filter(|(_, t)| t.layers().contains(&l))
                    .map(|(b, _)| *b)
                    .collect(),
            )
        })
        .collect();
    Ok(Resolved {
        target,
        shards,
        timeline,
        plan: Some(ReplicaPlan {
            replication: Replication::Placement(g),
            stage_replicas,
            groups: (0..g)
                .map(|j| (j * size..(j + 1) * size).collect())
                .collect(),
            broadcast_seconds,
        }),
    })
}

/// Enumerate every concrete policy in a fixed order — `None` first,
/// then `Stage(layer, k)` per offloaded layer (network order) and
/// replica count ascending, then `Placement(g)` ascending — score each
/// feasible one by the reference-batch makespan under the request's
/// schedule, and keep the first strict minimum. Deterministic, and
/// `None` wins all ties (replication must *pay* to be chosen).
fn resolve_auto(spec: &NetSpec, req: &ClusterRequest) -> Result<Resolved, EngineError> {
    let base = resolve_none(spec, req)?;
    let n = req.cluster.len();
    let mut candidates: Vec<Replication> = Vec::new();
    for &layer in base.target.layers() {
        for k in 2..=n {
            candidates.push(Replication::Stage(layer, k));
        }
    }
    for g in 2..=n {
        candidates.push(Replication::Placement(g));
    }
    let mut best_score = reference_makespan(&base.timeline, req.schedule);
    let mut best = base;
    for candidate in candidates {
        let mut creq = req.clone();
        creq.replication = candidate;
        let Ok(resolved) = resolve(spec, &creq) else {
            continue;
        };
        let score = reference_makespan(&resolved.timeline, req.schedule);
        if score < best_score {
            best_score = score;
            best = resolved;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::ARTY_Z7_20;
    use crate::cluster::{plan_cluster, Interconnect, Schedule};
    use crate::engine::Offload;
    use crate::partition::Partitioner;
    use crate::plan::PlFormat;
    use crate::timing::{PlModel, PsModel};
    use rodenet::{BnMode, Variant};

    fn request(boards: usize, replication: Replication) -> ClusterRequest {
        ClusterRequest {
            cluster: Cluster::homogeneous(&ARTY_Z7_20, boards, Interconnect::GIGABIT_ETHERNET),
            offload: Offload::Auto,
            bn: BnMode::Running,
            ps: PsModel::Calibrated,
            pl: PlModel::default(),
            precision: PlFormat::Q20.into(),
            schedule: Schedule::Pipelined,
            partitioner: Partitioner::BalancedMakespan,
            replication,
        }
    }

    #[test]
    fn none_is_bit_identical_to_the_unreplicated_planner() {
        let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(100);
        let plan = plan_cluster(&spec, &request(2, Replication::None)).expect("plans");
        assert!(plan.replica_plan().is_none());
        assert_eq!(plan.replication(), Replication::None);
        assert_eq!(plan.broadcast_seconds(), 0.0);
        assert!(plan.timeline().iter().all(|r| r.replicas.is_empty()));
    }

    #[test]
    fn stage_replication_validates_its_arguments() {
        let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(100);
        for (boards, repl) in [
            (3, Replication::Stage(LayerName::Layer1, 1)),
            (3, Replication::Stage(LayerName::Layer1, 4)),
            (3, Replication::Stage(LayerName::Layer2_1, 2)), // never offloaded
        ] {
            let err = plan_cluster(&spec, &request(boards, repl)).expect_err("invalid");
            assert!(
                matches!(err, EngineError::ReplicationInfeasible { .. }),
                "{repl:?}: {err:?}"
            );
        }
    }

    #[test]
    fn placement_groups_validate_their_arguments() {
        let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(100);
        for (boards, g) in [(4, 1), (2, 3)] {
            let err = plan_cluster(&spec, &request(boards, Replication::Placement(g)))
                .expect_err("invalid");
            assert!(
                matches!(err, EngineError::ReplicationInfeasible { .. }),
                "{g} groups over {boards}: {err:?}"
            );
        }
    }

    #[test]
    fn stage_replicas_share_the_timeline_row() {
        let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(100);
        let mut req = request(3, Replication::Stage(LayerName::Layer1, 2));
        req.pl = PlModel { parallelism: 8 };
        let plan = plan_cluster(&spec, &req).expect("plans");
        let row = plan
            .timeline()
            .iter()
            .find(|r| r.layer == Some(LayerName::Layer1))
            .expect("layer1 row");
        assert_eq!(row.replica_count(), 2);
        assert_eq!(row.resource, row.replicas[0], "primary leads the set");
        assert_ne!(row.resource_for(0), row.resource_for(1), "round-robin");
        assert_eq!(row.resource_for(0), row.resource_for(2));
        // The broadcast prices one extra carrier of layer1's parameters.
        let payload = crate::resources::stage_param_bytes(&spec, LayerName::Layer1, 4);
        let expect = req.cluster.interconnect().transfer_seconds(payload);
        assert!((plan.broadcast_seconds() - expect).abs() < 1e-12);
        let rp = plan.replica_plan().expect("replicated");
        assert_eq!(rp.stage_replicas.len(), 1);
        assert_eq!(rp.stage_replicas[0].0, LayerName::Layer1);
        assert_eq!(rp.stage_replicas[0].1.len(), 2);
        assert!(rp.describe().contains("layer1×2"), "{}", rp.describe());
    }

    #[test]
    fn placement_groups_replicate_every_row() {
        let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(100);
        let plan = plan_cluster(&spec, &request(4, Replication::Placement(2))).expect("plans");
        for row in plan.timeline() {
            assert_eq!(row.replica_count(), 2, "{row:?}");
        }
        // Group 1's PS rows run on board 2's ARM, its PL rows on
        // boards 2/3 — image 1 must land entirely inside group 1.
        for row in plan.timeline() {
            let second = row.resource_for(1);
            assert!(second.board() >= 2, "{second:?} belongs to group 1");
            assert_eq!(second.is_ps(), row.resource.is_ps());
        }
        let rp = plan.replica_plan().expect("replicated");
        assert_eq!(rp.groups, vec![vec![0, 1], vec![2, 3]]);
        assert!(rp.broadcast_seconds > 0.0);
        // Halved ceiling: each group serves every other image.
        let solo = plan_cluster(&spec, &request(2, Replication::None)).expect("plans");
        let ratio = solo.bottleneck_seconds() / plan.bottleneck_seconds();
        assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn auto_prefers_groups_on_a_four_board_rack() {
        let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(100);
        let plan = plan_cluster(&spec, &request(4, Replication::Auto)).expect("plans");
        // Data parallelism wins this rack (the PS floor binds at x16,
        // and only groups bring more ARMs). Four single-board groups
        // beat two 2-board groups here: each lone PS carries more
        // software, but there are twice as many of them.
        assert!(
            matches!(plan.replication(), Replication::Placement(_)),
            "{:?}",
            plan.replication()
        );
        let unreplicated = plan_cluster(&spec, &request(4, Replication::None)).expect("plans");
        assert!(
            plan.batch_seconds(32, Schedule::Pipelined)
                < unreplicated.batch_seconds(32, Schedule::Pipelined),
            "Auto only replicates when it strictly pays"
        );
        // …and under the sequential schedule replication buys nothing,
        // so Auto must resolve to None.
        let mut req = request(4, Replication::Auto);
        req.schedule = Schedule::Sequential;
        let seq = plan_cluster(&spec, &req).expect("plans");
        assert_eq!(seq.replication(), Replication::None);
    }

    #[test]
    fn heterogeneous_groups_are_rejected() {
        let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(100);
        let mut slow = ARTY_Z7_20;
        slow.pl_clock_hz = 50_000_000;
        let mut req = request(4, Replication::Placement(2));
        req.cluster = Cluster::new(
            vec![ARTY_Z7_20, ARTY_Z7_20, slow, slow],
            Interconnect::GIGABIT_ETHERNET,
        );
        let err = plan_cluster(&spec, &req).expect_err("mismatched timing");
        let EngineError::ReplicationInfeasible { reason } = err else {
            panic!("unexpected: {err:?}");
        };
        assert!(reason.contains("timing-identical"), "{reason}");
    }
}
