//! # zynq-sim — a PYNQ-Z2 / Zynq XC7Z020 substrate simulator
//!
//! The paper runs its ODEBlocks on the programmable logic (PL) of a TUL
//! PYNQ-Z2 board. This crate replaces the board with a simulator that
//! models each ingredient the evaluation depends on:
//!
//! * [`board`] — the Table 1 device (2× Cortex-A9 @ 650 MHz, Zynq
//!   XC7Z020: 140 BRAM36, 220 DSP48E1, 53 200 LUT, 106 400 FF, PL clock
//!   100 MHz);
//! * [`resources`] — BRAM/DSP/LUT/FF utilization of the conv_x·n ODEBlock
//!   circuits (Table 3). The BRAM and DSP models are *structural and
//!   exact* on all 24 published cells; LUT/FF come from a synthesis
//!   characterization table plus a linear model for unseen configurations;
//! * [`datapath`] — the cycle-accurate ODEBlock datapath model (§3.1:
//!   23.78M/6.07M/3.12M/1.64M/0.90M cycles for layer3_2 at 1–32
//!   multiply-add units) and the bit-exact Q20 execution built on
//!   [`rodenet::QuantBlock`];
//! * [`timing`] — the end-to-end prediction-latency model of Table 5:
//!   a calibrated Cortex-A9 software-cost model for the PS side, the
//!   cycle model at 100 MHz for the PL side, and the paper's optimistic
//!   1-cycle-per-word AXI DMA assumption;
//! * [`planner`] — the §3.2 offload feasibility analysis (which layers
//!   fit in BRAM, which combinations are legal, what conv_x·n passes
//!   timing);
//! * [`plan`] — numerics-free deployment planning: [`DeploymentPlan`]
//!   resolves placement, width-aware resources, and the cached Table 5
//!   timing for any PL word format ([`PlFormat`]) before a single
//!   weight is quantized;
//! * [`precision`] — per-stage word-format policies: one uniform
//!   format, an explicit [`StageFormats`] table (layer1 at Q16 next to
//!   layer3_2 at Q20), or [`Precision::Calibrated`], which measures
//!   per-stage activation envelopes on a sample batch and picks each
//!   `frac` itself;
//! * [`engine`] — the deployment API: a builder-configured, validated
//!   [`Engine`] built from a [`DeploymentPlan`], precision-polymorphic
//!   per stage over the PL word format, serving single or batched
//!   inference through pluggable [`Backend`]s;
//! * [`cluster`] — multi-board scale-out: a [`Cluster`] of boards with
//!   a modelled [`Interconnect`], sharded placements ([`ClusterPlan`]),
//!   and an event-driven pipelined batch scheduler ([`Schedule`]) that
//!   overlaps PS stages of image *i+1* with PL stages of image *i*;
//! * [`partition`] — the cost-driven partitioner layer: one placement
//!   search ([`Partitioner`]) shared by the single-board planner and
//!   the cluster sharder, from greedy first-fit to a balanced-makespan
//!   search that puts heavy stages on the bigger fabric of a
//!   heterogeneous rack;
//! * [`replica`] — the replication layer: [`Replication::Stage`]
//!   burns a bottleneck PL stage onto several fabrics with round-robin
//!   image→replica assignment (pushing the pipelined ceiling below one
//!   board's busy time), [`Replication::Placement`] clones the whole
//!   placement across board groups for data parallelism past the head
//!   PS's floor, and [`Replication::Auto`] searches both grains —
//!   always with bit-identical logits;
//! * [`serve`] — the online-serving subsystem: open-loop seeded
//!   arrival streams ([`ArrivalProcess`]), continuous micro-batching
//!   (dispatch on head-idle or deadline, never on a fixed batch
//!   filling), and deterministic virtual-time replay through the
//!   pipelined cluster schedule into a [`ServeReport`] of tail
//!   latency, goodput, queue depth, and board utilization;
//! * [`trace`] — the observability layer: a zero-cost-when-disabled
//!   event [`Recorder`] threaded through the virtual-time schedulers,
//!   capturing per-image stage spans, interconnect hand-offs, queue
//!   and dispatch events into a [`Trace`] that exports Chrome-trace
//!   JSON (open in `chrome://tracing` / Perfetto) and aggregates into
//!   per-resource utilization plus stall attribution
//!   (waiting-on-upstream vs FIFO-gate-held vs no-work);
//! * [`fault`] — fault injection and failover: a declarative
//!   [`FaultPlan`] of deterministic virtual-time faults (board
//!   crashes, slowdowns, hangs, link degradation), a timeout-based
//!   [`HealthMonitor`], drain-then-replan failover onto the surviving
//!   boards with the weight re-broadcast priced into a recovery
//!   window, head-PS degraded mode as the last resort, and an
//!   [`AvailabilityReport`] on the serve report — the empty plan is
//!   bit-identical to the fault-free path.
//!
//! ```
//! use zynq_sim::resources::{ode_block_resources};
//! use rodenet::LayerName;
//!
//! let r = ode_block_resources(LayerName::Layer3_2, 16);
//! assert_eq!(r.bram36_used(), 140.0); // 100% — Table 3's headline row
//! assert_eq!(r.dsp, 68);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod board;
pub mod cluster;
pub mod datapath;
pub mod engine;
pub mod fault;
pub mod partition;
pub mod plan;
pub mod planner;
pub mod power;
pub mod precision;
pub mod replica;
pub mod resources;
pub mod serve;
pub mod system;
pub mod timing;
pub mod trace;

pub use board::{Board, ARTY_Z7_10, ARTY_Z7_20, PYNQ_Z2};
pub use cluster::{
    pipelined_schedule_released, plan_cluster, Cluster, ClusterPlan, ClusterRequest, Interconnect,
    Schedule, ServedRun, StageResource,
};
pub use datapath::{block_exec_cycles, conv_cycles, OdeBlockAccel};
pub use engine::{
    Backend, BackendKind, BatchSummary, Engine, EngineBuilder, EngineError, Offload, RunReport,
};
pub use fault::{
    faulted_schedule_released, serve_faulted, AvailabilityReport, FailoverRecord, FaultEvent,
    FaultPlan, HealthMonitor, HealthPolicy,
};
pub use partition::{board_stage_seconds, partition_placement, resource_busy, Partitioner};
pub use plan::{plan_deployment, DeploymentPlan, PlFormat, PlanRequest, PlannedStage};
pub use planner::{plan_offload, OffloadTarget};
pub use power::{EnergyReport, PowerModel};
pub use precision::{Precision, StageFormats};
pub use replica::{restage_seconds, ReplicaPlan, Replication};
pub use resources::{ode_block_resources, ResourceReport};
pub use serve::{
    AdmissionQueue, ArrivalProcess, Dispatch, LoadPoint, LoadSweep, MicroBatcher, ServeReport,
    ServeRequest, Window, WindowReport,
};
pub use system::HybridRun;
#[allow(deprecated)]
pub use system::{run_hybrid, run_hybrid_with};
pub use timing::{table5_row, PlModel, PsModel, Table5Row};
pub use trace::{
    check_chrome_json, FaultKind, FaultTraceEvent, Metrics, Recorder, ResourceMetrics,
    StallBreakdown, Trace,
};
