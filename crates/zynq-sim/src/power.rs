//! Energy model — an **extension**, not a paper artifact.
//!
//! The paper motivates FPGAs as "an energy-efficient solution" but never
//! quantifies power. This module adds a transparent first-order model so
//! the energy story can be explored:
//!
//! * PS: a constant active power while computing (dual Cortex-A9 plus
//!   DDR on 28 nm Zynq boards draws ≈ 1.3 W under load; idle ≈ 0.35 W);
//! * PL: static fabric power plus dynamic power proportional to resource
//!   utilization and clock (α·(DSP + LUT activity) at 100 MHz) — the
//!   standard linear utilization model of vendor power estimators.
//!
//! The constants are **illustrative, documented defaults** in the range
//! vendor tools report for the XC7Z020; conclusions should only be drawn
//! from *ratios* under the same constants, not absolute joules.

use crate::board::Board;
use crate::resources::ResourceReport;
use crate::timing::Table5Row;

/// First-order power parameters (watts).
#[derive(Clone, Copy, Debug)]
pub struct PowerModel {
    /// PS power while executing software.
    pub ps_active_w: f64,
    /// PS power while waiting on the PL.
    pub ps_idle_w: f64,
    /// PL static power when a bitstream is loaded.
    pub pl_static_w: f64,
    /// Dynamic watts per DSP slice at 100 MHz.
    pub w_per_dsp: f64,
    /// Dynamic watts per kLUT at 100 MHz.
    pub w_per_klut: f64,
    /// Dynamic watts per BRAM36 at 100 MHz.
    pub w_per_bram: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            ps_active_w: 1.30,
            ps_idle_w: 0.35,
            pl_static_w: 0.12,
            w_per_dsp: 0.0018,
            w_per_klut: 0.010,
            w_per_bram: 0.0022,
        }
    }
}

/// Energy accounting for one inference.
#[derive(Clone, Copy, Debug)]
pub struct EnergyReport {
    /// PS energy in joules.
    pub ps_joules: f64,
    /// PL energy in joules (0 without offload).
    pub pl_joules: f64,
    /// Total joules per inference.
    pub total_joules: f64,
    /// PL power while active (for reference).
    pub pl_active_w: f64,
}

impl PowerModel {
    /// PL power while the given circuit is active.
    pub fn pl_active_w(&self, resources: &ResourceReport) -> f64 {
        self.pl_static_w
            + self.w_per_dsp * resources.dsp as f64
            + self.w_per_klut * resources.lut as f64 / 1000.0
            + self.w_per_bram * resources.bram36_used()
    }

    /// Energy of one inference described by a Table 5 row, with the PL
    /// circuit(s) given in `resources` (empty for software-only rows).
    pub fn energy(
        &self,
        row: &Table5Row,
        resources: &[ResourceReport],
        _board: &Board,
    ) -> EnergyReport {
        let pl_time: f64 = row.targets_w_pl.iter().sum();
        let ps_time = row.total_w_pl - pl_time;
        let pl_active: f64 = resources.iter().map(|r| self.pl_active_w(r)).sum::<f64>();
        // While the PL crunches, the PS waits at idle power; the PL is
        // loaded (static) for the whole inference when present.
        let ps_joules = self.ps_active_w * ps_time + self.ps_idle_w * pl_time;
        let pl_joules = if resources.is_empty() {
            0.0
        } else {
            pl_active * pl_time + self.pl_static_w * ps_time
        };
        EnergyReport {
            ps_joules,
            pl_joules,
            total_joules: ps_joules + pl_joules,
            pl_active_w: pl_active,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::PYNQ_Z2;
    use crate::resources::ode_block_resources;
    use crate::timing::paper_row;
    use rodenet::{LayerName, Variant};

    #[test]
    fn offload_saves_energy_not_just_time() {
        let pm = PowerModel::default();
        let sw = paper_row(Variant::ResNet, 56);
        let e_sw = pm.energy(&sw, &[], &PYNQ_Z2);
        let hw = paper_row(Variant::ROdeNet3, 56);
        let r = ode_block_resources(LayerName::Layer3_2, 16);
        let e_hw = pm.energy(&hw, &[r], &PYNQ_Z2);
        assert!(
            e_hw.total_joules < e_sw.total_joules,
            "offloaded {} J vs software {} J",
            e_hw.total_joules,
            e_sw.total_joules
        );
        // The PL draw is well under a watt for this circuit.
        assert!(e_hw.pl_active_w < 1.0, "{}", e_hw.pl_active_w);
    }

    #[test]
    fn software_rows_have_no_pl_energy() {
        let pm = PowerModel::default();
        let sw = paper_row(Variant::ResNet, 20);
        let e = pm.energy(&sw, &[], &PYNQ_Z2);
        assert_eq!(e.pl_joules, 0.0);
        assert!((e.ps_joules - pm.ps_active_w * sw.total_wo_pl).abs() < 1e-12);
    }

    #[test]
    fn bigger_circuits_draw_more() {
        let pm = PowerModel::default();
        let small = pm.pl_active_w(&ode_block_resources(LayerName::Layer3_2, 1));
        let big = pm.pl_active_w(&ode_block_resources(LayerName::Layer3_2, 16));
        assert!(big > small);
    }
}
