//! End-to-end prediction-latency model — Table 5 of the paper.
//!
//! The PS side is a **calibrated software-cost model** of the Cortex-A9:
//! per-block-execution cycle costs least-squares fitted to the 48 "w/o
//! PL" cells of Table 5 (fit residual < 0.02 s, which is the scatter of
//! the paper's own measurements — e.g. the implied per-execution time of
//! layer1 varies between 61.6 and 62.9 ms across rows). An analytic
//! fallback (cycles per MAC / per element) covers configurations outside
//! the paper's grid. The calibration reproduces the published table; it
//! is not claimed to decompose the ARM's microarchitecture physically.
//!
//! The PL side is the cycle model of [`crate::datapath`] at the closed
//! clock, plus the paper's 1-cycle-per-word DMA assumption.

use crate::board::{Board, PYNQ_Z2};
use crate::planner::OffloadTarget;
use crate::precision::StageFormats;
use crate::resources::timing_closure_hz;
use rodenet::{LayerName, NetSpec, Variant};

/// Calibrated per-execution PS cycles (650 MHz Cortex-A9, fitted to
/// Table 5; see module docs).
mod calibrated {
    /// layer1 as an ODE block (time-augmented convs).
    pub const L1_ODE: u64 = 39_977_808;
    /// layer1 as a plain block.
    pub const L1_PLAIN: u64 = 35_823_376;
    /// layer2_2 as an ODE block.
    pub const L22_ODE: u64 = 36_004_596;
    /// layer2_2 as a plain block.
    pub const L22_PLAIN: u64 = 38_377_324;
    /// layer3_2 as an ODE block.
    pub const L32_ODE: u64 = 37_457_529;
    /// layer3_2 as a plain block.
    pub const L32_PLAIN: u64 = 38_974_196;
    /// conv1 pre-processing.
    pub const CONV1: u64 = 5_000_000;
    /// layer2_1 downsample block.
    pub const L21: u64 = 28_800_000;
    /// layer3_1 downsample block.
    pub const L31: u64 = 28_800_000;
    /// Pool + FC + softmax.
    pub const FC: u64 = 1_000_000;
    /// Per-inference framework overhead of the PYNQ software stack
    /// (the residue of the fit: ~38 ms — realistic for a Python-driven
    /// inference loop on the board).
    pub const RUNTIME: u64 = 24_927_250;
}

/// Multiply–accumulates of one block execution on `layer`.
pub fn block_macs(layer: LayerName, is_ode: bool) -> u64 {
    let (c, hw) = layer.geometry();
    let t = u64::from(is_ode);
    match layer {
        LayerName::Conv1 => 32 * 32 * 16 * 9 * 3,
        LayerName::Fc => 64 * 100,
        LayerName::Layer2_1 | LayerName::Layer3_1 => {
            let p = (hw * hw) as u64;
            let o = c as u64;
            let i = o / 2;
            p * o * 9 * i + p * o * 9 * o
        }
        _ => {
            let p = (hw * hw) as u64;
            let o = c as u64;
            2 * p * o * 9 * (o + t)
        }
    }
}

/// Element-wise work (BN + ReLU + residual add) of one block execution.
pub fn block_elems(layer: LayerName) -> u64 {
    let (c, hw) = layer.geometry();
    match layer {
        LayerName::Conv1 => (c * hw * hw * 2) as u64,
        LayerName::Fc => 64 * 64 + 300,
        _ => (c * hw * hw * 4) as u64,
    }
}

/// The PS (software) cost model.
#[derive(Clone, Copy, Debug)]
pub enum PsModel {
    /// Per-block costs fitted to Table 5 (default).
    Calibrated,
    /// Analytic: `cycles = macs·a + elems·b + c` per block execution.
    Analytic {
        /// Cycles per multiply–accumulate.
        cycles_per_mac: f64,
        /// Cycles per element-wise operation.
        cycles_per_elem: f64,
        /// Fixed cycles per block execution.
        cycles_per_block: f64,
    },
}

impl PsModel {
    /// The analytic model with constants matching the calibrated fit's
    /// global averages (≈ 7.6 cycles/MAC — a plausible scalar-FPU ARM).
    pub fn analytic_default() -> Self {
        PsModel::Analytic {
            cycles_per_mac: 7.6,
            cycles_per_elem: 12.0,
            cycles_per_block: 500_000.0,
        }
    }

    /// PS cycles for one execution of a residual-layer block.
    pub fn block_exec_cycles(&self, layer: LayerName, is_ode: bool) -> u64 {
        match self {
            PsModel::Calibrated => match (layer, is_ode) {
                (LayerName::Layer1, true) => calibrated::L1_ODE,
                (LayerName::Layer1, false) => calibrated::L1_PLAIN,
                (LayerName::Layer2_2, true) => calibrated::L22_ODE,
                (LayerName::Layer2_2, false) => calibrated::L22_PLAIN,
                (LayerName::Layer3_2, true) => calibrated::L32_ODE,
                (LayerName::Layer3_2, false) => calibrated::L32_PLAIN,
                (LayerName::Layer2_1, _) => calibrated::L21,
                (LayerName::Layer3_1, _) => calibrated::L31,
                (LayerName::Conv1, _) => calibrated::CONV1,
                (LayerName::Fc, _) => calibrated::FC,
            },
            PsModel::Analytic {
                cycles_per_mac,
                cycles_per_elem,
                cycles_per_block,
            } => {
                (block_macs(layer, is_ode) as f64 * cycles_per_mac
                    + block_elems(layer) as f64 * cycles_per_elem
                    + cycles_per_block) as u64
            }
        }
    }

    /// Per-inference fixed overhead outside the residual stages.
    pub fn runtime_overhead_cycles(&self) -> u64 {
        match self {
            PsModel::Calibrated => calibrated::RUNTIME,
            PsModel::Analytic { .. } => 10_000_000,
        }
    }

    /// Total PS cycles for a full software inference of `spec`.
    pub fn spec_cycles(&self, spec: &NetSpec) -> u64 {
        let mut total = self.block_exec_cycles(LayerName::Conv1, false)
            + self.block_exec_cycles(LayerName::Fc, false)
            + self.runtime_overhead_cycles();
        for layer in [
            LayerName::Layer1,
            LayerName::Layer2_1,
            LayerName::Layer2_2,
            LayerName::Layer3_1,
            LayerName::Layer3_2,
        ] {
            let plan = spec.plan(layer);
            total += (plan.total_execs() as u64) * self.block_exec_cycles(layer, plan.is_ode);
        }
        total
    }

    /// PS cycles for one stage of `execs` block runs — the integer
    /// counterpart of [`PsModel::stage_seconds`], for callers that
    /// accumulate several stages into one segment before converting
    /// (the cluster scheduler's merged PS segments).
    pub fn stage_cycles(&self, layer: LayerName, is_ode: bool, execs: usize) -> u64 {
        execs as u64 * self.block_exec_cycles(layer, is_ode)
    }

    /// PS seconds for one stage of `execs` block runs.
    pub fn stage_seconds(
        &self,
        layer: LayerName,
        is_ode: bool,
        execs: usize,
        board: &Board,
    ) -> f64 {
        board.ps_seconds(execs as u64 * self.block_exec_cycles(layer, is_ode))
    }

    /// Seconds for a full software inference.
    pub fn spec_seconds(&self, spec: &NetSpec, board: &Board) -> f64 {
        board.ps_seconds(self.spec_cycles(spec))
    }
}

/// The PL (circuit) timing model.
#[derive(Clone, Copy, Debug)]
pub struct PlModel {
    /// conv_x·n multiply–add units (16 is the paper's default).
    pub parallelism: usize,
}

impl Default for PlModel {
    fn default() -> Self {
        PlModel { parallelism: 16 }
    }
}

impl PlModel {
    /// Seconds for an offloaded stage of `execs` block runs (including
    /// the DMA round trip) at the configuration's closed clock.
    pub fn stage_seconds(&self, layer: LayerName, execs: usize, board: &Board) -> f64 {
        self.stage_seconds_at(layer, execs, board, 4)
    }

    /// [`PlModel::stage_seconds`] at an arbitrary PL word width: the
    /// compute cycles are width-independent, the DMA round trip scales
    /// with `bytes_per_value` (see [`crate::datapath::stage_cycles_at`]).
    pub fn stage_seconds_at(
        &self,
        layer: LayerName,
        execs: usize,
        board: &Board,
        bytes_per_value: usize,
    ) -> f64 {
        let clock = timing_closure_hz(self.parallelism).min(board.pl_clock_hz);
        crate::datapath::stage_cycles_at(layer, self.parallelism, execs, bytes_per_value) as f64
            / clock as f64
    }

    /// Per-image PL busy seconds of one board carrying every layer of
    /// `target` for `spec` (each ODE stage repeats its solver steps,
    /// plain stages run once; DMA included). This is the per-board
    /// term the partitioner's balanced search drives down — and a
    /// cheap lower bound on any schedule's makespan share for that
    /// board ([`crate::partition::Partitioner::BalancedMakespan`]
    /// prunes candidates with it before simulating).
    pub fn placement_seconds_at(
        &self,
        spec: &NetSpec,
        target: &OffloadTarget,
        board: &Board,
        bytes_per_value: usize,
    ) -> f64 {
        self.placement_seconds_by(spec, target, board, |_| bytes_per_value)
    }

    /// [`PlModel::placement_seconds_at`] with **per-stage** word
    /// widths: each stage's DMA share is priced at its own resolved
    /// format, so the partitioner's cost model sees mixed-precision
    /// deployments exactly as they will run.
    pub fn placement_seconds_with(
        &self,
        spec: &NetSpec,
        target: &OffloadTarget,
        board: &Board,
        formats: &StageFormats,
    ) -> f64 {
        self.placement_seconds_by(spec, target, board, |layer| formats.bytes_of(layer))
    }

    fn placement_seconds_by(
        &self,
        spec: &NetSpec,
        target: &OffloadTarget,
        board: &Board,
        bytes_of: impl Fn(LayerName) -> usize,
    ) -> f64 {
        target
            .layers()
            .iter()
            .map(|&layer| {
                let plan = spec.plan(layer);
                let execs = if plan.is_ode { plan.execs } else { 1 };
                self.stage_seconds_at(layer, execs, board, bytes_of(layer))
            })
            .sum()
    }
}

/// One row of Table 5.
#[derive(Clone, Debug)]
pub struct Table5Row {
    /// The architecture.
    pub variant: Variant,
    /// Depth N.
    pub n: usize,
    /// Offloaded layers (empty for the software baseline).
    pub offload: Vec<LayerName>,
    /// "Total w/o PL" — full software latency in seconds.
    pub total_wo_pl: f64,
    /// "Target w/o PL" — software latency of each offloaded stage.
    pub targets_wo_pl: Vec<f64>,
    /// "Ratio of target [%]".
    pub ratio_pct: Vec<f64>,
    /// "Target w/ PL" — circuit latency of each offloaded stage.
    pub targets_w_pl: Vec<f64>,
    /// "Total w/ PL".
    pub total_w_pl: f64,
    /// "Overall speedup" (total w/o ÷ total w/).
    pub speedup: f64,
}

/// Compute one Table 5 row (the paper's 32-bit PL datapath).
pub fn table5_row(
    variant: Variant,
    n: usize,
    offload: &OffloadTarget,
    ps: &PsModel,
    pl: &PlModel,
    board: &Board,
) -> Table5Row {
    table5_row_at(variant, n, offload, ps, pl, board, 4)
}

/// [`table5_row`] at an arbitrary PL word width: the PS side is
/// unchanged, the PL stage times see the narrower DMA transfers.
#[allow(clippy::too_many_arguments)]
pub fn table5_row_at(
    variant: Variant,
    n: usize,
    offload: &OffloadTarget,
    ps: &PsModel,
    pl: &PlModel,
    board: &Board,
    bytes_per_value: usize,
) -> Table5Row {
    table5_row_by(variant, n, offload, ps, pl, board, |_| bytes_per_value)
}

/// [`table5_row`] with **per-stage** word widths from a resolved
/// precision table: each offloaded stage's "Target w/ PL" cell pays
/// its own format's DMA share, so a mixed deployment's cached latency
/// decomposition prices every stage at the width it will execute in.
#[allow(clippy::too_many_arguments)]
pub fn table5_row_with(
    variant: Variant,
    n: usize,
    offload: &OffloadTarget,
    ps: &PsModel,
    pl: &PlModel,
    board: &Board,
    formats: &StageFormats,
) -> Table5Row {
    table5_row_by(variant, n, offload, ps, pl, board, |layer| {
        formats.bytes_of(layer)
    })
}

#[allow(clippy::too_many_arguments)]
fn table5_row_by(
    variant: Variant,
    n: usize,
    offload: &OffloadTarget,
    ps: &PsModel,
    pl: &PlModel,
    board: &Board,
    bytes_of: impl Fn(LayerName) -> usize,
) -> Table5Row {
    let spec = NetSpec::new(variant, n);
    let total_wo_pl = ps.spec_seconds(&spec, board);
    let mut targets_wo_pl = Vec::new();
    let mut targets_w_pl = Vec::new();
    let mut ratio_pct = Vec::new();
    for &layer in offload.layers() {
        let plan = spec.plan(layer);
        assert!(
            plan.stacked == 1,
            "only single-instance (ODE) layers are offloaded in the paper"
        );
        let wo = ps.stage_seconds(layer, plan.is_ode, plan.execs, board);
        let w = pl.stage_seconds_at(layer, plan.execs, board, bytes_of(layer));
        ratio_pct.push(100.0 * wo / total_wo_pl);
        targets_wo_pl.push(wo);
        targets_w_pl.push(w);
    }
    let total_w_pl =
        total_wo_pl - targets_wo_pl.iter().sum::<f64>() + targets_w_pl.iter().sum::<f64>();
    Table5Row {
        variant,
        n,
        offload: offload.layers().to_vec(),
        total_wo_pl,
        targets_wo_pl,
        ratio_pct,
        targets_w_pl,
        total_w_pl,
        speedup: total_wo_pl / total_w_pl,
    }
}

/// Overall speedup of an offloaded variant against the pure-software
/// ResNet-N baseline (the paper's "2.67× vs ResNet-56" quote).
pub fn speedup_vs_resnet(row: &Table5Row, ps: &PsModel, board: &Board) -> f64 {
    let resnet = ps.spec_seconds(&NetSpec::new(Variant::ResNet, row.n), board);
    resnet / row.total_w_pl
}

/// Default board + paper configuration row helper.
pub fn paper_row(variant: Variant, n: usize) -> Table5Row {
    table5_row(
        variant,
        n,
        &OffloadTarget::paper_default(variant),
        &PsModel::Calibrated,
        &PlModel::default(),
        &PYNQ_Z2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(variant: Variant, n: usize) -> Table5Row {
        paper_row(variant, n)
    }

    #[test]
    fn resnet_totals_match_table5() {
        for (n, expect) in [(20, 0.54), (32, 0.89), (44, 1.24), (56, 1.58)] {
            let r = row(Variant::ResNet, n);
            assert!(
                (r.total_wo_pl - expect).abs() < 0.015,
                "ResNet-{n}: {:.3} vs {expect}",
                r.total_wo_pl
            );
            assert!(r.offload.is_empty());
        }
    }

    #[test]
    fn rodenet3_row_matches_table5() {
        // The paper's headline row: rODENet-3-56.
        let r = row(Variant::ROdeNet3, 56);
        assert!(
            (r.total_wo_pl - 1.57).abs() < 0.02,
            "total w/o {}",
            r.total_wo_pl
        );
        assert!(
            (r.targets_wo_pl[0] - 1.38).abs() < 0.02,
            "target w/o {}",
            r.targets_wo_pl[0]
        );
        assert!(
            (r.ratio_pct[0] - 87.87).abs() < 1.0,
            "ratio {}",
            r.ratio_pct[0]
        );
        assert!(
            (r.targets_w_pl[0] - 0.40).abs() < 0.005,
            "target w/ {}",
            r.targets_w_pl[0]
        );
        assert!(
            (r.total_w_pl - 0.59).abs() < 0.02,
            "total w/ {}",
            r.total_w_pl
        );
        assert!((r.speedup - 2.66).abs() < 0.1, "speedup {}", r.speedup);
    }

    #[test]
    fn pl_targets_match_all_20_cells() {
        // "Target w/ PL" column for every offloaded row of Table 5.
        let cells: [(Variant, usize, &[f64]); 5] = [
            (Variant::ROdeNet1, 20, &[0.15]),
            (Variant::ROdeNet2, 20, &[0.11]),
            (Variant::ROdeNet12, 20, &[0.09, 0.06]),
            (Variant::ROdeNet3, 20, &[0.10]),
            (Variant::Hybrid3, 20, &[0.03]),
        ];
        for (v, n, expect) in cells {
            let r = row(v, n);
            for (got, want) in r.targets_w_pl.iter().zip(expect) {
                assert!((got - want).abs() < 0.006, "{v}-{n}: {got:.4} vs {want}");
            }
        }
        for (n, expect) in [(32, 0.29), (44, 0.42), (56, 0.55)] {
            let r = row(Variant::ROdeNet1, n);
            assert!((r.targets_w_pl[0] - expect).abs() < 0.006, "rODENet-1-{n}");
        }
        for (n, expect) in [(32, 0.22), (44, 0.33), (56, 0.44)] {
            let r = row(Variant::ROdeNet2, n);
            assert!((r.targets_w_pl[0] - expect).abs() < 0.006, "rODENet-2-{n}");
        }
        for (n, expect) in [(32, 0.20), (44, 0.30), (56, 0.40)] {
            let r = row(Variant::ROdeNet3, n);
            assert!((r.targets_w_pl[0] - expect).abs() < 0.006, "rODENet-3-{n}");
        }
        for (n, expect) in [(32, 0.07), (44, 0.10), (56, 0.13)] {
            let r = row(Variant::Hybrid3, n);
            assert!((r.targets_w_pl[0] - expect).abs() < 0.006, "Hybrid-3-{n}");
        }
    }

    #[test]
    fn speedups_track_table5_shape() {
        // rODENet speedups grow with N and beat ODENet-3/Hybrid-3 at
        // every depth (the paper's central performance claim).
        let mut last = 0.0;
        for n in [20usize, 32, 44, 56] {
            let r3 = row(Variant::ROdeNet3, n);
            assert!(r3.speedup > last, "monotone in N");
            last = r3.speedup;
            let h3 = row(Variant::Hybrid3, n);
            assert!(r3.speedup > h3.speedup, "rODENet-3 ≥ Hybrid-3 at N={n}");
            assert!(h3.speedup > 1.1, "even Hybrid-3 gains");
        }
        // Largest overall speedup: rODENet-3-56 ≈ 2.66.
        let r = row(Variant::ROdeNet3, 56);
        assert!(r.speedup > 2.5 && r.speedup < 2.8);
    }

    #[test]
    fn ratio_of_target_bands() {
        // §4.4: layer3_2 is 21–30 % of ODENet-3/Hybrid-3 but 64–88 % of
        // rODENet-3.
        for n in [20usize, 32, 44, 56] {
            let h = row(Variant::Hybrid3, n);
            assert!(
                h.ratio_pct[0] > 18.0 && h.ratio_pct[0] < 32.0,
                "Hybrid-3-{n}: {}",
                h.ratio_pct[0]
            );
            let r = row(Variant::ROdeNet3, n);
            assert!(
                r.ratio_pct[0] > 60.0 && r.ratio_pct[0] < 90.0,
                "rODENet-3-{n}: {}",
                r.ratio_pct[0]
            );
        }
    }

    #[test]
    fn cross_variant_speedup_quote() {
        // "rODENet-3-56 is 2.67 times faster than a software execution of
        //  ResNet-56."
        let r = row(Variant::ROdeNet3, 56);
        let s = speedup_vs_resnet(&r, &PsModel::Calibrated, &PYNQ_Z2);
        assert!((s - 2.67).abs() < 0.1, "{s}");
    }

    #[test]
    fn placement_seconds_sum_the_stages() {
        // One board carrying a multi-layer placement is busy for the
        // sum of its stage times — identical to the "Target w/ PL"
        // cells of the Table 5 row for the same placement.
        let pl = PlModel::default();
        let spec = NetSpec::new(Variant::OdeNet, 56);
        for target in [
            OffloadTarget::None,
            OffloadTarget::Layer1,
            OffloadTarget::Layer1And22,
            OffloadTarget::AllOde,
        ] {
            let busy = pl.placement_seconds_at(&spec, &target, &PYNQ_Z2, 2);
            let row = table5_row_at(
                spec.variant,
                spec.n,
                &target,
                &PsModel::Calibrated,
                &pl,
                &PYNQ_Z2,
                2,
            );
            let expect: f64 = row.targets_w_pl.iter().sum();
            assert!(
                (busy - expect).abs() < 1e-12,
                "{target:?}: {busy} vs {expect}"
            );
        }
        assert_eq!(
            pl.placement_seconds_at(&spec, &OffloadTarget::None, &PYNQ_Z2, 2),
            0.0
        );
    }

    #[test]
    fn analytic_model_is_same_order() {
        let cal = PsModel::Calibrated;
        let ana = PsModel::analytic_default();
        let spec = NetSpec::new(Variant::ResNet, 32);
        let a = cal.spec_seconds(&spec, &PYNQ_Z2);
        let b = ana.spec_seconds(&spec, &PYNQ_Z2);
        assert!((a / b - 1.0).abs() < 0.3, "calibrated {a} vs analytic {b}");
    }

    #[test]
    fn macs_match_design_doc() {
        assert_eq!(block_macs(LayerName::Layer3_2, true), 4_792_320);
        assert_eq!(block_macs(LayerName::Layer3_2, false), 4_718_592);
        assert_eq!(block_macs(LayerName::Layer1, true), 5_013_504);
        assert_eq!(block_macs(LayerName::Layer2_1, false), 3_538_944);
        assert_eq!(block_macs(LayerName::Conv1, false), 442_368);
    }
}
