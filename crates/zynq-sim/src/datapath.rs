//! The ODEBlock datapath: cycle-accurate timing + bit-exact Q20 execution.
//!
//! ## Cycle model (§3.1)
//!
//! The convolution engine is a non-pipelined multiply–add loop: for every
//! output position it iterates over `ceil(O/n)` output-channel groups; a
//! group performs the `9·C` multiply–adds of a 3×3 window over the C data
//! channels at **5 cycles per MAC** plus 3 cycles of group bookkeeping.
//! Each position additionally pays a window-load/write-back overhead of
//! `2·9·C + O + 49` cycles (loading the 3×3×C window into the operand
//! registers at 2 cycles per word, writing O outputs through the ReLU
//! mux, and fixed control). The t-channel contribution rides the bias
//! path of the MAC array and does not lengthen the loop.
//!
//! ```text
//! conv_cycles(n) = P·⌈O/n⌉·(9·C·5 + 3) + P·(2·9·C + O + 49)
//! ```
//!
//! For layer3_2 (P = 64, O = C = 64) the two convolutions of one block
//! take 23 779 456 / 6 066 304 / 3 114 112 / 1 638 016 / 899 968 cycles
//! at n = 1/4/8/16/32 — the paper reports 23.78M / 6.07M / 3.12M / 1.64M
//! / 0.90M (the n = 8 cell differs by 0.2 %, inside the paper's rounding).
//!
//! Batch-norm statistics accumulate in parallel with the convolution
//! write-back; only the divider and square-root latencies remain on the
//! critical path (34 cycles each, one mean division + one σ root + one
//! reciprocal per channel). The Euler update is folded into write-back.
//!
//! ## Numerics
//!
//! Execution delegates to [`rodenet::QuantBlock`] over [`qfixed::Q20`] —
//! the same wide-accumulate / truncate-once semantics as the DSP48
//! cascade, so the simulator's outputs are bit-exact with a Q20 software
//! reference by construction (tested in `tests/`).

use crate::board::Board;
#[cfg(test)]
use crate::board::PYNQ_Z2;
use crate::resources::{layer_geom, timing_closure_hz, LayerGeom};
use qfixed::Q20;
use rodenet::{LayerName, QuantBlock, ResBlock};
use tensor::{Scalar, Tensor};

/// Cycles per multiply–add in the non-pipelined conv loop.
pub const MAC_CYCLES: u64 = 5;
/// Bookkeeping cycles per output-channel group.
pub const GROUP_CYCLES: u64 = 3;
/// Fixed per-position control cycles.
pub const POS_FIXED_CYCLES: u64 = 49;
/// Divider latency (32-bit restoring divider: one bit per cycle + setup).
pub const DIV_CYCLES: u64 = 34;
/// Square-root unit latency (non-restoring, one bit pair per cycle).
pub const SQRT_CYCLES: u64 = 34;

/// Cycles of one 3×3 convolution over `geom` with `n` multiply–add units.
pub fn conv_cycles(geom: LayerGeom, n: usize) -> u64 {
    assert!(n >= 1 && n <= geom.c);
    let p = (geom.hw * geom.hw) as u64;
    let o = geom.c as u64;
    let c = geom.c as u64;
    let groups = o.div_ceil(n as u64);
    let per_group = 9 * c * MAC_CYCLES + GROUP_CYCLES;
    let per_pos_overhead = 2 * 9 * c + o + POS_FIXED_CYCLES;
    p * groups * per_group + p * per_pos_overhead
}

/// Post-accumulation batch-norm cycles for one BN (statistics are
/// pipelined with write-back; div/sqrt/reciprocal remain).
pub fn bn_cycles(geom: LayerGeom) -> u64 {
    geom.c as u64 * (DIV_CYCLES + SQRT_CYCLES + DIV_CYCLES)
}

/// Cycles of one full block execution: two convolutions + two batch
/// norms (ReLU and the Euler update ride the write-back path).
pub fn block_exec_cycles(layer: LayerName, n: usize) -> u64 {
    let geom = layer_geom(layer);
    2 * conv_cycles(geom, n) + 2 * bn_cycles(geom)
}

/// AXI DMA words to enter + leave an offloaded stage (1 cycle per 32-bit
/// word — the paper's stated optimistic assumption). The feature map
/// stays resident in BRAM between repeated executions.
pub fn dma_words(layer: LayerName) -> u64 {
    dma_words_at(layer, 4)
}

/// AXI DMA 32-bit bus words at an arbitrary element width: a 16-bit
/// feature map packs two values per bus word, halving the transfer
/// (the footnote-2 reduced-width datapath).
pub fn dma_words_at(layer: LayerName, bytes_per_value: usize) -> u64 {
    let geom = layer_geom(layer);
    (2 * geom.c * geom.hw * geom.hw * bytes_per_value).div_ceil(4) as u64
}

/// Cycles for a whole offloaded stage: `execs` block runs + one DMA
/// round trip.
pub fn stage_cycles(layer: LayerName, n: usize, execs: usize) -> u64 {
    stage_cycles_at(layer, n, execs, 4)
}

/// [`stage_cycles`] at an arbitrary element width (the compute cycles
/// are width-independent — the MAC loop issues one multiply–add per
/// element either way — but the DMA round trip shrinks with the word).
pub fn stage_cycles_at(layer: LayerName, n: usize, execs: usize, bytes_per_value: usize) -> u64 {
    execs as u64 * block_exec_cycles(layer, n) + dma_words_at(layer, bytes_per_value)
}

/// Outcome of a simulated accelerator invocation.
#[derive(Clone, Debug)]
pub struct AccelRun<S: Scalar = Q20> {
    /// The output feature map in the circuit's number system, bit-exact
    /// with the hardware.
    pub output: Tensor<S>,
    /// Modelled PL cycles consumed.
    pub cycles: u64,
    /// Modelled wall-clock seconds at the configured clock.
    pub seconds: f64,
}

/// A simulated ODEBlock accelerator: one layer's circuit configured with
/// `n` multiply–add units, holding the quantized parameters in its BRAM.
///
/// The scalar type `S` is the circuit's word format — [`Q20`] is the
/// paper's build; 16-bit formats ([`qfixed::Fix16`]) model the
/// footnote-2 reduced-width datapath (same cycle counts, half the DMA
/// words — see [`stage_cycles_at`]).
#[derive(Clone, Debug)]
pub struct OdeBlockAccel<S: Scalar = Q20> {
    /// The quantized block resident in BRAM.
    pub block: QuantBlock<S>,
    /// conv_x·n configuration.
    pub parallelism: usize,
    /// PL clock (defaults to the closed timing of the configuration).
    pub clock_hz: u64,
}

impl<S: Scalar> OdeBlockAccel<S> {
    /// Quantize `block` and load it into a simulated circuit with `n`
    /// multiply–add units on `board`.
    pub fn new(block: &ResBlock, parallelism: usize, board: &Board) -> Self {
        assert_eq!(
            block.stride, 1,
            "the PL circuit implements shape-preserving blocks"
        );
        let clock = timing_closure_hz(parallelism).min(board.pl_clock_hz);
        OdeBlockAccel {
            block: block.quantize(),
            parallelism,
            clock_hz: clock,
        }
    }

    /// Execute the block once (one Euler step evaluation + update is done
    /// by the caller); returns `f(z, t)` with cycle accounting.
    pub fn run_f(&self, z: &Tensor<S>, t: S) -> AccelRun<S> {
        let output = self.block.f_eval(z, t);
        let cycles = block_exec_cycles(self.block.layer, self.parallelism);
        AccelRun {
            output,
            cycles,
            seconds: cycles as f64 / self.clock_hz as f64,
        }
    }

    /// Execute the stage as the hardware does: DMA in, `execs` Euler
    /// steps with the feature map resident in BRAM, DMA out.
    pub fn run_stage(&self, z: &Tensor<S>, execs: usize) -> AccelRun<S> {
        let output = if self.block.time_aug {
            self.block.ode_forward(z, execs)
        } else {
            assert_eq!(execs, 1, "plain blocks execute once");
            self.block.residual_forward(z)
        };
        let cycles = stage_cycles_at(self.block.layer, self.parallelism, execs, S::BYTES);
        AccelRun {
            output,
            cycles,
            seconds: cycles as f64 / self.clock_hz as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::Shape4;

    #[test]
    fn section31_layer3_2_cycle_counts() {
        // The five published layer3_2 numbers (both convs, in Mcycles).
        let geom = layer_geom(LayerName::Layer3_2);
        let expect = [
            (1usize, 23.78),
            (4, 6.07),
            (8, 3.12), // paper prints 3.12; the exact A/n law gives 3.114
            (16, 1.64),
            (32, 0.90),
        ];
        for (n, m) in expect {
            let got = 2.0 * conv_cycles(geom, n) as f64 / 1e6;
            assert!(
                (got - m).abs() < 0.011,
                "conv_x{n}: {got:.3}M vs paper {m}M"
            );
        }
        // And the exactly-reproduced cells:
        assert_eq!(2 * conv_cycles(geom, 1), 23_779_456);
        assert_eq!(2 * conv_cycles(geom, 4), 6_066_304);
        assert_eq!(2 * conv_cycles(geom, 16), 1_638_016);
        assert_eq!(2 * conv_cycles(geom, 32), 899_968);
    }

    #[test]
    fn cycles_scale_inversely_with_macs() {
        let geom = layer_geom(LayerName::Layer2_2);
        let c1 = conv_cycles(geom, 1);
        let c16 = conv_cycles(geom, 16);
        // "execution cycles decrease in inverse proportion" modulo the
        // fixed per-position overhead.
        let ratio = c1 as f64 / c16 as f64;
        assert!(ratio > 10.0 && ratio < 16.0, "{ratio}");
    }

    #[test]
    fn footnote1_conv_dominates_at_x1() {
        // "The two convolution steps consume about 99% of execution
        // cycles of layer3_2 when only a single multiply-add unit is used".
        let layer = LayerName::Layer3_2;
        let conv = 2 * conv_cycles(layer_geom(layer), 1);
        let total = block_exec_cycles(layer, 1);
        let ratio = conv as f64 / total as f64;
        assert!(ratio > 0.99, "conv share {ratio}");
    }

    #[test]
    fn bn_cycles_are_small() {
        let geom = layer_geom(LayerName::Layer3_2);
        assert_eq!(bn_cycles(geom), 64 * 102);
        let share =
            (2 * bn_cycles(geom)) as f64 / block_exec_cycles(LayerName::Layer3_2, 16) as f64;
        assert!(share < 0.01, "{share}");
    }

    #[test]
    fn dma_words_match_feature_maps() {
        assert_eq!(dma_words(LayerName::Layer3_2), 2 * 64 * 64);
        assert_eq!(dma_words(LayerName::Layer1), 2 * 16 * 1024);
    }

    #[test]
    fn accel_is_bit_exact_with_quantized_reference() {
        let mut rng = StdRng::seed_from_u64(77);
        let block = ResBlock::new(&mut rng, LayerName::Layer1, true);
        let accel = OdeBlockAccel::new(&block, 16, &PYNQ_Z2);
        use rand::Rng;
        let x = Tensor::<f32>::from_fn(Shape4::new(1, 16, 32, 32), |_, _, _, _| {
            rng.random::<f32>() - 0.5
        });
        let xq: Tensor<Q20> = Tensor::from_f32_tensor(&x);
        let reference = block.quantize::<Q20>().ode_forward(&xq, 3);
        let run = accel.run_stage(&xq, 3);
        assert_eq!(
            run.output.as_slice(),
            reference.as_slice(),
            "simulated PL must equal the Q20 software reference bit-for-bit"
        );
    }

    #[test]
    fn stage_timing_rodenet3_56() {
        // 24 executions of layer3_2 at conv_x16, 100 MHz → ≈ 0.40 s
        // (Table 5 "Target w/ PL").
        let cycles = stage_cycles(LayerName::Layer3_2, 16, 24);
        let secs = PYNQ_Z2.pl_seconds(cycles);
        assert!((secs - 0.40).abs() < 0.005, "{secs}");
    }

    #[test]
    fn reduced_width_halves_dma() {
        assert_eq!(dma_words_at(LayerName::Layer3_2, 2), 64 * 64);
        assert_eq!(
            dma_words_at(LayerName::Layer3_2, 4),
            dma_words(LayerName::Layer3_2)
        );
        // Compute cycles are width-independent; only the DMA share shrinks.
        let full = stage_cycles_at(LayerName::Layer3_2, 16, 6, 4);
        let half = stage_cycles_at(LayerName::Layer3_2, 16, 6, 2);
        assert_eq!(full - half, dma_words(LayerName::Layer3_2) / 2);
    }

    #[test]
    fn sixteen_bit_accel_is_bit_exact_with_fix16_reference() {
        use qfixed::Fix16;
        let mut rng = StdRng::seed_from_u64(91);
        let block = ResBlock::new(&mut rng, LayerName::Layer1, true);
        let accel: OdeBlockAccel<Fix16<10>> = OdeBlockAccel::new(&block, 16, &PYNQ_Z2);
        use rand::Rng;
        let x = Tensor::<f32>::from_fn(Shape4::new(1, 16, 16, 16), |_, _, _, _| {
            rng.random::<f32>() - 0.5
        });
        let xq: Tensor<Fix16<10>> = Tensor::from_f32_tensor(&x);
        let reference = block.quantize::<Fix16<10>>().ode_forward(&xq, 2);
        let run = accel.run_stage(&xq, 2);
        assert_eq!(run.output.as_slice(), reference.as_slice());
        assert_eq!(
            run.cycles,
            stage_cycles_at(LayerName::Layer1, 16, 2, 2),
            "16-bit stage pays half the DMA words"
        );
    }

    #[test]
    fn conv_x32_runs_at_reduced_clock() {
        let mut rng = StdRng::seed_from_u64(5);
        let block = ResBlock::new(&mut rng, LayerName::Layer3_2, true);
        let accel: OdeBlockAccel = OdeBlockAccel::new(&block, 32, &PYNQ_Z2);
        assert!(accel.clock_hz < 100_000_000);
    }
}
