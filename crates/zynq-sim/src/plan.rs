//! Deployment planning — placement, resources, and timing **without
//! numerics**.
//!
//! A [`DeploymentPlan`] is everything [`crate::engine::EngineBuilder::build`]
//! decides *before* any weight is quantized or any tensor is touched:
//! the resolved [`OffloadTarget`], the per-stage width-aware resource
//! report, and the full input-independent latency decomposition (the
//! configuration's Table 5 row). Because the paper's timing model is
//! input-independent, a plan answers every "how fast / does it fit /
//! what would it cost" question by itself — build one with
//! [`plan_deployment`] (from a bare [`NetSpec`]) or
//! [`crate::engine::EngineBuilder::plan`] (from a builder), inspect it,
//! and only then pay for an [`crate::engine::Engine`].
//!
//! The PL word width is a first-class plan parameter, resolved **per
//! stage** ([`PlFormat`] entries in a
//! [`crate::precision::StageFormats`] table): the paper's footnote 2
//! observes that reduced bit widths "can implement more layers in PL
//! part", and each stage's width flows through the BRAM/DSP
//! feasibility check ([`OffloadTarget::fits_with`]) and the DMA share
//! of the timing model, so a 16-bit plan can legally choose the
//! layer3_2-sharing placements a 32-bit plan must reject — and a mixed
//! plan can pair a Q20 layer1 with a Q16 layer3_2 on one fabric.
//!
//! An [`crate::engine::Offload::Auto`] request resolves through the
//! unified partitioner cost path ([`crate::partition`]) — the same
//! search [`crate::cluster::plan_cluster`] runs, with this plan's
//! board as a 1-board cluster — so single-board and sharded plans can
//! never disagree about which placement is fastest.

use crate::board::{Board, PYNQ_Z2};
use crate::engine::{BackendKind, EngineError, Offload};
use crate::planner::{plan_offload_extended_with, plan_offload_with, OffloadTarget};
use crate::precision::StageFormats;
use crate::resources::{bram36_at_width, dsp_slices_at_width, modelled_lut_ff_at};
use crate::timing::{table5_row_with, PlModel, PsModel, Table5Row};
use qfixed::QFormat;
use rodenet::{BnMode, LayerName, NetSpec};

/// The PL datapath word format, chosen at plan time.
///
/// [`PlFormat::Q20`] is the paper's 32-bit build and the default;
/// [`PlFormat::Q16`] is the footnote-2 16-bit datapath with a
/// selectable binary point; [`PlFormat::Custom`] admits any
/// [`QFormat`] for planning/analysis (execution additionally requires
/// one of the widths the engine can instantiate — see
/// [`crate::engine::EngineBuilder::precision`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PlFormat {
    /// The paper's 32-bit Q11.20 datapath.
    #[default]
    Q20,
    /// A 16-bit datapath with `frac` fractional bits (Q(15−frac).frac).
    Q16 {
        /// Fractional bits (must be below 16).
        frac: u32,
    },
    /// Any runtime-described format.
    Custom(QFormat),
}

impl PlFormat {
    /// The `(total_bits, frac_bits)` pair this format describes, before
    /// any validity checking.
    pub(crate) fn bits(&self) -> (u32, u32) {
        match *self {
            PlFormat::Q20 => (32, 20),
            PlFormat::Q16 { frac } => (16, frac),
            PlFormat::Custom(f) => (f.total_bits, f.frac_bits),
        }
    }

    /// Whether two formats describe the same bit layout, regardless of
    /// how they are spelled — `Q20`, `Q16 { frac }`, and
    /// `Custom(QFormat)` can all name the same width (calibration
    /// always emits `Custom`), and policy-level comparisons must not
    /// depend on the spelling.
    pub fn same_layout(&self, other: &PlFormat) -> bool {
        self.bits() == other.bits()
    }

    /// Whether the described bit layout is structurally invalid
    /// (zero-width, `frac ≥ total bits`, or wider than 64 bits) — the
    /// single definition behind [`PlFormat::qformat`]'s rejection and
    /// the error message wording. Degenerate formats cannot even plan;
    /// contrast [`PlFormat::has_datapath`], which gates execution only.
    pub fn is_degenerate(&self) -> bool {
        let (total, frac) = self.bits();
        !(2..=64).contains(&total) || frac >= total
    }

    /// The format as a runtime [`QFormat`] description, or an
    /// [`EngineError::UnsupportedFormat`] when
    /// [degenerate](PlFormat::is_degenerate).
    pub fn qformat(&self) -> Result<QFormat, EngineError> {
        let (total, frac) = self.bits();
        if self.is_degenerate() {
            return Err(EngineError::UnsupportedFormat {
                total_bits: total,
                frac_bits: frac,
                stage: None,
            });
        }
        Ok(QFormat::new(total, frac))
    }

    /// Storage bytes per value (what the BRAM/DMA models charge).
    pub fn bytes(&self) -> Result<usize, EngineError> {
        Ok(self.qformat()?.bytes())
    }

    /// The `(total_bits, frac_bits)` pairs the engine has a
    /// monomorphized datapath for — the single source of truth behind
    /// [`PlFormat::has_datapath`], the builder's dispatch, and the
    /// `UnsupportedFormat` error text. Everything else plans but does
    /// not execute.
    pub const EXECUTABLE_WIDTHS: &'static [(u32, u32)] = &[
        (32, 12),
        (32, 16),
        (32, 20),
        (32, 24),
        (16, 6),
        (16, 8),
        (16, 10),
        (16, 12),
    ];

    /// Whether [`crate::engine::EngineBuilder::build`] can instantiate
    /// a quantized datapath for this format (planning never needs this).
    pub fn has_datapath(&self) -> bool {
        self.qformat()
            .map(|q| Self::EXECUTABLE_WIDTHS.contains(&(q.total_bits, q.frac_bits)))
            .unwrap_or(false)
    }
}

impl core::fmt::Display for PlFormat {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.qformat() {
            Ok(q) => write!(f, "{q}"),
            Err(_) => write!(f, "{self:?} (degenerate)"),
        }
    }
}

/// Everything the builder decides, minus the engine: see module docs.
/// Constructed by [`plan_deployment`] /
/// [`crate::engine::EngineBuilder::plan`]; every accessor is pure — no
/// numerics ran and none will.
#[derive(Clone, Debug)]
pub struct DeploymentPlan {
    spec: NetSpec,
    board: Board,
    target: OffloadTarget,
    formats: StageFormats,
    backend: BackendKind,
    bn: BnMode,
    ps: PsModel,
    pl: PlModel,
    stages: Vec<PlannedStage>,
    timing: Table5Row,
}

/// One offloaded stage of a [`DeploymentPlan`]: placement + width-aware
/// resources + input-independent timing, all at the **stage's own**
/// resolved word format.
#[derive(Clone, Debug)]
pub struct PlannedStage {
    /// The offloaded layer.
    pub layer: LayerName,
    /// The word format this stage deploys in (per-stage policies give
    /// different stages different formats).
    pub format: PlFormat,
    /// Block executions per inference (ODE steps, or 1 for plain blocks).
    pub execs: usize,
    /// BRAM36-equivalents at the plan's word width.
    pub bram36: f64,
    /// DSP48E1 slices at the plan's word width.
    pub dsp: u32,
    /// Look-up tables at the plan's word width (control base fixed,
    /// datapath share scaled — see
    /// [`crate::resources::modelled_lut_ff_at`]).
    pub lut: u32,
    /// Flip-flops at the plan's word width.
    pub ff: u32,
    /// Modelled circuit seconds per inference (incl. DMA).
    pub pl_seconds: f64,
    /// 32-bit AXI bus words per inference.
    pub dma_words: u64,
    /// Parameter bytes the stage's circuit holds at this word width —
    /// the payload a replica broadcast ships (see [`crate::replica`])
    /// and the unit a failover re-broadcast is priced in (see
    /// [`crate::fault`]).
    pub param_bytes: u64,
}

/// The configuration a [`DeploymentPlan`] is computed from — the same
/// knobs as [`crate::engine::EngineBuilder`], minus the network (plans
/// are weight-free, which is also why this carries the *resolved*
/// [`StageFormats`] table rather than a
/// [`crate::precision::Precision`] policy: resolving
/// `Precision::Calibrated` needs weights, so the engine builder does
/// it before constructing the request). `Default` is the paper's
/// deployment: PYNQ-Z2, planner-chosen placement, calibrated PS model,
/// conv_x16, uniform Q20, on-the-fly batch norm.
#[derive(Clone, Copy, Debug)]
pub struct PlanRequest {
    /// Target device.
    pub board: Board,
    /// Placement policy.
    pub offload: Offload,
    /// Executing backend.
    pub backend: BackendKind,
    /// PS-side batch-norm statistics mode.
    pub bn: BnMode,
    /// PS software-cost model.
    pub ps: PsModel,
    /// PL circuit configuration.
    pub pl: PlModel,
    /// Resolved per-stage PL word formats (`PlFormat::Q20.into()` for
    /// the paper's uniform build).
    pub precision: StageFormats,
}

impl Default for PlanRequest {
    fn default() -> Self {
        PlanRequest {
            board: PYNQ_Z2,
            offload: Offload::Auto,
            backend: BackendKind::Auto,
            bn: BnMode::OnTheFly,
            ps: PsModel::Calibrated,
            pl: PlModel::default(),
            precision: StageFormats::uniform(PlFormat::Q20),
        }
    }
}

/// Resolve placement, backend, feasibility, and timing for `spec` —
/// the numerics-free half of [`crate::engine::EngineBuilder::build`].
///
/// Any structurally valid [`PlFormat`] plans, including widths the
/// engine cannot execute (an 8-bit plan is a legitimate resource-model
/// question); executability is checked when an engine is built from
/// the same configuration.
pub fn plan_deployment(spec: &NetSpec, req: &PlanRequest) -> Result<DeploymentPlan, EngineError> {
    req.precision.validate()?;

    // 1. Resolve the placement at the requested per-stage word widths.
    let target = match req.offload {
        Offload::Auto => plan_offload_with(
            spec,
            &req.board,
            req.pl.parallelism,
            &req.ps,
            &req.pl,
            &req.precision,
        ),
        Offload::AutoExtended => plan_offload_extended_with(
            spec,
            &req.board,
            req.pl.parallelism,
            &req.ps,
            &req.pl,
            &req.precision,
        ),
        Offload::Target(t) => {
            if !t.applicable_extended(spec) {
                return Err(EngineError::TargetNotApplicable {
                    target: t,
                    variant: spec.variant,
                });
            }
            if !t.fits_with(&req.board, req.pl.parallelism, &req.precision) {
                return Err(EngineError::InfeasiblePlacement {
                    target: t,
                    parallelism: req.pl.parallelism,
                });
            }
            t
        }
    };

    // 2. Resolve the backend and check conflicts.
    let backend = match req.backend {
        BackendKind::Auto => {
            if target == OffloadTarget::None {
                BackendKind::PsSoftware
            } else {
                BackendKind::Hybrid
            }
        }
        explicit => explicit,
    };
    if backend == BackendKind::PsSoftware && target != OffloadTarget::None {
        return Err(EngineError::BackendConflict {
            backend: "ps-software",
            target,
        });
    }
    if backend == BackendKind::PlBitExact && req.bn == BnMode::Running {
        return Err(EngineError::BnModeConflict {
            backend: "pl-bit-exact",
        });
    }

    // 3. Per-stage width-aware resources + timing — each stage at its
    //    own resolved word width — and the cached row.
    let stages = target
        .layers()
        .iter()
        .map(|&layer| {
            let plan = spec.plan(layer);
            let execs = if plan.is_ode { plan.execs } else { 1 };
            let bytes = req.precision.bytes_of(layer);
            let (lut, ff) = modelled_lut_ff_at(layer, req.pl.parallelism, bytes);
            PlannedStage {
                layer,
                format: req.precision.format_of(layer),
                execs,
                bram36: bram36_at_width(layer, req.pl.parallelism, bytes),
                dsp: dsp_slices_at_width(req.pl.parallelism, bytes),
                lut,
                ff,
                pl_seconds: req.pl.stage_seconds_at(layer, execs, &req.board, bytes),
                dma_words: crate::datapath::dma_words_at(layer, bytes),
                param_bytes: crate::resources::stage_param_bytes(spec, layer, bytes),
            }
        })
        .collect();
    let timing = table5_row_with(
        spec.variant,
        spec.n,
        &target,
        &req.ps,
        &req.pl,
        &req.board,
        &req.precision,
    );

    Ok(DeploymentPlan {
        spec: *spec,
        board: req.board,
        target,
        formats: req.precision,
        backend,
        bn: req.bn,
        ps: req.ps,
        pl: req.pl,
        stages,
        timing,
    })
}

impl DeploymentPlan {
    /// The architecture this plan deploys.
    pub fn spec(&self) -> &NetSpec {
        &self.spec
    }

    /// The configured device.
    pub fn board(&self) -> &Board {
        &self.board
    }

    /// The resolved placement.
    pub fn target(&self) -> OffloadTarget {
        self.target
    }

    /// The *base* PL word format of the plan's precision table — it
    /// silently under-reports a mixed table, which is why it is
    /// deprecated in favor of [`DeploymentPlan::precision`] (every
    /// stage's format) or [`PlannedStage::format`].
    #[deprecated(
        since = "0.2.0",
        note = "use `DeploymentPlan::precision()` — the precision surface is per-stage now"
    )]
    pub fn pl_format(&self) -> PlFormat {
        self.formats.base()
    }

    /// The resolved per-stage PL word-format table the plan was
    /// computed for.
    pub fn precision(&self) -> &StageFormats {
        &self.formats
    }

    /// The resolved (never `Auto`) backend kind.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend
    }

    /// The PS-side batch-norm statistics mode.
    pub fn bn_mode(&self) -> BnMode {
        self.bn
    }

    /// The PS cost model the timing was computed with.
    pub fn ps_model(&self) -> &PsModel {
        &self.ps
    }

    /// The PL circuit configuration (parallelism).
    pub fn pl_model(&self) -> &PlModel {
        &self.pl
    }

    /// The offloaded stages with width-aware resources and timing.
    pub fn stages(&self) -> &[PlannedStage] {
        &self.stages
    }

    /// The configuration's Table 5 row, cached at plan time — serve
    /// latency queries from here without executing any inference
    /// (`total_w_pl` is what [`crate::engine::RunReport::total_seconds`]
    /// will report for this configuration).
    pub fn table5(&self) -> &Table5Row {
        &self.timing
    }

    /// Modelled end-to-end seconds per image for this configuration.
    pub fn total_seconds(&self) -> f64 {
        self.timing.total_w_pl
    }

    /// Modelled PL seconds per image across all offloaded stages.
    pub fn pl_seconds(&self) -> f64 {
        self.stages.iter().map(|s| s.pl_seconds).sum()
    }

    /// Modelled PS seconds per image (total minus the PL share).
    pub fn ps_seconds(&self) -> f64 {
        self.total_seconds() - self.pl_seconds()
    }

    /// 32-bit AXI bus words per image.
    pub fn dma_words(&self) -> u64 {
        self.stages.iter().map(|s| s.dma_words).sum()
    }

    /// Total BRAM36-equivalents of the planned circuits at the plan's
    /// word width.
    pub fn bram36_used(&self) -> f64 {
        self.stages.iter().map(|s| s.bram36).sum()
    }

    /// Total DSP48E1 slices of the planned circuits.
    pub fn dsp_used(&self) -> u32 {
        self.stages.iter().map(|s| s.dsp).sum()
    }

    /// One-line human description for logs and examples.
    pub fn describe(&self) -> String {
        format!(
            "{} · {} · {:?} ({} PL stage{}, {:.1} BRAM36) · {:.3}s/img",
            self.spec.display_name(),
            self.formats,
            self.target,
            self.stages.len(),
            if self.stages.len() == 1 { "" } else { "s" },
            self.bram36_used(),
            self.total_seconds(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodenet::Variant;

    #[test]
    fn default_plan_matches_paper_row() {
        let spec = NetSpec::new(Variant::ROdeNet3, 56);
        let plan = plan_deployment(&spec, &PlanRequest::default()).expect("plans");
        assert_eq!(plan.target(), OffloadTarget::Layer32);
        assert_eq!(plan.backend_kind(), BackendKind::Hybrid);
        let row = crate::timing::paper_row(Variant::ROdeNet3, 56);
        assert_eq!(plan.table5().total_w_pl, row.total_w_pl);
        assert_eq!(plan.total_seconds(), plan.ps_seconds() + plan.pl_seconds());
        assert_eq!(plan.dma_words(), 2 * 64 * 64);
        assert_eq!(plan.bram36_used(), 140.0);
    }

    #[test]
    fn sixteen_bit_plan_admits_layer32_combos() {
        let spec = NetSpec::new(Variant::OdeNet, 20);
        let req = PlanRequest {
            precision: PlFormat::Q16 { frac: 10 }.into(),
            ..PlanRequest::default()
        };
        let plan = plan_deployment(&spec, &req).expect("16-bit plans");
        assert_eq!(plan.target(), OffloadTarget::AllOde);
        assert!(plan.bram36_used() <= PYNQ_Z2.bram36 as f64);
        // The same placement is a typed error at the paper's width.
        let err = plan_deployment(
            &spec,
            &PlanRequest {
                offload: Offload::Target(OffloadTarget::AllOde),
                ..PlanRequest::default()
            },
        )
        .expect_err("AllOde cannot fit at 32-bit");
        assert!(matches!(err, EngineError::InfeasiblePlacement { .. }));
    }

    #[test]
    fn degenerate_format_is_a_typed_error() {
        let spec = NetSpec::new(Variant::ROdeNet3, 20);
        for format in [
            PlFormat::Q16 { frac: 16 },
            PlFormat::Custom(QFormat {
                total_bits: 80,
                frac_bits: 20,
            }),
        ] {
            let err = plan_deployment(
                &spec,
                &PlanRequest {
                    precision: format.into(),
                    ..PlanRequest::default()
                },
            )
            .expect_err("degenerate format");
            assert!(
                matches!(err, EngineError::UnsupportedFormat { .. }),
                "{format:?}"
            );
        }
    }

    #[test]
    fn eight_bit_plans_for_analysis() {
        // Analysis-only widths plan fine (engines reject them at build).
        let spec = NetSpec::new(Variant::OdeNet, 20);
        let req = PlanRequest {
            precision: PlFormat::Custom(QFormat::new(8, 4)).into(),
            ..PlanRequest::default()
        };
        let plan = plan_deployment(&spec, &req).expect("8-bit analysis plan");
        let plan16 = plan_deployment(
            &spec,
            &PlanRequest {
                precision: PlFormat::Q16 { frac: 10 }.into(),
                ..PlanRequest::default()
            },
        )
        .expect("16-bit plan");
        assert!(
            plan.bram36_used() <= plan16.bram36_used(),
            "8-bit ({}) uses no more BRAM than 16-bit ({})",
            plan.bram36_used(),
            plan16.bram36_used()
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", PlFormat::Q20), "Q11.20 (32-bit)");
        assert_eq!(format!("{}", PlFormat::Q16 { frac: 10 }), "Q5.10 (16-bit)");
    }
}
