//! Multi-board clusters — sharded placements and pipelined batch
//! scheduling.
//!
//! The paper deploys one ODENet on a single low-cost Zynq board;
//! footnote 2 observes that lighter blocks let *more* layers move into
//! the PL. The natural step past one board is several: a [`Cluster`] is
//! an ordered list of [`Board`]s joined by a modelled [`Interconnect`]
//! (board-to-board feature-map transfers at a finite bandwidth plus a
//! per-message latency), and a [`ClusterPlan`] extends the plan-centric
//! flow of [`crate::plan`] to it — [`plan_cluster`] resolves a
//! **sharded placement** (e.g. layer1 + layer2_2 on board A, layer3_2
//! on board B) with per-board width-aware feasibility and per-stage
//! timing that includes the inter-board DMA, all with zero numerics.
//!
//! ## Execution model
//!
//! Board 0 is the **head board**: its PS runs every software stage
//! (conv1, the downsample blocks, any non-offloaded residual stage, the
//! classifier) exactly as the single-board engine does; remote boards
//! contribute only their PL fabric. A feature map crosses the
//! interconnect whenever consecutive stages live on different boards;
//! PS ↔ PL traffic *within* the head board is the AXI DMA already
//! charged by [`crate::datapath::stage_cycles_at`]. Sharding therefore
//! changes *where* and *when* stages run — never the Q-format numerics
//! — so a sharded deployment stays bit-identical to a single-board one
//! with the same overall placement (pinned in `tests/cluster.rs`).
//!
//! ## Batch schedules
//!
//! A per-image inference is a fixed sequence of [`StageTiming`]s
//! (merged PS segments interleaved with PL stages). Two schedules turn
//! that sequence into a batch makespan:
//!
//! * [`Schedule::Sequential`] — one image fully completes before the
//!   next starts: the additive latency today's `infer_batch` reports.
//! * [`Schedule::Pipelined`] — an event-driven model in which each
//!   resource (the head PS, every board's PL) serves one stage at a
//!   time and a board starts image *i+1* as soon as it finishes its
//!   share of image *i*. The makespan approaches
//!   `latency + (images − 1) · bottleneck`, beating the additive bound
//!   whenever more than one resource carries work.
//!
//! Modelling assumptions (recorded in the ROADMAP): no PS preemption
//! (a PS segment runs to completion), one in-flight image per board,
//! and interconnect transfers occupy no board resource (the DMA engines
//! stream while the next compute stage waits on the data).
//!
//! Replication ([`crate::replica`]) adds three more: images map to a
//! stage's replicas **round-robin** (image `i` → replica `i mod k`, no
//! dynamic load balancing), the one-time weight broadcast to replica
//! boards overlaps deployment (reported in the plan, never added to a
//! makespan), and a hand-off into a replica is priced like the
//! hand-off into the primary (replica boards sit symmetric on the
//! modelled interconnect).
//!
//! Fault injection ([`crate::fault`]) perturbs this execution model
//! without changing it: a [`crate::fault::FaultPlan`] stretches stage
//! durations (slowdowns), defers starts (hangs), dilates transfers
//! (link degradation), or removes a board outright (crash →
//! drain-then-replan failover over the survivors). An empty plan is
//! bit-identical to [`pipelined_schedule_released`] by construction.

use crate::board::Board;
use crate::engine::{EngineError, Offload};
use crate::partition::{partition_with, select_with, shard_infeasible, Partitioner};
use crate::plan::{PlFormat, PlannedStage};
use crate::planner::OffloadTarget;
use crate::precision::StageFormats;
use crate::replica::{ReplicaPlan, Replication};
use crate::resources::{bram36_at_width, dsp_slices_at_width, modelled_lut_ff_at};
use crate::timing::{PlModel, PsModel};
use crate::trace::Recorder;
use rodenet::{BnMode, LayerName, NetSpec};

/// A modelled board-to-board link (point-to-point, full duplex).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interconnect {
    /// Sustained payload bandwidth in bytes per second.
    pub bandwidth_bytes_per_s: f64,
    /// Per-transfer setup latency in seconds (driver + NIC + switch).
    pub latency_s: f64,
}

impl Interconnect {
    /// The boards' on-board gigabit Ethernet port: 125 MB/s of payload
    /// and a 50 µs software-stack round-up per message.
    pub const GIGABIT_ETHERNET: Interconnect = Interconnect {
        bandwidth_bytes_per_s: 125_000_000.0,
        latency_s: 50e-6,
    };

    /// Seconds to move `bytes` across the link (zero for zero bytes —
    /// no message, no setup cost).
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency_s + bytes as f64 / self.bandwidth_bytes_per_s
    }
}

/// An ordered set of boards joined by an [`Interconnect`]. Board 0 is
/// the head board (see the module docs for the execution model).
#[derive(Clone, Debug, PartialEq)]
pub struct Cluster {
    boards: Vec<Board>,
    interconnect: Interconnect,
}

impl Cluster {
    /// A cluster over `boards` (at least one; the first is the head).
    pub fn new(boards: Vec<Board>, interconnect: Interconnect) -> Self {
        assert!(!boards.is_empty(), "a cluster needs at least one board");
        Cluster {
            boards,
            interconnect,
        }
    }

    /// `count` identical boards (the common lab rack).
    pub fn homogeneous(board: &Board, count: usize, interconnect: Interconnect) -> Self {
        Self::new(vec![*board; count], interconnect)
    }

    /// The member boards, head first.
    pub fn boards(&self) -> &[Board] {
        &self.boards
    }

    /// The head board — the PS that drives every inference.
    pub fn head(&self) -> &Board {
        &self.boards[0]
    }

    /// Number of member boards — **always ≥ 1**: [`Cluster::new`]
    /// rejects an empty board list, so a cluster deliberately carries
    /// no `is_empty` (the honest implementation would be a hardcoded
    /// `false`, which is worse than no method at all).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.boards.len()
    }

    /// The modelled board-to-board link.
    pub fn interconnect(&self) -> &Interconnect {
        &self.interconnect
    }
}

/// How a cluster engine orders a batch across the board pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Schedule {
    /// One image fully completes before the next starts (the additive
    /// latency of the single-board `infer_batch`).
    #[default]
    Sequential,
    /// Event-driven pipelining: board *k* starts image *i+1* as soon
    /// as it finishes its share of image *i*, and PS segments of later
    /// images fill the head CPU's idle slots.
    Pipelined,
}

/// The execution resource one pipeline stage occupies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageResource {
    /// The head board's ARM cores.
    Ps,
    /// Board `k`'s ARM cores (`k ≥ 1`) — the head of a replicated
    /// placement group (see [`crate::replica`]). The rack's overall
    /// head stays board 0's [`StageResource::Ps`].
    PsOn(usize),
    /// Board `k`'s PL fabric.
    Pl(usize),
}

impl StageResource {
    /// The board this resource physically lives on (the PS is the head
    /// board's) — decides whether a hand-off crosses the interconnect.
    pub fn board(&self) -> usize {
        match self {
            StageResource::Ps => 0,
            StageResource::PsOn(k) => *k,
            StageResource::Pl(k) => *k,
        }
    }

    /// Dense scheduling slot: board `k`'s PS is `2k`, its PL `2k + 1`,
    /// so every board contributes two independent resources and slots
    /// stay in board order (head PS first).
    pub fn slot(&self) -> usize {
        match self {
            StageResource::Ps => 0,
            StageResource::PsOn(k) => 2 * k,
            StageResource::Pl(k) => 2 * k + 1,
        }
    }

    /// Whether this is an ARM-side resource (any board's PS).
    pub fn is_ps(&self) -> bool {
        matches!(self, StageResource::Ps | StageResource::PsOn(_))
    }
}

/// One stage of the per-image pipeline: a merged PS segment or one
/// offloaded PL stage, with the interconnect hand-off that precedes it.
#[derive(Clone, Debug)]
pub struct StageTiming {
    /// Which resource executes the stage (the **primary** replica when
    /// `replicas` is non-empty).
    pub resource: StageResource,
    /// The offloaded layer (`None` for merged PS segments).
    pub layer: Option<LayerName>,
    /// Modelled execution seconds (PL stages include their AXI DMA).
    pub seconds: f64,
    /// Interconnect seconds to deliver this stage's input when the
    /// previous stage ran on a different board (0 otherwise).
    pub transfer_in: f64,
    /// Replica resources serving this stage round-robin: image `i` runs
    /// on `replicas[i % replicas.len()]`. Empty means unreplicated (the
    /// single `resource` serves every image); when non-empty the first
    /// entry **is** `resource`. See [`crate::replica`].
    pub replicas: Vec<StageResource>,
}

impl StageTiming {
    /// Every resource that can serve this stage (the primary alone when
    /// unreplicated).
    pub fn resources(&self) -> &[StageResource] {
        if self.replicas.is_empty() {
            std::slice::from_ref(&self.resource)
        } else {
            &self.replicas
        }
    }

    /// How many replicas serve this stage (≥ 1).
    pub fn replica_count(&self) -> usize {
        self.resources().len()
    }

    /// The resource that serves image `i` — round-robin over the
    /// replicas, the primary when unreplicated.
    pub fn resource_for(&self, image: usize) -> StageResource {
        let all = self.resources();
        all[image % all.len()]
    }
}

/// Bytes of one feature map entering/leaving `layer` at the given word
/// width (the payload of an inter-board hand-off).
pub fn feature_map_bytes(layer: LayerName, bytes_per_value: usize) -> u64 {
    let (c, hw) = layer.geometry();
    (c * hw * hw * bytes_per_value) as u64
}

/// A sharded placement as `(board index, per-board placement)` pairs,
/// in network order.
pub type ShardAssignment = Vec<(usize, OffloadTarget)>;

/// The slice of a sharded placement one board carries.
#[derive(Clone, Debug)]
pub struct BoardShard {
    /// Index of the carrying board in [`Cluster::boards`].
    pub board: usize,
    /// The layers this board implements, as a placement.
    pub target: OffloadTarget,
    /// Width-aware resources + timing per carried stage.
    pub stages: Vec<PlannedStage>,
}

/// Split `target`'s layers across the cluster's boards, first-fit in
/// network order (so feature maps flow forward through the board
/// list). Every shard is checked with the width-aware
/// [`OffloadTarget::fits_at`]; a layer that fits no remaining board
/// makes the whole placement infeasible — the returned
/// [`EngineError::ShardInfeasible`] names that layer and the board
/// capacities consulted. This is [`Partitioner::FirstFit`]; see
/// [`crate::partition`] for the cost-driven alternative.
pub fn shard_placement(
    target: OffloadTarget,
    cluster: &Cluster,
    parallelism: usize,
    bytes_per_value: usize,
) -> Result<ShardAssignment, EngineError> {
    shard_placement_with(
        target,
        cluster,
        parallelism,
        &crate::planner::uniform_for_bytes(bytes_per_value),
    )
}

/// [`shard_placement`] with **per-stage** word widths: every
/// first-fit feasibility probe prices each layer at its own resolved
/// format, so a mixed placement (layer1 at Q16 next to layer3_2 at
/// Q20) shards exactly as it will deploy. A degenerate format is a
/// typed [`EngineError::UnsupportedFormat`], never a panic.
pub fn shard_placement_with(
    target: OffloadTarget,
    cluster: &Cluster,
    parallelism: usize,
    formats: &StageFormats,
) -> Result<ShardAssignment, EngineError> {
    formats.validate()?;
    let infeasible =
        |stuck: LayerName| shard_infeasible(target, cluster, parallelism, formats, Some(stuck));
    let mut shards: ShardAssignment = Vec::new();
    let mut board = 0usize;
    let mut current: Vec<LayerName> = Vec::new();
    for &layer in target.layers() {
        loop {
            let mut candidate = current.clone();
            candidate.push(layer);
            let t = OffloadTarget::from_layers(&candidate).ok_or_else(|| infeasible(layer))?;
            if t.fits_with(&cluster.boards()[board], parallelism, formats) {
                current = candidate;
                break;
            }
            // Close the current shard and try the next board; a layer
            // that does not fit an *empty* board fits nowhere.
            if !current.is_empty() {
                let t = OffloadTarget::from_layers(&current).expect("validated above");
                shards.push((board, t));
                current.clear();
            }
            board += 1;
            if board >= cluster.len() {
                return Err(infeasible(layer));
            }
        }
    }
    if !current.is_empty() {
        let t = OffloadTarget::from_layers(&current).expect("validated above");
        shards.push((board, t));
    }
    Ok(shards)
}

/// The configuration a [`ClusterPlan`] is computed from — the cluster
/// analog of [`crate::plan::PlanRequest`].
#[derive(Clone, Debug)]
pub struct ClusterRequest {
    /// The boards and their interconnect.
    pub cluster: Cluster,
    /// Placement policy (resolved against the *cluster's* capacity).
    pub offload: Offload,
    /// PS-side batch-norm statistics mode.
    pub bn: BnMode,
    /// PS software-cost model (the head board's CPU).
    pub ps: PsModel,
    /// PL circuit configuration (applied on every board).
    pub pl: PlModel,
    /// Resolved per-stage PL word formats (each stage carries its own
    /// width to whichever board it shards onto;
    /// `PlFormat::Q20.into()` for a uniform build).
    pub precision: StageFormats,
    /// Batch execution order.
    pub schedule: Schedule,
    /// Shard-assignment strategy (see [`crate::partition`]).
    /// [`Partitioner::FirstFit`] reproduces the pre-partitioner greedy
    /// behavior; [`Partitioner::BalancedMakespan`] searches for the
    /// assignment minimizing the pipelined bottleneck busy time.
    pub partitioner: Partitioner,
    /// Replication policy: duplicate a bottleneck stage across fabrics
    /// or the whole placement across board groups (see
    /// [`crate::replica`]). [`Replication::None`] reproduces the
    /// unreplicated planner bit-for-bit.
    pub replication: Replication,
}

/// Everything the cluster builder decides, minus the engine: the
/// resolved sharded placement, per-board width-aware resources, the
/// per-image stage pipeline, and both batch-schedule makespans — all
/// without touching a weight.
#[derive(Clone, Debug)]
pub struct ClusterPlan {
    spec: NetSpec,
    cluster: Cluster,
    target: OffloadTarget,
    shards: Vec<BoardShard>,
    formats: StageFormats,
    bn: BnMode,
    ps: PsModel,
    pl: PlModel,
    schedule: Schedule,
    partitioner: Partitioner,
    timeline: Vec<StageTiming>,
    replica: Option<ReplicaPlan>,
}

/// Resolve a sharded placement, per-board feasibility, and the full
/// per-image pipeline for `spec` on a cluster — the numerics-free half
/// of a cluster engine build, exactly as [`crate::plan::plan_deployment`]
/// is for a single board.
pub fn plan_cluster(spec: &NetSpec, req: &ClusterRequest) -> Result<ClusterPlan, EngineError> {
    req.precision.validate()?;

    // 1. Resolve the overall placement at cluster capacity, splitting
    //    it under the request's partitioner and replication policy —
    //    `crate::replica::resolve` delegates to the same partition
    //    search as before when no replication is requested, so an
    //    unreplicated plan is bit-identical to the pre-replica planner.
    let resolved = crate::replica::resolve(spec, req)?;
    let (target, shards, timeline, replica) = (
        resolved.target,
        resolved.shards,
        resolved.timeline,
        resolved.plan,
    );

    let shards = shards
        .into_iter()
        .map(|(board, t)| BoardShard {
            board,
            target: t,
            stages: t
                .layers()
                .iter()
                .map(|&layer| {
                    let plan = spec.plan(layer);
                    let execs = if plan.is_ode { plan.execs } else { 1 };
                    let bytes = req.precision.bytes_of(layer);
                    let (lut, ff) = modelled_lut_ff_at(layer, req.pl.parallelism, bytes);
                    PlannedStage {
                        layer,
                        format: req.precision.format_of(layer),
                        execs,
                        bram36: bram36_at_width(layer, req.pl.parallelism, bytes),
                        dsp: dsp_slices_at_width(req.pl.parallelism, bytes),
                        lut,
                        ff,
                        pl_seconds: req.pl.stage_seconds_at(
                            layer,
                            execs,
                            &req.cluster.boards()[board],
                            bytes,
                        ),
                        dma_words: crate::datapath::dma_words_at(layer, bytes),
                        param_bytes: crate::resources::stage_param_bytes(spec, layer, bytes),
                    }
                })
                .collect(),
        })
        .collect();

    Ok(ClusterPlan {
        spec: *spec,
        cluster: req.cluster.clone(),
        target,
        shards,
        formats: req.precision,
        bn: req.bn,
        ps: req.ps,
        pl: req.pl,
        schedule: req.schedule,
        partitioner: req.partitioner,
        timeline,
        replica,
    })
}

/// Resolve the *unreplicated* placement for a request: a fixed target
/// is validated and split under the request's partitioner; `Auto` runs
/// the same cost-driven selection loop the single-board planner does
/// (see [`crate::partition::select_with`] — one board is the 1-board
/// degenerate case of that search). The replica layer builds on this
/// as its base placement.
pub(crate) fn resolve_placement(
    spec: &NetSpec,
    req: &ClusterRequest,
) -> Result<(OffloadTarget, ShardAssignment), EngineError> {
    match req.offload {
        Offload::Target(t) => {
            if !t.applicable_extended(spec) {
                return Err(EngineError::TargetNotApplicable {
                    target: t,
                    variant: spec.variant,
                });
            }
            Ok((t, partition_with(spec, t, req)?))
        }
        Offload::Auto | Offload::AutoExtended => {
            let extended = req.offload == Offload::AutoExtended;
            Ok(select_with(spec, req, extended))
        }
    }
}

/// Build the per-image stage pipeline for a sharded placement:
/// consecutive PS-resident work merges into one segment (cycles summed
/// before the single clock conversion), each offloaded layer becomes a
/// PL stage on its board, and every hand-off between different boards
/// pays the interconnect.
pub(crate) fn build_timeline(
    spec: &NetSpec,
    shards: &[(usize, OffloadTarget)],
    req: &ClusterRequest,
) -> Vec<StageTiming> {
    let head = req.cluster.head();
    // A layer may appear in several shards — that is a stage replica
    // set (see `crate::replica`). The first carrier in shard order is
    // the primary; the full list becomes the round-robin replicas.
    let boards_of = |layer: LayerName| -> Vec<usize> {
        shards
            .iter()
            .filter(|(_, t)| t.layers().contains(&layer))
            .map(|(b, _)| *b)
            .collect()
    };

    let mut timeline: Vec<StageTiming> = Vec::new();
    let mut ps_acc: u64 =
        req.ps.block_exec_cycles(LayerName::Conv1, false) + req.ps.runtime_overhead_cycles();
    let flush_ps = |timeline: &mut Vec<StageTiming>, acc: &mut u64| {
        if *acc > 0 {
            timeline.push(StageTiming {
                resource: StageResource::Ps,
                layer: None,
                seconds: head.ps_seconds(*acc),
                transfer_in: 0.0,
                replicas: Vec::new(),
            });
            *acc = 0;
        }
    };
    for layer in [
        LayerName::Layer1,
        LayerName::Layer2_1,
        LayerName::Layer2_2,
        LayerName::Layer3_1,
        LayerName::Layer3_2,
    ] {
        let plan = spec.plan(layer);
        if plan.total_execs() == 0 {
            continue;
        }
        let carriers = boards_of(layer);
        if let Some(&board) = carriers.first() {
            flush_ps(&mut timeline, &mut ps_acc);
            let execs = if plan.is_ode { plan.execs } else { 1 };
            timeline.push(StageTiming {
                resource: StageResource::Pl(board),
                layer: Some(layer),
                seconds: req.pl.stage_seconds_at(
                    layer,
                    execs,
                    &req.cluster.boards()[board],
                    req.precision.bytes_of(layer),
                ),
                transfer_in: 0.0,
                replicas: if carriers.len() > 1 {
                    carriers.iter().map(|&b| StageResource::Pl(b)).collect()
                } else {
                    Vec::new()
                },
            });
        } else {
            ps_acc += plan.total_execs() as u64 * req.ps.block_exec_cycles(layer, plan.is_ode);
        }
    }
    ps_acc += req.ps.block_exec_cycles(LayerName::Fc, false);
    flush_ps(&mut timeline, &mut ps_acc);

    // Interconnect hand-offs: a crossing always has a PL stage on at
    // least one side (the PS never moves); the transferred map is that
    // stage's shape-preserved feature map.
    for i in 1..timeline.len() {
        if timeline[i - 1].resource.board() != timeline[i].resource.board() {
            let layer = timeline[i]
                .layer
                .or(timeline[i - 1].layer)
                .expect("a crossing involves a PL stage");
            timeline[i].transfer_in = req
                .cluster
                .interconnect()
                .transfer_seconds(feature_map_bytes(layer, req.precision.bytes_of(layer)));
        }
    }
    timeline
}

/// Per-image end-to-end seconds of a pipeline: execution plus
/// interconnect hand-offs.
pub fn per_image_seconds(timeline: &[StageTiming]) -> f64 {
    timeline.iter().map(|s| s.seconds + s.transfer_in).sum()
}

/// The pipeline's bottleneck: the largest steady-state per-image busy
/// time of any single resource. A stage served by `k` round-robin
/// replicas charges each replica `seconds / k` (each serves every k-th
/// image), which is exactly how replication pushes this ceiling below
/// one board's busy time. `images × bottleneck` asymptotically
/// lower-bounds every schedule.
pub fn bottleneck_seconds(timeline: &[StageTiming]) -> f64 {
    let slots = timeline
        .iter()
        .flat_map(|s| s.resources())
        .map(|r| r.slot())
        .max()
        .map_or(0, |m| m + 1);
    let mut busy = vec![0.0f64; slots];
    for s in timeline {
        let share = s.seconds / s.replica_count() as f64;
        for r in s.resources() {
            busy[r.slot()] += share;
        }
    }
    busy.into_iter().fold(0.0, f64::max)
}

/// Makespan of the additive schedule: images strictly one at a time.
pub fn sequential_makespan(timeline: &[StageTiming], images: usize) -> f64 {
    images as f64 * per_image_seconds(timeline)
}

/// Outcome of the event-driven pipelined schedule.
#[derive(Clone, Debug)]
pub struct PipelineRun {
    /// Wall-clock seconds from the first stage start to the last
    /// stage completion.
    pub makespan: f64,
    /// Per-image seconds from its first stage start to its last stage
    /// completion (stretches beyond the unloaded latency when the
    /// image queues behind the bottleneck resource).
    pub latencies: Vec<f64>,
}

impl PipelineRun {
    /// Lower-median per-image latency (the same convention as
    /// [`crate::engine::BatchSummary::latency_p50`]).
    pub fn latency_p50(&self) -> f64 {
        crate::engine::latency_percentiles(self.latencies.clone()).0
    }

    /// 99th-percentile per-image latency (same index convention as
    /// [`crate::engine::BatchSummary::latency_p99`]).
    pub fn latency_p99(&self) -> f64 {
        crate::engine::latency_percentiles(self.latencies.clone()).1
    }

    /// Worst-case per-image latency.
    pub fn latency_max(&self) -> f64 {
        crate::engine::latency_percentiles(self.latencies.clone()).2
    }
}

/// Outcome of the release-aware event-driven schedule
/// ([`pipelined_schedule_released`]) — the serving generalization of
/// [`PipelineRun`], with absolute per-image instants instead of
/// relative latencies and the head-idle instant the admission side of
/// [`crate::serve`] dispatches on.
#[derive(Clone, Debug)]
pub struct ServedRun {
    /// Virtual seconds from t = 0 to the last image's completion.
    pub makespan: f64,
    /// Per-image instant its first stage begins (minus a leading
    /// hand-off — the transfer is part of serving the image). Never
    /// earlier than the image's release.
    pub starts: Vec<f64>,
    /// Per-image completion instant (last stage done).
    pub finishes: Vec<f64>,
    /// The instant the **head resource** — the one executing the
    /// pipeline's first stage, which lives on the head board — runs out
    /// of scheduled work and goes idle. This is the earliest moment a
    /// new dispatch could begin executing, which is exactly what the
    /// serving micro-batcher triggers on.
    pub head_idle: f64,
}

/// Event-driven pipelined makespan: every resource (head PS, each
/// board's PL) executes one stage at a time to completion; whenever a
/// resource frees, it takes the ready stage with the earliest feasible
/// start (ties to the oldest image), and every stage starts images in
/// index order (per-stage FIFO — which is what the greedy order does
/// anyway until replicas let an image run ahead upstream). Transfers
/// delay readiness but occupy no resource. All images share the same
/// stage timings — the paper's model is input-independent — so this is
/// a deterministic simulation.
pub fn pipelined_schedule(timeline: &[StageTiming], images: usize) -> PipelineRun {
    let run = pipelined_schedule_released(timeline, &vec![0.0f64; images]);
    PipelineRun {
        makespan: run.makespan,
        latencies: run
            .finishes
            .iter()
            .zip(&run.starts)
            .map(|(f, s)| f - s)
            .collect(),
    }
}

/// [`pipelined_schedule`] with per-image **release times**: image `i`
/// may not start before `releases[i]` (its dispatch instant in an
/// online stream; all zeros reproduces the closed-batch schedule
/// exactly). Releases must be sorted ascending so the oldest-image
/// tie-break keeps arrival order.
pub fn pipelined_schedule_released(timeline: &[StageTiming], releases: &[f64]) -> ServedRun {
    pipelined_schedule_released_traced(timeline, releases, &mut Recorder::disabled())
}

/// [`pipelined_schedule_released`] with an event [`Recorder`]: every
/// stage execution and interconnect hand-off is recorded as a typed
/// span in virtual time (see [`crate::trace`]). The public untraced
/// entry points delegate here with a disabled recorder, whose hooks
/// reduce to one inlined branch — recording never touches the
/// scheduler's arithmetic, so the returned [`ServedRun`] is
/// bit-identical with tracing on or off (pinned in `tests/trace.rs`).
pub fn pipelined_schedule_released_traced(
    timeline: &[StageTiming],
    releases: &[f64],
    rec: &mut Recorder,
) -> ServedRun {
    let images = releases.len();
    let slots = timeline
        .iter()
        .flat_map(|s| s.resources())
        .map(|r| r.slot())
        .max()
        .map_or(1, |m| m + 1);
    let mut free = vec![0.0f64; slots];
    let mut next = vec![0usize; images];
    let mut ready = releases.to_vec();
    let mut starts = vec![0.0f64; images];
    let mut finishes = vec![0.0f64; images];
    // Images started so far per stage: each stage starts images in
    // strict index order (per-stage FIFO). Unreplicated timelines
    // already process in image order — identical timings and
    // oldest-image tie-breaks keep every stage FIFO on their own, so
    // the gate never binds and the schedule is unchanged. With
    // replicas it *does* bind: an image that finished upstream early
    // on a fresh replica may not overtake an older image downstream.
    // That forbids the classic list-scheduling timing anomaly, making
    // added replica capacity monotone — replication never worsens the
    // makespan (pinned by proptest in `tests/replica.rs`).
    let mut started = vec![0usize; timeline.len()];
    let mut makespan = 0.0f64;
    for _ in 0..images * timeline.len() {
        // The globally earliest-startable pending stage among each
        // stage's oldest pending image; ties go to the oldest image so
        // downstream segments outrank later images' prefixes on a
        // shared resource. A replicated stage pins image `i` to its
        // round-robin replica — replicas are distinct resources, so
        // two images on different replicas overlap.
        let mut best: Option<(f64, usize)> = None;
        for i in 0..images {
            let Some(stage) = timeline.get(next[i]) else {
                continue;
            };
            if started[next[i]] != i {
                continue; // FIFO: an older image starts this stage first.
            }
            let start = (ready[i] + stage.transfer_in).max(free[stage.resource_for(i).slot()]);
            if best.is_none_or(|(b, _)| start < b) {
                best = Some((start, i));
            }
        }
        let (start, i) = best.expect("pending stages remain");
        let stage = &timeline[next[i]];
        let done = start + stage.seconds;
        let resource = stage.resource_for(i);
        rec.stage(
            i,
            next[i],
            resource,
            stage.layer,
            ready[i],
            ready[i] + stage.transfer_in,
            start,
            done,
        );
        if stage.transfer_in > 0.0 {
            rec.transfer(i, next[i], resource, ready[i], ready[i] + stage.transfer_in);
        }
        free[resource.slot()] = done;
        started[next[i]] += 1;
        if next[i] == 0 {
            // Latency runs from the moment the image's first transfer
            // begins (a leading hand-off is part of serving the image).
            starts[i] = start - stage.transfer_in;
        }
        ready[i] = done;
        next[i] += 1;
        if next[i] == timeline.len() {
            finishes[i] = done;
            makespan = makespan.max(done);
        }
    }
    // The next dispatch can begin as soon as ANY replica of the first
    // stage frees — with placement groups that is the least-loaded
    // group head, unreplicated it is the head PS.
    let head_idle = timeline.first().map_or(0.0, |s| {
        s.resources()
            .iter()
            .map(|r| free[r.slot()])
            .fold(f64::INFINITY, f64::min)
    });
    rec.run_summary(timeline, images, makespan);
    ServedRun {
        makespan,
        starts,
        finishes,
        head_idle,
    }
}

impl ClusterPlan {
    /// The architecture this plan deploys.
    pub fn spec(&self) -> &NetSpec {
        &self.spec
    }

    /// The configured boards + interconnect.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The overall resolved placement (union of all shards).
    pub fn target(&self) -> OffloadTarget {
        self.target
    }

    /// The per-board slices of the placement (boards carrying nothing
    /// are omitted).
    pub fn shards(&self) -> &[BoardShard] {
        &self.shards
    }

    /// The board carrying `layer`, if it is offloaded.
    pub fn board_of(&self, layer: LayerName) -> Option<usize> {
        self.shards
            .iter()
            .find(|s| s.target.layers().contains(&layer))
            .map(|s| s.board)
    }

    /// The *base* PL word format of the plan's precision table — it
    /// silently under-reports a mixed table, which is why it is
    /// deprecated in favor of [`ClusterPlan::precision`].
    #[deprecated(
        since = "0.2.0",
        note = "use `ClusterPlan::precision()` — the precision surface is per-stage now"
    )]
    pub fn pl_format(&self) -> PlFormat {
        self.formats.base()
    }

    /// The resolved per-stage PL word-format table the plan was
    /// computed for.
    pub fn precision(&self) -> &StageFormats {
        &self.formats
    }

    /// The PS-side batch-norm statistics mode.
    pub fn bn_mode(&self) -> BnMode {
        self.bn
    }

    /// The PS cost model the timing was computed with.
    pub fn ps_model(&self) -> &PsModel {
        &self.ps
    }

    /// The PL circuit configuration (parallelism).
    pub fn pl_model(&self) -> &PlModel {
        &self.pl
    }

    /// The configured batch schedule.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// The shard-assignment strategy the plan was computed with.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// Busy seconds per execution resource (head PS, each board's PL)
    /// for one image — the per-board breakdown the partitioner
    /// optimized (see [`crate::partition::resource_busy`]).
    pub fn resource_busy(&self) -> Vec<(StageResource, f64)> {
        crate::partition::resource_busy(&self.timeline)
    }

    /// The pipeline's bottleneck: the largest per-image busy time of
    /// any single resource — what [`Partitioner::BalancedMakespan`]
    /// drives down and what bounds pipelined throughput from above
    /// (`images / makespan → 1 / bottleneck` for deep batches).
    pub fn bottleneck_seconds(&self) -> f64 {
        bottleneck_seconds(&self.timeline)
    }

    /// The per-image stage pipeline (merged PS segments, PL stages,
    /// interconnect hand-offs) the batch schedules run over.
    pub fn timeline(&self) -> &[StageTiming] {
        &self.timeline
    }

    /// Modelled end-to-end seconds per unloaded image (execution plus
    /// interconnect hand-offs).
    pub fn total_seconds(&self) -> f64 {
        per_image_seconds(&self.timeline)
    }

    /// Per-image interconnect seconds (0 on a single board).
    pub fn transfer_seconds(&self) -> f64 {
        self.timeline.iter().map(|s| s.transfer_in).sum()
    }

    /// Per-image PL seconds across all boards (incl. AXI DMA). Each
    /// offloaded stage executes **once** per image no matter how many
    /// replicas carry its circuit, so this sums timeline rows rather
    /// than shards (a replicated stage appears in several shards).
    pub fn pl_seconds(&self) -> f64 {
        self.timeline
            .iter()
            .filter(|s| s.layer.is_some())
            .map(|s| s.seconds)
            .sum()
    }

    /// Per-image PS seconds on the head board.
    pub fn ps_seconds(&self) -> f64 {
        self.timeline
            .iter()
            .filter(|s| s.resource.is_ps())
            .map(|s| s.seconds)
            .sum()
    }

    /// Per-image 32-bit AXI bus words (on-board DMA, not interconnect).
    /// Counted per executed stage, not per carrying shard — a replica
    /// holds a copy of the circuit but serves only its share of images.
    pub fn dma_words(&self) -> u64 {
        self.timeline
            .iter()
            .filter_map(|s| s.layer)
            .map(|layer| crate::datapath::dma_words_at(layer, self.formats.bytes_of(layer)))
            .sum()
    }

    /// The resolved replication plan, when the request replicated a
    /// stage or the placement (see [`crate::replica`]).
    pub fn replica_plan(&self) -> Option<&ReplicaPlan> {
        self.replica.as_ref()
    }

    /// The **resolved** replication policy — [`Replication::Auto`]
    /// never appears here; it resolves to whatever won the search
    /// ([`Replication::None`] when nothing beat the unreplicated plan).
    pub fn replication(&self) -> Replication {
        self.replica
            .as_ref()
            .map_or(Replication::None, |r| r.replication)
    }

    /// One-time weight-broadcast seconds to stage every replica's
    /// parameters over the interconnect (0 without replication).
    /// Reported, never added to per-image or batch makespans — the
    /// broadcast overlaps deployment (see [`crate::replica`]).
    pub fn broadcast_seconds(&self) -> f64 {
        self.replica.as_ref().map_or(0.0, |r| r.broadcast_seconds)
    }

    /// Steady-state per-resource utilization under pipelined serving
    /// at the throughput ceiling: each resource's per-image busy share
    /// over the bottleneck's ([`Self::bottleneck_seconds`]; the
    /// bottleneck itself reads 1.0). These are the fractions a
    /// measured `ServeReport::utilization` approaches at full offered
    /// load, in the same units and [`crate::trace::format_utilization`]
    /// format both describe lines print.
    pub fn utilization(&self) -> Vec<(StageResource, f64)> {
        let bottleneck = self.bottleneck_seconds();
        self.resource_busy()
            .into_iter()
            .map(|(resource, busy)| (resource, busy / bottleneck))
            .collect()
    }

    /// Modelled makespan of a batch under `schedule`.
    pub fn batch_seconds(&self, images: usize, schedule: Schedule) -> f64 {
        match schedule {
            Schedule::Sequential => sequential_makespan(&self.timeline, images),
            Schedule::Pipelined => pipelined_schedule(&self.timeline, images).makespan,
        }
    }

    /// Throughput gain of pipelining a batch over the additive
    /// schedule (≥ 1; approaches latency ÷ bottleneck for large
    /// batches).
    pub fn pipeline_speedup(&self, images: usize) -> f64 {
        if images == 0 {
            return 1.0;
        }
        self.batch_seconds(images, Schedule::Sequential)
            / self.batch_seconds(images, Schedule::Pipelined)
    }

    /// One-line human description for logs and examples.
    pub fn describe(&self) -> String {
        let shards = self
            .shards
            .iter()
            .map(|s| format!("board{}: {:?}", s.board, s.target))
            .collect::<Vec<_>>()
            .join(", ");
        let boards = self.cluster.boards();
        let rack = if boards.iter().all(|b| b.name == boards[0].name) {
            format!("{}×{}", boards.len(), boards[0].name)
        } else {
            boards
                .iter()
                .map(|b| b.name)
                .collect::<Vec<_>>()
                .join(" + ")
        };
        let replica = self
            .replica
            .as_ref()
            .map(|r| format!(" · {}", r.describe()))
            .unwrap_or_default();
        format!(
            "{} · {} · {:?} over {} ({}) · {:.3}s/img · {:?} · {:?}{} · {}",
            self.spec.display_name(),
            self.formats,
            self.target,
            rack,
            if shards.is_empty() { "all PS" } else { &shards },
            self.total_seconds(),
            self.schedule,
            self.partitioner,
            replica,
            crate::trace::format_utilization(&self.utilization()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::{ARTY_Z7_20, PYNQ_Z2};
    use rodenet::Variant;

    fn request(boards: usize) -> ClusterRequest {
        ClusterRequest {
            cluster: Cluster::homogeneous(&ARTY_Z7_20, boards, Interconnect::GIGABIT_ETHERNET),
            offload: Offload::Auto,
            bn: BnMode::OnTheFly,
            ps: PsModel::Calibrated,
            pl: PlModel::default(),
            precision: PlFormat::Q20.into(),
            schedule: Schedule::Pipelined,
            partitioner: Partitioner::FirstFit,
            replication: Replication::None,
        }
    }

    #[test]
    fn interconnect_transfer_math() {
        let link = Interconnect::GIGABIT_ETHERNET;
        assert_eq!(link.transfer_seconds(0), 0.0);
        let t = link.transfer_seconds(125_000_000);
        assert!((t - 1.00005).abs() < 1e-9, "{t}");
        // A layer3_2 map at Q20: 64·8·8·4 bytes ≈ 181 µs.
        let map = feature_map_bytes(LayerName::Layer3_2, 4);
        assert_eq!(map, 16_384);
        assert!((link.transfer_seconds(map) - 181.072e-6).abs() < 1e-8);
    }

    #[test]
    fn first_fit_sharding_follows_network_order() {
        let cluster = Cluster::homogeneous(&ARTY_Z7_20, 2, Interconnect::GIGABIT_ETHERNET);
        // At Q20, layer1+layer2_2 (120 BRAM) fill board 0; layer3_2
        // (140 BRAM = the whole fabric) moves to board 1 — the ISSUE's
        // canonical example.
        let shards = shard_placement(OffloadTarget::AllOde, &cluster, 16, 4).expect("shards");
        assert_eq!(
            shards,
            vec![(0, OffloadTarget::Layer1And22), (1, OffloadTarget::Layer32)]
        );
        // One board cannot carry all three at 32-bit…
        let one = Cluster::homogeneous(&ARTY_Z7_20, 1, Interconnect::GIGABIT_ETHERNET);
        assert!(matches!(
            shard_placement(OffloadTarget::AllOde, &one, 16, 4),
            Err(EngineError::ShardInfeasible { boards: 1, .. })
        ));
        // …but can at 16-bit (footnote 2), with no second board needed.
        let shards16 = shard_placement(OffloadTarget::AllOde, &one, 16, 2).expect("16-bit");
        assert_eq!(shards16, vec![(0, OffloadTarget::AllOde)]);
    }

    #[test]
    fn auto_plan_on_two_boards_offloads_everything() {
        let spec = NetSpec::new(Variant::OdeNet, 20);
        let plan = plan_cluster(&spec, &request(2)).expect("plans");
        assert_eq!(plan.target(), OffloadTarget::AllOde);
        assert_eq!(plan.shards().len(), 2);
        assert_eq!(plan.board_of(LayerName::Layer1), Some(0));
        assert_eq!(plan.board_of(LayerName::Layer3_2), Some(1));
        // Both interconnect crossings (PS→board1 and board1→PS).
        let crossings = plan
            .timeline()
            .iter()
            .filter(|s| s.transfer_in > 0.0)
            .count();
        assert_eq!(crossings, 2);
        assert!(plan.transfer_seconds() > 0.0 && plan.transfer_seconds() < 1e-3);
    }

    #[test]
    fn single_board_timeline_matches_table5_total() {
        // A 1-board cluster is the paper's system: the pipeline total
        // must equal the plan-level Table 5 row (no interconnect).
        let spec = NetSpec::new(Variant::ROdeNet3, 56);
        let mut req = request(1);
        req.cluster = Cluster::homogeneous(&PYNQ_Z2, 1, Interconnect::GIGABIT_ETHERNET);
        let plan = plan_cluster(&spec, &req).expect("plans");
        assert_eq!(plan.target(), OffloadTarget::Layer32);
        assert_eq!(plan.transfer_seconds(), 0.0);
        let row = crate::timing::paper_row(Variant::ROdeNet3, 56);
        assert!(
            (plan.total_seconds() - row.total_w_pl).abs() < 1e-9,
            "pipeline {} vs table5 {}",
            plan.total_seconds(),
            row.total_w_pl
        );
        // conv1+overhead / layer1 / … merge into PS segments around the
        // single PL stage: [PS, PL, PS].
        assert_eq!(plan.timeline().len(), 3);
        assert_eq!(plan.timeline()[1].layer, Some(LayerName::Layer3_2));
    }

    #[test]
    fn software_only_cluster_is_one_ps_segment() {
        let spec = NetSpec::new(Variant::ResNet, 20);
        let plan = plan_cluster(&spec, &request(2)).expect("plans");
        assert_eq!(plan.target(), OffloadTarget::None);
        assert_eq!(plan.timeline().len(), 1);
        let sw = PsModel::Calibrated.spec_seconds(&spec, &ARTY_Z7_20);
        assert!((plan.total_seconds() - sw).abs() < 1e-12);
    }

    #[test]
    fn pipelined_schedule_bounds() {
        let spec = NetSpec::new(Variant::OdeNet, 20);
        let plan = plan_cluster(&spec, &request(2)).expect("plans");
        for images in [1usize, 2, 7, 32] {
            let seq = plan.batch_seconds(images, Schedule::Sequential);
            let pipe = plan.batch_seconds(images, Schedule::Pipelined);
            let lb =
                (images as f64 * bottleneck_seconds(plan.timeline())).max(plan.total_seconds());
            assert!(pipe <= seq + 1e-9, "{images}: {pipe} ≤ {seq}");
            assert!(pipe >= lb - 1e-9, "{images}: {pipe} ≥ {lb}");
        }
        // One image cannot pipeline with itself.
        assert!((plan.batch_seconds(1, Schedule::Pipelined) - plan.total_seconds()).abs() < 1e-9);
        // A deep batch must genuinely beat the additive bound.
        assert!(
            plan.pipeline_speedup(32) > 1.3,
            "{}",
            plan.pipeline_speedup(32)
        );
    }

    #[test]
    fn pipelined_latencies_never_beat_unloaded_latency() {
        let spec = NetSpec::new(Variant::OdeNet, 20);
        let plan = plan_cluster(&spec, &request(2)).expect("plans");
        let run = pipelined_schedule(plan.timeline(), 8);
        assert_eq!(run.latencies.len(), 8);
        // Queueing can only stretch an image (even image 0's later
        // segments may wait behind younger prefixes on the shared PS);
        // a lone image pays exactly the unloaded latency.
        for lat in &run.latencies {
            assert!(*lat >= plan.total_seconds() - 1e-9, "{lat}");
            assert!(*lat <= run.makespan + 1e-9);
        }
        let solo = pipelined_schedule(plan.timeline(), 1);
        assert!((solo.latencies[0] - plan.total_seconds()).abs() < 1e-9);
    }

    #[test]
    fn fixed_target_that_cannot_shard_is_a_typed_error() {
        let spec = NetSpec::new(Variant::OdeNet, 20);
        let mut req = request(1);
        req.offload = Offload::Target(OffloadTarget::AllOde);
        let err = plan_cluster(&spec, &req).expect_err("one 32-bit board is too small");
        let EngineError::ShardInfeasible {
            target,
            boards,
            parallelism,
            stuck,
            stuck_bram36,
            ref board_bram36,
            ref hint,
        } = err
        else {
            panic!("expected ShardInfeasible, got {err:?}");
        };
        assert_eq!(target, OffloadTarget::AllOde);
        assert_eq!(boards, 1);
        assert_eq!(parallelism, 16);
        assert_eq!(stuck, Some(LayerName::Layer3_2));
        assert_eq!(stuck_bram36, 140.0);
        assert_eq!(*board_bram36, vec![140]);
        // This placement *does* shard on one more XC7Z020, so the error
        // carries the replication-aware follow-up.
        let hint = hint.as_deref().expect("one more board fixes this");
        assert!(hint.contains("Replication::Stage("), "{hint}");
        // The diagnostics are actionable: the report names the layer
        // that got stuck, the capacities that were consulted, and the
        // follow-up.
        let msg = format!("{err}");
        assert!(
            msg.contains("layer3_2") && msg.contains("140") && msg.contains("Replication::Stage("),
            "actionable report: {msg}"
        );
    }

    #[test]
    fn describe_names_the_shards() {
        let spec = NetSpec::new(Variant::OdeNet, 20);
        let plan = plan_cluster(&spec, &request(2)).expect("plans");
        let d = plan.describe();
        assert!(d.contains("board0") && d.contains("board1"), "{d}");
        assert!(d.contains("Arty"), "{d}");
    }
}
