//! Fault injection, health-driven failover, and degraded-mode serving.
//!
//! Every layer below this one — the pipelined cluster scheduler
//! ([`crate::cluster`]), replication ([`crate::replica`]), and the
//! virtual-time serving simulator ([`crate::serve`]) — assumes boards
//! and links never fail. Real multi-FPGA racks lose boards, hang DMA
//! engines, and degrade links; this module makes those events part of
//! the simulation while keeping it deterministic and wall-clock-free.
//!
//! Three pieces:
//!
//! 1. **Injection** — a declarative [`FaultPlan`] lists [`FaultEvent`]s
//!    in virtual time. Degradations (slowdowns, hangs, link degrades)
//!    are consumed by [`faulted_schedule_released`], a fault-aware
//!    variant of [`pipelined_schedule_released`]; crashes are consumed
//!    by the failover orchestrator ([`serve_faulted`]). An **empty plan
//!    is bit-identical and zero-overhead**: both entry points delegate
//!    straight to the unfaulted path (the same pattern as the disabled
//!    [`crate::trace::Recorder`]).
//! 2. **Detection + failover** — a [`HealthMonitor`] with a timeout
//!    policy marks a board failed once a stage exceeds
//!    `timeout × expected stage seconds` in virtual time. On failure
//!    the orchestrator drains in-flight images (work lost on the
//!    crashed board is re-dispatched, never silently dropped), re-runs
//!    the partition/replica search over the surviving [`Cluster`],
//!    prices the replan's weight re-broadcast over the modelled
//!    interconnect ([`restage_seconds`]) into a recovery window, and
//!    resumes — falling back to head-PS software execution
//!    ([`OffloadTarget::None`]) as the last-resort degraded mode when
//!    no feasible PL placement survives.
//! 3. **Reporting** — the resulting [`crate::serve::ServeReport`]
//!    carries an [`AvailabilityReport`] (per-failover recovery windows,
//!    dropped/re-dispatched counts, goodput during degradation) and the
//!    trace gains [`crate::trace::FaultTraceEvent`]s so the Chrome
//!    export shows the outage and the recovery.
//!
//! Modelling assumptions (load-bearing, see ROADMAP):
//!
//! - Detection is timeout-based in virtual time; the health monitor
//!   never false-positives and the detection delay is
//!   `timeout × max stage seconds` on the crashed board.
//! - Replans are atomic drain-then-resume: in-flight images unaffected
//!   by the crash run to completion, then the new placement starts.
//!   The partition search itself is priced at zero (virtual) seconds —
//!   only the weight re-broadcast is billed.
//! - A slowdown/hang/degrade window affects a stage (or transfer) by
//!   its **begin instant**: work that starts inside the window pays the
//!   factor for its whole duration, work already running when the
//!   window opens completes unaffected.
//! - The micro-batcher plans dispatches against the healthy pipeline;
//!   faults surprise it (dispatch instants never leak fault knowledge).
//! - Faults change *when and where* images run, never numerics:
//!   completed logits stay bit-identical to the fault-free run.

use crate::cluster::{
    pipelined_schedule_released, plan_cluster, Cluster, ClusterPlan, ClusterRequest, ServedRun,
    StageResource, StageTiming,
};
use crate::engine::{latency_quantile, EngineError, Offload};
use crate::partition::board_stage_seconds;
use crate::planner::OffloadTarget;
use crate::replica::{restage_seconds, Replication};
use crate::serve::{window_report, MicroBatcher, ServeReport, ServeRequest};
use crate::trace::{FaultKind, FaultTraceEvent, Recorder};
use rodenet::LayerName;

/// One deterministic fault, placed in virtual time.
///
/// Board indices refer to positions in the serving [`Cluster`]; virtual
/// instants are seconds from the start of the serve run (the same
/// clock as [`crate::serve::ArrivalProcess`] arrivals).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// Board `board` dies at `at` and never comes back. In-flight work
    /// on it is lost (and re-dispatched by the failover orchestrator).
    BoardCrash {
        /// Cluster index of the crashing board.
        board: usize,
        /// Virtual instant of the crash, seconds.
        at: f64,
    },
    /// Stages **starting** on `board` during `[at, at + duration)` take
    /// `factor ×` their modelled seconds (thermal throttling, a noisy
    /// neighbour on the PS, DDR pressure). `factor ≥ 1`.
    BoardSlowdown {
        /// Cluster index of the slowed board.
        board: usize,
        /// Window start, virtual seconds.
        at: f64,
        /// Stage-seconds multiplier (`≥ 1`).
        factor: f64,
        /// Window length, virtual seconds (`> 0`).
        duration: f64,
    },
    /// Interconnect transfers **beginning** during `[at, at + duration)`
    /// see `bandwidth_factor ×` the modelled bandwidth
    /// (`0 < bandwidth_factor ≤ 1`), i.e. transfers take
    /// `1 / bandwidth_factor ×` as long.
    LinkDegrade {
        /// Window start, virtual seconds.
        at: f64,
        /// Remaining bandwidth fraction (`0 < f ≤ 1`).
        bandwidth_factor: f64,
        /// Window length, virtual seconds (`> 0`).
        duration: f64,
    },
    /// Board `board` accepts no new stage starts during
    /// `[at, at + duration)` (a wedged DMA engine); work already
    /// running completes. Deferred starts resume at window end.
    BoardHang {
        /// Cluster index of the hung board.
        board: usize,
        /// Window start, virtual seconds.
        at: f64,
        /// Window length, virtual seconds (`> 0`).
        duration: f64,
    },
}

impl FaultEvent {
    /// The event's (start) instant in virtual seconds.
    pub fn at(&self) -> f64 {
        match *self {
            FaultEvent::BoardCrash { at, .. }
            | FaultEvent::BoardSlowdown { at, .. }
            | FaultEvent::LinkDegrade { at, .. }
            | FaultEvent::BoardHang { at, .. } => at,
        }
    }

    /// The board the event targets (`None` for link-wide events).
    pub fn board(&self) -> Option<usize> {
        match *self {
            FaultEvent::BoardCrash { board, .. }
            | FaultEvent::BoardSlowdown { board, .. }
            | FaultEvent::BoardHang { board, .. } => Some(board),
            FaultEvent::LinkDegrade { .. } => None,
        }
    }

    /// The trace-facing category of the event.
    pub fn kind(&self) -> FaultKind {
        match self {
            FaultEvent::BoardCrash { .. } => FaultKind::Crash,
            FaultEvent::BoardSlowdown { .. } => FaultKind::Slowdown,
            FaultEvent::LinkDegrade { .. } => FaultKind::LinkDegrade,
            FaultEvent::BoardHang { .. } => FaultKind::Hang,
        }
    }

    /// `[start, end)` for the windowed **per-board** events (slowdown,
    /// hang); `None` for crashes and link degrades.
    fn board_window(&self) -> Option<(usize, f64, f64)> {
        match *self {
            FaultEvent::BoardSlowdown {
                board,
                at,
                duration,
                ..
            }
            | FaultEvent::BoardHang {
                board,
                at,
                duration,
            } => Some((board, at, at + duration)),
            _ => None,
        }
    }
}

/// A declarative list of faults to inject into one serve run.
///
/// The default (and [`FaultPlan::none`]) is the empty plan, which is
/// guaranteed bit-identical to the unfaulted path end to end.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: no faults, bit-identical to the pre-fault path.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan injecting `events` (validated at [`Engine::build`] time
    /// or by [`FaultPlan::validate`]).
    ///
    /// [`Engine::build`]: crate::engine::EngineBuilder::build
    pub fn new(events: Vec<FaultEvent>) -> Self {
        FaultPlan { events }
    }

    /// The events, in declaration order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Check the plan against a cluster of `boards` boards.
    ///
    /// Rejects (with [`EngineError::InvalidFaultPlan`] naming the
    /// offending event): board indices outside the cluster, non-finite
    /// or negative instants, non-positive durations, slowdown factors
    /// below 1 (that would be a speedup), link bandwidth factors
    /// outside `(0, 1]`, and overlapping slowdown/hang windows on one
    /// board (their composition would be ambiguous). Link-degrade
    /// windows **may** overlap — their bandwidth factors multiply.
    /// Duplicate crashes of one board are allowed; the later one is a
    /// no-op.
    pub fn validate(&self, boards: usize) -> Result<(), EngineError> {
        let err = |event: usize, reason: String| {
            Err(EngineError::InvalidFaultPlan {
                event: Some(event),
                reason,
            })
        };
        for (i, e) in self.events.iter().enumerate() {
            if let Some(b) = e.board() {
                if b >= boards {
                    return err(
                        i,
                        format!("board {b} does not exist — the cluster has {boards} board(s)"),
                    );
                }
            }
            let at = e.at();
            if !at.is_finite() || at < 0.0 {
                return err(i, format!("instant {at} must be finite and ≥ 0 seconds"));
            }
            match *e {
                FaultEvent::BoardSlowdown {
                    factor, duration, ..
                } => {
                    if !duration.is_finite() || duration <= 0.0 {
                        return err(i, format!("duration {duration} must be finite and > 0"));
                    }
                    if !factor.is_finite() || factor < 1.0 {
                        return err(
                            i,
                            format!("slowdown factor {factor} must be finite and ≥ 1 (a factor below 1 would be a speedup)"),
                        );
                    }
                }
                FaultEvent::LinkDegrade {
                    bandwidth_factor,
                    duration,
                    ..
                } => {
                    if !duration.is_finite() || duration <= 0.0 {
                        return err(i, format!("duration {duration} must be finite and > 0"));
                    }
                    if !bandwidth_factor.is_finite()
                        || bandwidth_factor <= 0.0
                        || bandwidth_factor > 1.0
                    {
                        return err(
                            i,
                            format!(
                                "bandwidth factor {bandwidth_factor} must lie in (0, 1] — it is the fraction of link bandwidth that remains"
                            ),
                        );
                    }
                }
                FaultEvent::BoardHang { duration, .. } => {
                    if !duration.is_finite() || duration <= 0.0 {
                        return err(i, format!("duration {duration} must be finite and > 0"));
                    }
                }
                FaultEvent::BoardCrash { .. } => {}
            }
        }
        // Per-board slowdown/hang windows must not overlap.
        let mut windows: Vec<(usize, f64, f64, usize)> = self
            .events
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.board_window().map(|(b, lo, hi)| (b, lo, hi, i)))
            .collect();
        windows.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        for pair in windows.windows(2) {
            let (b1, lo1, hi1, i1) = pair[0];
            let (b2, lo2, _, i2) = pair[1];
            if b1 == b2 && lo2 < hi1 {
                return err(
                    i2,
                    format!(
                        "its window [{lo2:.6}, ..) s on board {b2} overlaps event #{i1}'s window [{lo1:.6}, {hi1:.6}) s"
                    ),
                );
            }
        }
        Ok(())
    }
}

/// When to declare a board dead.
///
/// Detection is modelled in virtual time: a board is marked failed once
/// a stage it serves has been outstanding for `timeout ×` the board's
/// largest expected stage seconds (so slower boards get proportionally
/// longer grace). There are no false positives — only crashed boards
/// are ever detected.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthPolicy {
    /// Multiple of the expected stage seconds a stage may be
    /// outstanding before the board is declared failed (`> 0`;
    /// default 3).
    pub timeout: f64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy { timeout: 3.0 }
    }
}

impl HealthPolicy {
    /// Check the policy is usable.
    pub fn validate(&self) -> Result<(), EngineError> {
        if !self.timeout.is_finite() || self.timeout <= 0.0 {
            return Err(EngineError::InvalidFaultPlan {
                event: None,
                reason: format!(
                    "health timeout {} must be a finite positive multiple of the expected stage seconds",
                    self.timeout
                ),
            });
        }
        Ok(())
    }
}

/// Timeout-based failure detector over a stage timeline.
#[derive(Clone, Copy, Debug)]
pub struct HealthMonitor {
    policy: HealthPolicy,
}

impl HealthMonitor {
    /// A monitor applying `policy`.
    pub fn new(policy: HealthPolicy) -> Self {
        HealthMonitor { policy }
    }

    /// The configured policy.
    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    /// The virtual instant a crash at `crash_at` of `board` is
    /// detected: `crash_at + timeout × max expected stage seconds` on
    /// that board under `timeline` (immediate when the board serves no
    /// stage — there is nothing to time out on, and nothing to fail
    /// over either).
    pub fn detect_at(&self, timeline: &[StageTiming], board: usize, crash_at: f64) -> f64 {
        crash_at + self.policy.timeout * board_stage_seconds(timeline, board)
    }
}

/// One completed failover, priced into the recovery window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FailoverRecord {
    /// The crashed board's cluster index.
    pub board: usize,
    /// Virtual instant the board died.
    pub crash_at: f64,
    /// Virtual instant the health monitor declared it dead.
    pub detect_at: f64,
    /// Seconds from the crash until surviving in-flight work drained
    /// (at least the detection delay).
    pub drain_seconds: f64,
    /// Seconds to re-broadcast the replanned weights over the modelled
    /// interconnect ([`restage_seconds`] of the replacement plan).
    pub rebroadcast_seconds: f64,
    /// The full recovery window: `drain_seconds + rebroadcast_seconds`.
    pub recovery_seconds: f64,
    /// Virtual instant serving resumed on the replacement placement.
    pub resume_at: f64,
    /// Whether the replacement placement is the degraded head-PS
    /// software fallback ([`OffloadTarget::None`]).
    pub degraded: bool,
    /// Images whose in-flight work died with the board and were
    /// re-dispatched onto the replacement placement.
    pub redispatched: usize,
}

/// The availability section of a faulted serve run.
#[derive(Clone, Debug, PartialEq)]
pub struct AvailabilityReport {
    /// One record per failover, in crash order.
    pub failovers: Vec<FailoverRecord>,
    /// Images that completed (equals the report's `images`).
    pub completed: usize,
    /// Admitted images dropped because no board survived to serve
    /// them. Conservation: `completed + dropped == admitted`.
    pub dropped: usize,
    /// Total re-dispatch events (work lost on a crashed board, re-run
    /// after failover).
    pub redispatched: usize,
    /// Fraction of the horizon outside recovery windows, clamped to
    /// `[0, 1]`. Exactly 1 for a fault-free run.
    pub availability: f64,
    /// Virtual seconds served in degraded (head-PS fallback) mode.
    pub degraded_seconds: f64,
    /// Completions per second while degraded (0 when never degraded).
    pub degraded_goodput: f64,
}

impl AvailabilityReport {
    /// One-line human summary.
    pub fn describe(&self) -> String {
        let recovery: f64 = self.failovers.iter().map(|f| f.recovery_seconds).sum();
        format!(
            "availability {:.1}% · {} failover(s), {:.4} s total recovery · {} completed · {} dropped · {} redispatched · degraded {:.4} s ({:.1} img/s)",
            self.availability * 100.0,
            self.failovers.len(),
            recovery,
            self.completed,
            self.dropped,
            self.redispatched,
            self.degraded_seconds,
            self.degraded_goodput,
        )
    }
}

/// Degradation windows, precomputed for the scheduler's inner loop.
struct FaultWindows {
    /// Per board: sorted `(start, end)` hang windows.
    hangs: Vec<Vec<(f64, f64)>>,
    /// Per board: sorted `(start, end, factor)` slowdown windows.
    slowdowns: Vec<Vec<(f64, f64, f64)>>,
    /// Sorted `(start, end, bandwidth_factor)` link windows.
    links: Vec<(f64, f64, f64)>,
}

impl FaultWindows {
    fn from_plan(plan: &FaultPlan, boards: usize) -> Self {
        let mut w = FaultWindows {
            hangs: vec![Vec::new(); boards],
            slowdowns: vec![Vec::new(); boards],
            links: Vec::new(),
        };
        for e in plan.events() {
            match *e {
                FaultEvent::BoardHang {
                    board,
                    at,
                    duration,
                } if board < boards => w.hangs[board].push((at, at + duration)),
                FaultEvent::BoardSlowdown {
                    board,
                    at,
                    factor,
                    duration,
                } if board < boards => w.slowdowns[board].push((at, at + duration, factor)),
                FaultEvent::LinkDegrade {
                    at,
                    bandwidth_factor,
                    duration,
                } => w.links.push((at, at + duration, bandwidth_factor)),
                _ => {}
            }
        }
        for v in &mut w.hangs {
            v.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        for v in &mut w.slowdowns {
            v.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        w.links.sort_by(|a, b| a.0.total_cmp(&b.0));
        w
    }

    fn has_degrades(&self) -> bool {
        !self.links.is_empty()
            || self.hangs.iter().any(|v| !v.is_empty())
            || self.slowdowns.iter().any(|v| !v.is_empty())
    }

    /// Product of the bandwidth factors of link windows containing `t`
    /// (1 outside every window).
    fn link_factor(&self, t: f64) -> f64 {
        self.links
            .iter()
            .filter(|(lo, hi, _)| t >= *lo && t < *hi)
            .map(|(_, _, f)| f)
            .product()
    }

    /// Push `t` past every hang window on `board` containing it
    /// (monotone in `t`; windows are sorted by start).
    fn past_hangs(&self, board: usize, mut t: f64) -> f64 {
        if let Some(v) = self.hangs.get(board) {
            for &(lo, hi) in v {
                if t >= lo && t < hi {
                    t = hi;
                }
            }
        }
        t
    }

    /// Product of the slowdown factors on `board` containing `t`
    /// (1 outside every window; factors are ≥ 1).
    fn slowdown_factor(&self, board: usize, t: f64) -> f64 {
        self.slowdowns.get(board).map_or(1.0, |v| {
            v.iter()
                .filter(|(lo, hi, _)| t >= *lo && t < *hi)
                .map(|(_, _, f)| f)
                .product()
        })
    }

    /// `(transfer_seconds, start, duration)` for image `image` entering
    /// stage `stage` with its input pending at `pending`, given the
    /// per-slot free instants. The single placement rule shared by the
    /// scheduler's selection and commit steps, so both always agree.
    fn place(
        &self,
        stage: &StageTiming,
        image: usize,
        pending: f64,
        free: &[f64],
    ) -> (f64, f64, f64) {
        let t_in = if stage.transfer_in > 0.0 {
            stage.transfer_in / self.link_factor(pending)
        } else {
            0.0
        };
        let resource = stage.resource_for(image);
        let start0 = (pending + t_in).max(free[resource.slot()]);
        let start = self.past_hangs(resource.board(), start0);
        let dur = stage.seconds * self.slowdown_factor(resource.board(), start);
        (t_in, start, dur)
    }
}

/// One committed stage execution, kept so the failover orchestrator can
/// classify work against a crash instant and replay survivors into the
/// trace.
struct SpanRec {
    image: usize,
    stage: usize,
    resource: StageResource,
    layer: Option<LayerName>,
    pending: f64,
    start: f64,
    end: f64,
    /// `(start, end)` of the leading interconnect hand-off, if any.
    transfer: Option<(f64, f64)>,
}

/// The fault-aware core loop: [`pipelined_schedule_released`] with the
/// degradation windows applied at every placement decision, collecting
/// the committed spans.
fn faulted_run(
    timeline: &[StageTiming],
    releases: &[f64],
    windows: &FaultWindows,
) -> (ServedRun, Vec<SpanRec>) {
    let images = releases.len();
    let slots = timeline
        .iter()
        .flat_map(|s| s.resources())
        .map(|r| r.slot())
        .max()
        .map_or(1, |m| m + 1);
    let mut free = vec![0.0f64; slots];
    let mut next = vec![0usize; images];
    let mut ready = releases.to_vec();
    let mut starts = vec![0.0f64; images];
    let mut finishes = vec![0.0f64; images];
    let mut started = vec![0usize; timeline.len()];
    let mut makespan = 0.0f64;
    let mut spans = Vec::with_capacity(images * timeline.len());
    for _ in 0..images * timeline.len() {
        let mut best: Option<(f64, usize)> = None;
        for i in 0..images {
            let Some(stage) = timeline.get(next[i]) else {
                continue;
            };
            if started[next[i]] != i {
                continue;
            }
            let (_, start, _) = windows.place(stage, i, ready[i], &free);
            if best.is_none_or(|(b, _)| start < b) {
                best = Some((start, i));
            }
        }
        let (_, i) = best.expect("pending stages remain");
        let stage = &timeline[next[i]];
        let (t_in, start, dur) = windows.place(stage, i, ready[i], &free);
        let done = start + dur;
        let resource = stage.resource_for(i);
        spans.push(SpanRec {
            image: i,
            stage: next[i],
            resource,
            layer: stage.layer,
            pending: ready[i],
            start,
            end: done,
            transfer: (t_in > 0.0).then_some((ready[i], ready[i] + t_in)),
        });
        free[resource.slot()] = done;
        started[next[i]] += 1;
        if next[i] == 0 {
            starts[i] = start - t_in;
        }
        ready[i] = done;
        next[i] += 1;
        if next[i] == timeline.len() {
            finishes[i] = done;
            makespan = makespan.max(done);
        }
    }
    let head_idle = timeline.first().map_or(0.0, |s| {
        s.resources()
            .iter()
            .map(|r| free[r.slot()])
            .fold(f64::INFINITY, f64::min)
    });
    (
        ServedRun {
            makespan,
            starts,
            finishes,
            head_idle,
        },
        spans,
    )
}

/// Fault-aware [`pipelined_schedule_released`]: the same greedy
/// event-driven schedule, with `plan`'s slowdown/hang/link-degrade
/// windows applied at every placement decision. Crash events do not
/// alter the low-level schedule — the failover orchestrator
/// ([`serve_faulted`]) splits runs at crashes instead.
///
/// A plan with no degradation windows (including the empty plan)
/// delegates verbatim to the unfaulted scheduler, so the result is
/// **bit-identical** and the overhead is one branch.
pub fn faulted_schedule_released(
    timeline: &[StageTiming],
    releases: &[f64],
    plan: &FaultPlan,
) -> ServedRun {
    let boards = timeline
        .iter()
        .flat_map(|s| s.resources())
        .map(|r| r.board())
        .max()
        .map_or(1, |m| m + 1)
        .max(
            plan.events()
                .iter()
                .filter_map(|e| e.board())
                .max()
                .map_or(0, |m| m + 1),
        );
    let windows = FaultWindows::from_plan(plan, boards);
    if !windows.has_degrades() {
        return pipelined_schedule_released(timeline, releases);
    }
    faulted_run(timeline, releases, &windows).0
}

/// Add `seconds` of busy time to `resource`'s bucket.
fn add_busy(busy: &mut Vec<(StageResource, f64)>, resource: StageResource, seconds: f64) {
    if let Some(slot) = busy.iter_mut().find(|(r, _)| *r == resource) {
        slot.1 += seconds;
    } else {
        busy.push((resource, seconds));
    }
}

/// Replay one committed span (stage + optional hand-off) into the trace
/// under the image's **original** id, and bill its busy time.
fn replay_span(
    rec: &mut Recorder,
    busy: &mut Vec<(StageResource, f64)>,
    span: &SpanRec,
    id: usize,
) {
    let delivered = span.transfer.map_or(span.pending, |(_, e)| e);
    rec.stage(
        id,
        span.stage,
        span.resource,
        span.layer,
        span.pending,
        delivered,
        span.start,
        span.end,
    );
    if let Some((s, e)) = span.transfer {
        rec.transfer(id, span.stage, span.resource, s, e);
    }
    add_busy(busy, span.resource, span.end - span.start);
}

/// Replay the epoch's arrivals + dispatches whose dispatch instant
/// precedes `until`, returning how many batches that is. Mirrors the
/// grouping in [`crate::serve::serve_timeline_traced`].
fn replay_batches(rec: &mut Recorder, avails: &[f64], releases: &[f64], until: f64) -> usize {
    let mut batches = 0usize;
    let mut i = 0usize;
    while i < releases.len() {
        let at = releases[i];
        let mut j = i;
        while j < releases.len() && releases[j] == at {
            j += 1;
        }
        if at < until {
            for arrival in &avails[i..j] {
                rec.arrival(*arrival);
            }
            rec.dispatch(at, j - i);
            batches += 1;
        }
        i = j;
    }
    batches
}

/// Serve `req` over `plan` while injecting `faults`, detecting crashes
/// with `policy`, and failing over onto the surviving boards.
///
/// The orchestrator runs the serve in **epochs** separated by board
/// crashes. Within an epoch the fault-aware scheduler applies the
/// degradation windows; at each crash the health monitor prices a
/// detection delay, in-flight images untouched by the dead board drain
/// to completion, work lost on it is re-dispatched, the partition /
/// replica search re-runs over the surviving [`Cluster`]
/// (`Offload::Auto` + [`Replication::Auto`], which admits the head-PS
/// software fallback as the degraded last resort), and the replacement
/// placement's weight re-broadcast ([`restage_seconds`]) is billed
/// before serving resumes. An empty `faults` delegates verbatim to
/// [`crate::serve::serve_timeline_traced`] — bit-identical reports and
/// traces.
///
/// Returns [`EngineError::InvalidFaultPlan`] for an unusable plan or
/// policy, and any error the serve request itself fails with.
pub fn serve_faulted(
    plan: &ClusterPlan,
    req: &ServeRequest,
    faults: &FaultPlan,
    policy: &HealthPolicy,
    traced: bool,
) -> Result<ServeReport, EngineError> {
    faults.validate(plan.cluster().len())?;
    policy.validate()?;
    if faults.is_empty() {
        return crate::serve::serve_timeline_traced(plan.timeline(), req, traced);
    }
    req.validate()?;
    let arrivals = req.arrivals.arrivals(req.images, req.seed);
    let windows = FaultWindows::from_plan(faults, plan.cluster().len());
    let monitor = HealthMonitor::new(*policy);
    let mut rec = if traced {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    // Degradations are announced at their window start; crashes are
    // announced when the orchestrator consumes them.
    for e in faults.events() {
        if !matches!(e, FaultEvent::BoardCrash { .. }) {
            rec.fault(FaultTraceEvent::FaultInjected {
                at: e.at(),
                kind: e.kind(),
                board: e.board(),
            });
        }
    }
    let mut crashes: Vec<(f64, usize)> = faults
        .events()
        .iter()
        .filter_map(|e| match *e {
            FaultEvent::BoardCrash { board, at } => Some((at, board)),
            _ => None,
        })
        .collect();
    crashes.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let mut survivors: Vec<usize> = (0..plan.cluster().len()).collect();
    let mut timeline: Vec<StageTiming> = plan.timeline().to_vec();
    // (original image id, availability instant), kept sorted.
    let mut pending: Vec<(usize, f64)> = arrivals.iter().copied().enumerate().collect();
    let mut finishes: Vec<Option<f64>> = vec![None; req.images];
    let mut failovers: Vec<FailoverRecord> = Vec::new();
    let mut dropped = 0usize;
    let mut batches = 0usize;
    let mut queue_peak = 0usize;
    let mut busy: Vec<(StageResource, f64)> = Vec::new();
    let mut degraded_seconds = 0.0f64;
    let mut degraded_completions = 0usize;
    let mut degraded_now = false;
    let mut t0 = 0.0f64;
    let mut crash_idx = 0usize;

    while !pending.is_empty() {
        // Pull the next crash that actually triggers a failover.
        // Crashes of already-dead boards are no-ops; crashes of boards
        // the current placement does not use silently shrink the
        // survivor set (nothing times out, so nothing is detected).
        let mut crash: Option<(f64, usize)> = None;
        while crash_idx < crashes.len() {
            let (at, b) = crashes[crash_idx];
            crash_idx += 1;
            let eff = at.max(t0);
            rec.fault(FaultTraceEvent::FaultInjected {
                at: eff,
                kind: FaultKind::Crash,
                board: Some(b),
            });
            if !survivors.contains(&b) {
                continue;
            }
            if board_stage_seconds(&timeline, b) == 0.0 {
                survivors.retain(|&s| s != b);
                continue;
            }
            crash = Some((eff, b));
            break;
        }

        let avails: Vec<f64> = pending.iter().map(|(_, a)| *a).collect();
        let rel = MicroBatcher::new(req.dispatch).release_plan(&timeline, &avails);
        queue_peak = queue_peak.max(rel.queue_peak);
        let (run, spans) = faulted_run(&timeline, &rel.releases, &windows);

        let Some((t_c, b)) = crash else {
            // Final epoch: every remaining image completes.
            batches += replay_batches(&mut rec, &avails, &rel.releases, f64::INFINITY);
            let mut epoch_end = t0;
            for (k, &(id, _)) in pending.iter().enumerate() {
                finishes[id] = Some(run.finishes[k]);
                epoch_end = epoch_end.max(run.finishes[k]);
                if degraded_now {
                    degraded_completions += 1;
                }
            }
            for span in &spans {
                replay_span(&mut rec, &mut busy, span, pending[span.image].0);
            }
            if degraded_now {
                degraded_seconds += epoch_end - t0;
            }
            break;
        };

        let detect_at = monitor.detect_at(&timeline, b, t_c);
        rec.fault(FaultTraceEvent::FailoverStart {
            at: detect_at,
            board: b,
        });

        // Classify this epoch's images against the crash: an image is
        // *committed* when it began before detection and none of its
        // work died with the board; otherwise it goes back in the
        // queue (re-dispatched when its lost work had already started).
        let n = pending.len();
        let mut first_start = vec![f64::INFINITY; n];
        let mut lost = vec![false; n];
        for s in &spans {
            first_start[s.image] = first_start[s.image].min(s.start);
            if s.resource.board() == b && s.end > t_c {
                lost[s.image] = true;
            }
        }
        let committed: Vec<bool> = (0..n)
            .map(|k| first_start[k] < detect_at && !lost[k])
            .collect();
        let mut drain_end = detect_at;
        for (k, &(id, _)) in pending.iter().enumerate() {
            if committed[k] {
                finishes[id] = Some(run.finishes[k]);
                drain_end = drain_end.max(run.finishes[k]);
                if degraded_now {
                    degraded_completions += 1;
                }
            }
        }
        batches += replay_batches(&mut rec, &avails, &rel.releases, detect_at);
        for span in &spans {
            if committed[span.image] {
                replay_span(&mut rec, &mut busy, span, pending[span.image].0);
            }
        }
        if degraded_now {
            degraded_seconds += drain_end - t0;
        }

        let redispatched_here = (0..n)
            .filter(|&k| !committed[k] && first_start[k] < detect_at)
            .count();
        let survivors_next: Vec<usize> = survivors.iter().copied().filter(|&s| s != b).collect();

        if survivors_next.is_empty() {
            // Nothing left to fail over to: everything not yet
            // committed is dropped (counted, never silently lost).
            dropped += (0..n).filter(|&k| !committed[k]).count();
            let drain_seconds = drain_end - t_c;
            failovers.push(FailoverRecord {
                board: b,
                crash_at: t_c,
                detect_at,
                drain_seconds,
                rebroadcast_seconds: 0.0,
                recovery_seconds: drain_seconds,
                resume_at: drain_end,
                degraded: true,
                redispatched: 0,
            });
            rec.fault(FaultTraceEvent::FailoverEnd {
                at: drain_end,
                degraded: true,
            });
            pending.clear();
            break;
        }
        survivors = survivors_next;

        // Replan over the survivors. `Offload::Auto` + `Replication::
        // Auto` always admit the head-PS software placement, so with at
        // least one board left this cannot fail.
        let boards: Vec<_> = survivors
            .iter()
            .map(|&s| plan.cluster().boards()[s])
            .collect();
        let creq = ClusterRequest {
            cluster: Cluster::new(boards, *plan.cluster().interconnect()),
            offload: Offload::Auto,
            bn: plan.bn_mode(),
            ps: *plan.ps_model(),
            pl: *plan.pl_model(),
            // The deployed per-stage formats carry over verbatim — a
            // failover never re-runs calibration.
            precision: *plan.precision(),
            schedule: plan.schedule(),
            partitioner: plan.partitioner(),
            replication: Replication::Auto,
        };
        let nplan = plan_cluster(plan.spec(), &creq)?;
        let degraded = nplan.target() == OffloadTarget::None;
        let rebroadcast_seconds = restage_seconds(&nplan);
        let drain_seconds = drain_end - t_c;
        let resume_at = drain_end + rebroadcast_seconds;
        failovers.push(FailoverRecord {
            board: b,
            crash_at: t_c,
            detect_at,
            drain_seconds,
            rebroadcast_seconds,
            recovery_seconds: drain_seconds + rebroadcast_seconds,
            resume_at,
            degraded,
            redispatched: redispatched_here,
        });
        rec.fault(FaultTraceEvent::FailoverEnd {
            at: resume_at,
            degraded,
        });

        // Map the replan's sub-cluster board indices back to the
        // original rack's, so traces, utilization, and the degradation
        // windows keep addressing physical boards.
        let remap = |r: StageResource| -> StageResource {
            let original = |j: usize| survivors[j];
            match r {
                StageResource::Ps => {
                    if original(0) == 0 {
                        StageResource::Ps
                    } else {
                        StageResource::PsOn(original(0))
                    }
                }
                StageResource::PsOn(j) => {
                    if original(j) == 0 {
                        StageResource::Ps
                    } else {
                        StageResource::PsOn(original(j))
                    }
                }
                StageResource::Pl(j) => StageResource::Pl(original(j)),
            }
        };
        timeline = nplan
            .timeline()
            .iter()
            .map(|row| StageTiming {
                resource: remap(row.resource),
                replicas: row.replicas.iter().map(|&r| remap(r)).collect(),
                ..row.clone()
            })
            .collect();

        // Everything not committed re-enters the queue at resume time
        // (its own arrival instant when it arrives even later).
        let mut requeued: Vec<(usize, f64)> = pending
            .iter()
            .enumerate()
            .filter(|(k, _)| !committed[*k])
            .map(|(k, &(id, avail))| {
                if first_start[k] < detect_at {
                    rec.fault(FaultTraceEvent::Redispatch {
                        at: resume_at,
                        image: id,
                    });
                }
                (id, avail.max(resume_at))
            })
            .collect();
        requeued.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        pending = requeued;
        degraded_now = degraded;
        t0 = resume_at;
    }

    // Assemble the report over the whole faulted run.
    let completed = finishes.iter().flatten().count();
    let last_arrival = arrivals.last().copied().unwrap_or(0.0);
    let horizon = finishes
        .iter()
        .flatten()
        .fold(last_arrival, |m, &f| m.max(f))
        .max(failovers.last().map_or(0.0, |f| f.resume_at));
    let mut latencies: Vec<f64> = finishes
        .iter()
        .enumerate()
        .filter_map(|(id, f)| f.map(|f| f - arrivals[id]))
        .collect();
    latencies.sort_by(f64::total_cmp);
    busy.sort_by_key(|(r, _)| r.slot());
    let utilization = busy
        .iter()
        .map(|&(r, s)| (r, if horizon > 0.0 { s / horizon } else { 0.0 }))
        .collect();
    let recovery: f64 = failovers.iter().map(|f| f.recovery_seconds).sum();
    let availability = if horizon > 0.0 {
        (1.0 - recovery / horizon).clamp(0.0, 1.0)
    } else {
        1.0
    };
    let redispatched = failovers.iter().map(|f| f.redispatched).sum();
    debug_assert_eq!(completed + dropped, req.images, "image conservation");
    rec.run_summary(plan.timeline(), completed, horizon);
    Ok(ServeReport {
        images: completed,
        batches,
        offered_rate: req.arrivals.rate(),
        goodput: if horizon > 0.0 {
            completed as f64 / horizon
        } else {
            0.0
        },
        horizon,
        latency_p50: latency_quantile(&latencies, 0.5),
        latency_p99: latency_quantile(&latencies, 0.99),
        latency_p999: latency_quantile(&latencies, 0.999),
        latency_max: latencies.last().copied().unwrap_or(0.0),
        queue_peak,
        utilization,
        window: window_report(&req.window, horizon, finishes.iter().flatten().copied()),
        availability: Some(AvailabilityReport {
            failovers,
            completed,
            dropped,
            redispatched,
            availability,
            degraded_seconds,
            degraded_goodput: if degraded_seconds > 0.0 {
                degraded_completions as f64 / degraded_seconds
            } else {
                0.0
            },
        }),
        trace: traced.then(|| rec.finish()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Vec<StageTiming> {
        vec![
            StageTiming {
                resource: StageResource::Ps,
                layer: None,
                seconds: 0.010,
                transfer_in: 0.0,
                replicas: Vec::new(),
            },
            StageTiming {
                resource: StageResource::Pl(1),
                layer: Some(LayerName::Layer1),
                seconds: 0.020,
                transfer_in: 0.002,
                replicas: Vec::new(),
            },
        ]
    }

    #[test]
    fn empty_plan_schedule_is_bit_identical() {
        let timeline = chain();
        let releases: Vec<f64> = (0..16).map(|i| i as f64 * 0.003).collect();
        let base = pipelined_schedule_released(&timeline, &releases);
        let faulted = faulted_schedule_released(&timeline, &releases, &FaultPlan::none());
        assert_eq!(base.makespan.to_bits(), faulted.makespan.to_bits());
        assert_eq!(base.starts, faulted.starts);
        assert_eq!(base.finishes, faulted.finishes);
        assert_eq!(base.head_idle.to_bits(), faulted.head_idle.to_bits());
    }

    #[test]
    fn crash_only_plan_keeps_low_level_schedule() {
        let timeline = chain();
        let releases: Vec<f64> = (0..8).map(|i| i as f64 * 0.005).collect();
        let plan = FaultPlan::new(vec![FaultEvent::BoardCrash { board: 1, at: 0.01 }]);
        let base = pipelined_schedule_released(&timeline, &releases);
        let faulted = faulted_schedule_released(&timeline, &releases, &plan);
        assert_eq!(base.finishes, faulted.finishes);
    }

    #[test]
    fn slowdown_stretches_stage_starts_inside_window() {
        let timeline = chain();
        let releases = vec![0.0];
        let plan = FaultPlan::new(vec![FaultEvent::BoardSlowdown {
            board: 1,
            at: 0.0,
            factor: 2.0,
            duration: 1.0,
        }]);
        let base = pipelined_schedule_released(&timeline, &releases);
        let faulted = faulted_schedule_released(&timeline, &releases, &plan);
        assert!(faulted.makespan > base.makespan);
        assert!((faulted.makespan - (base.makespan + 0.020)).abs() < 1e-12);
    }

    #[test]
    fn hang_defers_starts_to_window_end() {
        let timeline = chain();
        let releases = vec![0.0];
        let plan = FaultPlan::new(vec![FaultEvent::BoardHang {
            board: 0,
            at: 0.0,
            duration: 0.5,
        }]);
        let run = faulted_schedule_released(&timeline, &releases, &plan);
        // The head stage cannot start before the hang lifts at 0.5 s.
        assert!(run.starts[0] >= 0.5);
    }

    #[test]
    fn link_degrade_slows_transfers_only() {
        let timeline = chain();
        let releases = vec![0.0];
        let plan = FaultPlan::new(vec![FaultEvent::LinkDegrade {
            at: 0.0,
            bandwidth_factor: 0.5,
            duration: 1.0,
        }]);
        let base = pipelined_schedule_released(&timeline, &releases);
        let faulted = faulted_schedule_released(&timeline, &releases, &plan);
        // The 2 ms hand-off doubles to 4 ms; compute time is untouched.
        assert!((faulted.makespan - (base.makespan + 0.002)).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_unknown_board() {
        let plan = FaultPlan::new(vec![FaultEvent::BoardCrash { board: 4, at: 0.1 }]);
        let err = plan.validate(4).unwrap_err();
        match err {
            EngineError::InvalidFaultPlan { event, ref reason } => {
                assert_eq!(event, Some(0));
                assert!(reason.contains("board 4"), "{reason}");
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert!(plan.validate(5).is_ok());
    }

    #[test]
    fn validate_rejects_overlapping_board_windows() {
        let plan = FaultPlan::new(vec![
            FaultEvent::BoardSlowdown {
                board: 0,
                at: 0.0,
                factor: 2.0,
                duration: 0.5,
            },
            FaultEvent::BoardHang {
                board: 0,
                at: 0.4,
                duration: 0.2,
            },
        ]);
        let err = plan.validate(1).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("overlaps"), "{text}");
        // The same windows on different boards are fine.
        let apart = FaultPlan::new(vec![
            FaultEvent::BoardSlowdown {
                board: 0,
                at: 0.0,
                factor: 2.0,
                duration: 0.5,
            },
            FaultEvent::BoardHang {
                board: 1,
                at: 0.4,
                duration: 0.2,
            },
        ]);
        assert!(apart.validate(2).is_ok());
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        for (plan, needle) in [
            (
                FaultPlan::new(vec![FaultEvent::BoardSlowdown {
                    board: 0,
                    at: 0.0,
                    factor: 0.5,
                    duration: 1.0,
                }]),
                "speedup",
            ),
            (
                FaultPlan::new(vec![FaultEvent::BoardHang {
                    board: 0,
                    at: 0.0,
                    duration: 0.0,
                }]),
                "duration",
            ),
            (
                FaultPlan::new(vec![FaultEvent::LinkDegrade {
                    at: 0.0,
                    bandwidth_factor: 1.5,
                    duration: 1.0,
                }]),
                "bandwidth factor",
            ),
            (
                FaultPlan::new(vec![FaultEvent::BoardCrash { board: 0, at: -1.0 }]),
                "finite",
            ),
        ] {
            let err = plan.validate(2).unwrap_err();
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn health_policy_validates() {
        assert!(HealthPolicy::default().validate().is_ok());
        assert!(HealthPolicy { timeout: 0.0 }.validate().is_err());
        assert!(HealthPolicy {
            timeout: f64::INFINITY
        }
        .validate()
        .is_err());
    }

    #[test]
    fn detect_at_scales_with_board_stage_seconds() {
        let timeline = chain();
        let monitor = HealthMonitor::new(HealthPolicy { timeout: 2.0 });
        // Board 1 carries the 20 ms PL stage.
        assert!((monitor.detect_at(&timeline, 1, 1.0) - 1.04).abs() < 1e-12);
        // Board 0 carries the 10 ms PS stage.
        assert!((monitor.detect_at(&timeline, 0, 1.0) - 1.02).abs() < 1e-12);
        // An unused board is "detected" immediately (nothing times out).
        assert_eq!(monitor.detect_at(&timeline, 3, 1.0), 1.0);
    }
}
