//! FPGA resource model — Table 3 of the paper.
//!
//! ## BRAM (structural, exact)
//!
//! The ODEBlock stores three uniformly-sized feature-map buffers (input
//! with the concatenated t channel, the intermediate map, the output) and
//! one weight bank *per output channel* holding both convolutions'
//! weights for that channel, so that `n` multiply–add units can stream
//! `n` weights per cycle:
//!
//! * feature buffers: `3 · ceil((C+1)·H·W·4 / 4608)` BRAM36;
//! * weight banks: `wb = 2·(C+1)·9·4` bytes each. A bank occupies one
//!   BRAM18 half-block when `wb ≤ 2304` **and** at most half the banks
//!   are read simultaneously (`n ≤ C/2`); otherwise whole BRAM36s
//!   (`ceil(wb/4608)` each).
//!
//! This reproduces all 12 BRAM cells of Table 3 exactly, including the
//! layer1 jump from 56 to 64 BRAM at conv_x16 and layer3_2's flat 140
//! (= 100 %).
//!
//! ## DSP (structural, exact)
//!
//! `4·n + 4`: each 32-bit Q20 multiply–add unit consumes four DSP48E1
//! slices (a 32×32 multiplier), and the batch-norm mean/σ unit another
//! four. Exact on all 12 cells.
//!
//! ## LUT / FF (characterized)
//!
//! Synthesis results are not closed-form; the crate carries the paper's
//! synthesis numbers as a characterization table (the way EDA flows ship
//! characterized macros) and falls back to a per-layer linear model for
//! configurations outside the table.

use crate::board::Board;
#[cfg(test)]
use crate::board::PYNQ_Z2;
use rodenet::LayerName;

/// Geometry of an offloadable ODE layer: data channels and spatial extent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayerGeom {
    /// Data channels C (16/32/64).
    pub c: usize,
    /// Height = width of the feature map.
    pub hw: usize,
}

/// Geometry of the three offloadable layers (Table 2).
pub fn layer_geom(layer: LayerName) -> LayerGeom {
    let (c, hw) = layer.geometry();
    assert!(
        matches!(
            layer,
            LayerName::Layer1 | LayerName::Layer2_2 | LayerName::Layer3_2
        ),
        "only the shape-preserving ODE layers are offloadable (got {layer})"
    );
    LayerGeom { c, hw }
}

/// Resource usage of one ODEBlock circuit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResourceReport {
    /// The layer this circuit implements.
    pub layer: LayerName,
    /// Multiply–add units (conv_x·n).
    pub parallelism: usize,
    /// BRAM18 half-blocks (2 per BRAM36).
    pub bram18: u32,
    /// DSP48E1 slices.
    pub dsp: u32,
    /// Look-up tables (characterized/modelled).
    pub lut: u32,
    /// Flip-flops (characterized/modelled).
    pub ff: u32,
    /// Whether `lut`/`ff` come from the synthesis characterization table
    /// (`true`) or the linear model (`false`).
    pub characterized: bool,
}

impl ResourceReport {
    /// BRAM36-equivalent count (may be half-integral).
    pub fn bram36_used(&self) -> f64 {
        self.bram18 as f64 / 2.0
    }

    /// Utilization percentages against a board, in Table 3 order
    /// (BRAM, DSP, LUT, FF).
    pub fn utilization(&self, board: &Board) -> [f64; 4] {
        [
            100.0 * self.bram36_used() / board.bram36 as f64,
            100.0 * self.dsp as f64 / board.dsp as f64,
            100.0 * self.lut as f64 / board.lut as f64,
            100.0 * self.ff as f64 / board.ff as f64,
        ]
    }

    /// True when the circuit fits the board.
    pub fn fits(&self, board: &Board) -> bool {
        self.bram36_used() <= board.bram36 as f64
            && self.dsp <= board.dsp
            && self.lut <= board.lut
            && self.ff <= board.ff
    }
}

/// BRAM18 half-blocks used by the feature-map buffers.
pub fn feature_buffer_bram18(geom: LayerGeom) -> u32 {
    let bytes = (geom.c + 1) * geom.hw * geom.hw * 4;
    let bram36 = bytes.div_ceil(Board::BRAM36_BYTES) as u32;
    3 * 2 * bram36
}

/// BRAM18 half-blocks used by the per-output-channel weight banks.
pub fn weight_bank_bram18(geom: LayerGeom, parallelism: usize) -> u32 {
    let bank_bytes = 2 * (geom.c + 1) * 9 * 4;
    let banks = geom.c as u32;
    if bank_bytes <= Board::BRAM18_BYTES && parallelism <= geom.c / 2 {
        banks // one BRAM18 each
    } else {
        banks * 2 * bank_bytes.div_ceil(Board::BRAM36_BYTES) as u32
    }
}

/// DSP48E1 slices: 4 per multiply–add unit + 4 for the BN unit.
pub fn dsp_slices(parallelism: usize) -> u32 {
    dsp_slices_at_width(parallelism, 4)
}

/// DSP48E1 slices at an arbitrary parameter width. A b×b multiplier
/// tiles onto `⌈b/25⌉·⌈b/18⌉` of the slice's 25×18 signed multipliers:
/// 4 for the paper's 32-bit build (exact on Table 3), 1 for 16-bit or
/// less, 2 for a 17–24-bit operand, 12 for a 64-bit one. The BN mean/σ
/// unit keeps its four slices at every width.
pub fn dsp_slices_at_width(parallelism: usize, bytes_per_value: usize) -> u32 {
    let bits = (bytes_per_value * 8) as u32;
    let per_mac = bits.div_ceil(25) * bits.div_ceil(18);
    per_mac * parallelism as u32 + 4
}

/// The paper's synthesis results (Table 3) as a characterization table:
/// `(layer, n) → (LUT, FF)`.
pub fn characterized_lut_ff(layer: LayerName, parallelism: usize) -> Option<(u32, u32)> {
    let table: &[(usize, (u32, u32))] = match layer {
        LayerName::Layer1 => &[
            (1, (1486, 835)),
            (4, (2992, 1358)),
            (8, (4740, 2058)),
            (16, (8994, 4145)),
        ],
        LayerName::Layer2_2 => &[
            (1, (1482, 833)),
            (4, (2946, 1346)),
            (8, (4737, 2032)),
            (16, (8844, 4873)),
        ],
        LayerName::Layer3_2 => &[
            (1, (1692, 927)),
            (4, (3048, 1411)),
            (8, (4907, 2059)),
            (16, (12720, 6378)),
        ],
        _ => return None,
    };
    table
        .iter()
        .find(|(n, _)| *n == parallelism)
        .map(|(_, v)| *v)
}

/// `(lut_base, lut_per_mac, ff_base, ff_per_mac)` of the per-layer
/// linear LUT/FF model, least-squares fitted on n ∈ {1, 4, 8}. The base
/// terms are the width-independent control logic (FSMs, address
/// generators); the per-MAC terms are datapath (operand registers,
/// adder trees) and scale with the operand width.
fn lut_ff_coeffs(layer: LayerName) -> (f64, f64, f64, f64) {
    match layer {
        LayerName::Layer1 => (1065.0, 463.3, 660.0, 174.7),
        LayerName::Layer2_2 => (1038.0, 465.4, 661.6, 171.3),
        LayerName::Layer3_2 => (1224.0, 459.5, 765.0, 161.7),
        _ => panic!("no LUT/FF model for {layer}"),
    }
}

/// Linear LUT/FF model per layer, least-squares fitted to the
/// characterized points at n ≤ 8 (the region where synthesis scales
/// linearly). Above 8 units synthesis goes superlinear (wider adder
/// trees, control replication); a quadratic correction approximates the
/// n = 16 jump. Used only for parallelism values outside Table 3.
pub fn modelled_lut_ff(layer: LayerName, parallelism: usize) -> (u32, u32) {
    let (lb, lm, fb, fm) = lut_ff_coeffs(layer);
    // Superlinear correction calibrated on the layer3_2 conv_x16 cell.
    let n = parallelism as f64;
    let extra = if n > 8.0 {
        (n - 8.0) * (n - 8.0) * 65.0
    } else {
        0.0
    };
    let extra_ff = if n > 8.0 {
        (n - 8.0) * (n - 8.0) * 60.0
    } else {
        0.0
    };
    (
        (lb + lm * n + extra).round() as u32,
        (fb + fm * n + extra_ff).round() as u32,
    )
}

/// LUT/FF of one circuit: the synthesis characterization when the
/// configuration is in Table 3, the linear model otherwise.
pub fn lut_ff(layer: LayerName, parallelism: usize) -> (u32, u32) {
    characterized_lut_ff(layer, parallelism).unwrap_or_else(|| modelled_lut_ff(layer, parallelism))
}

/// Width-aware LUT/FF model: the 32-bit figure (characterized where
/// Table 3 has the cell, modelled otherwise) split into a
/// width-independent control base and a datapath share that scales
/// linearly with the operand width. A Q16 multiply–add keeps its FSMs
/// and address generators but halves its operand registers and adder
/// trees, so a 16-bit circuit lands at `base + (lut32 − base) · 16/32`.
/// At 4 bytes this returns [`lut_ff`] exactly (the planner's 32-bit
/// behavior is pinned); wider analysis formats scale up symmetrically.
pub fn modelled_lut_ff_at(
    layer: LayerName,
    parallelism: usize,
    bytes_per_value: usize,
) -> (u32, u32) {
    let (lut32, ff32) = lut_ff(layer, parallelism);
    if bytes_per_value == 4 {
        return (lut32, ff32);
    }
    let (lb, _, fb, _) = lut_ff_coeffs(layer);
    let scale = (bytes_per_value * 8) as f64 / 32.0;
    let lut = lb + (lut32 as f64 - lb).max(0.0) * scale;
    let ff = fb + (ff32 as f64 - fb).max(0.0) * scale;
    (lut.round() as u32, ff.round() as u32)
}

/// Full resource report for one ODEBlock circuit.
pub fn ode_block_resources(layer: LayerName, parallelism: usize) -> ResourceReport {
    assert!(parallelism >= 1, "at least one multiply-add unit");
    let geom = layer_geom(layer);
    assert!(
        parallelism <= geom.c,
        "parallelism is bounded by the output channel count ({})",
        geom.c
    );
    let bram18 = feature_buffer_bram18(geom) + weight_bank_bram18(geom, parallelism);
    let characterized = characterized_lut_ff(layer, parallelism).is_some();
    let (lut, ff) = lut_ff(layer, parallelism);
    ResourceReport {
        layer,
        parallelism,
        bram18,
        dsp: dsp_slices(parallelism),
        lut,
        ff,
        characterized,
    }
}

/// BRAM18 half-blocks for the feature buffers at an arbitrary parameter
/// width (the footnote-2 exploration: "using reduced bit widths (e.g.,
/// 16-bit or less) can implement more layers in PL").
pub fn feature_buffer_bram18_at(geom: LayerGeom, bytes_per_value: usize) -> u32 {
    let bytes = (geom.c + 1) * geom.hw * geom.hw * bytes_per_value;
    3 * 2 * bytes.div_ceil(Board::BRAM36_BYTES) as u32
}

/// BRAM18 half-blocks for the weight banks at an arbitrary width.
pub fn weight_bank_bram18_at(geom: LayerGeom, parallelism: usize, bytes_per_value: usize) -> u32 {
    let bank_bytes = 2 * (geom.c + 1) * 9 * bytes_per_value;
    let banks = geom.c as u32;
    if bank_bytes <= Board::BRAM18_BYTES && parallelism <= geom.c / 2 {
        banks
    } else {
        banks * 2 * bank_bytes.div_ceil(Board::BRAM36_BYTES) as u32
    }
}

/// Total BRAM36-equivalents of one ODEBlock circuit at a given parameter
/// width (4 = the paper's 32-bit build).
pub fn bram36_at_width(layer: LayerName, parallelism: usize, bytes_per_value: usize) -> f64 {
    let geom = layer_geom(layer);
    (feature_buffer_bram18_at(geom, bytes_per_value)
        + weight_bank_bram18_at(geom, parallelism, bytes_per_value)) as f64
        / 2.0
}

/// Aggregate `(BRAM36, DSP, LUT, FF)` demand of a multi-circuit
/// placement at an arbitrary parameter width — the totals a board must
/// offer to carry every circuit in `layers` simultaneously. The single
/// summation behind [`crate::planner::OffloadTarget::fits_at`] and the
/// partitioner's shard-infeasibility diagnostics.
pub fn placement_resources_at(
    layers: &[LayerName],
    parallelism: usize,
    bytes_per_value: usize,
) -> (f64, u32, u32, u32) {
    let pairs: Vec<(LayerName, usize)> = layers.iter().map(|&l| (l, bytes_per_value)).collect();
    placement_resources_mixed(&pairs, parallelism)
}

/// Bytes of parameters one offloaded stage's circuit holds at the
/// given word width — the block's convolution weights and batch-norm
/// terms as priced by [`rodenet::params::block_bytes`], with the
/// variant's ODE/plain flavor resolved from `spec`. This is the
/// payload a replica broadcast ships to each extra carrier of the
/// stage (see [`crate::replica`]).
pub fn stage_param_bytes(spec: &rodenet::NetSpec, layer: LayerName, bytes_per_value: usize) -> u64 {
    let plan = spec.plan(layer);
    (plan.stacked.max(1)
        * rodenet::params::block_bytes(layer, plan.is_ode, spec.classes, bytes_per_value))
        as u64
}

/// [`placement_resources_at`] with a **per-circuit** parameter width:
/// each `(layer, bytes_per_value)` pair is priced at its own word
/// format — the mixed-precision generalization the per-stage policies
/// feasibility-check against. The uniform entry point above is the
/// all-stages-same-bytes special case.
pub fn placement_resources_mixed(
    stages: &[(LayerName, usize)],
    parallelism: usize,
) -> (f64, u32, u32, u32) {
    let mut bram36 = 0.0f64;
    let mut dsp = 0u32;
    let mut lut = 0u32;
    let mut ff = 0u32;
    for &(layer, bytes_per_value) in stages {
        bram36 += bram36_at_width(layer, parallelism, bytes_per_value);
        dsp += dsp_slices_at_width(parallelism, bytes_per_value);
        let (l, f) = modelled_lut_ff_at(layer, parallelism, bytes_per_value);
        lut += l;
        ff += f;
    }
    (bram36, dsp, lut, ff)
}

/// Maximum PL clock the conv_x·n circuit closes timing at, in Hz.
///
/// The paper reports that conv_x32 alone fails the 100 MHz constraint; the
/// model degrades the achievable clock with the log of the adder-tree
/// depth beyond 16 units.
pub fn timing_closure_hz(parallelism: usize) -> u64 {
    if parallelism <= 16 {
        100_000_000
    } else {
        90_000_000 // the paper's conv_x32 misses 100 MHz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_bram_exact_all_cells() {
        // (layer, n, BRAM36) — all 12 published cells.
        let cells = [
            (LayerName::Layer1, 1, 56.0),
            (LayerName::Layer1, 4, 56.0),
            (LayerName::Layer1, 8, 56.0),
            (LayerName::Layer1, 16, 64.0),
            (LayerName::Layer2_2, 1, 56.0),
            (LayerName::Layer2_2, 4, 56.0),
            (LayerName::Layer2_2, 8, 56.0),
            (LayerName::Layer2_2, 16, 56.0),
            (LayerName::Layer3_2, 1, 140.0),
            (LayerName::Layer3_2, 4, 140.0),
            (LayerName::Layer3_2, 8, 140.0),
            (LayerName::Layer3_2, 16, 140.0),
        ];
        for (layer, n, bram) in cells {
            let r = ode_block_resources(layer, n);
            assert_eq!(r.bram36_used(), bram, "{layer} conv_x{n}");
        }
    }

    #[test]
    fn table3_dsp_exact_all_cells() {
        for n in [1usize, 4, 8, 16] {
            let expect = match n {
                1 => 8,
                4 => 20,
                8 => 36,
                16 => 68,
                _ => unreachable!(),
            };
            for layer in [LayerName::Layer1, LayerName::Layer2_2, LayerName::Layer3_2] {
                assert_eq!(
                    ode_block_resources(layer, n).dsp,
                    expect,
                    "{layer} conv_x{n}"
                );
            }
        }
    }

    #[test]
    fn table3_percentages() {
        // Spot-check the printed percentages.
        let r = ode_block_resources(LayerName::Layer3_2, 16);
        let [bram, dsp, lut, ff] = r.utilization(&PYNQ_Z2);
        assert_eq!(bram, 100.0);
        assert!((dsp - 30.91).abs() < 0.01, "dsp {dsp}");
        assert!((lut - 23.91).abs() < 0.01, "lut {lut}");
        assert!((ff - 5.99).abs() < 0.01, "ff {ff}");
        let r1 = ode_block_resources(LayerName::Layer1, 16);
        let [bram, dsp, ..] = r1.utilization(&PYNQ_Z2);
        assert!((bram - 45.71).abs() < 0.01, "bram {bram}");
        assert!((dsp - 30.91).abs() < 0.01);
    }

    #[test]
    fn characterized_cells_used_verbatim() {
        let r = ode_block_resources(LayerName::Layer2_2, 8);
        assert!(r.characterized);
        assert_eq!((r.lut, r.ff), (4737, 2032));
    }

    #[test]
    fn model_close_to_characterization() {
        // The linear model should land within ~20% of synthesis for the
        // characterized points (synthesis is noisy; BRAM/DSP carry the
        // exactness requirements, LUT/FF do not).
        for layer in [LayerName::Layer1, LayerName::Layer2_2, LayerName::Layer3_2] {
            for n in [1usize, 4, 8] {
                let (ml, mf) = modelled_lut_ff(layer, n);
                let (cl, cf) = characterized_lut_ff(layer, n).unwrap();
                assert!(
                    (ml as f64 / cl as f64 - 1.0).abs() < 0.10,
                    "{layer} x{n} lut model {ml} vs {cl}"
                );
                assert!(
                    (mf as f64 / cf as f64 - 1.0).abs() < 0.10,
                    "{layer} x{n} ff model {mf} vs {cf}"
                );
            }
        }
        // The superlinear correction keeps n = 16 in the right range too.
        let (ml, _) = modelled_lut_ff(LayerName::Layer3_2, 16);
        let (cl, _) = characterized_lut_ff(LayerName::Layer3_2, 16).unwrap();
        assert!(
            (ml as f64 / cl as f64 - 1.0).abs() < 0.35,
            "x16 lut {ml} vs {cl}"
        );
    }

    #[test]
    fn uncharacterized_falls_back_to_model() {
        let r = ode_block_resources(LayerName::Layer3_2, 32);
        assert!(!r.characterized);
        assert!(r.lut > 12_720, "32 units need more LUTs than 16");
        assert_eq!(r.dsp, 132);
    }

    #[test]
    fn layer1_and_layer2_2_fit_together() {
        // §3.2 case 3: both layers on the PL simultaneously.
        let a = ode_block_resources(LayerName::Layer1, 16);
        let b = ode_block_resources(LayerName::Layer2_2, 16);
        let bram = a.bram36_used() + b.bram36_used();
        assert!(bram <= PYNQ_Z2.bram36 as f64, "56+64 = 120 ≤ 140");
        assert!(a.dsp + b.dsp <= PYNQ_Z2.dsp);
    }

    #[test]
    fn layer3_2_excludes_everything_else() {
        // §3.2: layer3_2 at 100% BRAM cannot share with another layer.
        let a = ode_block_resources(LayerName::Layer3_2, 16);
        let b = ode_block_resources(LayerName::Layer1, 1);
        assert!(a.bram36_used() + b.bram36_used() > PYNQ_Z2.bram36 as f64);
        assert!(a.fits(&PYNQ_Z2), "alone it fits exactly");
    }

    #[test]
    fn reduced_width_frees_bram() {
        // Footnote 2: at 16-bit, layer3_2 drops well below 100% BRAM and
        // can share the fabric with layer1 — "more layers in PL".
        let full = bram36_at_width(LayerName::Layer3_2, 16, 4);
        let half = bram36_at_width(LayerName::Layer3_2, 16, 2);
        assert_eq!(full, 140.0);
        assert!(half < 80.0, "16-bit layer3_2 = {half} BRAM36");
        let l1_half = bram36_at_width(LayerName::Layer1, 16, 2);
        assert!(
            half + l1_half <= PYNQ_Z2.bram36 as f64,
            "16-bit layer3_2 + layer1 fit together: {half} + {l1_half}"
        );
    }

    #[test]
    fn width_model_consistent_with_default() {
        for layer in [LayerName::Layer1, LayerName::Layer2_2, LayerName::Layer3_2] {
            for n in [1usize, 8, 16] {
                let r = ode_block_resources(layer, n);
                assert_eq!(
                    bram36_at_width(layer, n, 4),
                    r.bram36_used(),
                    "{layer} x{n}"
                );
            }
        }
    }

    #[test]
    fn dsp_tiling_by_width() {
        // 4-byte (paper) = 4 per MAC — Table 3 exact; the other widths
        // follow the ⌈b/25⌉·⌈b/18⌉ tiling of the 25×18 multiplier.
        assert_eq!(dsp_slices_at_width(16, 4), dsp_slices(16));
        assert_eq!(dsp_slices_at_width(16, 2), 16 + 4);
        assert_eq!(dsp_slices_at_width(16, 1), 16 + 4);
        assert_eq!(
            dsp_slices_at_width(16, 3),
            2 * 16 + 4,
            "24-bit needs 1×2 tiles"
        );
        assert_eq!(
            dsp_slices_at_width(16, 8),
            12 * 16 + 4,
            "64-bit needs 3×4 tiles"
        );
    }

    #[test]
    fn width_aware_lut_ff_scales_datapath_only() {
        for layer in [LayerName::Layer1, LayerName::Layer2_2, LayerName::Layer3_2] {
            for n in [1usize, 8, 16] {
                // The paper's width reproduces the characterized numbers.
                assert_eq!(
                    modelled_lut_ff_at(layer, n, 4),
                    lut_ff(layer, n),
                    "{layer} x{n}"
                );
                // Narrower words shrink, wider grow — monotone in width.
                let (l16, f16) = modelled_lut_ff_at(layer, n, 2);
                let (l32, f32v) = modelled_lut_ff_at(layer, n, 4);
                let (l64, f64v) = modelled_lut_ff_at(layer, n, 8);
                assert!(l16 < l32 && l32 < l64, "{layer} x{n} lut {l16}/{l32}/{l64}");
                assert!(f16 < f32v && f32v < f64v, "{layer} x{n} ff");
                // The control base never scales away: a 1-byte datapath
                // still carries more than half the base logic.
                let (l8, _) = modelled_lut_ff_at(layer, n, 1);
                let (lb, _, _, _) = lut_ff_coeffs(layer);
                assert!(l8 as f64 >= lb, "{layer} x{n}: {l8} under base {lb}");
            }
        }
    }

    #[test]
    fn lut_bound_placement_unlocked_by_reduced_width() {
        // The ROADMAP's LUT/FF-characterization item: a fabric with
        // plenty of BRAM/DSP but few LUTs rejects layer1+layer2_2 at
        // conv_x16/Q20 (17 838 LUTs characterized) yet admits it at Q16
        // (the datapath share halves to ≈9 970) — reduced-width shards
        // must not be gated by the conservative 32-bit table.
        use crate::planner::OffloadTarget;
        let mut lut_starved = PYNQ_Z2;
        lut_starved.lut = 12_000;
        let t = OffloadTarget::Layer1And22;
        assert!(
            !t.fits_at(&lut_starved, 16, 4),
            "17 838 LUTs at 32-bit exceed the 12 000 budget"
        );
        assert!(
            t.fits_at(&lut_starved, 16, 2),
            "the halved datapath fits the same budget at 16-bit"
        );
        // And it is genuinely the LUT axis that flips: BRAM/DSP fit at
        // both widths on this fabric.
        let bram: f64 = t.layers().iter().map(|&l| bram36_at_width(l, 16, 4)).sum();
        assert!(bram <= lut_starved.bram36 as f64);
        assert!(2 * dsp_slices_at_width(16, 4) <= lut_starved.dsp);
    }

    #[test]
    fn placement_totals_sum_the_circuits() {
        use rodenet::LayerName::{Layer1, Layer2_2};
        let (b1, d1, l1, f1) = placement_resources_at(&[Layer1], 16, 4);
        let (b2, d2, l2, f2) = placement_resources_at(&[Layer2_2], 16, 4);
        let (b, d, l, f) = placement_resources_at(&[Layer1, Layer2_2], 16, 4);
        assert_eq!(b, b1 + b2);
        assert_eq!((d, l, f), (d1 + d2, l1 + l2, f1 + f2));
        assert_eq!(b1, bram36_at_width(Layer1, 16, 4));
        assert_eq!(
            placement_resources_at(&[], 16, 4),
            (0.0, 0, 0, 0),
            "a software placement demands nothing"
        );
    }

    #[test]
    fn timing_closure_rule() {
        assert_eq!(timing_closure_hz(16), 100_000_000);
        assert!(timing_closure_hz(32) < 100_000_000, "conv_x32 fails timing");
    }

    #[test]
    #[should_panic(expected = "offloadable")]
    fn downsample_layers_not_offloadable() {
        let _ = layer_geom(LayerName::Layer2_1);
    }

    #[test]
    #[should_panic(expected = "bounded by the output channel count")]
    fn parallelism_bounded_by_channels() {
        let _ = ode_block_resources(LayerName::Layer1, 32);
    }
}
