//! The deployment engine — configure once, infer many times.
//!
//! The free functions of [`crate::system`] re-plan the offload and
//! re-quantize the PL weights on **every call**; serving workloads need
//! the opposite shape: validate a configuration once, then make
//! inference a cheap, repeatable, batchable operation. [`Engine`] is
//! that shape:
//!
//! ```text
//! Engine::builder(&net)            // the trained f32 network
//!     .board(&PYNQ_Z2)             // which device (default PYNQ-Z2)
//!     .offload(Offload::Auto)      // planner-chosen PL placement
//!     .precision(Precision::Uniform(PlFormat::Q20)) // per-stage word widths
//!     .ps_model(PsModel::Calibrated)
//!     .pl_model(PlModel::default())
//!     .bn_mode(BnMode::OnTheFly)   // PS-side batch-norm statistics
//!     .build()?                    // plan + pre-quantize ONCE
//!     .infer(&image)?              // -> RunReport (logits + timing)
//! ```
//!
//! Building is **plan-centric**: [`EngineBuilder::plan`] resolves the
//! placement via [`crate::planner`], checks width-aware resource
//! feasibility and paper-policy applicability, and computes the full
//! input-independent timing decomposition — all without touching a
//! weight. The resulting [`DeploymentPlan`] is queryable on its own
//! (latency, BRAM, DMA — see [`crate::plan`]);
//! [`EngineBuilder::build`] computes the same plan, then pre-quantizes
//! the offloaded blocks into simulated BRAM — exactly once — and keeps
//! the plan for [`Engine::plan`] / [`Engine::latency_report`].
//! Configuration mistakes surface as [`EngineError`] values instead of
//! asserts deep inside an inference call.
//!
//! The PL word format is a runtime builder parameter, resolved **per
//! stage** ([`EngineBuilder::precision`]): one uniform format (the
//! paper's Q20, any 16-bit Q(15−n).n, or a custom
//! [`qfixed::QFormat`]), an explicit per-stage table, or a calibrated
//! policy that measures activation ranges on a sample batch and picks
//! each stage's `frac` itself. Each offloaded stage quantizes at its
//! own DMA boundary into its own format, so a deployment can run
//! layer1 at Q16 next to layer3_2 at Q20; at reduced widths the
//! planner may legally choose placements that share the fabric with
//! layer3_2 (footnote 2: "more layers in PL").
//!
//! Execution is dispatched through the [`Backend`] trait, with three
//! built-in implementations:
//!
//! * [`BackendKind::PsSoftware`] — everything in `f32` on the modelled
//!   Cortex-A9 (the "w/o PL" rows of Table 5);
//! * [`BackendKind::Hybrid`] — offloaded stages on the bit-exact
//!   fixed-point ODEBlock circuit, the rest in `f32` software (the
//!   paper's deployment; bit-identical to the legacy
//!   [`crate::run_hybrid_with`] at the default Q20);
//! * [`BackendKind::PlBitExact`] — the *whole* network in the PL number
//!   system via [`rodenet::QuantNetwork`], offloaded stages on the
//!   modelled circuit: what a fully-fixed-point deployment would
//!   compute. Requires on-the-fly batch norm (the circuit has no
//!   running statistics), enforced at build time.
//!
//! A fourth backend lives in [`crate::cluster`]: configure
//! [`EngineBuilder::cluster`] to shard the placement across several
//! boards (per-board circuits, modelled interconnect hand-offs) and
//! [`EngineBuilder::schedule`] to pipeline batches through the board
//! chain — [`Engine::infer_batch_summary`] then reports the pipelined
//! makespan alongside the per-image reports. Further backends
//! (alternate fabrics) implement [`Backend`] and plug in through
//! [`EngineBuilder::custom_backend`] without touching call sites.
//!
//! ## Batch-norm semantics (deployment parity)
//!
//! [`EngineBuilder::bn_mode`] selects the statistics source for the
//! **PS-resident residual stages**, mirroring the deployed PYNQ flow
//! end to end: conv1 statistics are computed on-device (on-the-fly)
//! and the PL circuit always computes statistics per feature map —
//! that is what its divider/square-root units exist for.

use crate::board::Board;
#[cfg(test)]
use crate::board::PYNQ_Z2;
use crate::cluster::{
    plan_cluster, Cluster, ClusterPlan, ClusterRequest, Interconnect, Schedule, StageTiming,
};
use crate::datapath::OdeBlockAccel;
use crate::partition::Partitioner;
use crate::plan::{plan_deployment, DeploymentPlan, PlFormat, PlanRequest};
use crate::planner::OffloadTarget;
use crate::precision::{Precision, StageFormats};
use crate::replica::Replication;
use crate::serve::{LoadPoint, LoadSweep, ServeReport, ServeRequest};
use crate::timing::{PlModel, PsModel, Table5Row};
use crate::trace::{Recorder, Trace};
use qfixed::{Fix, Fix16};
use rodenet::{BnMode, LayerName, Network, QuantNetwork, ResBlock, Variant};
use tensor::{par, Scalar, Shape4, Tensor};

/// How the engine chooses the PL placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Offload {
    /// Latency-optimal placement under the paper's ODE-blocks-only
    /// policy ([`crate::planner::plan_offload_at`]).
    #[default]
    Auto,
    /// Latency-optimal placement, also considering once-executed plain
    /// blocks ([`crate::planner::plan_offload_extended_at`]).
    AutoExtended,
    /// A fixed placement, validated at build time.
    Target(OffloadTarget),
}

/// Which built-in [`Backend`] executes inference.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// [`BackendKind::PsSoftware`] when the resolved placement is
    /// [`OffloadTarget::None`], [`BackendKind::Hybrid`] otherwise.
    #[default]
    Auto,
    /// Pure `f32` software on the PS.
    PsSoftware,
    /// PS software + bit-exact Q20 PL circuit (the paper's system).
    Hybrid,
    /// The whole network in the Q20 number system.
    PlBitExact,
}

/// Everything that can go wrong configuring or running an [`Engine`].
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// The requested placement does not fit the board's fabric at the
    /// configured parallelism.
    InfeasiblePlacement {
        /// The rejected placement.
        target: OffloadTarget,
        /// conv_x·n multiply–add units it was sized for.
        parallelism: usize,
    },
    /// The placement names a layer the architecture removed or stacks
    /// (only single-instance blocks can live in BRAM).
    TargetNotApplicable {
        /// The rejected placement.
        target: OffloadTarget,
        /// The architecture it was checked against.
        variant: Variant,
    },
    /// The explicit backend cannot honor the resolved placement (e.g.
    /// [`BackendKind::PsSoftware`] with PL stages planned, or a
    /// non-hybrid backend requested together with a [`Cluster`]).
    BackendConflict {
        /// The conflicting backend.
        backend: &'static str,
        /// The resolved placement.
        target: OffloadTarget,
    },
    /// The placement's layers cannot be distributed over the cluster's
    /// boards at the configured width and parallelism under the
    /// requested [`crate::partition::Partitioner`] (see
    /// [`crate::cluster::shard_placement`] and
    /// [`crate::partition::partition_placement`]).
    ShardInfeasible {
        /// The rejected overall placement.
        target: OffloadTarget,
        /// Boards the cluster offered.
        boards: usize,
        /// conv_x·n multiply–add units each shard was sized for.
        parallelism: usize,
        /// The first layer that fit no remaining board (first-fit) or
        /// no board on its own (balanced search); `None` when every
        /// layer fits some board alone but no joint assignment exists.
        stuck: Option<LayerName>,
        /// BRAM36-equivalents the stuck layer demands at the plan's
        /// word width (`0.0` when `stuck` is `None`).
        stuck_bram36: f64,
        /// BRAM36 capacity of every board consulted, in network order.
        board_bram36: Vec<u32>,
        /// An actionable remedy when one exists: the same placement
        /// shards once the rack grows by one board, so a
        /// [`crate::replica::Replication::Stage`] deployment on the
        /// larger rack is within reach. `None` when even a bigger rack
        /// would not help.
        hint: Option<String>,
    },
    /// The requested [`crate::replica::Replication`] policy cannot be
    /// realized on this cluster (not enough boards, a layer the
    /// placement never offloads, or timing-mismatched board groups).
    ReplicationInfeasible {
        /// Why the policy was rejected.
        reason: String,
    },
    /// The backend cannot honor the requested batch-norm mode (the Q20
    /// circuit computes statistics on the fly; it has no running
    /// statistics to consult).
    BnModeConflict {
        /// The conflicting backend.
        backend: &'static str,
    },
    /// The requested PL word format is degenerate (`frac ≥ total bits`,
    /// or outside 2–64 bits), or — at build time — not one of the
    /// widths the engine can instantiate a datapath for (see
    /// [`EngineBuilder::precision`]; any structurally valid format
    /// still *plans*).
    UnsupportedFormat {
        /// Requested storage bits.
        total_bits: u32,
        /// Requested fractional bits.
        frac_bits: u32,
        /// The stage whose per-stage override carries the offending
        /// format, when the precision policy is per-stage (`None` when
        /// the policy is uniform — every stage is equally affected).
        stage: Option<LayerName>,
    },
    /// [`Precision::Calibrated`] was configured with an empty sample
    /// batch — there is no activation envelope to measure.
    CalibrationEmpty,
    /// Calibration measured an activation envelope too wide for every
    /// executable `frac` of the requested width at the requested
    /// headroom (the stage would saturate; widen `total_bits` or relax
    /// `headroom_bits`).
    CalibrationRange {
        /// The stage whose envelope overflows.
        layer: LayerName,
        /// The measured max |value| (activations and parameters).
        max_abs: f64,
        /// The requested storage bits.
        total_bits: u32,
        /// The requested integer-bit margin.
        headroom_bits: u32,
    },
    /// The backend executes the whole network in one number system
    /// (the fully-fixed-point path), but the precision policy resolved
    /// to per-stage formats.
    MixedPrecisionUnsupported {
        /// The conflicting backend.
        backend: &'static str,
    },
    /// The input tensor is not CIFAR-shaped.
    ShapeMismatch {
        /// The offending shape.
        got: Shape4,
    },
    /// `infer_batch` was called with no inputs.
    EmptyBatch,
    /// [`Engine::serve`] needs the build-time stage pipeline to replay
    /// the request stream against, and the engine has no plan that
    /// carries one (custom backends own their execution strategy).
    ServeRequiresPlan {
        /// The planless backend.
        backend: &'static str,
    },
    /// A serving request that cannot produce a well-formed arrival
    /// stream or dispatch policy (see [`crate::serve`]).
    InvalidServe {
        /// What is malformed, in the caller's terms.
        reason: &'static str,
    },
    /// A fault plan or health policy the fault subsystem cannot
    /// honour: an unknown board index, overlapping windows on one
    /// board, a non-positive duration or out-of-range factor, or
    /// fault injection configured without a cluster deployment (see
    /// [`crate::fault`]).
    InvalidFaultPlan {
        /// Index of the offending [`crate::fault::FaultEvent`] in the
        /// plan (`None` when the problem is not a single event).
        event: Option<usize>,
        /// What is malformed, naming the offending parameters.
        reason: String,
    },
}

impl core::fmt::Display for EngineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EngineError::InfeasiblePlacement {
                target,
                parallelism,
            } => write!(
                f,
                "placement {target:?} does not fit the fabric at conv_x{parallelism} \
                 (see zynq_sim::resources)"
            ),
            EngineError::TargetNotApplicable { target, variant } => write!(
                f,
                "placement {target:?} is not applicable to {variant}: every offloaded \
                 layer must be present as a single block instance"
            ),
            EngineError::BackendConflict { backend, target } => {
                write!(f, "backend `{backend}` cannot execute placement {target:?}")
            }
            EngineError::ShardInfeasible {
                target,
                boards,
                parallelism,
                stuck,
                stuck_bram36,
                board_bram36,
                hint,
            } => {
                write!(
                    f,
                    "placement {target:?} cannot be sharded across {boards} board(s) at \
                     conv_x{parallelism}"
                )?;
                match stuck {
                    Some(layer) => write!(
                        f,
                        ": {layer} ({stuck_bram36} BRAM36 at this width) fits no remaining \
                         board — per-board BRAM36 capacities {board_bram36:?}; feasibility \
                         also weighs DSP/LUT/FF and the conv_x-parallelism bound"
                    )?,
                    None => write!(
                        f,
                        ": every layer fits some board alone, yet no joint assignment fits \
                         the per-board fabrics (BRAM36 capacities {board_bram36:?}; \
                         DSP/LUT/FF also checked)"
                    )?,
                }
                if let Some(hint) = hint {
                    write!(f, "; hint: {hint}")?;
                }
                write!(f, " (see zynq_sim::cluster)")
            }
            EngineError::ReplicationInfeasible { reason } => {
                write!(
                    f,
                    "replication infeasible: {reason} (see zynq_sim::replica)"
                )
            }
            EngineError::BnModeConflict { backend } => write!(
                f,
                "backend `{backend}` computes batch-norm statistics on the fly; \
                 BnMode::Running is not available on the Q20 datapath"
            ),
            EngineError::UnsupportedFormat {
                total_bits,
                frac_bits,
                stage,
            } => {
                if let Some(layer) = stage {
                    // A per-stage policy: name the stage whose override
                    // is broken, so the caller knows which entry of the
                    // table to fix.
                    write!(f, "stage {layer}: ")?;
                }
                let degenerate = PlFormat::Custom(qfixed::QFormat {
                    total_bits: *total_bits,
                    frac_bits: *frac_bits,
                })
                .is_degenerate();
                if degenerate {
                    // Structurally invalid — rejected at plan time,
                    // before executability is even a question.
                    write!(
                        f,
                        "degenerate fixed-point format: {total_bits} total bits with \
                         {frac_bits} fractional bits (need 2 ≤ total ≤ 64 and frac < total)"
                    )
                } else {
                    let widths = PlFormat::EXECUTABLE_WIDTHS
                        .iter()
                        .map(|(t, fr)| format!("{t}-bit/frac {fr}"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    write!(
                        f,
                        "no PL datapath for a {total_bits}-bit format with {frac_bits} \
                         fractional bits — it plans but cannot execute \
                         (executable widths: {widths})"
                    )
                }
            }
            EngineError::CalibrationEmpty => f.write_str(
                "Precision::Calibrated needs at least one sample input to measure \
                 activation ranges from",
            ),
            EngineError::CalibrationRange {
                layer,
                max_abs,
                total_bits,
                headroom_bits,
            } => write!(
                f,
                "calibration: stage {layer}'s envelope (max |value| {max_abs:.3}) plus \
                 {headroom_bits} headroom bit(s) exceeds every executable {total_bits}-bit \
                 fraction — widen total_bits or relax headroom_bits"
            ),
            EngineError::MixedPrecisionUnsupported { backend } => write!(
                f,
                "backend `{backend}` runs the whole network in one number system; \
                 a per-stage precision policy needs the hybrid backend"
            ),
            EngineError::ShapeMismatch { got } => write!(
                f,
                "input must be shaped (N\u{2265}1, 3, H\u{2265}4, W\u{2265}4), got {got:?}"
            ),
            EngineError::EmptyBatch => f.write_str("infer_batch needs at least one input"),
            EngineError::ServeRequiresPlan { backend } => write!(
                f,
                "cannot serve through backend `{backend}`: no deployment plan carries \
                 its stage timing — serving replays arrivals against the build-time \
                 pipeline, so it needs a built-in (planned) backend"
            ),
            EngineError::InvalidServe { reason } => {
                write!(f, "invalid serve request: {reason}")
            }
            EngineError::InvalidFaultPlan { event, reason } => match event {
                Some(i) => write!(
                    f,
                    "invalid fault plan: event #{i}: {reason} (see zynq_sim::fault)"
                ),
                None => write!(f, "invalid fault plan: {reason} (see zynq_sim::fault)"),
            },
        }
    }
}

impl std::error::Error for EngineError {}

/// Result of one engine inference: logits plus the modelled wall-clock
/// decomposition, from the same execution.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Classifier logits (batch × classes), always reported in `f32`
    /// (quantized backends convert on the way out).
    pub logits: Tensor<f32>,
    /// Images in this run's input tensor.
    pub images: usize,
    /// Modelled PS seconds per image (software stages + fixed overhead).
    pub ps_seconds: f64,
    /// Modelled PL seconds per image (offloaded stages incl. DMA).
    pub pl_seconds: f64,
    /// 32-bit words across the AXI bus, per image.
    pub dma_words: u64,
    /// Layers that ran on the PL.
    pub offloaded: Vec<LayerName>,
    /// Name of the backend that executed the run.
    pub backend: &'static str,
}

impl RunReport {
    /// Total modelled latency per image.
    pub fn total_seconds(&self) -> f64 {
        self.ps_seconds + self.pl_seconds
    }

    /// Total modelled latency for every image of the run (the board
    /// processes one image at a time).
    pub fn batch_seconds(&self) -> f64 {
        self.total_seconds() * self.images as f64
    }
}

/// Accumulated timing over a batch of [`RunReport`]s, plus the
/// schedule's wall-clock and per-image latency distribution — one
/// struct that makes [`Schedule::Sequential`] and
/// [`Schedule::Pipelined`] directly comparable.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchSummary {
    /// Total images served.
    pub images: usize,
    /// Accumulated PS seconds (per-image × images).
    pub ps_seconds: f64,
    /// Accumulated PL seconds (for cluster runs, incl. interconnect).
    pub pl_seconds: f64,
    /// Accumulated DMA words.
    pub dma_words: u64,
    /// Modelled wall-clock seconds of the whole batch under the
    /// schedule that produced the summary: additive
    /// (`= total_seconds()`) for [`BatchSummary::from_runs`] and
    /// sequential execution, the pipeline makespan for
    /// [`Schedule::Pipelined`].
    pub wall_seconds: f64,
    /// Median per-image latency in seconds (lower median; `0.0` for an
    /// empty batch). Under a pipelined schedule this includes queueing
    /// behind the bottleneck resource.
    pub latency_p50: f64,
    /// 99th-percentile per-image latency in seconds (`0.0` for an
    /// empty batch) — the SLO tail the serving layer reports on.
    pub latency_p99: f64,
    /// Worst-case per-image latency in seconds.
    pub latency_max: f64,
}

impl BatchSummary {
    /// Fold a slice of reports into accumulated totals with additive
    /// wall-clock (one image at a time — the single-board serving
    /// model). Latency percentiles come from the per-image totals.
    pub fn from_runs(runs: &[RunReport]) -> Self {
        let mut s = BatchSummary::default();
        let mut latencies: Vec<f64> = Vec::new();
        for r in runs {
            s.images += r.images;
            s.ps_seconds += r.ps_seconds * r.images as f64;
            s.pl_seconds += r.pl_seconds * r.images as f64;
            s.dma_words += r.dma_words * r.images as u64;
            latencies.extend(std::iter::repeat_n(r.total_seconds(), r.images));
        }
        s.wall_seconds = s.total_seconds();
        (s.latency_p50, s.latency_p99, s.latency_max) = latency_percentiles(latencies);
        s
    }

    /// Accumulated execution seconds (PS + PL), schedule-independent.
    pub fn total_seconds(&self) -> f64 {
        self.ps_seconds + self.pl_seconds
    }

    /// Modelled images per second of the executed schedule (`0.0` for
    /// an empty summary — an idle server has no throughput, not a
    /// near-infinite one).
    pub fn throughput(&self) -> f64 {
        if self.images == 0 {
            return 0.0;
        }
        self.images as f64 / self.wall_seconds.max(f64::MIN_POSITIVE)
    }
}

/// The `q`-quantile of an **ascending** latency sample under the
/// suite's pinned index convention — element `⌊q · (len − 1)⌋`, so
/// `q = 0.5` is the lower median ([`BatchSummary::latency_p50`]'s
/// contract) and `q = 1.0` the maximum; `0.0` for an empty sample.
/// One helper serves [`BatchSummary`], [`crate::cluster::PipelineRun`],
/// and [`crate::serve::ServeReport`], so every percentile the suite
/// prints is comparable.
pub(crate) fn latency_quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (q * (sorted.len() - 1) as f64) as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// `(p50, p99, max)` of a latency sample — see [`latency_quantile`]
/// for the index convention; zeros for an empty sample.
pub(crate) fn latency_percentiles(mut latencies: Vec<f64>) -> (f64, f64, f64) {
    latencies.sort_by(f64::total_cmp);
    (
        latency_quantile(&latencies, 0.5),
        latency_quantile(&latencies, 0.99),
        latency_quantile(&latencies, 1.0),
    )
}

/// A whole-inference executor. Implementations own whatever pre-built
/// state they need (quantized weights, simulated circuits), so `infer`
/// is cheap and repeatable; the [`Engine`] validates inputs and
/// delegates here.
///
/// `Send + Sync` is part of the contract: a built engine serves from
/// multiple threads behind a shared reference, so backends must too
/// (`infer` takes `&self` — keep per-call state on the stack).
pub trait Backend: Send + Sync {
    /// Short stable name, reported in [`RunReport::backend`].
    fn name(&self) -> &'static str;
    /// The layers this backend runs on the PL fabric.
    fn offloaded(&self) -> &[LayerName];
    /// Execute one (possibly batched) input to logits + timing.
    fn infer(&self, x: &Tensor<f32>) -> Result<RunReport, EngineError>;
    /// Fold a batch's reports into one [`BatchSummary`] under the
    /// backend's batch schedule. The default is the additive
    /// single-board model ([`BatchSummary::from_runs`]); backends with
    /// their own scheduler (the cluster's pipelined mode) override the
    /// wall-clock and latency fields.
    fn summarize_batch(&self, runs: &[RunReport]) -> BatchSummary {
        BatchSummary::from_runs(runs)
    }
}

/// Monomorphized circuits over every executable word width, behind one
/// enum so *different stages of one engine can run in different
/// formats* (the per-stage precision policy). The variants must stay
/// in lockstep with [`PlFormat::EXECUTABLE_WIDTHS`] — pinned by
/// `every_listed_executable_width_builds`.
macro_rules! any_accel {
    ($(($variant:ident, $ty:ty, $total:literal, $frac:literal)),+ $(,)?) => {
        /// One stage's simulated circuit in whichever executable width
        /// its format resolved to.
        enum AnyAccel {
            $($variant(OdeBlockAccel<$ty>),)+
        }

        impl AnyAccel {
            /// Quantize `block` into the circuit for `q`, or `None`
            /// when no monomorphized datapath exists for that width.
            fn build(
                block: &ResBlock,
                parallelism: usize,
                board: &Board,
                q: qfixed::QFormat,
            ) -> Option<Self> {
                match (q.total_bits, q.frac_bits) {
                    $(($total, $frac) => {
                        Some(AnyAccel::$variant(OdeBlockAccel::new(block, parallelism, board)))
                    })+
                    _ => None,
                }
            }

            /// Run the stage at the f32 DMA boundary: quantize the
            /// feature map into the stage's format, execute on the
            /// circuit, dequantize on the way out. Returns the output
            /// map and the modelled circuit seconds (incl. DMA).
            fn run_stage(&self, z: &Tensor<f32>, execs: usize) -> (Tensor<f32>, f64) {
                match self {
                    $(AnyAccel::$variant(accel) => {
                        let zq: Tensor<$ty> = Tensor::from_f32_tensor(z);
                        let run = accel.run_stage(&zq, execs);
                        (run.output.to_f32(), run.seconds)
                    })+
                }
            }
        }
    };
}

any_accel!(
    (F32x12, Fix<12>, 32, 12),
    (F32x16, Fix<16>, 32, 16),
    (F32x20, Fix<20>, 32, 20),
    (F32x24, Fix<24>, 32, 24),
    (F16x6, Fix16<6>, 16, 6),
    (F16x8, Fix16<8>, 16, 8),
    (F16x10, Fix16<10>, 16, 10),
    (F16x12, Fix16<12>, 16, 12),
);

/// One pre-built PL stage: the simulated circuit holding the quantized
/// block in the stage's own word format, how often the stage executes
/// per inference, and the stage's DMA word width.
struct PlStage {
    layer: LayerName,
    accel: AnyAccel,
    execs: usize,
    /// Storage bytes per value of this stage's format (its DMA width).
    bytes: usize,
}

/// Pre-quantize — once — each offloaded stage of `layers` into its
/// *own* format's circuit. `board_of` names the fabric carrying each
/// stage (constant for a single board, the shard map for a cluster).
/// A stage whose format has no monomorphized datapath is a typed
/// [`EngineError::UnsupportedFormat`] naming that stage when the
/// policy is per-stage.
fn build_pl_stages(
    net: &Network,
    layers: &[LayerName],
    formats: &StageFormats,
    parallelism: usize,
    board_of: impl Fn(LayerName) -> Board,
) -> Result<Vec<PlStage>, EngineError> {
    layers
        .iter()
        .map(|&layer| {
            let stage = net
                .stage(layer)
                .expect("applicability check guarantees the stage exists");
            debug_assert_eq!(
                stage.blocks.len(),
                1,
                "single-instance checked at plan time"
            );
            let q = formats
                .format_of(layer)
                .qformat()
                .expect("validated by plan()");
            let accel = AnyAccel::build(&stage.blocks[0], parallelism, &board_of(layer), q).ok_or(
                EngineError::UnsupportedFormat {
                    total_bits: q.total_bits,
                    frac_bits: q.frac_bits,
                    // A uniform policy affects every stage equally;
                    // only a per-stage table names the culprit.
                    stage: if formats.uniform_format().is_some() {
                        None
                    } else {
                        Some(layer)
                    },
                },
            )?;
            Ok(PlStage {
                layer,
                accel,
                execs: if stage.plan.is_ode {
                    stage.plan.execs
                } else {
                    1
                },
                bytes: q.bytes(),
            })
        })
        .collect()
}

/// Shared PS+PL walk used by the software, hybrid, and cluster
/// backends: stages in `pl_stages` run on their pre-built circuits —
/// each in its *own* word format, quantized at its DMA boundary —
/// everything else runs as `f32` software with `bn` statistics. With a
/// uniform Q20 table this mirrors the execution order of the original
/// `run_hybrid_with` loop exactly, so logits and timing are
/// bit-identical to the legacy path.
fn hybrid_walk(
    net: &Network,
    x: &Tensor<f32>,
    pl_stages: &[PlStage],
    bn: BnMode,
    ps: &PsModel,
    board: &Board,
) -> (Tensor<f32>, f64, f64, u64) {
    let mut ps_cycles: u64 = ps.block_exec_cycles(LayerName::Conv1, false)
        + ps.block_exec_cycles(LayerName::Fc, false)
        + ps.runtime_overhead_cycles();
    let mut pl_seconds = 0.0f64;
    let mut dma_words = 0u64;

    let mut z = net.pre_forward(x);
    for stage in &net.stages {
        if stage.blocks.is_empty() {
            continue;
        }
        let on_pl = pl_stages.iter().find(|p| p.layer == stage.name);
        for block in &stage.blocks {
            if let Some(pl_stage) = on_pl {
                let (out, seconds) = pl_stage.accel.run_stage(&z, pl_stage.execs);
                dma_words += crate::datapath::dma_words_at(stage.name, pl_stage.bytes);
                pl_seconds += seconds;
                z = out;
            } else {
                z = if stage.plan.is_ode {
                    block.ode_forward(&z, stage.plan.execs, bn)
                } else {
                    block.residual_forward(&z, bn)
                };
                ps_cycles +=
                    stage.plan.execs as u64 * ps.block_exec_cycles(stage.name, stage.plan.is_ode);
            }
        }
    }
    let logits = net.fc_forward(&z);
    (logits, board.ps_seconds(ps_cycles), pl_seconds, dma_words)
}

/// PS software / hybrid backend (they differ only in `pl_stages`).
struct HybridBackend<'n> {
    name: &'static str,
    net: &'n Network,
    pl_stages: Vec<PlStage>,
    offloaded: Vec<LayerName>,
    bn: BnMode,
    ps: PsModel,
    board: Board,
}

impl Backend for HybridBackend<'_> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn offloaded(&self) -> &[LayerName] {
        &self.offloaded
    }

    fn infer(&self, x: &Tensor<f32>) -> Result<RunReport, EngineError> {
        let (logits, ps_seconds, pl_seconds, dma_words) =
            hybrid_walk(self.net, x, &self.pl_stages, self.bn, &self.ps, &self.board);
        Ok(RunReport {
            logits,
            images: x.shape().n,
            ps_seconds,
            pl_seconds,
            dma_words,
            offloaded: self.offloaded.clone(),
            backend: self.name,
        })
    }
}

/// Multi-board cluster backend: the PS stages run on the head board,
/// each offloaded stage on its shard's PL fabric, feature maps crossing
/// the modelled interconnect between boards. The numerics are the
/// hybrid walk verbatim — sharding changes *where* and *when*, never
/// the Q-format arithmetic — so logits are bit-identical to a
/// single-board [`BackendKind::Hybrid`] with the same overall
/// placement. `infer` reports per-image additive timing (interconnect
/// hand-offs folded into `pl_seconds`); `summarize_batch` additionally
/// runs the configured [`Schedule`] over the build-time stage pipeline.
struct ClusterBackend<'n> {
    net: &'n Network,
    pl_stages: Vec<PlStage>,
    offloaded: Vec<LayerName>,
    bn: BnMode,
    ps: PsModel,
    head: Board,
    schedule: Schedule,
    timeline: Vec<StageTiming>,
    transfer_seconds: f64,
}

impl Backend for ClusterBackend<'_> {
    fn name(&self) -> &'static str {
        "cluster"
    }

    fn offloaded(&self) -> &[LayerName] {
        &self.offloaded
    }

    fn infer(&self, x: &Tensor<f32>) -> Result<RunReport, EngineError> {
        let (logits, ps_seconds, pl_seconds, dma_words) =
            hybrid_walk(self.net, x, &self.pl_stages, self.bn, &self.ps, &self.head);
        Ok(RunReport {
            logits,
            images: x.shape().n,
            ps_seconds,
            pl_seconds: pl_seconds + self.transfer_seconds,
            dma_words,
            offloaded: self.offloaded.clone(),
            backend: self.name(),
        })
    }

    fn summarize_batch(&self, runs: &[RunReport]) -> BatchSummary {
        let mut s = BatchSummary::from_runs(runs);
        if self.schedule == Schedule::Pipelined && s.images > 0 {
            let run = crate::cluster::pipelined_schedule(&self.timeline, s.images);
            s.wall_seconds = run.makespan;
            (s.latency_p50, s.latency_p99, s.latency_max) = latency_percentiles(run.latencies);
        }
        s
    }
}

/// Fully-fixed-point backend: the whole network executes in the PL
/// number system `S` via [`QuantNetwork`]; the offloaded stages
/// additionally carry circuit timing, the rest PS timing (a
/// fully-quantized PS runtime would run the same integer ops the float
/// one does, so the calibrated cost model still applies).
///
/// The quantized network already *is* the circuit's datapath
/// ([`OdeBlockAccel`] wraps the same [`rodenet::QuantBlock`] forward),
/// so offloaded stages execute straight out of `qnet` — one
/// quantization at build, no duplicate weight copies — with their
/// cycle timing taken from [`PlModel::stage_seconds_at`], which is the
/// identical `stage_cycles / closed-clock` arithmetic the accelerator
/// reports.
struct PlBitExactBackend<S: Scalar> {
    qnet: QuantNetwork<S>,
    offloaded: Vec<LayerName>,
    ps: PsModel,
    pl: PlModel,
    board: Board,
}

impl<S: Scalar> Backend for PlBitExactBackend<S> {
    fn name(&self) -> &'static str {
        "pl-bit-exact"
    }

    fn offloaded(&self) -> &[LayerName] {
        &self.offloaded
    }

    fn infer(&self, x: &Tensor<f32>) -> Result<RunReport, EngineError> {
        let mut ps_cycles: u64 = self.ps.block_exec_cycles(LayerName::Conv1, false)
            + self.ps.block_exec_cycles(LayerName::Fc, false)
            + self.ps.runtime_overhead_cycles();
        let mut pl_seconds = 0.0f64;
        let mut dma_words = 0u64;

        let mut z: Tensor<S> = Tensor::from_f32_tensor(x);
        z = self.qnet.pre.forward(&z);
        for stage in &self.qnet.stages {
            if stage.blocks.is_empty() {
                continue;
            }
            let on_pl = self.offloaded.contains(&stage.name);
            for block in &stage.blocks {
                // The numerics are placement-independent (everything is
                // in `S` here); on_pl only decides timing attribution.
                z = if stage.plan.is_ode {
                    block.ode_forward(&z, stage.plan.execs)
                } else {
                    block.residual_forward(&z)
                };
                if on_pl {
                    dma_words += crate::datapath::dma_words_at(stage.name, S::BYTES);
                    pl_seconds += self.pl.stage_seconds_at(
                        stage.name,
                        stage.plan.execs,
                        &self.board,
                        S::BYTES,
                    );
                } else {
                    ps_cycles += stage.plan.execs as u64
                        * self.ps.block_exec_cycles(stage.name, stage.plan.is_ode);
                }
            }
        }
        let logits = self.qnet.fc.forward(&z).to_f32();
        Ok(RunReport {
            logits,
            images: x.shape().n,
            ps_seconds: self.board.ps_seconds(ps_cycles),
            pl_seconds,
            dma_words,
            offloaded: self.offloaded.clone(),
            backend: self.name(),
        })
    }
}

/// Fluent configuration for an [`Engine`]. Start from
/// [`Engine::builder`]; every setting has the paper's default.
pub struct EngineBuilder<'n> {
    net: &'n Network,
    board: Board,
    offload: Offload,
    ps: PsModel,
    pl: PlModel,
    bn: BnMode,
    precision: Precision,
    backend: BackendKind,
    cluster: Option<Cluster>,
    schedule: Schedule,
    partitioner: Partitioner,
    replication: Replication,
    trace: bool,
    faults: crate::fault::FaultPlan,
    health: crate::fault::HealthPolicy,
    custom: Option<Box<dyn Backend + 'n>>,
}

impl<'n> EngineBuilder<'n> {
    /// Target device (default: the PYNQ-Z2 of Table 1).
    pub fn board(mut self, board: &Board) -> Self {
        self.board = *board;
        self
    }

    /// Placement policy (default: [`Offload::Auto`]).
    pub fn offload(mut self, offload: Offload) -> Self {
        self.offload = offload;
        self
    }

    /// PS software-cost model (default: [`PsModel::Calibrated`]).
    pub fn ps_model(mut self, ps: PsModel) -> Self {
        self.ps = ps;
        self
    }

    /// PL circuit configuration (default: conv_x16).
    pub fn pl_model(mut self, pl: PlModel) -> Self {
        self.pl = pl;
        self
    }

    /// Batch-norm statistics for PS-resident stages (default:
    /// [`BnMode::OnTheFly`], matching the PL circuit end to end).
    pub fn bn_mode(mut self, bn: BnMode) -> Self {
        self.bn = bn;
        self
    }

    /// One PL datapath word format for every stage — the pre-policy
    /// spelling of [`EngineBuilder::precision`] with
    /// [`Precision::Uniform`], kept as a delegating shim.
    #[deprecated(
        since = "0.2.0",
        note = "use `.precision(Precision::Uniform(format))` — the precision \
                surface is per-stage now"
    )]
    pub fn pl_format(self, format: PlFormat) -> Self {
        self.precision(Precision::Uniform(format))
    }

    /// Per-stage PL word-format policy (default:
    /// [`Precision::Uniform`] at [`PlFormat::Q20`], the paper's 32-bit
    /// build).
    ///
    /// Each stage's width threads through placement feasibility, the
    /// DMA share of the timing model, the partitioner's makespan cost,
    /// cluster sharding, and the number system that stage's circuit
    /// executes in — so a deployment can put layer1 at Q16 next to
    /// layer3_2 at Q20 ([`Precision::PerStage`]), or let
    /// [`Precision::Calibrated`] pick each `frac` from measured
    /// activation ranges. Any structurally valid format *plans*
    /// ([`EngineBuilder::plan`]); **executing** additionally requires
    /// widths the engine has monomorphized datapaths for — 32-bit with
    /// 12/16/20/24 fractional bits, or 16-bit with 6/8/10/12 — else
    /// [`EngineBuilder::build`] returns
    /// [`EngineError::UnsupportedFormat`] (naming the stage when the
    /// policy is per-stage).
    pub fn precision(mut self, precision: impl Into<Precision>) -> Self {
        self.precision = precision.into();
        self
    }

    /// Which built-in backend executes (default: [`BackendKind::Auto`]).
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Deploy across a multi-board [`Cluster`] instead of the single
    /// [`EngineBuilder::board`]: the placement is resolved against the
    /// cluster's combined capacity and sharded board-by-board
    /// ([`crate::cluster`]), and `build` produces the cluster backend.
    /// Only [`BackendKind::Auto`] / [`BackendKind::Hybrid`] are
    /// compatible — the PS stages always run in `f32` on the head
    /// board. A one-board cluster is bit- and timing-identical to the
    /// plain hybrid engine on that board.
    pub fn cluster(mut self, cluster: Cluster) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Batch execution order for [`Engine::infer_batch_summary`]
    /// (default: [`Schedule::Sequential`], the additive single-board
    /// model). Only meaningful together with
    /// [`EngineBuilder::cluster`].
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Shard-assignment strategy for cluster deployments (default:
    /// [`Partitioner::FirstFit`], the pre-partitioner greedy behavior).
    /// [`Partitioner::BalancedMakespan`] searches every layer→board
    /// assignment and keeps the one minimizing the pipelined
    /// bottleneck busy time — on a heterogeneous rack it places the
    /// heavy ODE stages on the bigger fabric instead of wherever
    /// first-fit left them, raising [`Schedule::Pipelined`] batch
    /// throughput without touching the numerics (logits are
    /// bit-identical across partitioners for the same placement). On a
    /// single board every strategy resolves to the same one-shard
    /// assignment, so this only matters with [`EngineBuilder::cluster`].
    pub fn partitioner(mut self, partitioner: Partitioner) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// Replication policy for cluster deployments (default:
    /// [`Replication::None`], the unreplicated planner bit-for-bit).
    /// [`Replication::Stage`] burns one offloaded stage onto several
    /// fabrics and round-robins images between them;
    /// [`Replication::Placement`] clones the whole placement across
    /// disjoint board groups for data parallelism;
    /// [`Replication::Auto`] searches both grains and keeps whatever
    /// strictly beats the unreplicated reference-batch makespan.
    /// Replication decides *where and when* an image runs, never
    /// *what* — logits stay bit-identical (see [`crate::replica`]).
    /// Only meaningful with [`EngineBuilder::cluster`].
    pub fn replication(mut self, replication: Replication) -> Self {
        self.replication = replication;
        self
    }

    /// Record an event trace of every traced run (default: off).
    /// When on, [`Engine::serve`] and pipelined
    /// [`Engine::infer_batch_summary`] capture typed spans — stage
    /// executions per resource, interconnect hand-offs, queue and
    /// dispatch events — retrievable via [`Engine::last_trace`] /
    /// `ServeReport::trace()` and exportable with
    /// [`crate::trace::Trace::to_chrome_json`]. Tracing never touches
    /// the simulation's arithmetic: schedules, reports, and logits are
    /// bit-identical on or off (see [`crate::trace`]).
    pub fn trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Inject deterministic faults into every [`Engine::serve`] run
    /// (default: the empty plan, which is bit-identical to the
    /// fault-free path end to end). Crashes trigger health-driven
    /// failover onto the surviving boards; slowdowns, hangs, and link
    /// degrades stretch the schedule in place. Requires a configured
    /// [`EngineBuilder::cluster`] — the plan is validated against it
    /// at build time (see [`crate::fault`]). [`Engine::load_sweep`]
    /// stays fault-free by design (it characterizes the healthy
    /// load/latency curve).
    pub fn faults(mut self, faults: crate::fault::FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Failure-detection policy for injected crashes (default:
    /// [`crate::fault::HealthPolicy`] with a 3× stage-seconds
    /// timeout). Only consulted when a non-empty fault plan is
    /// configured.
    pub fn health(mut self, health: crate::fault::HealthPolicy) -> Self {
        self.health = health;
        self
    }

    /// Plug in a caller-provided [`Backend`] (multi-board sharding,
    /// alternate fabrics, …). Placement planning and conflict checks
    /// are skipped — the backend owns its execution strategy. The
    /// precision policy is still resolved (a [`Precision::Calibrated`]
    /// policy runs its measurement pass) purely so
    /// [`Engine::precision`] can report the table; pair a custom
    /// backend with `Uniform`/`PerStage` if that startup cost matters.
    pub fn custom_backend(mut self, backend: Box<dyn Backend + 'n>) -> Self {
        self.custom = Some(backend);
        self
    }

    /// Resolve the precision policy into the per-stage format table
    /// ([`Precision::resolve`] — a pure lookup for
    /// `Uniform`/`PerStage`, the calibration measurement pass for
    /// `Calibrated`).
    fn resolve_precision(&self) -> Result<StageFormats, EngineError> {
        self.precision.resolve(self.net, self.bn)
    }

    /// The [`PlanRequest`] equivalent of this builder's configuration,
    /// with the precision policy already resolved.
    fn plan_request(&self) -> Result<PlanRequest, EngineError> {
        Ok(PlanRequest {
            board: self.board,
            offload: self.offload,
            backend: self.backend,
            bn: self.bn,
            ps: self.ps,
            pl: self.pl,
            precision: self.resolve_precision()?,
        })
    }

    /// Resolve placement, backend, width-aware feasibility, and the
    /// full input-independent timing decomposition — **without running
    /// any numerics or quantizing any weight** (one exception: a
    /// [`Precision::Calibrated`] policy runs its float measurement
    /// pass on the sample batch here, since the chosen formats gate
    /// feasibility). The returned [`DeploymentPlan`] answers
    /// latency/resource/DMA queries on its own; pass the same builder
    /// to [`EngineBuilder::build`] when you want to execute it.
    ///
    /// A caller-provided [`EngineBuilder::custom_backend`] is ignored
    /// here: plans describe the built-in execution paths. Likewise a
    /// configured [`EngineBuilder::cluster`]: this is the single-board
    /// plan; see [`EngineBuilder::plan_cluster`] for the sharded one.
    pub fn plan(&self) -> Result<DeploymentPlan, EngineError> {
        plan_deployment(&self.net.spec, &self.plan_request()?)
    }

    /// The sharded-placement counterpart of [`EngineBuilder::plan`]:
    /// resolve placement, per-board feasibility, the per-image stage
    /// pipeline, and both batch-schedule makespans against the
    /// configured cluster — zero numerics. Without a configured
    /// [`EngineBuilder::cluster`] this plans a one-board cluster of
    /// [`EngineBuilder::board`] (useful to compare the pipelined
    /// schedule against the plain additive engine).
    pub fn plan_cluster(&self) -> Result<ClusterPlan, EngineError> {
        let cluster = self.cluster.clone().unwrap_or_else(|| {
            Cluster::homogeneous(
                &self.board,
                1,
                crate::cluster::Interconnect::GIGABIT_ETHERNET,
            )
        });
        plan_cluster(
            &self.net.spec,
            &ClusterRequest {
                cluster,
                offload: self.offload,
                bn: self.bn,
                ps: self.ps,
                pl: self.pl,
                precision: self.resolve_precision()?,
                schedule: self.schedule,
                partitioner: self.partitioner,
                replication: self.replication,
            },
        )
    }

    /// Validate the configuration ([`EngineBuilder::plan`] /
    /// [`EngineBuilder::plan_cluster`]) and pre-quantize each offloaded
    /// block into its stage's resolved format — once. All placement,
    /// sharding, resource, format, calibration, and mode errors surface
    /// here, never inside `infer`.
    pub fn build(mut self) -> Result<Engine<'n>, EngineError> {
        if !self.faults.is_empty() {
            // Fault injection replays serves over the cluster plan's
            // stage pipeline and replans over the surviving boards —
            // neither exists for custom backends or the single-board
            // additive engine.
            if self.custom.is_some() || self.cluster.is_none() {
                return Err(EngineError::InvalidFaultPlan {
                    event: None,
                    reason: "fault injection needs a cluster deployment — configure \
                             EngineBuilder::cluster with a built-in backend"
                        .to_string(),
                });
            }
            self.faults
                .validate(self.cluster.as_ref().map_or(1, Cluster::len))?;
            self.health.validate()?;
        }
        if let Some(custom) = self.custom.take() {
            return Ok(Engine {
                target: OffloadTarget::None,
                board: self.board,
                bn: self.bn,
                formats: self.resolve_precision()?,
                plan: None,
                cluster_plan: None,
                backend: custom,
                trace_enabled: self.trace,
                faults: self.faults,
                health: self.health,
                last_trace: std::sync::Mutex::new(None),
            });
        }

        // Monomorphize `$build::<S>($($arg),*)` over every executable
        // word width — the *uniform* dispatch, used by the backends
        // that run the whole network in one number system. The arms
        // must stay in lockstep with `PlFormat::EXECUTABLE_WIDTHS`
        // (the forward direction is pinned by
        // `every_listed_executable_width_builds`); the per-stage
        // hybrid path dispatches through `AnyAccel` instead.
        macro_rules! dispatch_width {
            ($format:expr, $build:ident($($arg:expr),*)) => {{
                let q = $format.qformat().expect("validated by plan()");
                match (q.total_bits, q.frac_bits) {
                    (32, 12) => $build::<Fix<12>>($($arg),*),
                    (32, 16) => $build::<Fix<16>>($($arg),*),
                    (32, 20) => $build::<Fix<20>>($($arg),*),
                    (32, 24) => $build::<Fix<24>>($($arg),*),
                    (16, 6) => $build::<Fix16<6>>($($arg),*),
                    (16, 8) => $build::<Fix16<8>>($($arg),*),
                    (16, 10) => $build::<Fix16<10>>($($arg),*),
                    (16, 12) => $build::<Fix16<12>>($($arg),*),
                    (total_bits, frac_bits) => {
                        debug_assert!(
                            !$format.has_datapath(),
                            "({total_bits},{frac_bits}) is in EXECUTABLE_WIDTHS but not dispatched"
                        );
                        return Err(EngineError::UnsupportedFormat {
                            total_bits,
                            frac_bits,
                            stage: None,
                        });
                    }
                }
            }};
        }

        if self.cluster.is_some() {
            let cplan = self.plan_cluster()?;
            // The cluster backend is the hybrid walk with per-board
            // circuits; a backend that forbids PL stages (or replaces
            // the PS numerics) cannot honor it.
            match self.backend {
                BackendKind::Auto | BackendKind::Hybrid => {}
                BackendKind::PsSoftware => {
                    return Err(EngineError::BackendConflict {
                        backend: "ps-software",
                        target: cplan.target(),
                    });
                }
                BackendKind::PlBitExact => {
                    return Err(EngineError::BackendConflict {
                        backend: "pl-bit-exact",
                        target: cplan.target(),
                    });
                }
            }
            let formats = *cplan.precision();
            require_uniform_datapath(&formats)?;
            let offloaded: Vec<LayerName> = cplan.target().layers().to_vec();
            let pl_stages = build_pl_stages(
                self.net,
                &offloaded,
                &formats,
                cplan.pl_model().parallelism,
                |layer| {
                    let board = cplan.board_of(layer).expect("offloaded layers are sharded");
                    cplan.cluster().boards()[board]
                },
            )?;
            let backend: Box<dyn Backend + 'n> = Box::new(ClusterBackend {
                net: self.net,
                pl_stages,
                offloaded,
                bn: cplan.bn_mode(),
                ps: *cplan.ps_model(),
                head: *cplan.cluster().head(),
                schedule: cplan.schedule(),
                timeline: cplan.timeline().to_vec(),
                transfer_seconds: cplan.transfer_seconds(),
            });
            return Ok(Engine {
                target: cplan.target(),
                board: *cplan.cluster().head(),
                bn: self.bn,
                formats,
                plan: None,
                cluster_plan: Some(cplan),
                backend,
                trace_enabled: self.trace,
                faults: self.faults,
                health: self.health,
                last_trace: std::sync::Mutex::new(None),
            });
        }

        let plan = self.plan()?;
        let formats = *plan.precision();
        let backend: Box<dyn Backend + 'n> = match plan.backend_kind() {
            // The software path never touches the PL number system.
            BackendKind::PsSoftware => Box::new(HybridBackend {
                name: "ps-software",
                net: self.net,
                pl_stages: Vec::new(),
                offloaded: Vec::new(),
                bn: self.bn,
                ps: self.ps,
                board: self.board,
            }),
            BackendKind::Hybrid => {
                require_uniform_datapath(&formats)?;
                let target = plan.target();
                let pl_stages = build_pl_stages(
                    self.net,
                    target.layers(),
                    &formats,
                    plan.pl_model().parallelism,
                    |_| *plan.board(),
                )?;
                Box::new(HybridBackend {
                    name: "hybrid",
                    net: self.net,
                    pl_stages,
                    offloaded: target.layers().to_vec(),
                    bn: plan.bn_mode(),
                    ps: *plan.ps_model(),
                    board: *plan.board(),
                })
            }
            BackendKind::PlBitExact => {
                // The fully-fixed-point network is one number system;
                // a per-stage table cannot be honored.
                let Some(uniform) = formats.uniform_format() else {
                    return Err(EngineError::MixedPrecisionUnsupported {
                        backend: "pl-bit-exact",
                    });
                };
                dispatch_width!(uniform, build_bit_exact_backend(self.net, &plan))
            }
            BackendKind::Auto => unreachable!("plan() resolves Auto"),
        };
        Ok(Engine {
            target: plan.target(),
            board: self.board,
            bn: self.bn,
            formats,
            plan: Some(plan),
            cluster_plan: None,
            backend,
            trace_enabled: self.trace,
            faults: self.faults,
            health: self.health,
            last_trace: std::sync::Mutex::new(None),
        })
    }
}

/// A *uniform* policy in a format without a datapath is rejected at
/// build even when nothing is offloaded — the engine was configured to
/// execute in that number system, and it cannot (the pre-policy
/// behavior, pinned by the builder-misuse matrix). Per-stage tables
/// are checked stage-by-stage instead: only formats that actually
/// reach a circuit need a datapath.
fn require_uniform_datapath(formats: &StageFormats) -> Result<(), EngineError> {
    if let Some(u) = formats.uniform_format() {
        if !u.has_datapath() {
            let q = u.qformat()?;
            return Err(EngineError::UnsupportedFormat {
                total_bits: q.total_bits,
                frac_bits: q.frac_bits,
                stage: None,
            });
        }
    }
    Ok(())
}

/// Quantize — once — the whole network into the scalar type `S` and
/// build the fully-fixed-point backend (its offloaded stages execute
/// straight out of the quantized network, so no second weight copy is
/// built).
fn build_bit_exact_backend<'n, S: Scalar>(
    net: &'n Network,
    plan: &DeploymentPlan,
) -> Box<dyn Backend + 'n> {
    Box::new(PlBitExactBackend {
        qnet: net.quantize::<S>(),
        offloaded: plan.target().layers().to_vec(),
        ps: *plan.ps_model(),
        pl: *plan.pl_model(),
        board: *plan.board(),
    })
}

/// A validated, pre-quantized inference engine over a trained network.
///
/// Build via [`Engine::builder`]; see the module docs for the data
/// flow. `infer` borrows the engine immutably, so one engine can serve
/// from multiple threads behind a shared reference.
pub struct Engine<'n> {
    target: OffloadTarget,
    board: Board,
    bn: BnMode,
    formats: StageFormats,
    plan: Option<DeploymentPlan>,
    cluster_plan: Option<ClusterPlan>,
    backend: Box<dyn Backend + 'n>,
    trace_enabled: bool,
    faults: crate::fault::FaultPlan,
    health: crate::fault::HealthPolicy,
    // Interior-mutable so `serve`/`infer_batch_summary` keep their
    // `&self` signatures (one engine serves from several threads —
    // pinned by `engine_serves_from_multiple_threads`).
    last_trace: std::sync::Mutex<Option<Trace>>,
}

impl core::fmt::Debug for Engine<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Engine")
            .field("target", &self.target)
            .field("board", &self.board.name)
            .field("bn", &self.bn)
            .field("precision", &self.formats)
            .field("backend", &self.backend.name())
            .finish()
    }
}

impl<'n> Engine<'n> {
    /// Start configuring an engine over `net`.
    pub fn builder(net: &'n Network) -> EngineBuilder<'n> {
        // One source of defaults: the same PlanRequest the spec-level
        // planning entry point uses.
        let d = PlanRequest::default();
        EngineBuilder {
            net,
            board: d.board,
            offload: d.offload,
            ps: d.ps,
            pl: d.pl,
            bn: d.bn,
            precision: d.precision.into(),
            backend: d.backend,
            cluster: None,
            schedule: Schedule::default(),
            partitioner: Partitioner::default(),
            replication: Replication::default(),
            trace: false,
            faults: crate::fault::FaultPlan::none(),
            health: crate::fault::HealthPolicy::default(),
            custom: None,
        }
    }

    /// The placement the engine was built with ([`OffloadTarget::None`]
    /// for custom backends — they own their placement).
    pub fn target(&self) -> OffloadTarget {
        self.target
    }

    /// The deployment plan the engine was built from (`None` for
    /// custom backends — they own their execution strategy — and for
    /// cluster engines, which keep a [`Engine::cluster_plan`] instead).
    pub fn plan(&self) -> Option<&DeploymentPlan> {
        self.plan.as_ref()
    }

    /// The sharded cluster plan the engine was built from (`Some` only
    /// when [`EngineBuilder::cluster`] was configured).
    pub fn cluster_plan(&self) -> Option<&ClusterPlan> {
        self.cluster_plan.as_ref()
    }

    /// The configuration's cached latency decomposition (its Table 5
    /// row), served straight from the build-time plan — **no inference
    /// executes**. `total_w_pl` here equals what
    /// [`RunReport::total_seconds`] reports from an actual `infer`
    /// (the timing model is input-independent). `None` for custom
    /// backends.
    pub fn latency_report(&self) -> Option<&Table5Row> {
        self.plan.as_ref().map(|p| p.table5())
    }

    /// The base PL word format. For a per-stage policy this is only
    /// the table's base; prefer [`Engine::precision`], which reports
    /// every stage's resolved format.
    #[deprecated(
        since = "0.2.0",
        note = "use `Engine::precision()` — the precision surface is per-stage now"
    )]
    pub fn pl_format(&self) -> PlFormat {
        self.formats.base()
    }

    /// The resolved per-stage PL word-format table the engine executes
    /// with (for [`Precision::Calibrated`], the formats the
    /// measurement pass chose).
    pub fn precision(&self) -> &StageFormats {
        &self.formats
    }

    /// The layers running on the PL fabric.
    pub fn offloaded(&self) -> &[LayerName] {
        self.backend.offloaded()
    }

    /// Name of the executing backend.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// The configured device.
    pub fn board(&self) -> &Board {
        &self.board
    }

    /// The PS-side batch-norm statistics mode.
    pub fn bn_mode(&self) -> BnMode {
        self.bn
    }

    /// One-line human description for logs and examples.
    pub fn describe(&self) -> String {
        format!(
            "{} on {} — PL: {:?} ({} stage{}, {})",
            self.backend.name(),
            self.board.name,
            self.target,
            self.offloaded().len(),
            if self.offloaded().len() == 1 { "" } else { "s" },
            self.formats,
        )
    }

    fn check_shape(&self, x: &Tensor<f32>) -> Result<(), EngineError> {
        let s = x.shape();
        if s.n < 1 || s.c != 3 || s.h < 4 || s.w < 4 {
            return Err(EngineError::ShapeMismatch { got: s });
        }
        Ok(())
    }

    /// Run one (possibly batched) input through the configured backend.
    /// Setup — planning, validation, quantization — happened at build;
    /// this call only executes.
    pub fn infer(&self, x: &Tensor<f32>) -> Result<RunReport, EngineError> {
        self.check_shape(x)?;
        self.backend.infer(x)
    }

    /// Run a batch of inputs, amortizing the engine's one-time setup
    /// across all of them. Every input is validated before any work is
    /// done, so a malformed item cannot waste a partial batch. Timing
    /// accumulates across reports (fold with
    /// [`BatchSummary::from_runs`]); the board serves one image at a
    /// time, so latency is additive.
    ///
    /// Images are spread across cores at batch grain via
    /// [`tensor::par`]: each image's report lands in its own slot
    /// (disjoint outputs, so logits and modelled timings are
    /// bit-identical for any [`par::threads`] setting), and the kernels'
    /// plane-level parallelism degrades to sequential inside batch
    /// workers (`par::in_worker`) so the pool is never oversubscribed.
    /// Errors are reported deterministically: the lowest-index failure
    /// wins regardless of completion order.
    pub fn infer_batch(&self, xs: &[Tensor<f32>]) -> Result<Vec<RunReport>, EngineError> {
        if xs.is_empty() {
            return Err(EngineError::EmptyBatch);
        }
        for x in xs {
            self.check_shape(x)?;
        }
        let mut slots: Vec<Option<Result<RunReport, EngineError>>> =
            (0..xs.len()).map(|_| None).collect();
        // One image is far above the spawn-amortization gate; the hint
        // only needs to say so.
        par::par_chunks_mut(&mut slots, 1, usize::MAX / 2, |i, slot| {
            slot[0] = Some(self.backend.infer(&xs[i]));
        });
        let mut runs = Vec::with_capacity(xs.len());
        for slot in slots {
            runs.push(slot.expect("every batch slot filled")?);
        }
        Ok(runs)
    }

    /// [`Engine::infer_batch`] plus the backend's batch schedule: the
    /// per-image [`RunReport`]s (identical to `infer_batch`'s) and one
    /// [`BatchSummary`] whose wall-clock reflects how the backend
    /// actually orders the batch — additive for single-board engines
    /// and [`Schedule::Sequential`] clusters, the event-driven pipeline
    /// makespan for [`Schedule::Pipelined`], where board *k* starts
    /// image *i+1* as soon as it finishes image *i*.
    pub fn infer_batch_summary(
        &self,
        xs: &[Tensor<f32>],
    ) -> Result<(Vec<RunReport>, BatchSummary), EngineError> {
        let runs = self.infer_batch(xs)?;
        let summary = self.backend.summarize_batch(&runs);
        if self.trace_enabled {
            // Replay the pipelined schedule with recording on — the
            // traced replay is a second run of the identical
            // deterministic sim, so the summary above is untouched.
            if let Some(cplan) = &self.cluster_plan {
                if cplan.schedule() == Schedule::Pipelined && summary.images > 0 {
                    let mut rec = Recorder::enabled();
                    crate::cluster::pipelined_schedule_released_traced(
                        cplan.timeline(),
                        &vec![0.0f64; summary.images],
                        &mut rec,
                    );
                    let mut trace = rec.finish();
                    trace.set_broadcast_seconds(cplan.broadcast_seconds());
                    *self.last_trace.lock().expect("trace mutex") = Some(trace);
                }
            }
        }
        Ok((runs, summary))
    }

    /// The per-image stage pipeline serving replays arrivals against:
    /// a cluster engine serves over its plan's timeline verbatim; a
    /// single-board engine rebuilds its placement as the one-board
    /// degenerate cluster pipeline (same PS/PL models, same per-stage
    /// widths, no interconnect crossings). Custom backends own their
    /// execution strategy and carry no plan, so they cannot serve.
    fn serve_pipeline(&self) -> Result<Vec<StageTiming>, EngineError> {
        if let Some(cplan) = &self.cluster_plan {
            return Ok(cplan.timeline().to_vec());
        }
        let Some(plan) = &self.plan else {
            return Err(EngineError::ServeRequiresPlan {
                backend: self.backend.name(),
            });
        };
        let req = ClusterRequest {
            cluster: Cluster::homogeneous(&self.board, 1, Interconnect::GIGABIT_ETHERNET),
            offload: Offload::Target(plan.target()),
            bn: plan.bn_mode(),
            ps: *plan.ps_model(),
            pl: *plan.pl_model(),
            precision: *plan.precision(),
            schedule: Schedule::Pipelined,
            partitioner: Partitioner::default(),
            replication: Replication::None,
        };
        let shards: Vec<(usize, OffloadTarget)> = if plan.target() == OffloadTarget::None {
            Vec::new()
        } else {
            vec![(0, plan.target())]
        };
        Ok(crate::cluster::build_timeline(plan.spec(), &shards, &req))
    }

    /// Replay an open-loop request stream against this engine's
    /// deployment and report what an online SLO is written against:
    /// p50/p99/p99.9 **total** (queueing + service) latency, goodput
    /// vs offered load, the admission queue's high-water mark, and
    /// per-board utilization — all in deterministic virtual time (see
    /// [`crate::serve`]). Serving decides *when* each image runs,
    /// never *what* it computes: logits are untouched, and no
    /// inference executes here at all — like [`Engine::latency_report`],
    /// this reads the build-time timing model.
    ///
    /// With a non-empty [`EngineBuilder::faults`] plan the run goes
    /// through [`crate::fault::serve_faulted`] instead: the same
    /// virtual-time replay, plus injected faults, health-driven
    /// failover replanning onto the surviving boards, and an
    /// availability section on the report. An empty plan is
    /// bit-identical to the fault-free path.
    pub fn serve(&self, req: &ServeRequest) -> Result<ServeReport, EngineError> {
        let mut report = if self.faults.is_empty() {
            crate::serve::serve_timeline_traced(&self.serve_pipeline()?, req, self.trace_enabled)?
        } else {
            let cplan = self
                .cluster_plan
                .as_ref()
                .expect("build() rejects fault plans without a cluster");
            crate::fault::serve_faulted(cplan, req, &self.faults, &self.health, self.trace_enabled)?
        };
        if let Some(trace) = report.trace.as_mut() {
            if let Some(cplan) = &self.cluster_plan {
                trace.set_broadcast_seconds(cplan.broadcast_seconds());
            }
            *self.last_trace.lock().expect("trace mutex") = Some(trace.clone());
        }
        Ok(report)
    }

    /// Walk Poisson offered load across fractions of this deployment's
    /// pipelined throughput ceiling and serve a stream at each point —
    /// the load/latency curve (see [`crate::serve::LoadSweep`]). Sweeps
    /// stay untraced even under [`EngineBuilder::trace`] — a trace per
    /// load point is rarely what you want; trace one
    /// [`Engine::serve`] at the load you care about instead (or call
    /// [`crate::serve::sweep_timeline_traced`] directly).
    pub fn load_sweep(&self, sweep: &LoadSweep) -> Result<Vec<LoadPoint>, EngineError> {
        crate::serve::sweep_timeline(&self.serve_pipeline()?, sweep)
    }

    /// The event [`Trace`] of the most recent traced run on this
    /// engine — [`Engine::serve`] or a pipelined
    /// [`Engine::infer_batch_summary`] under
    /// [`EngineBuilder::trace`]`(true)`. `None` before the first traced
    /// run (or when tracing is off). Cloned out so the engine keeps
    /// serving concurrently.
    pub fn last_trace(&self) -> Option<Trace> {
        self.last_trace.lock().expect("trace mutex").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodenet::{NetSpec, Variant};

    fn image(seed: u64) -> Tensor<f32> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(Shape4::new(1, 3, 32, 32), |_, _, _, _| {
            rng.random::<f32>() - 0.5
        })
    }

    fn net(v: Variant) -> Network {
        Network::new(NetSpec::new(v, 20).with_classes(10), 77)
    }

    #[test]
    fn auto_plan_matches_planner() {
        let net = net(Variant::ROdeNet3);
        let engine = Engine::builder(&net)
            .build()
            .expect("default config builds");
        assert_eq!(engine.target(), OffloadTarget::Layer32);
        assert_eq!(engine.backend_name(), "hybrid");
        assert_eq!(engine.offloaded(), &[rodenet::LayerName::Layer3_2]);
    }

    #[test]
    fn resnet_auto_falls_back_to_software() {
        let net = net(Variant::ResNet);
        let engine = Engine::builder(&net).build().expect("software fallback");
        assert_eq!(engine.target(), OffloadTarget::None);
        assert_eq!(engine.backend_name(), "ps-software");
        let run = engine.infer(&image(1)).expect("runs");
        assert_eq!(run.pl_seconds, 0.0);
        assert_eq!(run.dma_words, 0);
    }

    #[test]
    fn removed_layer_is_rejected_at_build() {
        let net = net(Variant::ROdeNet3); // layer2_2 removed
        let err = Engine::builder(&net)
            .offload(Offload::Target(OffloadTarget::Layer22))
            .build()
            .expect_err("layer2_2 does not exist");
        assert_eq!(
            err,
            EngineError::TargetNotApplicable {
                target: OffloadTarget::Layer22,
                variant: Variant::ROdeNet3
            }
        );
    }

    #[test]
    fn stacked_layer_is_rejected_at_build() {
        let net = net(Variant::ResNet);
        let err = Engine::builder(&net)
            .offload(Offload::Target(OffloadTarget::Layer32))
            .build()
            .expect_err("stacked blocks cannot offload");
        assert!(matches!(err, EngineError::TargetNotApplicable { .. }));
    }

    #[test]
    fn tiny_board_is_infeasible() {
        let mut small = PYNQ_Z2;
        small.bram36 = 10;
        let net = net(Variant::ROdeNet3);
        let err = Engine::builder(&net)
            .board(&small)
            .offload(Offload::Target(OffloadTarget::Layer32))
            .build()
            .expect_err("10 BRAMs fit nothing");
        assert_eq!(
            err,
            EngineError::InfeasiblePlacement {
                target: OffloadTarget::Layer32,
                parallelism: 16
            }
        );
    }

    #[test]
    fn shape_mismatch_is_an_error_not_a_panic() {
        let net = net(Variant::ROdeNet3);
        let engine = Engine::builder(&net).build().unwrap();
        let bad = Tensor::<f32>::zeros(Shape4::new(1, 1, 32, 32));
        assert!(matches!(
            engine.infer(&bad),
            Err(EngineError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            engine.infer_batch(&[]),
            Err(EngineError::EmptyBatch)
        ));
    }

    #[test]
    fn software_backend_with_pl_target_conflicts() {
        let net = net(Variant::ROdeNet3);
        let err = Engine::builder(&net)
            .offload(Offload::Target(OffloadTarget::Layer32))
            .backend(BackendKind::PsSoftware)
            .build()
            .expect_err("software backend cannot run PL stages");
        assert!(matches!(err, EngineError::BackendConflict { .. }));
    }

    #[test]
    fn pl_bit_exact_rejects_running_stats() {
        let net = net(Variant::ROdeNet3);
        let err = Engine::builder(&net)
            .backend(BackendKind::PlBitExact)
            .bn_mode(BnMode::Running)
            .build()
            .expect_err("the circuit has no running statistics");
        assert_eq!(
            err,
            EngineError::BnModeConflict {
                backend: "pl-bit-exact"
            }
        );
    }

    #[test]
    fn infer_batch_accumulates() {
        let net = net(Variant::ROdeNet3);
        let engine = Engine::builder(&net).build().unwrap();
        let xs: Vec<Tensor<f32>> = (0..3).map(image).collect();
        let runs = engine.infer_batch(&xs).expect("batch runs");
        assert_eq!(runs.len(), 3);
        let summary = BatchSummary::from_runs(&runs);
        assert_eq!(summary.images, 3);
        let single = runs[0].total_seconds();
        assert!((summary.total_seconds() - 3.0 * single).abs() < 1e-12);
        assert!(summary.throughput() > 0.0);
        assert_eq!(summary.dma_words, 3 * runs[0].dma_words);
        // The additive fold: wall-clock equals accumulated execution,
        // and the timing model is input-independent, so every image
        // shares one latency — p50 == max == the per-image total.
        assert_eq!(summary.wall_seconds, summary.total_seconds());
        assert_eq!(summary.latency_p50, single);
        assert_eq!(summary.latency_p99, single);
        assert_eq!(summary.latency_max, single);
    }

    #[test]
    fn empty_summary_has_zero_throughput() {
        // An idle server serves zero images per second — the previous
        // `max(f64::MIN_POSITIVE)` clamp returned ~1.8e308 instead.
        let s = BatchSummary::default();
        assert_eq!(s.images, 0);
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(BatchSummary::from_runs(&[]).throughput(), 0.0);
        // The latency percentiles keep the same guard: an empty batch
        // has no distribution, not a NaN one.
        assert_eq!(s.latency_p50, 0.0);
        assert_eq!(s.latency_p99, 0.0);
        assert_eq!(s.latency_max, 0.0);
        assert_eq!(BatchSummary::from_runs(&[]).latency_max, 0.0);
    }

    #[test]
    fn summary_percentiles_track_mixed_latencies() {
        // Synthetic reports with distinct latencies: p50 is the lower
        // median, max the worst case, and throughput uses wall-clock.
        let mk = |ps: f64| RunReport {
            logits: Tensor::zeros(Shape4::new(1, 10, 1, 1)),
            images: 1,
            ps_seconds: ps,
            pl_seconds: 0.0,
            dma_words: 0,
            offloaded: Vec::new(),
            backend: "test",
        };
        let s = BatchSummary::from_runs(&[mk(0.3), mk(0.1), mk(0.2)]);
        assert_eq!(s.latency_p50, 0.2);
        // ⌊0.99·(3−1)⌋ = index 1: p99 of a 3-image batch is its median
        // — the tail needs ≥ 100 samples to separate from the max.
        assert_eq!(s.latency_p99, 0.2);
        assert_eq!(s.latency_max, 0.3);
        assert!((s.wall_seconds - 0.6).abs() < 1e-12);
        assert!((s.throughput() - 3.0 / 0.6).abs() < 1e-9);
        // Even-sized batches take the LOWER median, as documented.
        let even = BatchSummary::from_runs(&[mk(0.4), mk(0.2)]);
        assert_eq!(even.latency_p50, 0.2);
        assert_eq!(even.latency_max, 0.4);
        // With 200 distinct latencies the p99 index is ⌊0.99·199⌋ =
        // 197: strictly inside the tail, strictly below the max.
        let many: Vec<RunReport> = (1..=200).map(|i| mk(i as f64 * 1e-3)).collect();
        let big = BatchSummary::from_runs(&many);
        assert_eq!(big.latency_p99, 198.0 * 1e-3);
        assert_eq!(big.latency_max, 200.0 * 1e-3);
    }

    #[test]
    fn sixteen_bit_engine_builds_and_infers() {
        let net = net(Variant::ROdeNet3);
        let engine = Engine::builder(&net)
            .precision(Precision::Uniform(PlFormat::Q16 { frac: 10 }))
            .build()
            .expect("16-bit datapath builds");
        assert_eq!(
            engine.precision().uniform_format(),
            Some(PlFormat::Q16 { frac: 10 })
        );
        assert_eq!(engine.target(), OffloadTarget::Layer32);
        let run = engine.infer(&image(9)).expect("runs");
        assert!(run.logits.as_slice().iter().all(|v| v.is_finite()));
        // Half-width feature maps halve the modelled DMA words.
        assert_eq!(run.dma_words, 64 * 64);
    }

    #[test]
    fn custom_format_dispatches_or_errors() {
        use qfixed::QFormat;
        let net = net(Variant::ROdeNet3);
        // A supported custom width executes…
        let ok = Engine::builder(&net)
            .precision(PlFormat::Custom(QFormat::new(32, 16)))
            .build()
            .expect("Q15.16 has a datapath");
        assert!(ok.infer(&image(2)).is_ok());
        // …an analysis-only width is a typed error, not a panic.
        let err = Engine::builder(&net)
            .precision(PlFormat::Custom(QFormat::new(8, 4)))
            .build()
            .expect_err("no 8-bit datapath");
        assert_eq!(
            err,
            EngineError::UnsupportedFormat {
                total_bits: 8,
                frac_bits: 4,
                stage: None
            }
        );
        // But the same configuration still *plans* (resource analysis).
        let plan = Engine::builder(&net)
            .precision(PlFormat::Custom(QFormat::new(8, 4)))
            .plan()
            .expect("8-bit plans fine");
        assert!(plan.bram36_used() < 140.0);
    }

    #[test]
    fn every_listed_executable_width_builds() {
        // `PlFormat::EXECUTABLE_WIDTHS` is the single source of truth;
        // BOTH monomorphization sites — the per-stage `any_accel!`
        // enum (hybrid path) and the uniform `dispatch_width!` match
        // (fully-fixed-point path) — must cover every entry.
        let net = net(Variant::ROdeNet3);
        for &(total, frac) in PlFormat::EXECUTABLE_WIDTHS {
            let format = PlFormat::Custom(qfixed::QFormat::new(total, frac));
            assert!(format.has_datapath(), "({total},{frac}) is listed");
            let engine = Engine::builder(&net)
                .precision(format)
                .build()
                .unwrap_or_else(|e| panic!("({total},{frac}) listed as executable: {e}"));
            engine.infer(&image(1)).expect("listed widths serve");
            let bit_exact = Engine::builder(&net)
                .precision(format)
                .backend(BackendKind::PlBitExact)
                .build()
                .unwrap_or_else(|e| panic!("({total},{frac}) must dispatch PlBitExact: {e}"));
            bit_exact.infer(&image(1)).expect("listed widths serve");
        }
        assert!(!PlFormat::Custom(qfixed::QFormat::new(24, 12)).has_datapath());
    }

    #[test]
    fn plan_without_numerics_matches_built_engine() {
        let net = net(Variant::ROdeNet3);
        let builder_plan = Engine::builder(&net).plan().expect("plans");
        let engine = Engine::builder(&net).build().expect("builds");
        let engine_plan = engine.plan().expect("built-in backend keeps its plan");
        assert_eq!(builder_plan.target(), engine_plan.target());
        assert_eq!(
            builder_plan.table5().total_w_pl,
            engine_plan.table5().total_w_pl
        );
        assert_eq!(
            engine.latency_report().expect("cached").total_w_pl,
            engine_plan.table5().total_w_pl
        );
    }

    #[test]
    fn pl_bit_exact_tracks_hybrid_logits() {
        let net = net(Variant::ROdeNet3);
        let hybrid = Engine::builder(&net).build().unwrap();
        let full_q = Engine::builder(&net)
            .backend(BackendKind::PlBitExact)
            .build()
            .unwrap();
        let x = image(3);
        let a = hybrid.infer(&x).unwrap();
        let b = full_q.infer(&x).unwrap();
        // Same placement, same timing model; numerics differ only by
        // the PS-side stages running in Q20.
        assert_eq!(a.total_seconds(), b.total_seconds());
        assert_eq!(a.dma_words, b.dma_words);
        let d = a.logits.max_abs_diff(&b.logits);
        assert!(d < 0.1, "full-Q20 drift {d}");
    }

    #[test]
    fn custom_backend_plugs_in() {
        struct Constant;
        impl Backend for Constant {
            fn name(&self) -> &'static str {
                "constant"
            }
            fn offloaded(&self) -> &[LayerName] {
                &[]
            }
            fn infer(&self, x: &Tensor<f32>) -> Result<RunReport, EngineError> {
                Ok(RunReport {
                    logits: Tensor::zeros(Shape4::new(x.shape().n, 10, 1, 1)),
                    images: x.shape().n,
                    ps_seconds: 0.5,
                    pl_seconds: 0.0,
                    dma_words: 0,
                    offloaded: Vec::new(),
                    backend: "constant",
                })
            }
        }
        let net = net(Variant::ROdeNet3);
        let engine = Engine::builder(&net)
            .custom_backend(Box::new(Constant))
            .build()
            .unwrap();
        assert_eq!(engine.backend_name(), "constant");
        let run = engine.infer(&image(4)).unwrap();
        assert_eq!(run.ps_seconds, 0.5);
    }

    #[test]
    fn one_board_cluster_is_the_hybrid_engine() {
        use crate::cluster::{Cluster, Interconnect, Schedule};
        let net = net(Variant::ROdeNet3);
        let hybrid = Engine::builder(&net).build().unwrap();
        let cluster = Engine::builder(&net)
            .cluster(Cluster::homogeneous(
                &PYNQ_Z2,
                1,
                Interconnect::GIGABIT_ETHERNET,
            ))
            .build()
            .unwrap();
        assert_eq!(cluster.backend_name(), "cluster");
        assert_eq!(cluster.target(), hybrid.target());
        let x = image(6);
        let a = hybrid.infer(&x).unwrap();
        let b = cluster.infer(&x).unwrap();
        assert_eq!(a.logits.as_slice(), b.logits.as_slice(), "bit-identical");
        assert_eq!(a.ps_seconds, b.ps_seconds);
        assert_eq!(a.pl_seconds, b.pl_seconds, "no interconnect on one board");
        assert_eq!(a.dma_words, b.dma_words);
        // The sequential batch summary is the additive fold either way.
        let xs: Vec<Tensor<f32>> = (0..2).map(image).collect();
        let (_, s) = cluster.infer_batch_summary(&xs).unwrap();
        assert_eq!(s.wall_seconds, s.total_seconds());
        // A pipelined single board still overlaps PS and PL stages.
        let pipelined = Engine::builder(&net)
            .cluster(Cluster::homogeneous(
                &PYNQ_Z2,
                1,
                Interconnect::GIGABIT_ETHERNET,
            ))
            .schedule(Schedule::Pipelined)
            .build()
            .unwrap();
        let (_, p) = pipelined.infer_batch_summary(&xs).unwrap();
        assert!(
            p.wall_seconds < s.wall_seconds,
            "{} < {}",
            p.wall_seconds,
            s.wall_seconds
        );
        assert!(p.latency_max >= p.latency_p50);
    }

    #[test]
    fn cluster_rejects_non_hybrid_backends() {
        use crate::cluster::{Cluster, Interconnect};
        let net = net(Variant::ROdeNet3);
        for (kind, name) in [
            (BackendKind::PsSoftware, "ps-software"),
            (BackendKind::PlBitExact, "pl-bit-exact"),
        ] {
            let err = Engine::builder(&net)
                .cluster(Cluster::homogeneous(
                    &PYNQ_Z2,
                    2,
                    Interconnect::GIGABIT_ETHERNET,
                ))
                .backend(kind)
                .build()
                .expect_err("only the hybrid walk runs on a cluster");
            // The error names the *requested* backend, so the caller
            // sees which setting to change.
            assert!(
                matches!(err, EngineError::BackendConflict { backend, .. } if backend == name),
                "{kind:?}: {err}"
            );
        }
    }

    #[test]
    fn cluster_engine_keeps_its_plan() {
        use crate::cluster::{Cluster, Interconnect};
        let net = net(Variant::OdeNet);
        let engine = Engine::builder(&net)
            .cluster(Cluster::homogeneous(
                &PYNQ_Z2,
                2,
                Interconnect::GIGABIT_ETHERNET,
            ))
            .build()
            .unwrap();
        assert!(engine.plan().is_none());
        let plan = engine
            .cluster_plan()
            .expect("cluster engines keep a cluster plan");
        assert_eq!(plan.target(), engine.target());
        assert_eq!(
            plan.target(),
            OffloadTarget::AllOde,
            "two boards fit everything"
        );
        let run = engine.infer(&image(8)).unwrap();
        assert!(
            (plan.total_seconds() - run.total_seconds()).abs() < 1e-9,
            "plan {} vs run {}",
            plan.total_seconds(),
            run.total_seconds()
        );
    }

    #[test]
    fn engine_serves_from_multiple_threads() {
        // The docs promise shared-reference serving; keep the trait
        // bounds honest (this is a compile-time contract as much as a
        // runtime one).
        fn assert_sync<T: Send + Sync>(_: &T) {}
        let net = net(Variant::ROdeNet3);
        let engine = Engine::builder(&net).build().unwrap();
        assert_sync(&engine);
        let logits: Vec<Tensor<f32>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|i| {
                    let engine = &engine;
                    s.spawn(move || engine.infer(&image(i)).unwrap().logits)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Same seeds as a serial run — concurrency must not change results.
        for (i, l) in logits.iter().enumerate() {
            let serial = engine.infer(&image(i as u64)).unwrap();
            assert_eq!(l.as_slice(), serial.logits.as_slice());
        }
    }

    #[test]
    fn describe_mentions_backend_and_board() {
        let net = net(Variant::ROdeNet3);
        let engine = Engine::builder(&net).build().unwrap();
        let d = engine.describe();
        assert!(d.contains("hybrid") && d.contains("PYNQ-Z2"), "{d}");
    }
}
