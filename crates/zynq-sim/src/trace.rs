//! Event tracing and stall attribution for the virtual-time simulators.
//!
//! The schedulers in [`crate::cluster`] and [`crate::serve`] make rich
//! decisions — pipelined FIFO gates, replica round-robin, deadline
//! micro-batching — but historically emitted only end-of-run aggregates
//! (`PipelineRun`, `ServeReport`). This module records *why* a run
//! looks the way it does:
//!
//! 1. a [`Recorder`] is threaded through
//!    [`pipelined_schedule_released_traced`] and
//!    [`serve_timeline_traced`], capturing typed spans — one
//!    [`StageSpan`] per stage execution per image per
//!    [`StageResource`], [`TransferSpan`]s for interconnect hand-offs
//!    and the one-time replica broadcast, [`QueueEvent`]s for
//!    admission-queue waits, and [`DispatchEvent`]s for micro-batcher
//!    decisions — all in deterministic **virtual** time (no wall clock
//!    is ever read);
//! 2. the finished [`Trace`] exports to Chrome-trace-event JSON via
//!    [`Trace::to_chrome_json`] (one track per resource, hand-rolled
//!    serializer — open it in `chrome://tracing` or Perfetto) and
//!    aggregates into [`Metrics`]: per-resource busy/idle/utilization,
//!    the queue-depth time series, and a **stall attribution** that
//!    splits every idle gap into waiting-on-upstream vs FIFO-gate-held
//!    vs no-work;
//! 3. the surface API is `EngineBuilder::trace(true)` +
//!    `Engine::last_trace()` / `ServeReport::trace()`, and the
//!    `repro -- trace` command writes the JSON artifact and prints the
//!    attribution table.
//!
//! A **disabled** recorder is a single inlined boolean check per event
//! — the schedulers' floating-point arithmetic is untouched either
//! way, so schedules and logits are bit-identical with tracing on or
//! off (pinned in `tests/trace.rs`; overhead pinned in
//! `benches/trace.rs`).
//!
//! # Stall attribution
//!
//! For every idle gap on a resource the recorder knows, for each span
//! that eventually ran there, when its image became *pending* for the
//! stage (previous stage's completion, or the dispatch release for the
//! first stage) and when its input was *delivered* (pending +
//! interconnect hand-off). A gap instant is attributed:
//!
//! - **gate** — some image's input for this resource was already
//!   delivered but the per-stage FIFO gate (or replica round-robin
//!   pinning) held it back: the resource sat idle with runnable work
//!   at hand. This is the visible cost of PR 7's Graham-anomaly guard.
//! - **upstream** — an image destined for this resource was pending
//!   but its input was still in flight across the interconnect.
//! - **no-work** — nothing destined for this resource was even
//!   pending: the image was still executing upstream stages, or the
//!   micro-batcher had admitted nothing.
//!
//! Overlaps resolve gate > upstream > no-work, so "the gate held
//! delivered work" is never misread as starvation.
//!
//! [`pipelined_schedule_released_traced`]: crate::cluster::pipelined_schedule_released_traced
//! [`serve_timeline_traced`]: crate::serve::serve_timeline_traced

use crate::cluster::{StageResource, StageTiming};
use rodenet::LayerName;

/// One stage execution on one resource, in virtual seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StageSpan {
    /// Stream index of the image.
    pub image: usize,
    /// Index of the stage in the plan's timeline.
    pub stage: usize,
    /// The resource that executed the stage (the image's round-robin
    /// replica when the stage is replicated).
    pub resource: StageResource,
    /// The offloaded layer (`None` for merged PS segments).
    pub layer: Option<LayerName>,
    /// When the image became pending for this stage: its dispatch
    /// release for stage 0, the previous stage's completion otherwise.
    pub pending: f64,
    /// When the stage's input was delivered at the resource
    /// (`pending` + interconnect hand-off; equals `pending` when no
    /// hand-off precedes the stage).
    pub ready: f64,
    /// Execution start (`≥ ready`; the difference is time spent held
    /// behind a busy resource or the per-stage FIFO gate).
    pub start: f64,
    /// Execution end (`start` + the stage's modelled seconds).
    pub end: f64,
}

/// One interconnect hand-off. Transfers occupy no compute resource —
/// they delay readiness — so they live on their own export track and
/// may overlap each other.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransferSpan {
    /// Stream index of the image in flight.
    pub image: usize,
    /// The stage the transfer feeds.
    pub stage: usize,
    /// The destination resource.
    pub to: StageResource,
    /// Transfer start (the previous stage's completion).
    pub start: f64,
    /// Transfer end (the input's delivery instant).
    pub end: f64,
}

/// One admission-queue depth change: `+1` on arrival, `-count` when a
/// dispatch drains everything waiting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueueEvent {
    /// Virtual instant of the change.
    pub at: f64,
    /// Signed depth delta.
    pub delta: i64,
}

/// One micro-batcher dispatch decision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DispatchEvent {
    /// The release instant the batcher chose.
    pub at: f64,
    /// Images released together in this batch.
    pub images: usize,
}

/// The category of an injected fault (mirrors
/// [`crate::fault::FaultEvent`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A board died permanently.
    Crash,
    /// A board's stages ran `factor ×` slower for a window.
    Slowdown,
    /// The interconnect lost bandwidth for a window.
    LinkDegrade,
    /// A board accepted no new stage starts for a window.
    Hang,
}

/// One fault-subsystem event on the trace's failover track — injected
/// faults, failover boundaries, and re-dispatches of work lost on a
/// crashed board (see [`crate::fault`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultTraceEvent {
    /// A [`crate::fault::FaultEvent`] took effect.
    FaultInjected {
        /// Virtual instant the fault takes effect.
        at: f64,
        /// What kind of fault.
        kind: FaultKind,
        /// The targeted board (`None` for link-wide faults).
        board: Option<usize>,
    },
    /// The health monitor declared `board` failed; the drain +
    /// replan + re-broadcast recovery window opens.
    FailoverStart {
        /// Detection instant.
        at: f64,
        /// The board declared dead.
        board: usize,
    },
    /// Serving resumed on the replacement placement.
    FailoverEnd {
        /// Resume instant (drain end + re-broadcast).
        at: f64,
        /// Whether the replacement is the degraded head-PS fallback.
        degraded: bool,
    },
    /// An image whose in-flight work died with a crashed board was
    /// re-dispatched onto the replacement placement.
    Redispatch {
        /// The re-dispatch instant (the failover's resume).
        at: f64,
        /// Stream index of the re-dispatched image.
        image: usize,
    },
}

impl FaultTraceEvent {
    /// The event's virtual instant.
    pub fn at(&self) -> f64 {
        match *self {
            FaultTraceEvent::FaultInjected { at, .. }
            | FaultTraceEvent::FailoverStart { at, .. }
            | FaultTraceEvent::FailoverEnd { at, .. }
            | FaultTraceEvent::Redispatch { at, .. } => at,
        }
    }
}

/// A finished event log plus the run summary needed to aggregate it.
///
/// Produced by [`Recorder::finish`]; carried on
/// `ServeReport::trace()` / `Engine::last_trace()`. Everything is in
/// deterministic virtual seconds, so a `Trace` of a seeded run is
/// bit-stable across machines.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Trace {
    /// Every stage execution, in scheduler commit order.
    pub stages: Vec<StageSpan>,
    /// Every interconnect hand-off, in scheduler commit order.
    pub transfers: Vec<TransferSpan>,
    /// Admission-queue depth changes, in queue order (arrivals at a
    /// dispatch's instant precede the dispatch, matching the queue's
    /// push-before-drain accounting).
    pub queue: Vec<QueueEvent>,
    /// Micro-batcher dispatch decisions, ascending.
    pub dispatches: Vec<DispatchEvent>,
    /// Fault-subsystem events (injections, failover boundaries,
    /// re-dispatches), in orchestrator order. Empty for fault-free
    /// runs — the exports of those stay byte-identical to pre-fault
    /// traces.
    pub faults: Vec<FaultTraceEvent>,
    images: usize,
    horizon: f64,
    per_image_busy: Vec<(StageResource, f64)>,
    broadcast_seconds: f64,
}

impl Trace {
    /// Images the traced run served.
    pub fn images(&self) -> usize {
        self.images
    }

    /// Virtual seconds from t = 0 to the last completion (the run's
    /// makespan).
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// One-time replica weight-broadcast seconds, if the deployment
    /// replicates (0 otherwise). Broadcast overlaps deployment — it is
    /// exported on the interconnect track at t = 0 but never attributed
    /// against the serving horizon.
    pub fn broadcast_seconds(&self) -> f64 {
        self.broadcast_seconds
    }

    /// Attach the deployment's replica broadcast cost (see
    /// [`crate::cluster::ClusterPlan::broadcast_seconds`]). The
    /// timeline-level drivers cannot see it; `Engine::serve` and the
    /// `repro -- trace` command stamp it from the plan.
    pub fn set_broadcast_seconds(&mut self, seconds: f64) {
        self.broadcast_seconds = seconds;
    }

    /// Per-resource utilization, **bit-equal** to
    /// `ServeReport::utilization`: the timeline's per-image busy table
    /// (captured at record time) scaled by `images / horizon` with the
    /// exact arithmetic `serve_timeline` uses.
    pub fn utilization(&self) -> Vec<(StageResource, f64)> {
        self.per_image_busy
            .iter()
            .map(|&(resource, busy)| (resource, busy * self.images as f64 / self.horizon))
            .collect()
    }

    /// The admission-queue depth time series as `(instant, depth)`
    /// steps, in queue order. Its running peak equals
    /// `AdmissionQueue::peak()` exactly (pinned by proptest).
    pub fn queue_depth_series(&self) -> Vec<(f64, usize)> {
        let mut depth = 0i64;
        self.queue
            .iter()
            .map(|e| {
                depth += e.delta;
                debug_assert!(depth >= 0, "queue depth never goes negative");
                (e.at, depth.max(0) as usize)
            })
            .collect()
    }

    /// Aggregate the event log into per-resource busy/utilization and
    /// stall attribution (see the module docs for the taxonomy).
    pub fn metrics(&self) -> Metrics {
        let mut slots: Vec<StageResource> = Vec::new();
        for s in &self.stages {
            if !slots.contains(&s.resource) {
                slots.push(s.resource);
            }
        }
        slots.sort_by_key(|r| r.slot());
        let resources = slots
            .into_iter()
            .map(|resource| self.resource_metrics(resource))
            .collect();
        Metrics {
            resources,
            queue_peak: self
                .queue_depth_series()
                .into_iter()
                .map(|(_, d)| d)
                .max()
                .unwrap_or(0),
            horizon: self.horizon,
        }
    }

    fn resource_metrics(&self, resource: StageResource) -> ResourceMetrics {
        let mut spans: Vec<&StageSpan> = self
            .stages
            .iter()
            .filter(|s| s.resource == resource)
            .collect();
        spans.sort_by(|a, b| a.start.total_cmp(&b.start));
        let busy: f64 = spans.iter().map(|s| s.end - s.start).sum();
        let utilization = self
            .utilization()
            .into_iter()
            .find(|(r, _)| *r == resource)
            .map_or_else(|| busy / self.horizon, |(_, u)| u);

        // Interval covers over this resource's spans: when was
        // delivered work held (gate), when was work still in flight
        // (upstream)?
        let gate_cover = merged(
            spans
                .iter()
                .filter(|s| s.start > s.ready)
                .map(|s| (s.ready, s.start))
                .collect(),
        );
        let upstream_cover = subtract(
            &merged(
                spans
                    .iter()
                    .filter(|s| s.ready > s.pending)
                    .map(|s| (s.pending, s.ready))
                    .collect(),
            ),
            &gate_cover,
        );

        let mut stall = StallBreakdown::default();
        let mut attribute = |lo: f64, hi: f64| {
            if hi <= lo {
                return;
            }
            let gate = overlap_len(&gate_cover, lo, hi);
            let upstream = overlap_len(&upstream_cover, lo, hi);
            stall.gate += gate;
            stall.upstream += upstream;
            stall.no_work += ((hi - lo) - gate - upstream).max(0.0);
        };
        let mut cursor = 0.0f64;
        for s in &spans {
            attribute(cursor, s.start);
            cursor = cursor.max(s.end);
        }
        attribute(cursor, self.horizon);

        ResourceMetrics {
            resource,
            spans: spans.len(),
            busy,
            utilization,
            stall,
        }
    }

    /// Serialize to the Chrome trace-event JSON format (the
    /// `{"traceEvents": [...]}` object form), one event per line:
    ///
    /// - a `B`/`E` pair per stage execution on its resource's track
    ///   (spans on one track never overlap, so pairs match exactly);
    /// - an `X` complete event per interconnect hand-off (and the
    ///   replica broadcast) on a shared `interconnect` track;
    /// - `C` counter events for the admission-queue depth;
    /// - `i` instant events for micro-batcher dispatches;
    /// - `M` metadata naming every track.
    ///
    /// Timestamps are virtual microseconds, globally non-decreasing.
    /// The output is bit-stable for a seeded run and validates with
    /// [`check_chrome_json`]. Open it in `chrome://tracing` or
    /// <https://ui.perfetto.dev>.
    pub fn to_chrome_json(&self) -> String {
        const TID_INTERCONNECT: usize = 100;
        const TID_DISPATCH: usize = 101;
        const TID_FAULTS: usize = 102;
        let us = |t: f64| t * 1e6;
        // (ts, rank, seq) sort key: metadata first, then E before X/C/i
        // before B at equal instants so same-track spans close before
        // their successors open.
        let mut events: Vec<(f64, u8, usize, String)> = Vec::new();
        let mut seq = 0usize;
        let mut push =
            |events: &mut Vec<(f64, u8, usize, String)>, ts: f64, rank: u8, line: String| {
                events.push((ts, rank, seq, line));
                seq += 1;
            };

        let mut tracks: Vec<(usize, String)> = Vec::new();
        for s in &self.stages {
            let tid = s.resource.slot();
            if !tracks.iter().any(|(t, _)| *t == tid) {
                tracks.push((tid, resource_label(s.resource)));
            }
        }
        tracks.sort_by_key(|(t, _)| *t);
        if !self.transfers.is_empty() || self.broadcast_seconds > 0.0 {
            tracks.push((TID_INTERCONNECT, "interconnect".to_string()));
        }
        if !self.dispatches.is_empty() {
            tracks.push((TID_DISPATCH, "dispatch".to_string()));
        }
        if !self.faults.is_empty() {
            tracks.push((TID_FAULTS, "faults".to_string()));
        }
        for (tid, name) in &tracks {
            push(
                &mut events,
                0.0,
                0,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"ts\":0,\"args\":{{\"name\":\"{name}\"}}}}"
                ),
            );
        }

        for s in &self.stages {
            let tid = s.resource.slot();
            let name = stage_label(s.layer);
            push(
                &mut events,
                us(s.start),
                3,
                format!(
                    "{{\"name\":\"{name}\",\"cat\":\"stage\",\"ph\":\"B\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"args\":{{\"image\":{},\"stage\":{}}}}}",
                    us(s.start),
                    s.image,
                    s.stage
                ),
            );
            push(
                &mut events,
                us(s.end),
                1,
                format!(
                    "{{\"name\":\"{name}\",\"ph\":\"E\",\"pid\":0,\"tid\":{tid},\"ts\":{}}}",
                    us(s.end)
                ),
            );
        }

        if self.broadcast_seconds > 0.0 {
            push(
                &mut events,
                0.0,
                2,
                format!(
                    "{{\"name\":\"replica broadcast\",\"cat\":\"transfer\",\"ph\":\"X\",\"pid\":0,\"tid\":{TID_INTERCONNECT},\"ts\":0,\"dur\":{}}}",
                    us(self.broadcast_seconds)
                ),
            );
        }
        for t in &self.transfers {
            push(
                &mut events,
                us(t.start),
                2,
                format!(
                    "{{\"name\":\"to {}\",\"cat\":\"transfer\",\"ph\":\"X\",\"pid\":0,\"tid\":{TID_INTERCONNECT},\"ts\":{},\"dur\":{},\"args\":{{\"image\":{},\"stage\":{}}}}}",
                    resource_label(t.to),
                    us(t.start),
                    us(t.end - t.start),
                    t.image,
                    t.stage
                ),
            );
        }

        for d in &self.dispatches {
            push(
                &mut events,
                us(d.at),
                2,
                format!(
                    "{{\"name\":\"dispatch\",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":{TID_DISPATCH},\"ts\":{},\"args\":{{\"images\":{}}}}}",
                    us(d.at),
                    d.images
                ),
            );
        }

        for f in &self.faults {
            let (name, args) = match *f {
                FaultTraceEvent::FaultInjected { kind, board, .. } => {
                    let what = match kind {
                        FaultKind::Crash => "crash",
                        FaultKind::Slowdown => "slowdown",
                        FaultKind::LinkDegrade => "link degrade",
                        FaultKind::Hang => "hang",
                    };
                    match board {
                        Some(b) => (format!("{what} board {b}"), String::new()),
                        None => (what.to_string(), String::new()),
                    }
                }
                FaultTraceEvent::FailoverStart { board, .. } => {
                    (format!("failover start (board {board})"), String::new())
                }
                FaultTraceEvent::FailoverEnd { degraded, .. } => (
                    if degraded {
                        "failover end (degraded)".to_string()
                    } else {
                        "failover end".to_string()
                    },
                    String::new(),
                ),
                FaultTraceEvent::Redispatch { image, .. } => (
                    "redispatch".to_string(),
                    format!(",\"args\":{{\"image\":{image}}}"),
                ),
            };
            push(
                &mut events,
                us(f.at()),
                2,
                format!(
                    "{{\"name\":\"{name}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":{TID_FAULTS},\"ts\":{}{args}}}",
                    us(f.at())
                ),
            );
        }

        for (at, depth) in self.queue_depth_series() {
            push(
                &mut events,
                us(at),
                2,
                format!(
                    "{{\"name\":\"admission queue\",\"ph\":\"C\",\"pid\":0,\"ts\":{},\"args\":{{\"depth\":{depth}}}}}",
                    us(at)
                ),
            );
        }

        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        for (i, (_, _, _, line)) in events.iter().enumerate() {
            out.push_str(line);
            out.push_str(if i + 1 < events.len() { ",\n" } else { "\n" });
        }
        out.push_str("]}\n");
        out
    }
}

/// Per-resource aggregates plus the queue high-water mark — what the
/// `repro -- trace` attribution table prints.
#[derive(Clone, Debug, PartialEq)]
pub struct Metrics {
    /// Per-resource rows, in [`StageResource::slot`] order.
    pub resources: Vec<ResourceMetrics>,
    /// Peak of the queue-depth series (equals
    /// `AdmissionQueue::peak()` for traced serves).
    pub queue_peak: usize,
    /// The traced run's horizon in virtual seconds.
    pub horizon: f64,
}

impl Metrics {
    /// The busiest resource — the one whose executed seconds dominate
    /// the run. For an even replica split this matches
    /// [`crate::cluster::bottleneck_seconds`]'s argmax: its per-image
    /// busy share (`busy / images`) is the pipeline's bottleneck.
    pub fn bottleneck(&self) -> Option<&ResourceMetrics> {
        self.resources
            .iter()
            .max_by(|a, b| a.busy.total_cmp(&b.busy))
    }
}

/// One resource's busy/idle accounting over a traced run.
#[derive(Clone, Debug, PartialEq)]
pub struct ResourceMetrics {
    /// The resource.
    pub resource: StageResource,
    /// Stage executions recorded on it.
    pub spans: usize,
    /// Executed virtual seconds (sum of span durations).
    pub busy: f64,
    /// Busy fraction of the horizon, bit-equal to
    /// `ServeReport::utilization` (see [`Trace::utilization`]).
    pub utilization: f64,
    /// Where the idle seconds went.
    pub stall: StallBreakdown,
}

/// Split of a resource's idle time (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct StallBreakdown {
    /// Idle while work destined here was still in flight upstream
    /// (interconnect hand-off running).
    pub upstream: f64,
    /// Idle while delivered work was held by the per-stage FIFO gate
    /// or replica round-robin pinning.
    pub gate: f64,
    /// Idle with nothing destined here even pending (images still
    /// executing earlier stages, or nothing admitted).
    pub no_work: f64,
}

impl StallBreakdown {
    /// Total attributed idle seconds.
    pub fn total(&self) -> f64 {
        self.upstream + self.gate + self.no_work
    }
}

/// The event sink the schedulers thread through. A disabled recorder
/// (the default for every untraced entry point) reduces every hook to
/// one inlined branch — the zero-cost path pinned by
/// `benches/trace.rs`.
#[derive(Clone, Debug)]
pub struct Recorder {
    enabled: bool,
    trace: Trace,
}

impl Recorder {
    /// A recorder that drops every event (the zero-cost path).
    pub fn disabled() -> Self {
        Recorder {
            enabled: false,
            trace: Trace::default(),
        }
    }

    /// A recorder that captures every event.
    pub fn enabled() -> Self {
        Recorder {
            enabled: true,
            trace: Trace::default(),
        }
    }

    /// Whether events are being captured (lets callers skip deriving
    /// event data that would be dropped anyway).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one stage execution.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn stage(
        &mut self,
        image: usize,
        stage: usize,
        resource: StageResource,
        layer: Option<LayerName>,
        pending: f64,
        ready: f64,
        start: f64,
        end: f64,
    ) {
        if !self.enabled {
            return;
        }
        self.trace.stages.push(StageSpan {
            image,
            stage,
            resource,
            layer,
            pending,
            ready,
            start,
            end,
        });
    }

    /// Record one interconnect hand-off.
    #[inline]
    pub fn transfer(
        &mut self,
        image: usize,
        stage: usize,
        to: StageResource,
        start: f64,
        end: f64,
    ) {
        if !self.enabled {
            return;
        }
        self.trace.transfers.push(TransferSpan {
            image,
            stage,
            to,
            start,
            end,
        });
    }

    /// Record one admission-queue arrival.
    #[inline]
    pub fn arrival(&mut self, at: f64) {
        if !self.enabled {
            return;
        }
        self.trace.queue.push(QueueEvent { at, delta: 1 });
    }

    /// Record one micro-batcher dispatch draining `images` waiters.
    #[inline]
    pub fn dispatch(&mut self, at: f64, images: usize) {
        if !self.enabled {
            return;
        }
        self.trace.queue.push(QueueEvent {
            at,
            delta: -(images as i64),
        });
        self.trace.dispatches.push(DispatchEvent { at, images });
    }

    /// Record one fault-subsystem event (injection, failover boundary,
    /// re-dispatch) onto the trace's failover track.
    #[inline]
    pub fn fault(&mut self, event: FaultTraceEvent) {
        if !self.enabled {
            return;
        }
        self.trace.faults.push(event);
    }

    /// Stamp the run summary the aggregations need: the timeline's
    /// per-image busy table (captured verbatim so
    /// [`Trace::utilization`] reproduces `ServeReport`'s arithmetic
    /// bit-for-bit), the image count, and the makespan.
    #[inline]
    pub fn run_summary(&mut self, timeline: &[StageTiming], images: usize, makespan: f64) {
        if !self.enabled {
            return;
        }
        self.trace.per_image_busy = crate::partition::resource_busy(timeline);
        self.trace.images = images;
        self.trace.horizon = makespan;
    }

    /// Finish recording and hand back the event log.
    pub fn finish(self) -> Trace {
        self.trace
    }
}

/// Canonical short label for a resource: `PS` (head board's ARM),
/// `PS<k>` (board *k*'s ARM in a placement group), `PL<k>` (board
/// *k*'s fabric). One formatting home for describe strings, repro
/// tables, and trace tracks.
pub fn resource_label(resource: StageResource) -> String {
    match resource {
        StageResource::Ps => "PS".to_string(),
        StageResource::PsOn(k) => format!("PS{k}"),
        StageResource::Pl(k) => format!("PL{k}"),
    }
}

/// Shared utilization formatting for `ClusterPlan::describe` /
/// `ServeReport::describe`: `util PS 61% PL0 46% PL1 15%` (whole
/// percent — describe lines are summaries, the exact fractions live on
/// the reports).
pub fn format_utilization(utilization: &[(StageResource, f64)]) -> String {
    let parts: Vec<String> = utilization
        .iter()
        .map(|&(r, u)| format!("{} {:.0}%", resource_label(r), u * 100.0))
        .collect();
    format!("util {}", parts.join(" "))
}

fn stage_label(layer: Option<LayerName>) -> String {
    layer.map_or_else(|| "ps".to_string(), |l| format!("{l:?}"))
}

/// Merge possibly-overlapping half-open intervals into a disjoint,
/// ascending cover.
fn merged(mut intervals: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    intervals.retain(|(lo, hi)| hi > lo);
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(intervals.len());
    for (lo, hi) in intervals {
        match out.last_mut() {
            Some((_, end)) if lo <= *end => *end = end.max(hi),
            _ => out.push((lo, hi)),
        }
    }
    out
}

/// Total length of `cover ∩ [lo, hi)` for a disjoint ascending cover.
fn overlap_len(cover: &[(f64, f64)], lo: f64, hi: f64) -> f64 {
    cover
        .iter()
        .map(|&(a, b)| (b.min(hi) - a.max(lo)).max(0.0))
        .sum()
}

/// `a \ b` for disjoint ascending covers.
fn subtract(a: &[(f64, f64)], b: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for &(mut lo, hi) in a {
        for &(blo, bhi) in b {
            if bhi <= lo || blo >= hi {
                continue;
            }
            if blo > lo {
                out.push((lo, blo));
            }
            lo = lo.max(bhi);
            if lo >= hi {
                break;
            }
        }
        if lo < hi {
            out.push((lo, hi));
        }
    }
    out
}

/// Validate an exported Chrome-trace JSON string line-by-line (no JSON
/// parser needed: [`Trace::to_chrome_json`] emits one event per line):
/// the envelope is the `{"traceEvents": [...]}` object form,
/// timestamps are non-decreasing, and every `B` has a matching `E` on
/// its track with proper nesting. Returns the event count.
///
/// Shared by `tests/trace.rs` and the `repro -- trace` smoke path, so
/// CI asserts the artifact parses without external tooling.
pub fn check_chrome_json(json: &str) -> Result<usize, String> {
    let mut lines = json.lines();
    let head = lines.next().unwrap_or_default();
    if head != "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[" {
        return Err(format!("bad header line: {head:?}"));
    }
    let mut events = 0usize;
    let mut last_ts = f64::NEG_INFINITY;
    // (tid, open B-event names) stacks for begin/end matching.
    let mut open: Vec<(i64, Vec<String>)> = Vec::new();
    let mut closed = false;
    for line in lines {
        if closed {
            return Err(format!("content after closing bracket: {line:?}"));
        }
        if line == "]}" {
            closed = true;
            continue;
        }
        let event = line.strip_suffix(',').unwrap_or(line);
        if !(event.starts_with('{') && event.ends_with('}')) {
            return Err(format!("event line is not an object: {line:?}"));
        }
        let ph = field_str(event, "ph").ok_or_else(|| format!("event without ph: {line:?}"))?;
        let ts = field_num(event, "ts").ok_or_else(|| format!("event without ts: {line:?}"))?;
        if ts < last_ts {
            return Err(format!("ts went backwards at {line:?}"));
        }
        last_ts = ts;
        if ph == "B" || ph == "E" {
            let tid = field_num(event, "tid")
                .ok_or_else(|| format!("span event without tid: {line:?}"))?
                as i64;
            let stack = match open.iter_mut().find(|(t, _)| *t == tid) {
                Some((_, s)) => s,
                None => {
                    open.push((tid, Vec::new()));
                    &mut open.last_mut().expect("just pushed").1
                }
            };
            let name = field_str(event, "name").unwrap_or_default();
            if ph == "B" {
                stack.push(name);
            } else {
                match stack.pop() {
                    Some(opened) if opened == name => {}
                    Some(opened) => {
                        return Err(format!("E {name:?} closes B {opened:?} on tid {tid}"))
                    }
                    None => return Err(format!("E without matching B on tid {tid}: {line:?}")),
                }
            }
        }
        events += 1;
    }
    if !closed {
        return Err("missing closing bracket line".to_string());
    }
    if let Some((tid, stack)) = open.iter().find(|(_, s)| !s.is_empty()) {
        return Err(format!("unclosed B events on tid {tid}: {stack:?}"));
    }
    Ok(events)
}

/// Extract `"key":"value"` from a single-line JSON object.
fn field_str(event: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = event.find(&pat)? + pat.len();
    let rest = &event[at..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Extract a numeric `"key":value` from a single-line JSON object.
fn field_num(event: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = event.find(&pat)? + pat.len();
    let rest = &event[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(resource: StageResource, pending: f64, ready: f64, start: f64, end: f64) -> StageSpan {
        StageSpan {
            image: 0,
            stage: 0,
            resource,
            layer: None,
            pending,
            ready,
            start,
            end,
        }
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let mut rec = Recorder::disabled();
        rec.stage(0, 0, StageResource::Ps, None, 0.0, 0.0, 0.0, 1.0);
        rec.transfer(0, 1, StageResource::Pl(0), 1.0, 1.5);
        rec.arrival(0.0);
        rec.dispatch(0.5, 1);
        rec.run_summary(&[], 1, 1.0);
        assert_eq!(rec.finish(), Trace::default());
    }

    #[test]
    fn interval_helpers_merge_overlap_and_subtract() {
        let m = merged(vec![(3.0, 4.0), (0.0, 1.0), (0.5, 2.0), (4.0, 5.0)]);
        assert_eq!(m, vec![(0.0, 2.0), (3.0, 5.0)]);
        assert!((overlap_len(&m, 1.0, 3.5) - 1.5).abs() < 1e-12);
        assert_eq!(subtract(&m, &[(0.5, 4.5)]), vec![(0.0, 0.5), (4.5, 5.0)]);
        assert_eq!(subtract(&[(0.0, 2.0)], &[(0.0, 2.0)]), Vec::new());
    }

    #[test]
    fn stall_attribution_prefers_gate_over_upstream_over_no_work() {
        // PL0 idle on [0, 4): image A pending from 0, in flight on
        // [0, 1) (upstream), delivered-but-held on [1, 4) (gate).
        // Trailing idle [5, 6) has nothing pending (no-work).
        let mut trace = Trace {
            stages: vec![span(StageResource::Pl(0), 0.0, 1.0, 4.0, 5.0)],
            ..Trace::default()
        };
        trace.images = 1;
        trace.horizon = 6.0;
        trace.per_image_busy = vec![(StageResource::Pl(0), 1.0)];
        let metrics = trace.metrics();
        let pl = &metrics.resources[0];
        assert!((pl.stall.upstream - 1.0).abs() < 1e-12);
        assert!((pl.stall.gate - 3.0).abs() < 1e-12);
        assert!((pl.stall.no_work - 1.0).abs() < 1e-12);
        assert!((pl.busy + pl.stall.total() - trace.horizon()).abs() < 1e-12);
    }

    #[test]
    fn queue_series_tracks_depth_and_peak() {
        let mut rec = Recorder::enabled();
        rec.arrival(0.0);
        rec.arrival(0.1);
        rec.arrival(0.2);
        rec.dispatch(0.2, 3);
        rec.arrival(0.3);
        rec.dispatch(0.4, 1);
        let trace = rec.finish();
        let series = trace.queue_depth_series();
        assert_eq!(
            series,
            vec![(0.0, 1), (0.1, 2), (0.2, 3), (0.2, 0), (0.3, 1), (0.4, 0)]
        );
        assert_eq!(trace.metrics().queue_peak, 3);
    }

    #[test]
    fn chrome_export_is_well_formed_and_checker_rejects_corruption() {
        let mut rec = Recorder::enabled();
        rec.arrival(0.0);
        rec.dispatch(0.0, 1);
        rec.stage(0, 0, StageResource::Ps, None, 0.0, 0.0, 0.0, 0.01);
        rec.transfer(0, 1, StageResource::Pl(1), 0.01, 0.012);
        rec.stage(
            0,
            1,
            StageResource::Pl(1),
            Some(LayerName::Layer1),
            0.01,
            0.012,
            0.012,
            0.03,
        );
        rec.run_summary(&[], 1, 0.03);
        let mut trace = rec.finish();
        trace.set_broadcast_seconds(0.002);
        let json = trace.to_chrome_json();
        let events = check_chrome_json(&json).expect("exported trace is well-formed");
        // 4 track names + 2 B/E pairs + broadcast + transfer +
        // dispatch + 2 counters.
        assert_eq!(events, 13);

        let unbalanced = json.replacen("\"ph\":\"E\"", "\"ph\":\"B\"", 1);
        assert!(check_chrome_json(&unbalanced).is_err());
        assert!(check_chrome_json("not a trace").is_err());
    }

    #[test]
    fn labels_are_shared_and_stable() {
        assert_eq!(resource_label(StageResource::Ps), "PS");
        assert_eq!(resource_label(StageResource::PsOn(2)), "PS2");
        assert_eq!(resource_label(StageResource::Pl(1)), "PL1");
        assert_eq!(
            format_utilization(&[(StageResource::Ps, 0.609), (StageResource::Pl(0), 0.458)]),
            "util PS 61% PL0 46%"
        );
    }
}
