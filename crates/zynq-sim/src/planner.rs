//! Offload planning — the §3.2 feasibility cases and the choice the
//! paper makes for each variant.
//!
//! Section 3.2 enumerates four legal placements on the XC7Z020: layer1
//! alone, layer2_2 alone, layer1 + layer2_2 together, or layer3_2 alone
//! (layer3_2 occupies 100 % of BRAM, so nothing shares the fabric with
//! it). The planner validates placements against the resource model and
//! can pick the latency-optimal one for a given architecture.
//!
//! Since the partitioner refactor, the Auto selection here is the
//! 1-board degenerate case of the cluster search: [`plan_offload_at`]
//! and [`crate::cluster::plan_cluster`]'s `Auto` loop share one cost
//! path in [`crate::partition`].

use crate::board::Board;
use crate::precision::StageFormats;
use crate::timing::{PlModel, PsModel};
use rodenet::{LayerName, NetSpec, Variant};

/// A PL placement of ODE layers.
///
/// The first five cases are the §3.2 enumeration for the paper's 32-bit
/// datapath. The remaining combinations share the fabric with layer3_2
/// — impossible at 32 bits (layer3_2 alone is 100 % of BRAM, Table 3)
/// but feasible at reduced word widths, which is exactly the paper's
/// footnote-2 motivation ("using reduced bit widths … can implement
/// more layers in PL part"). They participate in planning whenever the
/// width-aware feasibility check ([`OffloadTarget::fits_at`]) admits
/// them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OffloadTarget {
    /// Pure software.
    None,
    /// layer1 on the PL.
    Layer1,
    /// layer2_2 on the PL.
    Layer22,
    /// layer1 and layer2_2 both on the PL (§3.2 case 3).
    Layer1And22,
    /// layer3_2 on the PL (100 % BRAM at 32-bit).
    Layer32,
    /// layer1 and layer3_2 (reduced width only).
    Layer1And32,
    /// layer2_2 and layer3_2 (reduced width only).
    Layer22And32,
    /// All three shape-preserving layers on the PL (reduced width only).
    AllOde,
}

impl OffloadTarget {
    /// All placements, software first.
    pub const ALL: [OffloadTarget; 8] = [
        OffloadTarget::None,
        OffloadTarget::Layer1,
        OffloadTarget::Layer22,
        OffloadTarget::Layer1And22,
        OffloadTarget::Layer32,
        OffloadTarget::Layer1And32,
        OffloadTarget::Layer22And32,
        OffloadTarget::AllOde,
    ];

    /// The layers this placement puts on the PL.
    pub fn layers(&self) -> &'static [LayerName] {
        match self {
            OffloadTarget::None => &[],
            OffloadTarget::Layer1 => &[LayerName::Layer1],
            OffloadTarget::Layer22 => &[LayerName::Layer2_2],
            OffloadTarget::Layer1And22 => &[LayerName::Layer1, LayerName::Layer2_2],
            OffloadTarget::Layer32 => &[LayerName::Layer3_2],
            OffloadTarget::Layer1And32 => &[LayerName::Layer1, LayerName::Layer3_2],
            OffloadTarget::Layer22And32 => &[LayerName::Layer2_2, LayerName::Layer3_2],
            OffloadTarget::AllOde => &[LayerName::Layer1, LayerName::Layer2_2, LayerName::Layer3_2],
        }
    }

    /// The placement the paper evaluates for each variant (Table 5's
    /// "Offload target" column).
    pub fn paper_default(variant: Variant) -> OffloadTarget {
        match variant {
            Variant::ResNet => OffloadTarget::None,
            Variant::ROdeNet1 => OffloadTarget::Layer1,
            Variant::ROdeNet2 => OffloadTarget::Layer22,
            Variant::ROdeNet12 => OffloadTarget::Layer1And22,
            Variant::ROdeNet3 | Variant::OdeNet | Variant::Hybrid3 => OffloadTarget::Layer32,
        }
    }

    /// Whether the placement fits `board` at the given parallelism.
    ///
    /// A parallelism exceeding a target layer's output channel count
    /// cannot be instantiated (there is no ⌈O/n⌉-th channel group to
    /// feed the extra units), so `fits` reports such placements as
    /// infeasible — which is what the planner and the engine builder
    /// consult. Note the guard lives here, at the placement level: the
    /// low-level per-circuit model ([`crate::resources::ode_block_resources`]) keeps
    /// `parallelism ≤ channels` as an asserted precondition.
    pub fn fits(&self, board: &Board, parallelism: usize) -> bool {
        self.fits_at(board, parallelism, 4)
    }

    /// Width-aware feasibility: like [`OffloadTarget::fits`] but with
    /// the PL word width as a parameter (`bytes_per_value`; 4 is the
    /// paper's 32-bit build, 2 the footnote-2 16-bit datapath). BRAM
    /// scales via [`crate::resources::bram36_at_width`], DSP via
    /// [`crate::resources::dsp_slices_at_width`], and LUT/FF via
    /// [`crate::resources::modelled_lut_ff_at`] (control base fixed,
    /// datapath share scaled by the operand width) — so a reduced-width
    /// shard is not gated by the conservative 32-bit characterization.
    pub fn fits_at(&self, board: &Board, parallelism: usize, bytes_per_value: usize) -> bool {
        let pairs: Vec<(LayerName, usize)> = self
            .layers()
            .iter()
            .map(|&l| (l, bytes_per_value))
            .collect();
        self.fits_pairs(board, parallelism, &pairs)
    }

    /// Per-stage-width feasibility: like [`OffloadTarget::fits_at`]
    /// but every layer is priced at its **own** word format from the
    /// resolved precision table — so a mixed deployment (layer1 at
    /// Q16 next to layer3_2 at Q20) is admitted exactly when the sum
    /// of its differently-sized circuits fits the fabric.
    ///
    /// # Panics
    ///
    /// On a degenerate format in `formats` — callers that accept
    /// untrusted tables should [`StageFormats::validate`] first, as
    /// every planning entry point does.
    pub fn fits_with(&self, board: &Board, parallelism: usize, formats: &StageFormats) -> bool {
        self.fits_pairs(board, parallelism, &formats.bytes_for(self.layers()))
    }

    fn fits_pairs(&self, board: &Board, parallelism: usize, pairs: &[(LayerName, usize)]) -> bool {
        for &layer in self.layers() {
            let (channels, _) = layer.geometry();
            if parallelism > channels {
                return false;
            }
        }
        let (bram36, dsp, lut, ff) =
            crate::resources::placement_resources_mixed(pairs, parallelism);
        bram36 <= board.bram36 as f64 && dsp <= board.dsp && lut <= board.lut && ff <= board.ff
    }

    /// The placement covering exactly `layers` (any order, duplicates
    /// ignored), or `None` when the set contains a non-offloadable
    /// layer. Inverse of [`OffloadTarget::layers`]; the cluster
    /// sharder uses it to name the per-board slices of a placement.
    pub fn from_layers(layers: &[LayerName]) -> Option<OffloadTarget> {
        let has = |l: LayerName| layers.contains(&l);
        if layers.iter().any(|l| {
            !matches!(
                l,
                LayerName::Layer1 | LayerName::Layer2_2 | LayerName::Layer3_2
            )
        }) {
            return None;
        }
        Some(
            match (
                has(LayerName::Layer1),
                has(LayerName::Layer2_2),
                has(LayerName::Layer3_2),
            ) {
                (false, false, false) => OffloadTarget::None,
                (true, false, false) => OffloadTarget::Layer1,
                (false, true, false) => OffloadTarget::Layer22,
                (true, true, false) => OffloadTarget::Layer1And22,
                (false, false, true) => OffloadTarget::Layer32,
                (true, false, true) => OffloadTarget::Layer1And32,
                (false, true, true) => OffloadTarget::Layer22And32,
                (true, true, true) => OffloadTarget::AllOde,
            },
        )
    }

    /// Whether the placement matches the paper's policy for `spec`:
    /// every offloaded layer must be a (single-instance) ODE block —
    /// "only heavily-used layers are offloaded to PL part" (§4.4).
    pub fn applicable(&self, spec: &NetSpec) -> bool {
        self.layers().iter().all(|&l| {
            let plan = spec.plan(l);
            plan.stacked == 1 && plan.is_ode
        })
    }

    /// Relaxed applicability: any single-instance layer, ODE or plain.
    /// Offloading a once-executed plain block is legal on the simulated
    /// fabric and occasionally beats the paper's placement (e.g.
    /// rODENet-2 gains a few ms by also offloading its plain layer1);
    /// see `plan_offload_extended`.
    pub fn applicable_extended(&self, spec: &NetSpec) -> bool {
        self.layers().iter().all(|&l| {
            let plan = spec.plan(l);
            plan.stacked == 1 && plan.execs >= 1
        })
    }
}

/// All placements that fit the board at `parallelism` (32-bit build).
pub fn feasible_targets(board: &Board, parallelism: usize) -> Vec<OffloadTarget> {
    feasible_targets_at(board, parallelism, 4)
}

/// All placements that fit the board at `parallelism` and the given PL
/// word width.
pub fn feasible_targets_at(
    board: &Board,
    parallelism: usize,
    bytes_per_value: usize,
) -> Vec<OffloadTarget> {
    OffloadTarget::ALL
        .into_iter()
        .filter(|t| t.fits_at(board, parallelism, bytes_per_value))
        .collect()
}

/// Pick the placement minimizing modelled end-to-end latency for `spec`
/// under the paper's ODE-blocks-only policy (32-bit datapath).
pub fn plan_offload(
    spec: &NetSpec,
    board: &Board,
    parallelism: usize,
    ps: &PsModel,
    pl: &PlModel,
) -> OffloadTarget {
    plan_with(
        spec,
        board,
        parallelism,
        ps,
        pl,
        false,
        &uniform_for_bytes(4),
    )
}

/// Like [`plan_offload`] but also considers once-executed plain blocks
/// (can beat the paper's placement slightly; see
/// [`OffloadTarget::applicable_extended`]).
pub fn plan_offload_extended(
    spec: &NetSpec,
    board: &Board,
    parallelism: usize,
    ps: &PsModel,
    pl: &PlModel,
) -> OffloadTarget {
    plan_with(
        spec,
        board,
        parallelism,
        ps,
        pl,
        true,
        &uniform_for_bytes(4),
    )
}

/// Width-aware [`plan_offload`]: feasibility and DMA timing both see
/// the PL word width, so a 16-bit plan can legally pick the
/// layer3_2-sharing placements that a 32-bit plan must reject.
pub fn plan_offload_at(
    spec: &NetSpec,
    board: &Board,
    parallelism: usize,
    ps: &PsModel,
    pl: &PlModel,
    bytes_per_value: usize,
) -> OffloadTarget {
    plan_with(
        spec,
        board,
        parallelism,
        ps,
        pl,
        false,
        &uniform_for_bytes(bytes_per_value),
    )
}

/// Width-aware [`plan_offload_extended`].
pub fn plan_offload_extended_at(
    spec: &NetSpec,
    board: &Board,
    parallelism: usize,
    ps: &PsModel,
    pl: &PlModel,
    bytes_per_value: usize,
) -> OffloadTarget {
    plan_with(
        spec,
        board,
        parallelism,
        ps,
        pl,
        true,
        &uniform_for_bytes(bytes_per_value),
    )
}

/// Per-stage-width [`plan_offload`]: feasibility and the DMA share of
/// the cost model price every candidate stage at its **own** resolved
/// format, so the latency-optimal placement can mix widths (the
/// precision-policy planning entry point).
///
/// # Panics
///
/// On a degenerate format in `formats` — [`StageFormats::validate`]
/// first (the `plan_deployment`/`plan_cluster` entry points do).
pub fn plan_offload_with(
    spec: &NetSpec,
    board: &Board,
    parallelism: usize,
    ps: &PsModel,
    pl: &PlModel,
    formats: &StageFormats,
) -> OffloadTarget {
    plan_with(spec, board, parallelism, ps, pl, false, formats)
}

/// Per-stage-width [`plan_offload_extended`].
pub fn plan_offload_extended_with(
    spec: &NetSpec,
    board: &Board,
    parallelism: usize,
    ps: &PsModel,
    pl: &PlModel,
    formats: &StageFormats,
) -> OffloadTarget {
    plan_with(spec, board, parallelism, ps, pl, true, formats)
}

/// A synthetic uniform format table carrying the right storage width
/// for the byte-level compatibility entry points (only `bytes` reaches
/// the resource/DMA models, so the binary point is arbitrary).
pub(crate) fn uniform_for_bytes(bytes_per_value: usize) -> StageFormats {
    use crate::plan::PlFormat;
    let format = match bytes_per_value {
        4 => PlFormat::Q20,
        2 => PlFormat::Q16 { frac: 8 },
        b => PlFormat::Custom(qfixed::QFormat::new(8 * b as u32, 4 * b as u32)),
    };
    StageFormats::uniform(format)
}

/// The shared Auto-selection engine: a single board is planned as the
/// 1-board degenerate case of the cluster cost model, so this and
/// [`crate::cluster::plan_cluster`]'s `Auto` loop literally run the
/// same code path ([`crate::partition::select_with`]) — one cost
/// function decides placements everywhere. Every in-tree caller
/// derives `parallelism` and `pl` from the same [`PlModel`]; should
/// they ever disagree, `parallelism` wins for both feasibility and
/// timing (coherent, unlike the pre-refactor split of feasibility at
/// `parallelism` but timing at `pl.parallelism`).
#[allow(clippy::too_many_arguments)]
fn plan_with(
    spec: &NetSpec,
    board: &Board,
    parallelism: usize,
    ps: &PsModel,
    pl: &PlModel,
    extended: bool,
    formats: &StageFormats,
) -> OffloadTarget {
    let model = if pl.parallelism == parallelism {
        *pl
    } else {
        PlModel { parallelism }
    };
    crate::partition::select_single_board(spec, board, ps, &model, extended, formats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::PYNQ_Z2;

    #[test]
    fn section32_four_cases_feasible() {
        let feasible = feasible_targets(&PYNQ_Z2, 16);
        for t in [
            OffloadTarget::Layer1,
            OffloadTarget::Layer22,
            OffloadTarget::Layer1And22,
            OffloadTarget::Layer32,
        ] {
            assert!(feasible.contains(&t), "{t:?} must fit per §3.2");
        }
    }

    #[test]
    fn layer32_plus_anything_infeasible() {
        // At the paper's 32-bit width, layer3_2 + another layer can
        // never fit (BRAM is at 100 %) — the layer3_2-sharing enum
        // cases exist solely for reduced widths; verify the arithmetic.
        use crate::resources::ode_block_resources;
        let a = ode_block_resources(LayerName::Layer3_2, 16);
        let b = ode_block_resources(LayerName::Layer1, 1);
        assert!(a.bram18 + b.bram18 > 2 * PYNQ_Z2.bram36);
    }

    #[test]
    fn paper_defaults() {
        assert_eq!(
            OffloadTarget::paper_default(Variant::ResNet),
            OffloadTarget::None
        );
        assert_eq!(
            OffloadTarget::paper_default(Variant::ROdeNet3),
            OffloadTarget::Layer32
        );
        assert_eq!(
            OffloadTarget::paper_default(Variant::ROdeNet12),
            OffloadTarget::Layer1And22
        );
    }

    #[test]
    fn planner_picks_paper_choice_for_each_variant() {
        let ps = PsModel::Calibrated;
        let pl = PlModel::default();
        for v in [
            Variant::ROdeNet1,
            Variant::ROdeNet2,
            Variant::ROdeNet12,
            Variant::ROdeNet3,
            Variant::Hybrid3,
        ] {
            let spec = NetSpec::new(v, 56);
            let choice = plan_offload(&spec, &PYNQ_Z2, 16, &ps, &pl);
            assert_eq!(choice, OffloadTarget::paper_default(v), "{v}");
        }
    }

    #[test]
    fn planner_beats_paper_for_full_odenet() {
        // The paper offloads layer3_2 from ODENet ("ODENet-3") to compare
        // against rODENet-3 — but it is not the latency-optimal choice:
        // layer1 + layer2_2 are also single-instance ODE blocks, run
        // 9 + 8 times at N = 56, and fit the fabric together.
        let ps = PsModel::Calibrated;
        let pl = PlModel::default();
        let spec = NetSpec::new(Variant::OdeNet, 56);
        let choice = plan_offload(&spec, &PYNQ_Z2, 16, &ps, &pl);
        assert_eq!(choice, OffloadTarget::Layer1And22);
        let t_paper = crate::timing::table5_row(
            spec.variant,
            spec.n,
            &OffloadTarget::paper_default(Variant::OdeNet),
            &ps,
            &pl,
            &PYNQ_Z2,
        )
        .total_w_pl;
        let t_planned =
            crate::timing::table5_row(spec.variant, spec.n, &choice, &ps, &pl, &PYNQ_Z2).total_w_pl;
        assert!(t_planned < t_paper, "{t_planned} < {t_paper}");
    }

    #[test]
    fn planner_falls_back_to_software_for_resnet() {
        let spec = NetSpec::new(Variant::ResNet, 20);
        let choice = plan_offload(
            &spec,
            &PYNQ_Z2,
            16,
            &PsModel::Calibrated,
            &PlModel::default(),
        );
        assert_eq!(
            choice,
            OffloadTarget::None,
            "stacked layers cannot be offloaded"
        );
    }

    #[test]
    fn applicability_respects_removed_layers() {
        let spec = NetSpec::new(Variant::ROdeNet3, 20);
        assert!(
            !OffloadTarget::Layer22.applicable(&spec),
            "layer2_2 was removed"
        );
        assert!(OffloadTarget::Layer32.applicable(&spec));
        // layer1 exists but is a once-executed plain block: outside the
        // paper policy, allowed in the extended policy.
        assert!(!OffloadTarget::Layer1.applicable(&spec));
        assert!(OffloadTarget::Layer1.applicable_extended(&spec));
    }

    #[test]
    fn extended_planner_beats_paper_for_rodenet2() {
        // rODENet-2 keeps a once-executed plain layer1; offloading it too
        // (layer1 + layer2_2 fit together) shaves a few more ms.
        let ps = PsModel::Calibrated;
        let pl = PlModel::default();
        let spec = NetSpec::new(Variant::ROdeNet2, 56);
        let paper = plan_offload(&spec, &PYNQ_Z2, 16, &ps, &pl);
        assert_eq!(paper, OffloadTarget::Layer22);
        let extended = plan_offload_extended(&spec, &PYNQ_Z2, 16, &ps, &pl);
        assert_eq!(extended, OffloadTarget::Layer1And22);
        let t_paper =
            crate::timing::table5_row(spec.variant, spec.n, &paper, &ps, &pl, &PYNQ_Z2).total_w_pl;
        let t_ext = crate::timing::table5_row(spec.variant, spec.n, &extended, &ps, &pl, &PYNQ_Z2)
            .total_w_pl;
        assert!(t_ext < t_paper, "{t_ext} < {t_paper}");
    }

    #[test]
    fn layer32_combos_need_reduced_width() {
        // The three layer3_2-sharing placements are exactly the ones a
        // 32-bit build must reject (Table 3: layer3_2 = 100 % BRAM) and
        // a 16-bit build admits (footnote 2).
        for t in [
            OffloadTarget::Layer1And32,
            OffloadTarget::Layer22And32,
            OffloadTarget::AllOde,
        ] {
            assert!(!t.fits(&PYNQ_Z2, 16), "{t:?} cannot fit at 32-bit");
            assert!(t.fits_at(&PYNQ_Z2, 16, 2), "{t:?} fits at 16-bit");
        }
        // And the 32-bit check is unchanged by the width-aware rewrite.
        for t in OffloadTarget::ALL {
            assert_eq!(t.fits(&PYNQ_Z2, 16), t.fits_at(&PYNQ_Z2, 16, 4), "{t:?}");
        }
    }

    #[test]
    fn sixteen_bit_planner_offloads_more_layers() {
        // ODENet has all three shape-preserving layers as single-instance
        // ODE blocks; at 16-bit the latency-optimal placement puts all of
        // them on the PL — unreachable at 32-bit.
        let ps = PsModel::Calibrated;
        let pl = PlModel::default();
        let spec = NetSpec::new(Variant::OdeNet, 56);
        let choice32 = plan_offload_at(&spec, &PYNQ_Z2, 16, &ps, &pl, 4);
        let choice16 = plan_offload_at(&spec, &PYNQ_Z2, 16, &ps, &pl, 2);
        assert_eq!(choice32, OffloadTarget::Layer1And22);
        assert_eq!(choice16, OffloadTarget::AllOde);
    }

    #[test]
    fn from_layers_inverts_layers() {
        for t in OffloadTarget::ALL {
            assert_eq!(OffloadTarget::from_layers(t.layers()), Some(t), "{t:?}");
        }
        assert_eq!(
            OffloadTarget::from_layers(&[LayerName::Layer3_2, LayerName::Layer1]),
            Some(OffloadTarget::Layer1And32),
            "order-insensitive"
        );
        assert_eq!(OffloadTarget::from_layers(&[LayerName::Layer2_1]), None);
    }

    #[test]
    fn unified_cost_path_preserves_single_board_auto_selections() {
        // The Auto loop now runs through the cluster cost model (one
        // board == 1-board cluster). Pin that every selection matches
        // the direct Table-5 argmin the planner used before the
        // unification, across variants × depths × widths × policies.
        let ps = PsModel::Calibrated;
        let pl = PlModel::default();
        for v in Variant::ALL {
            for n in rodenet::PAPER_DEPTHS {
                let spec = NetSpec::new(v, n);
                for bytes in [2usize, 4] {
                    for extended in [false, true] {
                        let mut best = OffloadTarget::None;
                        let mut best_time = f64::INFINITY;
                        for target in OffloadTarget::ALL {
                            let ok = if extended {
                                target.applicable_extended(&spec)
                            } else {
                                target.applicable(&spec)
                            };
                            if !ok || !target.fits_at(&PYNQ_Z2, 16, bytes) {
                                continue;
                            }
                            let row = crate::timing::table5_row_at(
                                v, n, &target, &ps, &pl, &PYNQ_Z2, bytes,
                            );
                            if row.total_w_pl < best_time {
                                best_time = row.total_w_pl;
                                best = target;
                            }
                        }
                        let unified = if extended {
                            plan_offload_extended_at(&spec, &PYNQ_Z2, 16, &ps, &pl, bytes)
                        } else {
                            plan_offload_at(&spec, &PYNQ_Z2, 16, &ps, &pl, bytes)
                        };
                        assert_eq!(unified, best, "{v}-{n} at {bytes} bytes (ext {extended})");
                    }
                }
            }
        }
    }

    #[test]
    fn tiny_board_rejects_everything() {
        let mut small = PYNQ_Z2;
        small.bram36 = 10;
        let feasible = feasible_targets(&small, 16);
        assert_eq!(feasible, vec![OffloadTarget::None]);
    }
}
