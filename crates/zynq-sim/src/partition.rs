//! Cost-driven placement partitioning — one search for boards and
//! heterogeneous clusters.
//!
//! Before this layer existed, *where each layer lands* was decided in
//! two disconnected places: [`crate::planner`]'s Auto loop picked the
//! fastest feasible single-board placement from Table-5 rows, and
//! [`crate::cluster::plan_cluster`] duplicated the same argmin over
//! first-fit shard assignments. First-fit is blind to timing: on a
//! heterogeneous rack (say an XC7Z020 head next to an
//! [`crate::board::ARTY_Z7_10`]'s half-size XC7Z010 fabric) it happily
//! crams every stage onto the first board that admits it and leaves the
//! rest of the rack idle — the pipelined ceiling is then one board's
//! busy time instead of the rack's.
//!
//! This module owns both decisions behind one cost model:
//!
//! * [`Partitioner`] — the shard-assignment strategy. `FirstFit` keeps
//!   the greedy network-order behavior (the compatibility default);
//!   `BalancedMakespan` enumerates **every** assignment of offloaded
//!   layers to boards over the same width-aware
//!   [`OffloadTarget::fits_at`] feasibility and
//!   [`crate::cluster::StageTiming`] pipeline model, and keeps the one
//!   minimizing the configured schedule's makespan of a
//!   [`REFERENCE_BATCH`]-image batch (per-image latency breaks ties) —
//!   under [`crate::cluster::Schedule::Pipelined`] that balances
//!   per-board busy time so the bottleneck stage of the board pipeline
//!   is as small as the rack allows; under
//!   [`crate::cluster::Schedule::Sequential`] it minimizes per-image
//!   latency (splitting buys nothing there, so the search avoids
//!   needless interconnect hand-offs).
//! * [`select_with`](crate::partition) (crate-internal) — the unified
//!   Auto-selection loop: iterate all applicable placements, partition
//!   each under the configured strategy, keep the best under the same
//!   objective the partitioner used.
//!   [`crate::planner::plan_offload_at`] calls it with a 1-board
//!   cluster; [`crate::cluster::plan_cluster`] with the real one — a
//!   single board is literally the degenerate case of the same search.
//!
//! The search space is assignments of layers to boards. With the
//! replica layer ([`crate::replica`]) an assignment may map one layer
//! to **several** boards: [`replicated_assignment`](self) runs the
//! same exhaustive enumeration jointly with the choice of replica
//! boards (pruned by the same busy bound, with the replicated stage's
//! busy divided by its replica count), because the best unreplicated
//! base is often *not* the best host for replicas — at Q20 a
//! replicated layer must co-reside with whatever the 140-BRAM
//! layer3_2 board cannot take. The cost model inherits the cluster
//! scheduler's assumptions: the head PS runs every software stage,
//! transfers occupy no compute resource. Like sharding itself,
//! partitioning changes *where* and *when* stages run — never the
//! Q-format numerics — so logits are bit-identical across partitioners
//! for the same resolved placement.

use crate::board::Board;
use crate::cluster::{
    build_timeline, per_image_seconds, pipelined_schedule, shard_placement_with, Cluster,
    ClusterRequest, Interconnect, Schedule, ShardAssignment, StageResource, StageTiming,
};
use crate::engine::{EngineError, Offload};
use crate::planner::OffloadTarget;
use crate::precision::StageFormats;
use crate::timing::{PlModel, PsModel};
use rodenet::{BnMode, LayerName, NetSpec};

/// The batch size [`Partitioner::BalancedMakespan`] optimizes: large
/// enough that the pipelined makespan is dominated by the bottleneck
/// board's busy time (`makespan ≈ latency + (B−1)·bottleneck`), small
/// enough that evaluating a candidate assignment stays trivial.
pub const REFERENCE_BATCH: usize = 32;

/// How placements are split across a cluster's boards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Partitioner {
    /// Greedy first-fit in network order (the behavior before the
    /// partitioner layer, kept as the compatibility default): each
    /// layer joins the current board's shard until it no longer fits,
    /// then the next board opens. Order-constrained — it can strand a
    /// heavy stage on a small fabric, or cram everything onto the head
    /// board and leave the rest of the rack idle.
    #[default]
    FirstFit,
    /// Exhaustive search over all layer→board assignments (boards ^
    /// layers candidates, at most 3 offloadable layers), each checked
    /// with the width-aware [`OffloadTarget::fits_at`], scored by the
    /// makespan of a [`REFERENCE_BATCH`]-image batch under the
    /// request's configured [`Schedule`] — the event-driven pipeline
    /// simulation for [`Schedule::Pipelined`], `B ×` per-image latency
    /// for [`Schedule::Sequential`], where balancing busy time buys
    /// nothing and the search instead avoids needless interconnect
    /// hand-offs (ties: per-image latency, then enumeration order —
    /// head-heavy first — for determinism). Never worse than
    /// [`Partitioner::FirstFit`] at the reference batch under either
    /// schedule: the first-fit assignment is in the search space.
    BalancedMakespan,
}

/// Busy seconds per execution resource (each board's PS and PL) over
/// one image's stage pipeline — the per-board breakdown
/// [`Partitioner::BalancedMakespan`] balances. Resources carrying no
/// work are omitted; interconnect hand-offs occupy no resource and are
/// excluded (they delay readiness, not busyness). A stage served by
/// `k` round-robin replicas charges each replica `seconds / k` — the
/// steady-state share, since each replica serves every k-th image.
pub fn resource_busy(timeline: &[StageTiming]) -> Vec<(StageResource, f64)> {
    let mut busy: Vec<(StageResource, f64)> = Vec::new();
    for s in timeline {
        let share = s.seconds / s.replica_count() as f64;
        for &res in s.resources() {
            match busy.iter_mut().find(|(r, _)| *r == res) {
                Some((_, b)) => *b += share,
                None => busy.push((res, share)),
            }
        }
    }
    busy.sort_by_key(|(r, _)| r.slot());
    busy
}

/// The largest modelled stage seconds any resource on `board` serves
/// under `timeline` (0 when the board carries no stage). This is the
/// expected-progress yardstick [`crate::fault::HealthMonitor`] scales
/// its timeout by: a board is declared failed once a stage has been
/// outstanding longer than `timeout ×` this bound.
pub fn board_stage_seconds(timeline: &[StageTiming], board: usize) -> f64 {
    timeline
        .iter()
        .filter(|s| s.resources().iter().any(|r| r.board() == board))
        .map(|s| s.seconds)
        .fold(0.0, f64::max)
}

/// Split `target`'s layers across the request's cluster under the
/// request's [`Partitioner`]. The public entry point for callers that
/// already resolved a placement; [`crate::cluster::plan_cluster`] goes
/// through here for [`Offload::Target`](crate::engine::Offload).
pub fn partition_placement(
    spec: &NetSpec,
    target: OffloadTarget,
    req: &ClusterRequest,
) -> Result<ShardAssignment, EngineError> {
    req.precision.validate()?;
    partition_with(spec, target, req)
}

/// [`partition_placement`] with the precision table already validated.
pub(crate) fn partition_with(
    spec: &NetSpec,
    target: OffloadTarget,
    req: &ClusterRequest,
) -> Result<ShardAssignment, EngineError> {
    match req.partitioner {
        Partitioner::FirstFit => {
            shard_placement_with(target, &req.cluster, req.pl.parallelism, &req.precision)
        }
        Partitioner::BalancedMakespan => balanced_assignment(spec, target, req),
    }
}

/// Makespan of a [`REFERENCE_BATCH`]-image batch over `timeline` under
/// the schedule the deployment will actually run — the cost the
/// balanced search minimizes. For [`Schedule::Sequential`] this is
/// `B ×` per-image latency (balancing busy time buys nothing; avoiding
/// interconnect hand-offs does), for [`Schedule::Pipelined`] the
/// event-driven simulation.
pub(crate) fn reference_makespan(timeline: &[StageTiming], schedule: Schedule) -> f64 {
    match schedule {
        Schedule::Sequential => REFERENCE_BATCH as f64 * per_image_seconds(timeline),
        Schedule::Pipelined => pipelined_schedule(timeline, REFERENCE_BATCH).makespan,
    }
}

/// The unified Auto-selection loop (see the module docs): one cost
/// function for single boards and clusters. Iterates every applicable
/// placement, partitions it under the request's strategy, and keeps
/// the best — by per-image latency under [`Partitioner::FirstFit`]
/// (the pre-partitioner behavior, pinned), by the configured
/// schedule's reference-batch makespan (latency tie-break) under
/// [`Partitioner::BalancedMakespan`], so the target-level choice and
/// the assignment-level search optimize the same objective.
/// [`OffloadTarget::None`] always partitions, so a selection exists.
pub(crate) fn select_with(
    spec: &NetSpec,
    req: &ClusterRequest,
    extended: bool,
) -> (OffloadTarget, ShardAssignment) {
    let mut best: Option<((f64, f64), OffloadTarget, ShardAssignment)> = None;
    for t in OffloadTarget::ALL {
        let ok = if extended {
            t.applicable_extended(spec)
        } else {
            t.applicable(spec)
        };
        if !ok {
            continue;
        }
        let Ok(shards) = partition_with(spec, t, req) else {
            continue;
        };
        let timeline = build_timeline(spec, &shards, req);
        let latency = per_image_seconds(&timeline);
        let key = match req.partitioner {
            Partitioner::FirstFit => (latency, latency),
            Partitioner::BalancedMakespan => (reference_makespan(&timeline, req.schedule), latency),
        };
        if best
            .as_ref()
            .is_none_or(|(b, _, _)| key.0 < b.0 || (key.0 == b.0 && key.1 < b.1))
        {
            best = Some((key, t, shards));
        }
    }
    let (_, t, shards) = best.expect("OffloadTarget::None always partitions");
    (t, shards)
}

/// [`select_with`] over a 1-board cluster — the planner's Auto loop.
/// The interconnect is irrelevant (nothing crosses it on one board);
/// the per-stage word widths travel in `formats`.
pub(crate) fn select_single_board(
    spec: &NetSpec,
    board: &Board,
    ps: &PsModel,
    pl: &PlModel,
    extended: bool,
    formats: &StageFormats,
) -> OffloadTarget {
    let req = ClusterRequest {
        cluster: Cluster::homogeneous(board, 1, Interconnect::GIGABIT_ETHERNET),
        offload: if extended {
            Offload::AutoExtended
        } else {
            Offload::Auto
        },
        bn: BnMode::OnTheFly,
        ps: *ps,
        pl: *pl,
        precision: *formats,
        schedule: Schedule::Sequential,
        partitioner: Partitioner::FirstFit,
        replication: crate::replica::Replication::None,
    };
    select_with(spec, &req, extended).0
}

/// Exhaustive balanced search (see [`Partitioner::BalancedMakespan`]).
fn balanced_assignment(
    spec: &NetSpec,
    target: OffloadTarget,
    req: &ClusterRequest,
) -> Result<ShardAssignment, EngineError> {
    let layers = target.layers();
    if layers.is_empty() {
        return Ok(ShardAssignment::new());
    }
    let boards = req.cluster.boards();
    let n = boards.len();
    let mut best: Option<(f64, f64, ShardAssignment)> = None;
    // Candidate `code` encodes the board of layers[i] in base-n digit i
    // (least significant first), so code 0 — everything on the head —
    // is enumerated first and strict improvement keeps determinism.
    for code in 0..n.pow(layers.len() as u32) {
        let mut groups: Vec<Vec<LayerName>> = vec![Vec::new(); n];
        let mut c = code;
        for &layer in layers {
            groups[c % n].push(layer);
            c /= n;
        }
        let mut assignment = ShardAssignment::new();
        let mut feasible = true;
        for (b, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let t =
                OffloadTarget::from_layers(group).expect("subsets of a placement are placements");
            if !t.fits_with(&boards[b], req.pl.parallelism, &req.precision) {
                feasible = false;
                break;
            }
            assignment.push((b, t));
        }
        if !feasible {
            continue;
        }
        // Cheap lower bound before paying for the schedule simulation:
        // under either schedule, the busiest board alone needs
        // ≥ B × its per-image PL busy.
        let bound = REFERENCE_BATCH as f64
            * assignment
                .iter()
                .map(|(b, t)| {
                    req.pl
                        .placement_seconds_with(spec, t, &boards[*b], &req.precision)
                })
                .fold(0.0f64, f64::max);
        if best.as_ref().is_some_and(|(m, _, _)| bound > *m) {
            continue;
        }
        let timeline = build_timeline(spec, &assignment, req);
        let makespan = reference_makespan(&timeline, req.schedule);
        let latency = per_image_seconds(&timeline);
        if best
            .as_ref()
            .is_none_or(|(m, l, _)| makespan < *m || (makespan == *m && latency < *l))
        {
            best = Some((makespan, latency, assignment));
        }
    }
    best.map(|(_, _, a)| a).ok_or_else(|| {
        // Diagnose holistically: the first layer no board fits alone is
        // the definitive blocker; when every layer fits somewhere but
        // no joint assignment exists, there is no single culprit.
        let stuck = layers.iter().copied().find(|&layer| {
            let alone = OffloadTarget::from_layers(&[layer]).expect("offloadable");
            !boards
                .iter()
                .any(|b| alone.fits_with(b, req.pl.parallelism, &req.precision))
        });
        shard_infeasible(
            target,
            &req.cluster,
            req.pl.parallelism,
            &req.precision,
            stuck,
        )
    })
}

/// Exhaustive search over assignments that place `layer` on exactly
/// `replicas` boards (round-robin served) and every other layer of
/// `target` on exactly one — the replication-aware sibling of
/// [`Partitioner::BalancedMakespan`]'s search, run **jointly** because
/// the best unreplicated base often blocks the replicas (at Q20,
/// whichever board holds the 140-BRAM layer3_2 has no fabric left, so
/// the replicated layer must pack with the remaining stages).
/// Candidates are pruned by the same busy bound with the replicated
/// stage's per-board busy divided by `replicas`, scored by the
/// reference-batch makespan under the request's schedule (per-image
/// latency breaks ties, then enumeration order for determinism).
/// Replica boards must agree **exactly** on the stage's modelled
/// seconds — round-robin assumes interchangeable replicas — so boards
/// that would serve the stage at a different speed are skipped. Under
/// [`Partitioner::FirstFit`] the base assignment is first-fit and
/// replicas go greedily onto the first boards (index order) with
/// matching timing and spare fabric.
pub(crate) fn replicated_assignment(
    spec: &NetSpec,
    target: OffloadTarget,
    req: &ClusterRequest,
    layer: LayerName,
    replicas: usize,
) -> Result<ShardAssignment, EngineError> {
    let boards = req.cluster.boards();
    let n = boards.len();
    let infeasible = |reason: String| EngineError::ReplicationInfeasible { reason };
    if replicas < 2 {
        return Err(infeasible(format!(
            "stage replication needs at least 2 replicas, got {replicas}"
        )));
    }
    if replicas > n {
        return Err(infeasible(format!(
            "{replicas} replicas of {layer} exceed the cluster's {n} board(s)"
        )));
    }
    if n > 20 {
        return Err(infeasible(format!(
            "the exhaustive replica search handles up to 20 boards, got {n} \
             (see the ROADMAP's scalable-search item)"
        )));
    }
    let plan = spec.plan(layer);
    let execs = if plan.is_ode { plan.execs } else { 1 };
    let bytes = req.precision.bytes_of(layer);
    let stage_seconds =
        |b: usize| -> f64 { req.pl.stage_seconds_at(layer, execs, &boards[b], bytes) };

    if req.partitioner == Partitioner::FirstFit {
        let base = shard_placement_with(target, &req.cluster, req.pl.parallelism, &req.precision)?;
        let mut groups: Vec<Vec<LayerName>> = vec![Vec::new(); n];
        for (b, t) in &base {
            groups[*b].extend_from_slice(t.layers());
        }
        let primary = groups
            .iter()
            .position(|g| g.contains(&layer))
            .expect("the base assignment carries every target layer");
        let mut carriers = 1usize;
        for b in 0..n {
            if carriers == replicas {
                break;
            }
            if b == primary || stage_seconds(b) != stage_seconds(primary) {
                continue;
            }
            let mut candidate = groups[b].clone();
            candidate.push(layer);
            let t = OffloadTarget::from_layers(&candidate)
                .expect("subsets of a placement are placements");
            if t.fits_with(&boards[b], req.pl.parallelism, &req.precision) {
                groups[b] = candidate;
                carriers += 1;
            }
        }
        if carriers < replicas {
            return Err(infeasible(format!(
                "first-fit found only {carriers} of {replicas} boards with spare fabric \
                 and matching timing for {layer} (try Partitioner::BalancedMakespan, \
                 fewer replicas, or more boards)"
            )));
        }
        return Ok(assignment_from_groups(&groups));
    }

    // BalancedMakespan: enumerate replica-board subsets (bitmask over
    // boards, ascending, so determinism matches the unreplicated
    // search) jointly with the base-n assignment of the other layers.
    let others: Vec<LayerName> = target
        .layers()
        .iter()
        .copied()
        .filter(|&l| l != layer)
        .collect();
    let mut best: Option<(f64, f64, ShardAssignment)> = None;
    for mask in 0u64..(1u64 << n) {
        if mask.count_ones() as usize != replicas {
            continue;
        }
        let hosts: Vec<usize> = (0..n).filter(|b| mask & (1 << b) != 0).collect();
        if hosts
            .iter()
            .any(|&b| stage_seconds(b) != stage_seconds(hosts[0]))
        {
            continue;
        }
        for code in 0..n.pow(others.len() as u32) {
            let mut groups: Vec<Vec<LayerName>> = vec![Vec::new(); n];
            let mut c = code;
            for &other in &others {
                groups[c % n].push(other);
                c /= n;
            }
            for &b in &hosts {
                groups[b].push(layer);
            }
            let mut feasible = true;
            for (b, group) in groups.iter().enumerate() {
                if group.is_empty() {
                    continue;
                }
                let t = OffloadTarget::from_layers(group)
                    .expect("subsets of a placement are placements");
                if !t.fits_with(&boards[b], req.pl.parallelism, &req.precision) {
                    feasible = false;
                    break;
                }
            }
            if !feasible {
                continue;
            }
            let assignment = assignment_from_groups(&groups);
            // The busy bound with replica sharing: the replicated stage
            // charges each host 1/replicas of its seconds.
            let bound = REFERENCE_BATCH as f64
                * groups
                    .iter()
                    .enumerate()
                    .map(|(b, group)| {
                        group
                            .iter()
                            .map(|&l| {
                                let p = spec.plan(l);
                                let e = if p.is_ode { p.execs } else { 1 };
                                let s = req.pl.stage_seconds_at(
                                    l,
                                    e,
                                    &boards[b],
                                    req.precision.bytes_of(l),
                                );
                                if l == layer {
                                    s / replicas as f64
                                } else {
                                    s
                                }
                            })
                            .sum::<f64>()
                    })
                    .fold(0.0f64, f64::max);
            if best.as_ref().is_some_and(|(m, _, _)| bound > *m) {
                continue;
            }
            let timeline = build_timeline(spec, &assignment, req);
            let makespan = reference_makespan(&timeline, req.schedule);
            let latency = per_image_seconds(&timeline);
            if best
                .as_ref()
                .is_none_or(|(m, l, _)| makespan < *m || (makespan == *m && latency < *l))
            {
                best = Some((makespan, latency, assignment));
            }
        }
    }
    best.map(|(_, _, a)| a).ok_or_else(|| {
        infeasible(format!(
            "no assignment places {layer} on {replicas} of {n} board(s) with matching \
             timing while the rest of {target:?} still fits (try fewer replicas, a \
             narrower word format, or more boards)"
        ))
    })
}

/// Collapse per-board layer groups into a [`ShardAssignment`] (boards
/// ascending; empty boards omitted).
fn assignment_from_groups(groups: &[Vec<LayerName>]) -> ShardAssignment {
    groups
        .iter()
        .enumerate()
        .filter(|(_, g)| !g.is_empty())
        .map(|(b, g)| {
            (
                b,
                OffloadTarget::from_layers(g).expect("subsets of a placement are placements"),
            )
        })
        .collect()
}

/// First-fit feasibility of `target` over `boards` — the probe behind
/// the [`EngineError::ShardInfeasible`] hint. A plain boolean re-run of
/// [`shard_placement_with`]'s loop that constructs no error (so probing
/// an extended cluster cannot recurse back into the diagnosis).
fn first_fit_feasible(
    target: OffloadTarget,
    boards: &[Board],
    parallelism: usize,
    formats: &StageFormats,
) -> bool {
    let mut board = 0usize;
    let mut current: Vec<LayerName> = Vec::new();
    for &layer in target.layers() {
        loop {
            let mut candidate = current.clone();
            candidate.push(layer);
            let Some(t) = OffloadTarget::from_layers(&candidate) else {
                return false;
            };
            if t.fits_with(&boards[board], parallelism, formats) {
                current = candidate;
                break;
            }
            current.clear();
            board += 1;
            if board >= boards.len() {
                return false;
            }
        }
    }
    true
}

/// Build the enriched [`EngineError::ShardInfeasible`]: which layer got
/// stuck, its BRAM36 demand at the word width, the capacities that were
/// consulted, and — when adding one more board of the rack's largest
/// class would make the placement shard — an actionable follow-up
/// naming [`crate::replica::Replication::Stage`], so the report says
/// what to do next instead of just naming the target.
pub(crate) fn shard_infeasible(
    target: OffloadTarget,
    cluster: &Cluster,
    parallelism: usize,
    formats: &StageFormats,
    stuck: Option<LayerName>,
) -> EngineError {
    let hint = {
        let mut extended = cluster.boards().to_vec();
        let biggest = extended
            .iter()
            .copied()
            .max_by_key(|b| b.bram36)
            .expect("a cluster has at least one board");
        extended.push(biggest);
        if first_fit_feasible(target, &extended, parallelism, formats) {
            let bottleneck = stuck.or_else(|| target.layers().last().copied());
            Some(match bottleneck {
                Some(l) => format!(
                    "the placement shards on {} boards ({} added); with spare fabric, \
                     Replication::Stage({l}, 2) then replicates the bottleneck stage \
                     for throughput",
                    extended.len(),
                    biggest.name,
                ),
                None => format!(
                    "the placement shards on {} boards ({} added)",
                    extended.len(),
                    biggest.name,
                ),
            })
        } else {
            None
        }
    };
    EngineError::ShardInfeasible {
        target,
        boards: cluster.len(),
        parallelism,
        stuck,
        stuck_bram36: stuck.map_or(0.0, |l| {
            crate::resources::bram36_at_width(l, parallelism, formats.bytes_of(l))
        }),
        board_bram36: cluster.boards().iter().map(|b| b.bram36).collect(),
        hint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::{ARTY_Z7_10, ARTY_Z7_20, PYNQ_Z2};
    use crate::cluster::bottleneck_seconds;
    use crate::plan::PlFormat;
    use rodenet::Variant;

    fn request(boards: Vec<Board>, partitioner: Partitioner, format: PlFormat) -> ClusterRequest {
        ClusterRequest {
            cluster: Cluster::new(boards, Interconnect::GIGABIT_ETHERNET),
            offload: Offload::Auto,
            bn: BnMode::OnTheFly,
            ps: PsModel::Calibrated,
            pl: PlModel::default(),
            precision: format.into(),
            partitioner,
            schedule: Schedule::Pipelined,
            replication: crate::replica::Replication::None,
        }
    }

    #[test]
    fn first_fit_strategy_is_shard_placement() {
        let spec = NetSpec::new(Variant::OdeNet, 20);
        for boards in [1usize, 2, 3] {
            let req = request(
                vec![ARTY_Z7_20; boards],
                Partitioner::FirstFit,
                PlFormat::Q20,
            );
            for t in OffloadTarget::ALL {
                let via_strategy = partition_placement(&spec, t, &req);
                let direct = crate::cluster::shard_placement(t, &req.cluster, 16, 4);
                assert_eq!(via_strategy.is_ok(), direct.is_ok(), "{t:?} over {boards}");
                if let (Ok(a), Ok(b)) = (via_strategy, direct) {
                    assert_eq!(a, b, "{t:?} over {boards}");
                }
            }
        }
    }

    #[test]
    fn one_board_strategies_agree() {
        // On a single board there is exactly one assignment per
        // placement, so the strategies cannot diverge.
        let spec = NetSpec::new(Variant::OdeNet, 56);
        for format in [PlFormat::Q20, PlFormat::Q16 { frac: 10 }] {
            let ff = request(vec![PYNQ_Z2], Partitioner::FirstFit, format);
            let bal = request(vec![PYNQ_Z2], Partitioner::BalancedMakespan, format);
            for t in OffloadTarget::ALL {
                let a = partition_placement(&spec, t, &ff);
                let b = partition_placement(&spec, t, &bal);
                assert_eq!(a.is_ok(), b.is_ok(), "{t:?} {format}");
                if let (Ok(a), Ok(b)) = (a, b) {
                    assert_eq!(a, b, "{t:?} {format}");
                }
            }
        }
    }

    #[test]
    fn balanced_splits_what_first_fit_crams() {
        // At Q16 one XC7Z020 fits all three ODE circuits, so first-fit
        // leaves the second board idle; the balanced search splits the
        // stages and roughly halves the bottleneck busy time.
        let spec = NetSpec::new(Variant::OdeNet, 56);
        let q16 = PlFormat::Q16 { frac: 10 };
        let ff = partition_placement(
            &spec,
            OffloadTarget::AllOde,
            &request(vec![PYNQ_Z2, ARTY_Z7_20], Partitioner::FirstFit, q16),
        )
        .expect("first-fit shards");
        assert_eq!(ff, vec![(0, OffloadTarget::AllOde)], "crammed on the head");
        let req = request(
            vec![PYNQ_Z2, ARTY_Z7_20],
            Partitioner::BalancedMakespan,
            q16,
        );
        let bal = partition_placement(&spec, OffloadTarget::AllOde, &req).expect("balanced");
        assert_eq!(bal.len(), 2, "both boards carry work: {bal:?}");
        let ff_tl = build_timeline(&spec, &ff, &req);
        let bal_tl = build_timeline(&spec, &bal, &req);
        assert!(
            bottleneck_seconds(&bal_tl) < 0.75 * bottleneck_seconds(&ff_tl),
            "balanced {} vs first-fit {}",
            bottleneck_seconds(&bal_tl),
            bottleneck_seconds(&ff_tl)
        );
    }

    #[test]
    fn balanced_respects_the_sequential_schedule() {
        // Under Schedule::Sequential splitting buys nothing — it only
        // adds interconnect hand-offs to every image. The search must
        // keep the zero-transfer single-board assignment (identical to
        // first-fit), not the busy-balanced split it would pick for
        // the pipelined schedule.
        let spec = NetSpec::new(Variant::OdeNet, 56);
        let q16 = PlFormat::Q16 { frac: 10 };
        let mut req = request(
            vec![PYNQ_Z2, ARTY_Z7_20],
            Partitioner::BalancedMakespan,
            q16,
        );
        req.schedule = Schedule::Sequential;
        let bal = partition_placement(&spec, OffloadTarget::AllOde, &req).expect("fits");
        assert_eq!(
            bal,
            vec![(0, OffloadTarget::AllOde)],
            "sequential: latency-minimal, no hand-offs"
        );
        // The same request pipelined splits across the rack.
        req.schedule = Schedule::Pipelined;
        let piped = partition_placement(&spec, OffloadTarget::AllOde, &req).expect("fits");
        assert_eq!(piped.len(), 2, "pipelined: both boards carry work");
    }

    #[test]
    fn balanced_rescues_order_constrained_first_fit() {
        // First-fit is order-constrained: the head greedily takes
        // layer1 + layer2_2, leaving layer3_2 for a board too small to
        // hold it. The exhaustive search finds the feasible assignment
        // (heavy pair on the head, layer1 on the small board).
        let mut head = PYNQ_Z2;
        head.bram36 = 100; // e.g. a base overlay reserving fabric
        let mut small = ARTY_Z7_10;
        small.bram36 = 45;
        let spec = NetSpec::new(Variant::OdeNet, 56);
        let q16 = PlFormat::Q16 { frac: 10 };
        let err = partition_placement(
            &spec,
            OffloadTarget::AllOde,
            &request(vec![head, small], Partitioner::FirstFit, q16),
        )
        .expect_err("first-fit strands layer3_2");
        assert!(
            matches!(
                err,
                EngineError::ShardInfeasible {
                    stuck: Some(LayerName::Layer3_2),
                    ..
                }
            ),
            "{err:?}"
        );
        let bal = partition_placement(
            &spec,
            OffloadTarget::AllOde,
            &request(vec![head, small], Partitioner::BalancedMakespan, q16),
        )
        .expect("a feasible assignment exists");
        assert_eq!(
            bal,
            vec![(0, OffloadTarget::Layer22And32), (1, OffloadTarget::Layer1)]
        );
    }

    #[test]
    fn busy_breakdown_sums_the_timeline() {
        let spec = NetSpec::new(Variant::OdeNet, 20);
        let req = request(
            vec![ARTY_Z7_20, ARTY_Z7_20],
            Partitioner::FirstFit,
            PlFormat::Q20,
        );
        let shards = partition_placement(&spec, OffloadTarget::AllOde, &req).expect("shards");
        let timeline = build_timeline(&spec, &shards, &req);
        let busy = resource_busy(&timeline);
        // PS + two PL fabrics, in slot order, summing to the execution
        // share of the per-image latency (transfers excluded).
        assert_eq!(busy.len(), 3);
        assert_eq!(busy[0].0, StageResource::Ps);
        assert_eq!(busy[1].0, StageResource::Pl(0));
        assert_eq!(busy[2].0, StageResource::Pl(1));
        let total: f64 = busy.iter().map(|(_, b)| b).sum();
        let transfers: f64 = timeline.iter().map(|s| s.transfer_in).sum();
        assert!((total + transfers - per_image_seconds(&timeline)).abs() < 1e-12);
        let bneck = bottleneck_seconds(&timeline);
        assert!((busy.iter().fold(0.0f64, |m, (_, b)| m.max(*b)) - bneck).abs() < 1e-12);
    }

    #[test]
    fn infeasibility_names_the_blocker_and_capacities() {
        // One Arty at Q20 cannot take layer3_2 next to anything.
        let spec = NetSpec::new(Variant::OdeNet, 20);
        for partitioner in [Partitioner::FirstFit, Partitioner::BalancedMakespan] {
            let err = partition_placement(
                &spec,
                OffloadTarget::AllOde,
                &request(vec![ARTY_Z7_20], partitioner, PlFormat::Q20),
            )
            .expect_err("no single XC7Z020 fits AllOde at Q20");
            // First-fit gives up on layer3_2 (the board is already
            // full); the holistic diagnosis differs: layer3_2 *alone*
            // fits, the combination does not.
            match (partitioner, &err) {
                (
                    Partitioner::FirstFit,
                    EngineError::ShardInfeasible {
                        stuck,
                        stuck_bram36,
                        board_bram36,
                        ..
                    },
                ) => {
                    assert_eq!(*stuck, Some(LayerName::Layer3_2));
                    assert_eq!(*stuck_bram36, 140.0);
                    assert_eq!(*board_bram36, vec![140]);
                }
                (
                    Partitioner::BalancedMakespan,
                    EngineError::ShardInfeasible {
                        stuck,
                        board_bram36,
                        ..
                    },
                ) => {
                    assert_eq!(*stuck, None, "every layer fits some board alone");
                    assert_eq!(*board_bram36, vec![140]);
                }
                _ => panic!("{partitioner:?}: unexpected {err:?}"),
            }
            let msg = format!("{err}");
            assert!(msg.contains("140"), "capacities surface in Display: {msg}");
        }
    }
}
