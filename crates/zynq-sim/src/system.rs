//! The legacy free-function system interface (Figure 3), kept as thin
//! shims over [`crate::engine::Engine`].
//!
//! [`run_hybrid`] and [`run_hybrid_with`] predate the engine: they
//! re-planned and re-quantized the offloaded blocks on **every call**.
//! Both now build a one-shot [`crate::engine::Engine`] and
//! delegate — logits and timing are unchanged (the engine's hybrid
//! backend walks the network in the same order with the same numerics),
//! but new code should hold an `Engine` and reuse it.
//!
//! Migration:
//!
//! ```text
//! // before
//! let run = run_hybrid_with(&net, &x, target, bn, &ps, &pl, &board);
//! // after
//! let engine = Engine::builder(&net)
//!     .board(&board)
//!     .offload(Offload::Target(target))
//!     .ps_model(ps).pl_model(pl).bn_mode(bn)
//!     .build()?;             // validate + quantize once…
//! let run = engine.infer(&x)?;   // …then serve many images
//! ```

use crate::board::Board;
use crate::engine::{BackendKind, Engine, Offload};
use crate::planner::OffloadTarget;
use crate::timing::{PlModel, PsModel};
use rodenet::{BnMode, LayerName, Network};
use tensor::Tensor;

/// Result of one hybrid (PS + PL) inference.
#[derive(Clone, Debug)]
pub struct HybridRun {
    /// Classifier logits (batch × classes).
    pub logits: Tensor<f32>,
    /// Modelled PS seconds (software stages + fixed overhead), per image.
    pub ps_seconds: f64,
    /// Modelled PL seconds (offloaded stages incl. DMA), per image.
    pub pl_seconds: f64,
    /// 32-bit words crossed the AXI bus, per image.
    pub dma_words: u64,
    /// Layers that ran on the PL.
    pub offloaded: Vec<LayerName>,
}

impl HybridRun {
    /// Total modelled latency per image.
    pub fn total_seconds(&self) -> f64 {
        self.ps_seconds + self.pl_seconds
    }
}

/// Execute `net` on `x` with `target` layers on the simulated PL, using
/// on-the-fly batch norm for the PS-side stages (matching the PL's
/// statistics mode end to end).
#[deprecated(
    since = "0.2.0",
    note = "build a `zynq_sim::engine::Engine` once and call `infer` — \
            this shim re-validates and re-quantizes on every call"
)]
pub fn run_hybrid(
    net: &Network,
    x: &Tensor<f32>,
    target: OffloadTarget,
    ps: &PsModel,
    pl: &PlModel,
    board: &Board,
) -> HybridRun {
    #[allow(deprecated)]
    run_hybrid_with(net, x, target, BnMode::OnTheFly, ps, pl, board)
}

/// Execute `net` on `x` with `target` layers on the simulated PL.
///
/// Functional semantics: PS stages use `ps_bn` batch-norm statistics in
/// f32; PL stages always run the bit-exact Q20 datapath with on-the-fly
/// statistics (that is what the circuit computes). Timing: the
/// calibrated PS model plus the cycle-model PL time, both per image
/// (batch inputs are timed as `batch ×` single-image latency — the board
/// processes one image at a time).
///
/// Note the deployment hazard this exposes: a network trained with batch
/// statistics and evaluated with `BnMode::Running` on the PS can lose
/// accuracy when its hot block moves to the PL, because the circuit
/// recomputes statistics per feature map. The gap shrinks as feature
/// maps grow; see EXPERIMENTS.md ("BN statistics at deployment").
///
/// # Panics
/// On configurations the engine rejects ([`crate::engine::EngineError`]):
/// placements naming removed or stacked layers, placements that do not
/// fit the fabric, or non-CIFAR-shaped inputs. (The original
/// free-function asserted on a subset of these; invalid placements now
/// fail loudly instead of silently under-reporting.)
#[deprecated(
    since = "0.2.0",
    note = "build a `zynq_sim::engine::Engine` once and call `infer` — \
            this shim re-validates and re-quantizes on every call"
)]
pub fn run_hybrid_with(
    net: &Network,
    x: &Tensor<f32>,
    target: OffloadTarget,
    ps_bn: BnMode,
    ps: &PsModel,
    pl: &PlModel,
    board: &Board,
) -> HybridRun {
    let engine = Engine::builder(net)
        .board(board)
        .offload(Offload::Target(target))
        .ps_model(*ps)
        .pl_model(*pl)
        .bn_mode(ps_bn)
        .backend(if target == OffloadTarget::None {
            BackendKind::PsSoftware
        } else {
            BackendKind::Hybrid
        })
        .build()
        .unwrap_or_else(|e| panic!("run_hybrid_with: {e}"));
    let run = engine
        .infer(x)
        .unwrap_or_else(|e| panic!("run_hybrid_with: {e}"));
    HybridRun {
        logits: run.logits,
        ps_seconds: run.ps_seconds,
        pl_seconds: run.pl_seconds,
        dma_words: run.dma_words,
        offloaded: run.offloaded,
    }
}

#[cfg(test)]
#[allow(deprecated)] // the legacy shims are exactly what these tests pin down
mod tests {
    use super::*;
    use crate::board::PYNQ_Z2;
    use rodenet::{NetSpec, Variant};
    use tensor::Shape4;

    fn image(seed: u64) -> Tensor<f32> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(Shape4::new(1, 3, 32, 32), |_, _, _, _| {
            rng.random::<f32>() - 0.5
        })
    }

    #[test]
    fn hybrid_matches_software_closely() {
        let net = Network::new(NetSpec::new(Variant::ROdeNet3, 20).with_classes(10), 21);
        let x = image(5);
        let sw = net.forward(&x, BnMode::OnTheFly);
        let run = run_hybrid(
            &net,
            &x,
            OffloadTarget::Layer32,
            &PsModel::Calibrated,
            &PlModel::default(),
            &PYNQ_Z2,
        );
        // Q20 vs f32 divergence stays small at logit level.
        let diff = sw.max_abs_diff(&run.logits);
        assert!(diff < 0.05, "logit divergence {diff}");
        assert_eq!(run.offloaded, vec![LayerName::Layer3_2]);
    }

    #[test]
    fn hybrid_timing_matches_table5_model() {
        let net = Network::new(NetSpec::new(Variant::ROdeNet3, 56).with_classes(10), 22);
        let x = image(6);
        let run = run_hybrid(
            &net,
            &x,
            OffloadTarget::Layer32,
            &PsModel::Calibrated,
            &PlModel::default(),
            &PYNQ_Z2,
        );
        let row = crate::timing::paper_row(Variant::ROdeNet3, 56);
        assert!(
            (run.total_seconds() - row.total_w_pl).abs() < 1e-9,
            "execution-derived timing {} equals the Table 5 model {}",
            run.total_seconds(),
            row.total_w_pl
        );
        assert_eq!(run.dma_words, 2 * 64 * 64);
    }

    #[test]
    fn no_offload_is_pure_software_time() {
        let net = Network::new(NetSpec::new(Variant::ResNet, 20).with_classes(10), 23);
        let x = image(7);
        let run = run_hybrid(
            &net,
            &x,
            OffloadTarget::None,
            &PsModel::Calibrated,
            &PlModel::default(),
            &PYNQ_Z2,
        );
        assert_eq!(run.pl_seconds, 0.0);
        assert_eq!(run.dma_words, 0);
        let expect = PsModel::Calibrated.spec_seconds(&net.spec, &PYNQ_Z2);
        assert!((run.ps_seconds - expect).abs() < 1e-9);
    }
}
