//! The full system: PS software + PL accelerator executing one network
//! together (Figure 3).
//!
//! [`run_hybrid`] walks a trained [`rodenet::Network`] layer by layer.
//! Stages claimed by the [`OffloadTarget`] are quantized to Q20, shipped
//! over the modelled AXI DMA, executed bit-exactly on the simulated
//! ODEBlock circuit, and converted back to `f32`; every other stage runs
//! as f32 software. The returned [`HybridRun`] carries the logits *and*
//! the modelled wall-clock decomposition, so functional and timing
//! results come from one execution.

use crate::board::Board;
use crate::datapath::OdeBlockAccel;
use crate::planner::OffloadTarget;
use crate::timing::{PlModel, PsModel};
use qfixed::Q20;
use rodenet::{BnMode, LayerName, Network};
use tensor::Tensor;

/// Result of one hybrid (PS + PL) inference.
#[derive(Clone, Debug)]
pub struct HybridRun {
    /// Classifier logits (batch × classes).
    pub logits: Tensor<f32>,
    /// Modelled PS seconds (software stages + fixed overhead), per image.
    pub ps_seconds: f64,
    /// Modelled PL seconds (offloaded stages incl. DMA), per image.
    pub pl_seconds: f64,
    /// 32-bit words crossed the AXI bus, per image.
    pub dma_words: u64,
    /// Layers that ran on the PL.
    pub offloaded: Vec<LayerName>,
}

impl HybridRun {
    /// Total modelled latency per image.
    pub fn total_seconds(&self) -> f64 {
        self.ps_seconds + self.pl_seconds
    }
}

/// Execute `net` on `x` with `target` layers on the simulated PL, using
/// on-the-fly batch norm for the PS-side stages (matching the PL's
/// statistics mode end to end).
pub fn run_hybrid(
    net: &Network,
    x: &Tensor<f32>,
    target: OffloadTarget,
    ps: &PsModel,
    pl: &PlModel,
    board: &Board,
) -> HybridRun {
    run_hybrid_with(net, x, target, BnMode::OnTheFly, ps, pl, board)
}

/// Execute `net` on `x` with `target` layers on the simulated PL.
///
/// Functional semantics: PS stages use `ps_bn` batch-norm statistics in
/// f32; PL stages always run the bit-exact Q20 datapath with on-the-fly
/// statistics (that is what the circuit computes). Timing: the
/// calibrated PS model plus the cycle-model PL time, both per image
/// (batch inputs are timed as `batch ×` single-image latency — the board
/// processes one image at a time).
///
/// Note the deployment hazard this exposes: a network trained with batch
/// statistics and evaluated with `BnMode::Running` on the PS can lose
/// accuracy when its hot block moves to the PL, because the circuit
/// recomputes statistics per feature map. The gap shrinks as feature
/// maps grow; see EXPERIMENTS.md ("BN statistics at deployment").
pub fn run_hybrid_with(
    net: &Network,
    x: &Tensor<f32>,
    target: OffloadTarget,
    ps_bn: BnMode,
    ps: &PsModel,
    pl: &PlModel,
    board: &Board,
) -> HybridRun {
    let offloaded: Vec<LayerName> = target.layers().to_vec();
    let mut ps_cycles: u64 =
        ps.block_exec_cycles(LayerName::Conv1, false) + ps.block_exec_cycles(LayerName::Fc, false);
    ps_cycles += ps.runtime_overhead_cycles();
    let mut pl_seconds = 0.0f64;
    let mut dma_words = 0u64;

    let mut z = net.pre_forward(x);
    for stage in &net.stages {
        if stage.blocks.is_empty() {
            continue;
        }
        let on_pl = offloaded.contains(&stage.name);
        for block in &stage.blocks {
            if on_pl {
                assert_eq!(stage.blocks.len(), 1, "only single-instance stages offload");
                let accel = OdeBlockAccel::new(block, pl.parallelism, board);
                let zq: Tensor<Q20> = Tensor::from_f32_tensor(&z);
                let execs = if stage.plan.is_ode { stage.plan.execs } else { 1 };
                let run = accel.run_stage(&zq, execs);
                dma_words += crate::datapath::dma_words(stage.name);
                pl_seconds += run.seconds;
                z = run.output.to_f32();
            } else {
                z = if stage.plan.is_ode {
                    block.ode_forward(&z, stage.plan.execs, ps_bn)
                } else {
                    block.residual_forward(&z, ps_bn)
                };
                ps_cycles +=
                    stage.plan.execs as u64 * ps.block_exec_cycles(stage.name, stage.plan.is_ode);
            }
        }
    }
    let logits = net.fc_forward(&z);
    HybridRun {
        logits,
        ps_seconds: board.ps_seconds(ps_cycles),
        pl_seconds,
        dma_words,
        offloaded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::PYNQ_Z2;
    use rodenet::{NetSpec, Variant};
    use tensor::Shape4;

    fn image(seed: u64) -> Tensor<f32> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(Shape4::new(1, 3, 32, 32), |_, _, _, _| rng.random::<f32>() - 0.5)
    }

    #[test]
    fn hybrid_matches_software_closely() {
        let net = Network::new(NetSpec::new(Variant::ROdeNet3, 20).with_classes(10), 21);
        let x = image(5);
        let sw = net.forward(&x, BnMode::OnTheFly);
        let run = run_hybrid(
            &net,
            &x,
            OffloadTarget::Layer32,
            &PsModel::Calibrated,
            &PlModel::default(),
            &PYNQ_Z2,
        );
        // Q20 vs f32 divergence stays small at logit level.
        let diff = sw.max_abs_diff(&run.logits);
        assert!(diff < 0.05, "logit divergence {diff}");
        assert_eq!(run.offloaded, vec![LayerName::Layer3_2]);
    }

    #[test]
    fn hybrid_timing_matches_table5_model() {
        let net = Network::new(NetSpec::new(Variant::ROdeNet3, 56).with_classes(10), 22);
        let x = image(6);
        let run = run_hybrid(
            &net,
            &x,
            OffloadTarget::Layer32,
            &PsModel::Calibrated,
            &PlModel::default(),
            &PYNQ_Z2,
        );
        let row = crate::timing::paper_row(Variant::ROdeNet3, 56);
        assert!(
            (run.total_seconds() - row.total_w_pl).abs() < 1e-9,
            "execution-derived timing {} equals the Table 5 model {}",
            run.total_seconds(),
            row.total_w_pl
        );
        assert_eq!(run.dma_words, 2 * 64 * 64);
    }

    #[test]
    fn no_offload_is_pure_software_time() {
        let net = Network::new(NetSpec::new(Variant::ResNet, 20).with_classes(10), 23);
        let x = image(7);
        let run = run_hybrid(
            &net,
            &x,
            OffloadTarget::None,
            &PsModel::Calibrated,
            &PlModel::default(),
            &PYNQ_Z2,
        );
        assert_eq!(run.pl_seconds, 0.0);
        assert_eq!(run.dma_words, 0);
        let expect = PsModel::Calibrated.spec_seconds(&net.spec, &PYNQ_Z2);
        assert!((run.ps_seconds - expect).abs() < 1e-9);
    }
}
