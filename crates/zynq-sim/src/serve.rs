//! Online serving: open-loop arrivals, continuous micro-batching, and
//! SLO reporting over the event-driven cluster pipeline.
//!
//! Everything below `Engine::infer_batch` is closed-loop: the caller
//! hands the scheduler a fully-formed batch and reads back a makespan.
//! An edge inference *server* lives in the open-loop world instead —
//! requests arrive on their own clock, queue while the boards are
//! busy, and the deployment is judged on tail latency and goodput at a
//! given offered load, not on a batch-32 wall time. This module closes
//! that gap with a deterministic **virtual-time** simulator layered on
//! the existing plan/cluster machinery:
//!
//! 1. an [`ArrivalProcess`] generates a seeded request stream
//!    (Poisson, bursty, or a recorded trace — the `rand` shim drives
//!    it, no wall clock is ever read);
//! 2. an [`AdmissionQueue`] holds requests between arrival and
//!    dispatch, tracking its high-water mark;
//! 3. a [`MicroBatcher`] decides *when* to dispatch: when the
//!    pipeline's head resource goes idle **or** a configurable
//!    deadline expires ([`Dispatch::Deadline`]), or — as the
//!    classical baseline — when a fixed batch fills
//!    ([`Dispatch::FixedBatch`]);
//! 4. the dispatched stream replays through
//!    [`pipelined_schedule_released`], the release-aware form of the
//!    `Schedule::Pipelined` event sim, and the per-image
//!    queueing+service latencies fold into a [`ServeReport`].
//!
//! Latency here is **total** latency — arrival to last-stage
//! completion — so it prices queueing, batching delay, interconnect
//! hand-offs, and pipeline contention together. That is the number an
//! SLO is written against.
//!
//! Serving never touches numerics: the same [`RunReport`] logits an
//! engine produces for a closed batch are what an online client would
//! receive — this module only decides *when* each image runs, never
//! *what* it computes.
//!
//! [`RunReport`]: crate::engine::RunReport
//!
//! # Determinism
//!
//! Arrival streams are seeded, the clock is virtual, and the event
//! sim breaks ties deterministically, so a [`ServeReport`] is
//! bit-stable across runs and machines — stable enough to pin in a
//! test (see `tests/serve.rs`).
//!
//! # Example
//!
//! ```
//! use rodenet::{NetSpec, Network, Variant};
//! use zynq_sim::board::ARTY_Z7_20;
//! use zynq_sim::cluster::{Cluster, Interconnect, Schedule};
//! use zynq_sim::engine::Engine;
//! use zynq_sim::serve::ServeRequest;
//!
//! let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(100);
//! let net = Network::new(spec, 42);
//! let engine = Engine::builder(&net)
//!     .cluster(Cluster::homogeneous(
//!         &ARTY_Z7_20,
//!         2,
//!         Interconnect::GIGABIT_ETHERNET,
//!     ))
//!     .schedule(Schedule::Pipelined)
//!     .build()
//!     .expect("two boards carry ODENet-20 at Q20");
//!
//! let ceiling = 1.0 / engine.cluster_plan().unwrap().bottleneck_seconds();
//! let mut req = ServeRequest::poisson(0.5 * ceiling);
//! req.images = 64;
//! let report = engine.serve(&req).expect("valid request");
//! assert!(report.goodput <= ceiling * (1.0 + 1e-9));
//! assert!(report.latency_p50 <= report.latency_p99);
//! ```

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cluster::{
    bottleneck_seconds, pipelined_schedule_released, pipelined_schedule_released_traced,
    StageResource, StageTiming,
};
use crate::engine::{latency_quantile, EngineError};
use crate::trace::{Recorder, Trace};

/// How requests enter the system: a pluggable open-loop generator.
/// All three variants produce a deterministic stream for a given seed
/// — virtual time only, the wall clock is never consulted.
#[derive(Clone, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate` images/second: inter-arrival gaps
    /// are i.i.d. exponential with mean `1/rate` — the standard
    /// open-loop load model.
    Poisson {
        /// Mean offered load in images per second.
        rate: f64,
    },
    /// Clustered arrivals at the same long-run `rate`: bursts arrive
    /// memorylessly at `rate / burst` per second, and each delivers
    /// `burst` images spread evenly over the first `duty` fraction of
    /// the mean inter-burst window. `duty → 0` approaches simultaneous
    /// arrival; `duty = 1` spreads a burst across its whole window.
    Bursty {
        /// Long-run mean offered load in images per second.
        rate: f64,
        /// Images per burst (≥ 1; `1` degenerates to near-Poisson).
        burst: usize,
        /// Fraction of the mean inter-burst window a burst occupies
        /// (in `(0, 1]`).
        duty: f64,
    },
    /// Replay a recorded stream: the vector holds inter-arrival gaps
    /// in seconds, cycled as many times as needed to produce the
    /// requested number of images. The seed is ignored — a trace *is*
    /// its own randomness.
    Trace(Vec<f64>),
}

impl ArrivalProcess {
    /// The long-run mean offered load in images per second (for
    /// [`ArrivalProcess::Trace`], the rate implied by one cycle of the
    /// recorded gaps).
    pub fn rate(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate } | ArrivalProcess::Bursty { rate, .. } => *rate,
            ArrivalProcess::Trace(gaps) => {
                let total: f64 = gaps.iter().sum();
                gaps.len() as f64 / total
            }
        }
    }

    /// Validate the generator's parameters, returning the typed
    /// [`EngineError::InvalidServe`] a misconfiguration deserves.
    pub fn validate(&self) -> Result<(), EngineError> {
        let bad = |reason: &'static str| Err(EngineError::InvalidServe { reason });
        match self {
            ArrivalProcess::Poisson { rate } => {
                if !rate.is_finite() || *rate <= 0.0 {
                    return bad("a Poisson arrival rate must be finite and positive");
                }
            }
            ArrivalProcess::Bursty { rate, burst, duty } => {
                if !rate.is_finite() || *rate <= 0.0 {
                    return bad("a bursty arrival rate must be finite and positive");
                }
                if *burst < 1 {
                    return bad("a burst must carry at least one image");
                }
                if !duty.is_finite() || *duty <= 0.0 || *duty > 1.0 {
                    return bad("a burst duty cycle must lie in (0, 1]");
                }
            }
            ArrivalProcess::Trace(gaps) => {
                if gaps.is_empty() {
                    return bad("an arrival trace needs at least one inter-arrival gap");
                }
                if gaps.iter().any(|g| !g.is_finite() || *g < 0.0) {
                    return bad("arrival-trace gaps must be finite and non-negative");
                }
                if gaps.iter().sum::<f64>() <= 0.0 {
                    return bad("an arrival trace must span positive time");
                }
            }
        }
        Ok(())
    }

    /// Generate `images` absolute arrival instants (ascending, ≥ 0),
    /// seeded for bit-stable replay. Call [`ArrivalProcess::validate`]
    /// first; degenerate parameters here would loop or divide by zero.
    pub fn arrivals(&self, images: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut exp_gap = |mean: f64| -> f64 {
            let u: f64 = rng.random();
            -(1.0f64 - u).ln() * mean
        };
        match self {
            ArrivalProcess::Poisson { rate } => {
                let mut t = 0.0f64;
                (0..images)
                    .map(|_| {
                        t += exp_gap(1.0 / rate);
                        t
                    })
                    .collect()
            }
            ArrivalProcess::Bursty { rate, burst, duty } => {
                // Bursts arrive memorylessly with mean gap burst/rate;
                // each spreads its images over the leading duty
                // fraction of that window. Long-run rate stays `rate`.
                let window = duty * (*burst as f64 / rate);
                let mut t = 0.0f64;
                let mut out = Vec::with_capacity(images + burst);
                while out.len() < images {
                    t += exp_gap(*burst as f64 / rate);
                    for k in 0..*burst {
                        out.push(t + window * k as f64 / *burst as f64);
                    }
                }
                // Adjacent bursts may overlap when a gap is short.
                out.sort_by(f64::total_cmp);
                out.truncate(images);
                out
            }
            ArrivalProcess::Trace(gaps) => {
                let mut t = 0.0f64;
                (0..images)
                    .map(|i| {
                        t += gaps[i % gaps.len()];
                        t
                    })
                    .collect()
            }
        }
    }
}

/// When the micro-batcher releases waiting work to the pipeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Dispatch {
    /// Continuous micro-batching: dispatch everything waiting the
    /// moment the pipeline's **head resource goes idle**, or when the
    /// oldest waiting image has queued for `deadline` seconds —
    /// whichever comes first. `deadline = 0` admits every image on
    /// arrival; `deadline = ∞` batches purely on head-idle. A batch
    /// never waits to *fill* — that is [`Dispatch::FixedBatch`]'s
    /// failure mode under light load.
    Deadline {
        /// Max seconds the oldest image may wait before dispatch
        /// (≥ 0; `f64::INFINITY` batches on head-idle alone).
        deadline: f64,
    },
    /// The classical baseline: wait until `size` images have arrived,
    /// then dispatch them together (the tail flushes with whatever is
    /// left). Under light load the first image of a batch waits for
    /// the last — exactly the tail-latency pathology deadline
    /// dispatch exists to fix.
    FixedBatch {
        /// Images per dispatched batch (≥ 1).
        size: usize,
    },
}

impl Default for Dispatch {
    /// Deadline dispatch with a 50 ms admission bound — tighter than
    /// one ODENet-20 bottleneck interval on the paper's boards, so the
    /// batcher leans on head-idle coalescing under load.
    fn default() -> Self {
        Dispatch::Deadline { deadline: 0.05 }
    }
}

impl Dispatch {
    /// Validate the policy's parameters.
    pub fn validate(&self) -> Result<(), EngineError> {
        match self {
            Dispatch::Deadline { deadline } => {
                if deadline.is_nan() || *deadline < 0.0 {
                    return Err(EngineError::InvalidServe {
                        reason: "a dispatch deadline must be ≥ 0 (infinity batches on head-idle)",
                    });
                }
            }
            Dispatch::FixedBatch { size } => {
                if *size < 1 {
                    return Err(EngineError::InvalidServe {
                        reason: "a fixed batch must hold at least one image",
                    });
                }
            }
        }
        Ok(())
    }
}

/// The waiting room between arrival and dispatch: requests enter at
/// their arrival instant and leave when the [`MicroBatcher`] releases
/// them. Tracks the depth high-water mark — the provisioning number
/// for an admission buffer on a real deployment.
#[derive(Clone, Debug, Default)]
pub struct AdmissionQueue {
    waiting: VecDeque<f64>,
    peak: usize,
}

impl AdmissionQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admit one request by arrival instant.
    pub fn push(&mut self, arrival: f64) {
        self.waiting.push_back(arrival);
        self.peak = self.peak.max(self.waiting.len());
    }

    /// Release everything waiting (a dispatch), returning the batch's
    /// arrival instants in admission order.
    pub fn drain(&mut self) -> Vec<f64> {
        self.waiting.drain(..).collect()
    }

    /// Requests currently waiting.
    pub fn len(&self) -> usize {
        self.waiting.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.waiting.is_empty()
    }

    /// The deepest the queue has ever been.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

/// Turns an arrival stream into a release schedule under a
/// [`Dispatch`] policy, replaying the pipeline's head-idle instants
/// from the event sim as it goes.
#[derive(Clone, Copy, Debug)]
pub struct MicroBatcher {
    dispatch: Dispatch,
}

/// The micro-batcher's decision record: per-image release instants
/// plus the bookkeeping the report wants.
#[derive(Clone, Debug)]
pub struct ReleasePlan {
    /// Per-image dispatch instant (ascending, aligned with the
    /// arrival stream; `releases[i] ≥ arrivals[i]`).
    pub releases: Vec<f64>,
    /// Number of dispatches issued.
    pub batches: usize,
    /// Admission-queue high-water mark.
    pub queue_peak: usize,
}

impl MicroBatcher {
    /// A batcher running `dispatch`.
    pub fn new(dispatch: Dispatch) -> Self {
        Self { dispatch }
    }

    /// The configured policy.
    pub fn dispatch(&self) -> Dispatch {
        self.dispatch
    }

    /// Walk the arrival stream and decide every release instant.
    ///
    /// For [`Dispatch::Deadline`] the dispatch instant of the oldest
    /// waiting image is `max(arrival, min(head_idle, arrival +
    /// deadline))`: wait for the head resource to free — it can
    /// coalesce a batch for nothing — but never past the deadline.
    /// `head_idle` comes from re-running the release-aware event sim
    /// over everything released so far, so the batcher sees exactly
    /// the pipeline the dispatched work actually experiences (a
    /// positive deadline costs one sim replay per dispatch; zero
    /// deadline and fixed batching never consult the pipeline).
    /// Every image that has arrived by the dispatch instant rides
    /// along — a batch is "whatever is waiting", never a fixed shape.
    pub fn release_plan(&self, timeline: &[StageTiming], arrivals: &[f64]) -> ReleasePlan {
        let n = arrivals.len();
        let mut releases = Vec::with_capacity(n);
        let mut queue = AdmissionQueue::new();
        let mut batches = 0usize;
        let mut idx = 0usize;
        let mut head_idle = 0.0f64;
        // head_idle only matters when a positive deadline lets the
        // batcher wait for the pipeline; the other policies dispatch
        // on arrivals alone.
        let consults_pipeline =
            matches!(self.dispatch, Dispatch::Deadline { deadline } if deadline > 0.0);
        while idx < n {
            let oldest = arrivals[idx];
            let t = match self.dispatch {
                Dispatch::Deadline { deadline } => oldest.max(head_idle.min(oldest + deadline)),
                Dispatch::FixedBatch { size } => arrivals[(idx + size - 1).min(n - 1)],
            };
            let mut count = 0usize;
            while idx + count < n && arrivals[idx + count] <= t {
                queue.push(arrivals[idx + count]);
                count += 1;
            }
            let batch = queue.drain();
            debug_assert_eq!(batch.len(), count, "dispatch releases everything waiting");
            releases.extend(std::iter::repeat_n(t, count));
            idx += count;
            batches += 1;
            if consults_pipeline && idx < n {
                head_idle = pipelined_schedule_released(timeline, &releases).head_idle;
            }
        }
        ReleasePlan {
            releases,
            batches,
            queue_peak: queue.peak(),
        }
    }
}

/// An optional measurement window over a serve run's horizon, trimming
/// the finite-stream artefacts off the goodput measurement: the warmup
/// ramp while the pipeline fills, and the drain-out after the last
/// arrival when an overloaded queue is merely flushing. The default
/// window is the whole horizon (no trimming — reports unchanged).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Window {
    /// Fraction of the horizon to drop from the front (`0 ≤ f`,
    /// `warmup + drain < 1`).
    pub warmup_fraction: f64,
    /// Fraction of the horizon to drop from the back.
    pub drain_fraction: f64,
}

impl Window {
    /// Whether the window covers the whole horizon (no trimming).
    pub fn is_whole(&self) -> bool {
        self.warmup_fraction == 0.0 && self.drain_fraction == 0.0
    }

    /// Reject non-finite, negative, or over-full fractions with a
    /// typed [`EngineError::InvalidServe`].
    pub fn validate(&self) -> Result<(), EngineError> {
        if !self.warmup_fraction.is_finite()
            || !self.drain_fraction.is_finite()
            || self.warmup_fraction < 0.0
            || self.drain_fraction < 0.0
        {
            return Err(EngineError::InvalidServe {
                reason: "measurement-window fractions must be finite and ≥ 0",
            });
        }
        if self.warmup_fraction + self.drain_fraction >= 1.0 {
            return Err(EngineError::InvalidServe {
                reason: "measurement-window warmup + drain fractions must sum below 1",
            });
        }
        Ok(())
    }
}

/// Goodput measured inside a [`Window`] — completions whose instant
/// falls in `[start, end]`, divided by the window's length.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowReport {
    /// Window start, virtual seconds (`warmup_fraction × horizon`).
    pub start: f64,
    /// Window end, virtual seconds (`(1 − drain_fraction) × horizon`).
    pub end: f64,
    /// Completions inside the window.
    pub completed: usize,
    /// `completed / (end − start)` — the steady-state goodput estimate.
    pub goodput: f64,
}

/// Build the [`WindowReport`] for `window` over completions
/// `finishes`, or `None` when the window is the whole horizon.
pub(crate) fn window_report(
    window: &Window,
    horizon: f64,
    finishes: impl Iterator<Item = f64>,
) -> Option<WindowReport> {
    if window.is_whole() {
        return None;
    }
    let start = window.warmup_fraction * horizon;
    let end = (1.0 - window.drain_fraction) * horizon;
    let completed = finishes.filter(|f| *f >= start && *f <= end).count();
    let span = end - start;
    Some(WindowReport {
        start,
        end,
        completed,
        goodput: if span > 0.0 {
            completed as f64 / span
        } else {
            0.0
        },
    })
}

/// One online-serving experiment: who arrives, how many, and when the
/// batcher dispatches.
#[derive(Clone, Debug)]
pub struct ServeRequest {
    /// The open-loop request generator.
    pub arrivals: ArrivalProcess,
    /// Stream length (the experiment ends when the last image
    /// completes).
    pub images: usize,
    /// The micro-batcher's dispatch policy.
    pub dispatch: Dispatch,
    /// Seed for the arrival stream (ignored by
    /// [`ArrivalProcess::Trace`]).
    pub seed: u64,
    /// Optional measurement-window trimming for the reported goodput
    /// (whole-horizon by default).
    pub window: Window,
}

impl ServeRequest {
    /// A 256-image Poisson stream at `rate` images/second under the
    /// default deadline dispatch — the one-liner for load sweeps.
    pub fn poisson(rate: f64) -> Self {
        ServeRequest {
            arrivals: ArrivalProcess::Poisson { rate },
            images: 256,
            dispatch: Dispatch::default(),
            seed: 42,
            window: Window::default(),
        }
    }

    /// Validate the whole request.
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.images < 1 {
            return Err(EngineError::InvalidServe {
                reason: "a serve request must stream at least one image",
            });
        }
        self.arrivals.validate()?;
        self.dispatch.validate()?;
        self.window.validate()
    }
}

/// What an online deployment is judged on: tail latency, goodput
/// against offered load, queue depth, and board utilization — all in
/// deterministic virtual seconds.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeReport {
    /// Images served to completion. Fault-free serving never drops, so
    /// this equals the admitted stream; under fault injection
    /// ([`crate::fault::serve_faulted`]) images dropped by a total
    /// outage are counted in the availability section instead.
    pub images: usize,
    /// Dispatches the micro-batcher issued.
    pub batches: usize,
    /// The arrival process's long-run offered load, images/second.
    pub offered_rate: f64,
    /// Completed images per virtual second over the whole run
    /// (`images / horizon`). At most the placement's pipelined
    /// ceiling `1 / bottleneck`; an overloaded server shows goodput
    /// pinned at the ceiling while latency grows without bound.
    pub goodput: f64,
    /// Virtual seconds from t = 0 to the last completion.
    pub horizon: f64,
    /// Median total (queueing + service) latency in seconds.
    pub latency_p50: f64,
    /// 99th-percentile total latency — the classic SLO number.
    pub latency_p99: f64,
    /// 99.9th-percentile total latency.
    pub latency_p999: f64,
    /// Worst-case total latency.
    pub latency_max: f64,
    /// Admission-queue high-water mark (images waiting undispatched).
    pub queue_peak: usize,
    /// Busy fraction of the horizon per execution resource (head PS,
    /// each board's PL), in timeline order.
    pub utilization: Vec<(StageResource, f64)>,
    /// Goodput inside the request's measurement [`Window`] (`None`
    /// when the request measured the whole horizon).
    pub window: Option<WindowReport>,
    /// Availability accounting, present when the run was served under
    /// fault injection ([`crate::fault::serve_faulted`]); `None` for
    /// the fault-free path.
    pub availability: Option<crate::fault::AvailabilityReport>,
    /// The event trace, when the run was served through
    /// [`serve_timeline_traced`] with tracing on (`None` otherwise).
    pub(crate) trace: Option<Trace>,
}

impl ServeReport {
    /// Mean images per dispatch.
    pub fn mean_batch(&self) -> f64 {
        self.images as f64 / self.batches as f64
    }

    /// The run's availability as a fraction of the horizon: exactly 1
    /// for fault-free runs (no availability section), otherwise the
    /// availability section's clamped `[0, 1]` value.
    pub fn availability_fraction(&self) -> f64 {
        self.availability.as_ref().map_or(1.0, |a| a.availability)
    }

    /// The run's event trace — stage spans, hand-offs, queue and
    /// dispatch events plus [`Trace::metrics`] stall attribution —
    /// when the serve was traced ([`serve_timeline_traced`] /
    /// `EngineBuilder::trace(true)`); `None` for untraced runs.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// One-line human description for logs and examples.
    pub fn describe(&self) -> String {
        format!(
            "{} img in {} batches · offered {:.2}/s → goodput {:.2}/s · p50 {:.3}s p99 {:.3}s max {:.3}s · queue ≤ {} · {}",
            self.images,
            self.batches,
            self.offered_rate,
            self.goodput,
            self.latency_p50,
            self.latency_p99,
            self.latency_max,
            self.queue_peak,
            crate::trace::format_utilization(&self.utilization),
        )
    }
}

/// Replay one serving experiment over a stage pipeline. This is the
/// timeline-level driver [`Engine::serve`] wraps: generate the seeded
/// arrival stream, let the [`MicroBatcher`] pick every release
/// instant, run the release-aware event sim once over the full
/// stream, and fold per-image **arrival-to-completion** latencies
/// into a [`ServeReport`].
///
/// [`Engine::serve`]: crate::engine::Engine::serve
pub fn serve_timeline(
    timeline: &[StageTiming],
    req: &ServeRequest,
) -> Result<ServeReport, EngineError> {
    serve_timeline_traced(timeline, req, false)
}

/// [`serve_timeline`] with event tracing: when `traced`, the returned
/// report carries a [`Trace`] of the run — per-image stage spans and
/// hand-offs from the release-aware event sim, plus admission-queue
/// arrivals and micro-batcher dispatch decisions reconstructed from
/// the release plan. Only the one full replay is traced; the deadline
/// batcher's per-dispatch head-idle consults stay untraced (they are
/// planning probes, not execution). Tracing never touches the
/// simulation's arithmetic: the report's numbers are bit-identical
/// with tracing on or off (pinned in `tests/trace.rs`).
pub fn serve_timeline_traced(
    timeline: &[StageTiming],
    req: &ServeRequest,
    traced: bool,
) -> Result<ServeReport, EngineError> {
    req.validate()?;
    if timeline.is_empty() {
        return Err(EngineError::InvalidServe {
            reason: "cannot serve over an empty stage pipeline",
        });
    }
    let arrivals = req.arrivals.arrivals(req.images, req.seed);
    let plan = MicroBatcher::new(req.dispatch).release_plan(timeline, &arrivals);
    let mut rec = if traced {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    if rec.is_enabled() {
        // Queue/dispatch events replay the batcher's decisions from
        // the release plan: consecutive equal releases are one batch
        // (dispatch instants strictly increase), and each batch's
        // arrivals precede its dispatch — exactly the queue's
        // push-before-drain order, so the depth series peaks at
        // `AdmissionQueue::peak()`.
        let mut idx = 0usize;
        while idx < plan.releases.len() {
            let at = plan.releases[idx];
            let mut count = 0usize;
            while idx + count < plan.releases.len() && plan.releases[idx + count] == at {
                count += 1;
            }
            for arrival in &arrivals[idx..idx + count] {
                rec.arrival(*arrival);
            }
            rec.dispatch(at, count);
            idx += count;
        }
    }
    let run = pipelined_schedule_released_traced(timeline, &plan.releases, &mut rec);

    let mut latencies: Vec<f64> = run
        .finishes
        .iter()
        .zip(&arrivals)
        .map(|(finish, arrival)| finish - arrival)
        .collect();
    latencies.sort_by(f64::total_cmp);

    let horizon = run.makespan;
    let per_image = crate::partition::resource_busy(timeline);
    let utilization = per_image
        .into_iter()
        .map(|(resource, busy)| (resource, busy * req.images as f64 / horizon))
        .collect();

    Ok(ServeReport {
        images: req.images,
        batches: plan.batches,
        offered_rate: req.arrivals.rate(),
        goodput: req.images as f64 / horizon,
        horizon,
        latency_p50: latency_quantile(&latencies, 0.5),
        latency_p99: latency_quantile(&latencies, 0.99),
        latency_p999: latency_quantile(&latencies, 0.999),
        latency_max: latency_quantile(&latencies, 1.0),
        queue_peak: plan.queue_peak,
        utilization,
        window: window_report(&req.window, horizon, run.finishes.iter().copied()),
        availability: None,
        trace: traced.then(|| rec.finish()),
    })
}

/// A load sweep: walk Poisson offered load across fractions of the
/// placement's pipelined throughput ceiling (`1 / bottleneck`) and
/// serve a fixed-length stream at each point — the load/latency curve
/// every scaling change should be judged against.
#[derive(Clone, Debug)]
pub struct LoadSweep {
    /// Offered load as fractions of the pipelined ceiling. Any grid
    /// works — [`sweep_timeline`] rejects an empty, non-positive,
    /// non-finite, or non-strictly-ascending list with a typed
    /// [`EngineError::InvalidServe`]. The default grid (0.1×…1.2× in
    /// 0.1× steps) is pinned by the test suite.
    pub fractions: Vec<f64>,
    /// Stream length per point.
    pub images: usize,
    /// Dispatch policy at every point.
    pub dispatch: Dispatch,
    /// Arrival-stream seed (shared across points — only the rate
    /// changes along the sweep).
    pub seed: u64,
}

impl Default for LoadSweep {
    /// 0.1× to 1.2× of the ceiling in 0.1× steps, 256 images per
    /// point, deadline dispatch: light load through saturation and a
    /// little past it, where the queue visibly diverges.
    fn default() -> Self {
        LoadSweep {
            fractions: (1..=12).map(|i| i as f64 / 10.0).collect(),
            images: 256,
            dispatch: Dispatch::default(),
            seed: 42,
        }
    }
}

/// One point of a [`LoadSweep`]'s load/latency curve.
#[derive(Clone, Debug)]
pub struct LoadPoint {
    /// Offered load as a fraction of the pipelined ceiling.
    pub fraction: f64,
    /// Offered load in images per second.
    pub offered: f64,
    /// The full serving report at this load.
    pub report: ServeReport,
}

/// Run a [`LoadSweep`] over a stage pipeline (the timeline-level
/// driver behind [`Engine::load_sweep`]).
///
/// [`Engine::load_sweep`]: crate::engine::Engine::load_sweep
pub fn sweep_timeline(
    timeline: &[StageTiming],
    sweep: &LoadSweep,
) -> Result<Vec<LoadPoint>, EngineError> {
    sweep_timeline_traced(timeline, sweep, false)
}

/// [`sweep_timeline`] with event tracing: when `traced`, every
/// [`LoadPoint`]'s report carries its own [`Trace`] (one full event
/// log per load fraction — useful for comparing stall attribution as
/// offered load climbs, but proportionally heavier; the default sweep
/// stays untraced).
pub fn sweep_timeline_traced(
    timeline: &[StageTiming],
    sweep: &LoadSweep,
    traced: bool,
) -> Result<Vec<LoadPoint>, EngineError> {
    if sweep.fractions.is_empty() {
        return Err(EngineError::InvalidServe {
            reason: "a load sweep needs at least one load fraction",
        });
    }
    if sweep.fractions.iter().any(|f| !f.is_finite() || *f <= 0.0) {
        return Err(EngineError::InvalidServe {
            reason: "load-sweep fractions must be finite and positive",
        });
    }
    if sweep.fractions.windows(2).any(|w| w[1] <= w[0]) {
        return Err(EngineError::InvalidServe {
            reason: "load-sweep fractions must be strictly ascending",
        });
    }
    let ceiling = 1.0 / bottleneck_seconds(timeline);
    sweep
        .fractions
        .iter()
        .map(|&fraction| {
            let offered = fraction * ceiling;
            let req = ServeRequest {
                arrivals: ArrivalProcess::Poisson { rate: offered },
                images: sweep.images,
                dispatch: sweep.dispatch,
                seed: sweep.seed,
                window: Window::default(),
            };
            serve_timeline_traced(timeline, &req, traced).map(|report| LoadPoint {
                fraction,
                offered,
                report,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::StageResource;

    /// A 2-resource toy pipeline: head PS 10 ms, PL 20 ms (the
    /// bottleneck), no hand-offs.
    fn toy() -> Vec<StageTiming> {
        vec![
            StageTiming {
                resource: StageResource::Ps,
                layer: None,
                seconds: 0.010,
                transfer_in: 0.0,
                replicas: Vec::new(),
            },
            StageTiming {
                resource: StageResource::Pl(0),
                layer: None,
                seconds: 0.020,
                transfer_in: 0.0,
                replicas: Vec::new(),
            },
        ]
    }

    #[test]
    fn poisson_arrivals_are_sorted_seeded_and_rate_true() {
        let p = ArrivalProcess::Poisson { rate: 100.0 };
        let a = p.arrivals(512, 7);
        let b = p.arrivals(512, 7);
        assert_eq!(a, b, "same seed, same stream");
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(a[0] > 0.0);
        let mean_gap = a.last().unwrap() / 512.0;
        assert!(
            (mean_gap * 100.0 - 1.0).abs() < 0.2,
            "empirical rate within 20% of nominal, got mean gap {mean_gap}"
        );
        assert_ne!(p.arrivals(512, 8), a, "different seed, different stream");
    }

    #[test]
    fn bursty_arrivals_cluster_but_keep_the_rate() {
        let p = ArrivalProcess::Bursty {
            rate: 100.0,
            burst: 8,
            duty: 0.25,
        };
        let a = p.arrivals(512, 7);
        assert_eq!(a.len(), 512);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        let mean_gap = a.last().unwrap() / 512.0;
        assert!(
            (mean_gap * 100.0 - 1.0).abs() < 0.3,
            "long-run rate preserved, got mean gap {mean_gap}"
        );
        // Clustering: the median gap is far below the mean gap.
        let mut gaps: Vec<f64> = a.windows(2).map(|w| w[1] - w[0]).collect();
        gaps.sort_by(f64::total_cmp);
        assert!(gaps[gaps.len() / 2] < 0.5 * mean_gap);
    }

    #[test]
    fn trace_cycles_and_reports_implied_rate() {
        let p = ArrivalProcess::Trace(vec![0.1, 0.3]);
        assert!((p.rate() - 5.0).abs() < 1e-12, "2 images per 0.4s");
        let a = p.arrivals(5, 999);
        assert_eq!(a, vec![0.1, 0.4, 0.5, 0.8, 0.9]);
    }

    #[test]
    fn degenerate_processes_are_typed_errors() {
        for p in [
            ArrivalProcess::Poisson { rate: 0.0 },
            ArrivalProcess::Poisson { rate: f64::NAN },
            ArrivalProcess::Bursty {
                rate: 1.0,
                burst: 0,
                duty: 0.5,
            },
            ArrivalProcess::Bursty {
                rate: 1.0,
                burst: 4,
                duty: 0.0,
            },
            ArrivalProcess::Trace(vec![]),
            ArrivalProcess::Trace(vec![0.0, 0.0]),
            ArrivalProcess::Trace(vec![0.1, -0.1]),
        ] {
            assert!(
                matches!(p.validate(), Err(EngineError::InvalidServe { .. })),
                "{p:?} must be rejected"
            );
        }
        assert!(Dispatch::Deadline { deadline: -1.0 }.validate().is_err());
        assert!(Dispatch::FixedBatch { size: 0 }.validate().is_err());
        assert!(Dispatch::Deadline {
            deadline: f64::INFINITY
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn admission_queue_tracks_high_water_mark() {
        let mut q = AdmissionQueue::new();
        q.push(0.1);
        q.push(0.2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.drain(), vec![0.1, 0.2]);
        assert!(q.is_empty());
        q.push(0.3);
        assert_eq!(q.peak(), 2, "peak survives the drain");
    }

    #[test]
    fn zero_deadline_admits_every_image_on_arrival() {
        let arrivals = vec![0.0, 0.05, 0.011, 0.3];
        let mut sorted = arrivals.clone();
        sorted.sort_by(f64::total_cmp);
        let plan =
            MicroBatcher::new(Dispatch::Deadline { deadline: 0.0 }).release_plan(&toy(), &sorted);
        assert_eq!(plan.releases, sorted, "release == arrival");
        assert_eq!(plan.batches, 4);
        assert_eq!(plan.queue_peak, 1);
    }

    #[test]
    fn fixed_batch_waits_to_fill_and_flushes_the_tail() {
        let arrivals = vec![0.0, 0.1, 0.2, 0.3, 0.4];
        let plan =
            MicroBatcher::new(Dispatch::FixedBatch { size: 2 }).release_plan(&toy(), &arrivals);
        assert_eq!(plan.releases, vec![0.1, 0.1, 0.3, 0.3, 0.4]);
        assert_eq!(plan.batches, 3, "two full batches plus the tail flush");
        assert_eq!(plan.queue_peak, 2);
    }

    #[test]
    fn deadline_caps_the_oldest_images_wait() {
        // One image arrives at t=0 onto an idle pipeline, the next far
        // later: head-idle is 0, so dispatch is immediate despite the
        // generous deadline.
        let plan = MicroBatcher::new(Dispatch::Deadline { deadline: 10.0 })
            .release_plan(&toy(), &[0.0, 100.0]);
        assert_eq!(plan.releases[0], 0.0, "idle head ⇒ immediate dispatch");
        assert_eq!(plan.releases[1], 100.0);
        // Back-to-back arrivals: the second waits for the head to
        // free (t=0.010), not for its deadline (t=5.001 + 10).
        let plan = MicroBatcher::new(Dispatch::Deadline { deadline: 10.0 })
            .release_plan(&toy(), &[0.0, 0.001]);
        assert!((plan.releases[1] - 0.010).abs() < 1e-12);
        // A tiny deadline beats head-idle when the head is busy.
        let plan = MicroBatcher::new(Dispatch::Deadline { deadline: 0.002 })
            .release_plan(&toy(), &[0.0, 0.001]);
        assert!((plan.releases[1] - 0.003).abs() < 1e-12);
    }

    #[test]
    fn serve_reports_are_consistent_and_deterministic() {
        let req = ServeRequest {
            arrivals: ArrivalProcess::Poisson { rate: 25.0 },
            images: 64,
            dispatch: Dispatch::default(),
            seed: 11,
            window: Window::default(),
        };
        let a = serve_timeline(&toy(), &req).expect("valid");
        let b = serve_timeline(&toy(), &req).expect("valid");
        assert_eq!(a, b, "virtual time ⇒ bit-stable");
        assert_eq!(a.images, 64);
        assert!(a.batches >= 1 && a.batches <= 64);
        assert!(a.latency_p50 <= a.latency_p99);
        assert!(a.latency_p99 <= a.latency_p999);
        assert!(a.latency_p999 <= a.latency_max);
        // Service alone takes ≥ 30 ms, so every total latency does.
        assert!(a.latency_p50 >= 0.030 - 1e-12);
        let ceiling = 1.0 / bottleneck_seconds(&toy());
        assert!(a.goodput <= ceiling * (1.0 + 1e-9));
        assert!(a.queue_peak >= 1);
        for (_, util) in &a.utilization {
            assert!(*util > 0.0 && *util <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn sweep_walks_the_ceiling_and_latency_grows_with_load() {
        let sweep = LoadSweep {
            fractions: vec![0.2, 0.9],
            images: 96,
            dispatch: Dispatch::default(),
            seed: 42,
        };
        let points = sweep_timeline(&toy(), &sweep).expect("valid");
        assert_eq!(points.len(), 2);
        let ceiling = 1.0 / bottleneck_seconds(&toy());
        assert!((points[0].offered - 0.2 * ceiling).abs() < 1e-9);
        assert!(
            points[0].report.latency_p99 <= points[1].report.latency_p99,
            "heavier load cannot shrink the tail"
        );
    }

    #[test]
    fn invalid_requests_are_rejected_up_front() {
        let mut req = ServeRequest::poisson(10.0);
        req.images = 0;
        assert!(serve_timeline(&toy(), &req).is_err());
        let req = ServeRequest::poisson(10.0);
        assert!(matches!(
            serve_timeline(&[], &req),
            Err(EngineError::InvalidServe { .. })
        ));
        let sweep = LoadSweep {
            fractions: vec![],
            ..LoadSweep::default()
        };
        assert!(sweep_timeline(&toy(), &sweep).is_err());
        let sweep = LoadSweep {
            fractions: vec![-0.5],
            ..LoadSweep::default()
        };
        assert!(sweep_timeline(&toy(), &sweep).is_err());
        // Unsorted (or duplicated) grids are a config bug, not a curve.
        for bad in [vec![0.9, 0.2], vec![0.5, 0.5]] {
            let sweep = LoadSweep {
                fractions: bad,
                ..LoadSweep::default()
            };
            assert!(matches!(
                sweep_timeline(&toy(), &sweep),
                Err(EngineError::InvalidServe { reason }) if reason.contains("ascending")
            ));
        }
    }

    #[test]
    fn default_sweep_grid_is_pinned() {
        // The default load grid is part of the public serving surface:
        // reports and CI smoke tables are comparable across versions
        // only while it stays 0.1×…1.2× in 0.1× steps.
        let d = LoadSweep::default();
        let expect: Vec<f64> = (1..=12).map(|i| i as f64 / 10.0).collect();
        assert_eq!(d.fractions, expect);
        assert_eq!(d.images, 256);
        assert_eq!(d.seed, 42);
        assert!(sweep_timeline(&toy(), &d).is_ok(), "the default validates");
    }
}
