//! The target device — Table 1 of the paper.

/// A Zynq-style SoC board: a processing system (PS) of ARM cores plus a
/// programmable-logic (PL) fabric with on-chip BRAM, DSP slices and LUTs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Board {
    /// Marketing name.
    pub name: &'static str,
    /// Operating system reported by the vendor image.
    pub os: &'static str,
    /// PS core description.
    pub cpu: &'static str,
    /// Number of PS cores.
    pub ps_cores: usize,
    /// PS clock in Hz (650 MHz on PYNQ-Z2).
    pub ps_clock_hz: u64,
    /// DRAM bytes (512 MB DDR3).
    pub dram_bytes: u64,
    /// FPGA part name.
    pub fpga: &'static str,
    /// PL clock in Hz for the ODEBlock circuits (100 MHz).
    pub pl_clock_hz: u64,
    /// 36-kbit block RAMs.
    pub bram36: u32,
    /// DSP48E1 slices.
    pub dsp: u32,
    /// Look-up tables.
    pub lut: u32,
    /// Flip-flops.
    pub ff: u32,
}

/// The TUL PYNQ-Z2 (Table 1) with its Zynq XC7Z020-1CLG400C fabric.
pub const PYNQ_Z2: Board = Board {
    name: "TUL PYNQ-Z2",
    os: "PYNQ Linux (Ubuntu 18.04)",
    cpu: "ARM Cortex-A9 @ 650MHz",
    ps_cores: 2,
    ps_clock_hz: 650_000_000,
    dram_bytes: 512 * 1024 * 1024,
    fpga: "Xilinx Zynq XC7Z020-1CLG400C",
    pl_clock_hz: 100_000_000,
    bram36: 140,
    dsp: 220,
    lut: 53_200,
    ff: 106_400,
};

/// The Digilent Arty Z7-20 — the other widespread low-cost XC7Z020
/// carrier (same Zynq-7020 fabric and 650 MHz dual Cortex-A9 as the
/// PYNQ-Z2, 512 MB DDR3). The multi-board cluster examples shard
/// across several of these.
pub const ARTY_Z7_20: Board = Board {
    name: "Digilent Arty Z7-20",
    os: "PYNQ Linux (Ubuntu 18.04)",
    cpu: "ARM Cortex-A9 @ 650MHz",
    ps_cores: 2,
    ps_clock_hz: 650_000_000,
    dram_bytes: 512 * 1024 * 1024,
    fpga: "Xilinx Zynq XC7Z020-1CLG400C",
    pl_clock_hz: 100_000_000,
    bram36: 140,
    dsp: 220,
    lut: 53_200,
    ff: 106_400,
};

/// The Digilent Arty Z7-10 — the entry-level sibling of the Z7-20 with
/// the smaller Zynq XC7Z010 fabric (60 BRAM36, 80 DSP48E1) around the
/// same 650 MHz dual Cortex-A9 PS. Heterogeneous racks pair it with an
/// XC7Z020 board: the partitioner must place the heavy ODE stages on
/// the bigger fabric, not wherever first-fit leaves them.
pub const ARTY_Z7_10: Board = Board {
    name: "Digilent Arty Z7-10",
    os: "PYNQ Linux (Ubuntu 18.04)",
    cpu: "ARM Cortex-A9 @ 650MHz",
    ps_cores: 2,
    ps_clock_hz: 650_000_000,
    dram_bytes: 512 * 1024 * 1024,
    fpga: "Xilinx Zynq XC7Z010-1CLG400C",
    pl_clock_hz: 100_000_000,
    bram36: 60,
    dsp: 80,
    lut: 17_600,
    ff: 35_200,
};

impl Board {
    /// Bytes of a single BRAM36 (36 kbit = 4 608 bytes).
    pub const BRAM36_BYTES: usize = 4608;
    /// Bytes of a BRAM18 half-block.
    pub const BRAM18_BYTES: usize = 2304;

    /// Total PL on-chip memory in bytes.
    pub fn bram_bytes(&self) -> usize {
        self.bram36 as usize * Self::BRAM36_BYTES
    }

    /// Seconds for `cycles` PL cycles.
    pub fn pl_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.pl_clock_hz as f64
    }

    /// Seconds for `cycles` PS cycles.
    pub fn ps_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.ps_clock_hz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_spec() {
        assert_eq!(PYNQ_Z2.ps_cores, 2);
        assert_eq!(PYNQ_Z2.ps_clock_hz, 650_000_000);
        assert_eq!(PYNQ_Z2.pl_clock_hz, 100_000_000);
        assert_eq!(PYNQ_Z2.dram_bytes, 512 << 20);
        assert!(PYNQ_Z2.fpga.contains("XC7Z020"));
    }

    #[test]
    fn xc7z020_fabric() {
        assert_eq!(PYNQ_Z2.bram36, 140);
        assert_eq!(PYNQ_Z2.dsp, 220);
        assert_eq!(PYNQ_Z2.lut, 53_200);
        assert_eq!(PYNQ_Z2.ff, 106_400);
        // 140 × 36kbit = 630 KB of on-chip RAM.
        assert_eq!(PYNQ_Z2.bram_bytes(), 645_120);
    }

    #[test]
    fn arty_shares_the_xc7z020_fabric() {
        assert_eq!(ARTY_Z7_20.bram36, PYNQ_Z2.bram36);
        assert_eq!(ARTY_Z7_20.dsp, PYNQ_Z2.dsp);
        assert_eq!(ARTY_Z7_20.ps_clock_hz, PYNQ_Z2.ps_clock_hz);
        assert!(ARTY_Z7_20.fpga.contains("XC7Z020"));
        assert_ne!(ARTY_Z7_20.name, PYNQ_Z2.name);
    }

    #[test]
    fn arty_z7_10_is_the_smaller_fabric() {
        // XC7Z010: 60 BRAM36 / 80 DSP / 17.6k LUT / 35.2k FF — under
        // half the XC7Z020 on every axis, same PS.
        assert!(ARTY_Z7_10.fpga.contains("XC7Z010"));
        assert_eq!(ARTY_Z7_10.bram36, 60);
        assert_eq!(ARTY_Z7_10.dsp, 80);
        assert_eq!(ARTY_Z7_10.lut, 17_600);
        assert_eq!(ARTY_Z7_10.ff, 35_200);
        assert_eq!(ARTY_Z7_10.ps_clock_hz, ARTY_Z7_20.ps_clock_hz);
        assert_eq!(ARTY_Z7_10.pl_clock_hz, ARTY_Z7_20.pl_clock_hz);
    }

    #[test]
    fn clock_conversions() {
        assert_eq!(PYNQ_Z2.pl_seconds(100_000_000), 1.0);
        assert_eq!(PYNQ_Z2.ps_seconds(650_000_000), 1.0);
    }
}
