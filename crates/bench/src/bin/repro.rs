//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p bench --bin repro -- <command> [flags]
//!
//! Commands
//!   table1        PYNQ-Z2 specification (Table 1)
//!   table2        ODENet network structure and parameter sizes (Table 2)
//!   table3        FPGA resource utilization (Table 3)
//!   table4        Network structure of all variants (Table 4)
//!   table5        Execution time and speedups (Table 5)
//!   fig5          Parameter size vs depth (Figure 5)
//!   fig6          Accuracy of the variants, scaled training (Figure 6)
//!   cycles        layer3_2 conv cycles vs parallelism (§3.1)
//!   reductions    Parameter-reduction quotes (§4.2)
//!   amdahl        Offload-ratio analysis & what-if clocks (§4.4)
//!   bitexact      PL simulation vs Q20 software bit-exactness check
//!   quantization  Extension: accuracy vs fixed-point width ablation
//!   macpolicy     Extension: accumulator-policy ablation
//!   solver        Extension: Euler vs RK2/RK4 + adjoint-gap ablation
//!   planner       Extension: latency-optimal offload plans vs paper
//!   widths        Extension: footnote-2 width sweep — what each PL word
//!                 format lets the planner place, from cached plans
//!   energy        Extension: first-order energy-per-inference model
//!   engine        Extension: Engine deployment API — setup amortization
//!                 (one-shot vs reused) and batch serving throughput
//!   cluster       Extension: multi-board sharding — 1-board vs 2-board
//!                 Table-5-style comparison and the pipelined batch
//!                 schedule vs the additive one
//!   partition     Extension: cost-driven partitioner — first-fit vs
//!                 balanced-makespan per-board busy time and batch-32
//!                 pipelined throughput on a heterogeneous rack
//!   replicate     Extension: replication layer — per-replica busy,
//!                 bottleneck, and batch-32 table for stage replicas on
//!                 a 3×Arty rack, plus data-parallel placement groups
//!                 judged by goodput at 1.2× offered load
//!   calibrate     Extension: per-stage precision policy — train a small
//!                 synthcifar network, measure activation ranges, and
//!                 compare Uniform Q20 / Uniform Q16 / Calibrated mixed
//!                 (chosen frac per stage, DMA words, test accuracy)
//!   serve         Extension: online serving — Poisson load sweep over
//!                 the 2-board ODENet-20 pipeline (load/latency curve)
//!                 and a dispatch-policy face-off at half the ceiling
//!   trace         Extension: observability — serve the replicated
//!                 3×Arty rack with event tracing on, print the
//!                 per-resource stall-attribution table, and export the
//!                 Chrome-trace JSON artifact (chrome://tracing /
//!                 Perfetto)
//!   hotpath       Extension: PS hot-path face-off — measured wall-clock
//!                 seconds per PS stage (scalar reference kernels vs the
//!                 im2col/GEMM fast path, bit-identical logits) plus
//!                 end-to-end batch-32 on the PsSoftware backend, the
//!                 configuration the ≥2× speedup pin guards
//!   faults        Extension: fault injection & failover — kill one
//!                 placement group's board mid-run on the 4-board rack
//!                 and compare the fault-free and faulted serves: the
//!                 recovery window (detect + drain + re-broadcast),
//!                 availability, and the goodput retained after the
//!                 survivors replan
//!   all           Everything except the slow fig6 full sweep
//!
//! Flags
//!   --n=<depth>      Depth for table2/table4/amdahl (default 56)
//!   --epochs=<e>     Override fig6 epochs
//!   --full           fig6: the full (slow) sweep over N = 20..56
//!   --seed=<s>       RNG seed (default 42)
//!   --images=<k>     serve/trace: stream length (default 256);
//!                 hotpath: end-to-end batch size (default 32)
//!   --out=<path>     Artifact file: `trace` writes its JSON there
//!                 (default results/trace.json); every other command
//!                 appends its markdown tables there instead of being
//!                 stdout-only
//!
//! An unknown flag or a malformed value is a typed error: repro prints
//! what it got, the flags it knows, and exits with status 2.
//! ```

use bench::{pct2, s2, Table};
use cifar_data::synth::{generate_split, SynthConfig};
use qfixed::{Mac, MacPolicy, QFormat, Q20};
use rodenet::params::{block_kb, reduction_vs_resnet, spec_kb, spec_params, table2};
use rodenet::train::{evaluate, train_epochs, TrainConfig};
use rodenet::{BnMode, GradMode, LayerName, NetSpec, Network, Variant, PAPER_DEPTHS};
use tensor::{Shape4, Tensor};
use zynq_sim::planner::{plan_offload, plan_offload_extended, OffloadTarget};
use zynq_sim::resources::{layer_geom, ode_block_resources};
use zynq_sim::timing::{paper_row, speedup_vs_resnet, table5_row, PlModel, PsModel};
use zynq_sim::{conv_cycles, OdeBlockAccel, PowerModel, PYNQ_Z2};

struct Flags {
    n: usize,
    epochs: Option<usize>,
    full: bool,
    seed: u64,
    images: Option<usize>,
    out: Option<std::path::PathBuf>,
}

/// A typed CLI error instead of a panic: `main` prints it with the
/// known-flag list and exits with status 2.
#[derive(Debug, PartialEq, Eq)]
enum FlagError {
    /// The flag isn't one repro knows.
    Unknown(String),
    /// The flag is known but its value didn't parse.
    BadValue {
        flag: &'static str,
        expected: &'static str,
        got: String,
    },
}

impl std::fmt::Display for FlagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlagError::Unknown(flag) => write!(f, "unknown flag '{flag}'"),
            FlagError::BadValue {
                flag,
                expected,
                got,
            } => write!(f, "flag --{flag} expects {expected}, got '{got}'"),
        }
    }
}

/// The flag synopsis `main` prints alongside a [`FlagError`].
const KNOWN_FLAGS: &str = "--n=<depth> --epochs=<e> --full --seed=<s> --images=<k> --out=<path>";

fn parse_flags(args: &[String]) -> Result<Flags, FlagError> {
    let mut f = Flags {
        n: 56,
        epochs: None,
        full: false,
        seed: 42,
        images: None,
        out: None,
    };
    let bad = |flag: &'static str, expected: &'static str, got: &str| FlagError::BadValue {
        flag,
        expected,
        got: got.to_string(),
    };
    for a in args {
        if let Some(v) = a.strip_prefix("--n=") {
            f.n = v.parse().map_err(|_| bad("n", "a depth", v))?;
        } else if let Some(v) = a.strip_prefix("--epochs=") {
            f.epochs = Some(v.parse().map_err(|_| bad("epochs", "an epoch count", v))?);
        } else if a == "--full" {
            f.full = true;
        } else if let Some(v) = a.strip_prefix("--seed=") {
            f.seed = v.parse().map_err(|_| bad("seed", "a u64 seed", v))?;
        } else if let Some(v) = a.strip_prefix("--images=") {
            f.images = Some(v.parse().map_err(|_| bad("images", "an image count", v))?);
        } else if let Some(v) = a.strip_prefix("--out=") {
            if v.is_empty() {
                return Err(bad("out", "a file path", v));
            }
            f.out = Some(std::path::PathBuf::from(v));
        } else {
            return Err(FlagError::Unknown(a.clone()));
        }
    }
    Ok(f)
}

/// Every dispatchable command, in the order the module docs list them.
/// `main` resolves names against this table, so an unknown command can
/// print the real list instead of a bare error — and the smoke test
/// below asserts the table never silently drifts from the docs.
type Command = (&'static str, fn(&Flags));

fn command_registry() -> Vec<Command> {
    vec![
        ("table1", |_| table1()),
        ("table2", |f| table2_cmd(f.n)),
        ("table3", |_| table3_cmd()),
        ("table4", |f| table4_cmd(f.n)),
        ("table5", |_| table5_cmd()),
        ("fig5", |_| fig5_cmd()),
        ("fig6", fig6_cmd),
        ("cycles", |_| cycles_cmd()),
        ("reductions", |_| reductions_cmd()),
        ("amdahl", |f| amdahl_cmd(f.n)),
        ("bitexact", |f| bitexact_cmd(f.seed)),
        ("quantization", quantization_cmd),
        ("macpolicy", |_| macpolicy_cmd()),
        ("solver", solver_cmd),
        ("planner", |_| planner_cmd()),
        ("widths", |f| widths_cmd(f.n)),
        ("energy", |_| energy_cmd()),
        ("engine", |f| engine_cmd(f.seed)),
        ("cluster", |_| cluster_cmd()),
        ("partition", |_| partition_cmd()),
        ("replicate", |_| replicate_cmd()),
        ("calibrate", calibrate_cmd),
        ("serve", serve_cmd),
        ("trace", trace_cmd),
        ("hotpath", hotpath_cmd),
        ("faults", faults_cmd),
        ("all", all_cmd),
    ]
}

fn all_cmd(flags: &Flags) {
    table1();
    table2_cmd(flags.n);
    table3_cmd();
    table4_cmd(flags.n);
    table5_cmd();
    fig5_cmd();
    cycles_cmd();
    reductions_cmd();
    amdahl_cmd(flags.n);
    bitexact_cmd(flags.seed);
    macpolicy_cmd();
    planner_cmd();
    widths_cmd(flags.n);
    energy_cmd();
    engine_cmd(flags.seed);
    cluster_cmd();
    partition_cmd();
    replicate_cmd();
    serve_cmd(flags);
    trace_cmd(flags);
    hotpath_cmd(flags);
    faults_cmd(flags);
    println!("\n(run `repro fig6`, `repro quantization`, `repro solver`, `repro calibrate` separately — they train networks)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(|s| s.as_str()).unwrap_or("help");
    let flags = match parse_flags(&args[1.min(args.len())..]) {
        Ok(flags) => flags,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("known flags: {KNOWN_FLAGS}");
            std::process::exit(2);
        }
    };
    // `trace` writes its JSON artifact to --out itself; for every other
    // command --out collects the emitted markdown tables in one file.
    if cmd != "trace" {
        bench::set_artifact_sink(flags.out.clone());
    }
    let registry = command_registry();
    match registry.iter().find(|(name, _)| *name == cmd) {
        Some((_, run)) => run(&flags),
        None => {
            let known: Vec<&str> = registry.iter().map(|(name, _)| *name).collect();
            println!("unknown command '{cmd}'");
            println!("known commands: {}", known.join(", "));
            println!("(see the module docs in repro.rs for what each one regenerates)");
        }
    }
}

fn table1() {
    let b = PYNQ_Z2;
    let mut t = Table::new(
        "Table 1: Specification of PYNQ-Z2 board",
        &["Item", "Value"],
    );
    t.row(vec!["OS".into(), b.os.into()]);
    t.row(vec!["CPU".into(), format!("{} × {}", b.cpu, b.ps_cores)]);
    t.row(vec![
        "DRAM".into(),
        format!("{}MB (DDR3)", b.dram_bytes >> 20),
    ]);
    t.row(vec!["FPGA".into(), b.fpga.into()]);
    t.row(vec![
        "PL clock".into(),
        format!("{}MHz", b.pl_clock_hz / 1_000_000),
    ]);
    t.emit("table1");
}

fn table2_cmd(n: usize) {
    let mut t = Table::new(
        &format!("Table 2: Network structure of ODENet (N = {n})"),
        &[
            "Layer",
            "Output size",
            "Parameter size [kB]",
            "# executions per block",
        ],
    );
    for row in table2(n) {
        let (c, hw) = row.out;
        let size = if row.layer == LayerName::Fc {
            format!("1×{c}")
        } else {
            format!("{hw}×{hw}, {c}ch")
        };
        t.row(vec![
            row.layer.name().into(),
            size,
            format!("{:.2}", row.kb),
            row.execs.to_string(),
        ]);
    }
    t.emit("table2");
    println!("paper: 1.86 / 19.84 / 55.81 / 76.54 / 222.21 / 300.54 / 26.00 kB");
}

fn table3_cmd() {
    let mut t = Table::new(
        "Table 3: Resource utilization on Zynq XC7Z020 (paper synthesis for LUT/FF)",
        &["Layer", "Parallelism", "BRAM", "DSP", "LUT", "FF"],
    );
    for layer in [LayerName::Layer1, LayerName::Layer2_2, LayerName::Layer3_2] {
        for n in [1usize, 4, 8, 16] {
            let r = ode_block_resources(layer, n);
            let [b, d, l, f] = r.utilization(&PYNQ_Z2);
            t.row(vec![
                layer.name().into(),
                format!("conv_x{n}"),
                format!("{} ({:.2}%)", r.bram36_used(), b),
                format!("{} ({:.2}%)", r.dsp, d),
                format!("{} ({:.2}%)", r.lut, l),
                format!("{} ({:.2}%)", r.ff, f),
            ]);
        }
    }
    t.emit("table3");
}

fn table4_cmd(n: usize) {
    let mut t = Table::new(
        &format!("Table 4: # stacked blocks / # executions per block (N = {n})"),
        &[
            "Layer",
            "ResNet",
            "ODENet",
            "rODENet-1",
            "rODENet-2",
            "rODENet-1+2",
            "rODENet-3",
            "Hybrid-3",
        ],
    );
    let specs: Vec<NetSpec> = Variant::ALL.iter().map(|&v| NetSpec::new(v, n)).collect();
    for layer in LayerName::ALL {
        let mut cells = vec![layer.name().to_string()];
        for spec in &specs {
            let p = spec.plan(layer);
            cells.push(format!("{} / {}", p.stacked, p.execs));
        }
        t.row(cells);
    }
    t.emit("table4");
}

fn table5_cmd() {
    // Every cell is served from a cached `DeploymentPlan` — placement,
    // feasibility, and the full latency decomposition resolve without
    // touching a weight or running a single inference, so this command
    // is instant (the plan is what `Engine::latency_report` would hold).
    use zynq_sim::plan::{plan_deployment, PlanRequest};
    let mut t = Table::new(
        "Table 5: Execution time of ResNet, ODENet and rODENet variants (PS: Cortex-A9@650MHz, PL: conv_x16@100MHz)",
        &[
            "Model",
            "N",
            "Offload target",
            "Total w/o PL [s]",
            "Target w/o PL [s]",
            "Ratio of target [%]",
            "Target w/ PL [s]",
            "Total w/ PL [s]",
            "Overall speedup",
        ],
    );
    let order = [
        Variant::ResNet,
        Variant::ROdeNet1,
        Variant::ROdeNet2,
        Variant::ROdeNet12,
        Variant::ROdeNet3,
        Variant::OdeNet,
        Variant::Hybrid3,
    ];
    for v in order {
        for n in PAPER_DEPTHS {
            let spec = NetSpec::new(v, n);
            let plan = plan_deployment(
                &spec,
                &PlanRequest {
                    offload: zynq_sim::engine::Offload::Target(OffloadTarget::paper_default(v)),
                    ..PlanRequest::default()
                },
            )
            .expect("every paper placement is deployable");
            let r = plan.table5().clone();
            let join = |vals: &[f64]| -> String {
                if vals.is_empty() {
                    "–".to_string()
                } else {
                    vals.iter().map(|x| s2(*x)).collect::<Vec<_>>().join(" / ")
                }
            };
            let joinp = |vals: &[f64]| -> String {
                if vals.is_empty() {
                    "–".to_string()
                } else {
                    vals.iter()
                        .map(|x| pct2(*x))
                        .collect::<Vec<_>>()
                        .join(" / ")
                }
            };
            let name = if v == Variant::OdeNet {
                "ODENet-3".to_string()
            } else {
                v.name().to_string()
            };
            t.row(vec![
                name,
                n.to_string(),
                r.offload
                    .iter()
                    .map(|l| l.name())
                    .collect::<Vec<_>>()
                    .join(" / "),
                s2(r.total_wo_pl),
                join(&r.targets_wo_pl),
                joinp(&r.ratio_pct),
                join(&r.targets_w_pl),
                s2(r.total_w_pl),
                if r.offload.is_empty() {
                    "–".into()
                } else {
                    format!("{:.2}", r.speedup)
                },
            ]);
        }
    }
    t.emit("table5");
    let r = paper_row(Variant::ROdeNet3, 56);
    println!(
        "rODENet-3-56: {:.2}× vs own software, {:.2}× vs software ResNet-56 (paper: 2.66 / 2.67)",
        r.speedup,
        speedup_vs_resnet(&r, &PsModel::Calibrated, &PYNQ_Z2)
    );
}

fn fig5_cmd() {
    let mut t = Table::new(
        "Figure 5: Parameter size [kB] of ResNet, ODENet and rODENet variants",
        &[
            "N",
            "ResNet",
            "ODENet",
            "rODENet-1",
            "rODENet-2",
            "rODENet-1+2",
            "rODENet-3",
            "Hybrid-3",
        ],
    );
    for n in PAPER_DEPTHS {
        let mut cells = vec![n.to_string()];
        for v in Variant::ALL {
            cells.push(format!("{:.1}", spec_kb(&NetSpec::new(v, n))));
        }
        t.row(cells);
    }
    t.emit("fig5");
}

fn fig6_cmd(flags: &Flags) {
    // Scaled Figure 6: train every variant on SynthCIFAR (see DESIGN.md
    // substitution 2/3) and report accuracy. The full CIFAR-100 protocol
    // is reproduced structurally (SGD, L2 1e-4, step LR) at reduced
    // scale; absolute accuracies are not comparable to the paper,
    // orderings and stability are.
    let depths: Vec<usize> = if flags.full {
        PAPER_DEPTHS.to_vec()
    } else {
        vec![20]
    };
    let hw = if flags.full { 32 } else { 16 };
    let per_class = if flags.full { 100 } else { 40 };
    let epochs = flags.epochs.unwrap_or(if flags.full { 30 } else { 8 });
    let classes = if flags.full { 20 } else { 5 };
    let cfg = SynthConfig {
        classes,
        per_class,
        hw,
        noise: 0.4,
        jitter: 2,
        seed: flags.seed,
    };
    let (train, test) = generate_split(&cfg, per_class / 3);
    println!(
        "fig6: SynthCIFAR {} train / {} test, {hw}×{hw}, {classes} classes, {epochs} epochs",
        train.len(),
        test.len()
    );
    let mut t = Table::new(
        "Figure 6 (scaled): final test accuracy per architecture",
        &["Model", "N", "train loss", "train acc", "test acc"],
    );
    for &n in &depths {
        for v in Variant::ALL {
            let spec = NetSpec::new(v, n).with_classes(classes);
            let mut net = Network::new(spec, flags.seed);
            let mut tc = TrainConfig::quick(epochs, 24);
            tc.seed = flags.seed;
            let hist = train_epochs(
                &mut net,
                &train.images,
                &train.labels,
                Some(&test.images),
                Some(&test.labels),
                tc,
            );
            let last = hist.last().expect("at least one epoch");
            t.row(vec![
                v.name().into(),
                n.to_string(),
                format!("{:.3}", last.train_loss),
                format!("{:.3}", last.train_acc),
                format!("{:.3}", last.test_acc),
            ]);
            println!(
                "  {}-{n}: loss {:.3} train {:.3} test {:.3}",
                v.name(),
                last.train_loss,
                last.train_acc,
                last.test_acc
            );
        }
    }
    t.emit("fig6");
}

fn cycles_cmd() {
    let mut t = Table::new(
        "§3.1: layer3_2 convolution cycles vs multiply-add units",
        &["Units", "Cycles (model)", "Mcycles", "Paper"],
    );
    let paper = [23.78, 6.07, 3.12, 1.64, 0.90];
    for (i, n) in [1usize, 4, 8, 16, 32].iter().enumerate() {
        let c = 2 * conv_cycles(layer_geom(LayerName::Layer3_2), *n);
        t.row(vec![
            format!("conv_x{n}"),
            c.to_string(),
            format!("{:.2}", c as f64 / 1e6),
            format!("{:.2}", paper[i]),
        ]);
    }
    t.emit("cycles");
}

fn reductions_cmd() {
    let mut t = Table::new(
        "§4.2: parameter-size reduction vs ResNet-N [%]",
        &["Variant", "N=20", "N=32", "N=44", "N=56", "Paper quote"],
    );
    let quotes = [
        (Variant::OdeNet, "36.24% (N=20), 79.54% (N=56)"),
        (Variant::ROdeNet1, "–"),
        (Variant::ROdeNet2, "–"),
        (Variant::ROdeNet12, "–"),
        (Variant::ROdeNet3, "43.29% (N=20), 81.80% (N=56)"),
        (Variant::Hybrid3, "26.43% (N=20), 60.16% (N=56)"),
    ];
    for (v, quote) in quotes {
        let mut cells = vec![v.name().to_string()];
        for n in PAPER_DEPTHS {
            cells.push(format!("{:.2}", reduction_vs_resnet(v, n)));
        }
        cells.push(quote.into());
        t.row(cells);
    }
    t.emit("reductions");
}

fn amdahl_cmd(n: usize) {
    // §4.4's implicit Amdahl analysis: overall speedup is bounded by the
    // offloaded fraction; rODENets widen that fraction by design.
    let mut t = Table::new(
        &format!("§4.4: Amdahl view at N = {n} (conv_x16)"),
        &[
            "Model",
            "Offloaded fraction [%]",
            "Stage speedup",
            "Overall speedup",
            "Amdahl bound",
        ],
    );
    for v in [
        Variant::ROdeNet1,
        Variant::ROdeNet2,
        Variant::ROdeNet12,
        Variant::ROdeNet3,
        Variant::OdeNet,
        Variant::Hybrid3,
    ] {
        let r = paper_row(v, n);
        let frac: f64 = r.ratio_pct.iter().sum::<f64>() / 100.0;
        let stage_speedup =
            r.targets_wo_pl.iter().sum::<f64>() / r.targets_w_pl.iter().sum::<f64>();
        let bound = 1.0 / (1.0 - frac);
        t.row(vec![
            v.name().into(),
            format!("{:.1}", frac * 100.0),
            format!("{:.2}", stage_speedup),
            format!("{:.2}", r.speedup),
            format!("{:.2}", bound),
        ]);
    }
    t.emit("amdahl");
}

fn bitexact_cmd(seed: u64) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new(
        "PL simulation vs Q20 software reference (bit-exactness)",
        &[
            "Layer",
            "Steps",
            "Elements",
            "Max |PL - Q20 ref|",
            "Bit-exact",
        ],
    );
    for (layer, steps) in [
        (LayerName::Layer1, 4usize),
        (LayerName::Layer2_2, 3),
        (LayerName::Layer3_2, 6),
    ] {
        let block = rodenet::ResBlock::new(&mut rng, layer, true);
        let (c, hw) = layer.geometry();
        let x = Tensor::<f32>::from_fn(Shape4::new(1, c, hw, hw), |_, _, _, _| {
            rng.random::<f32>() - 0.5
        });
        let xq: Tensor<Q20> = Tensor::from_f32_tensor(&x);
        let accel = OdeBlockAccel::new(&block, 16, &PYNQ_Z2);
        let run = accel.run_stage(&xq, steps);
        let reference = block.quantize::<Q20>().ode_forward(&xq, steps);
        let exact = run.output.as_slice() == reference.as_slice();
        t.row(vec![
            layer.name().into(),
            steps.to_string(),
            run.output.len().to_string(),
            format!("{:.2e}", run.output.max_abs_diff(&reference)),
            exact.to_string(),
        ]);
        assert!(exact, "bit-exactness violated for {layer}");
    }
    t.emit("bitexact");
}

fn quantization_cmd(flags: &Flags) {
    // Extension (paper footnote 2): reduced bit widths would let more
    // layers fit in BRAM. Train a small network, then quantize the ODE
    // block to several formats and measure output divergence + accuracy.
    let cfg = SynthConfig {
        classes: 4,
        per_class: 24,
        hw: 16,
        noise: 0.25,
        jitter: 2,
        seed: flags.seed,
    };
    let (train, test) = generate_split(&cfg, 8);
    let spec = NetSpec::new(Variant::ROdeNet3, 20).with_classes(4);
    let mut net = Network::new(spec, flags.seed);
    let mut tc = TrainConfig::quick(flags.epochs.unwrap_or(4), 16);
    tc.seed = flags.seed;
    let _ = train_epochs(&mut net, &train.images, &train.labels, None, None, tc);
    let base_acc = evaluate(&net, &test.images, &test.labels, 16, BnMode::OnTheFly);
    let mut t = Table::new(
        "Extension: fixed-point width ablation (rODENet-3-20 on SynthCIFAR)",
        &[
            "Format",
            "Weight bytes",
            "layer3_2 params fit in",
            "Weight quantization SQNR [dB]",
        ],
    );
    let block = &net
        .stage(LayerName::Layer3_2)
        .expect("layer3_2 present")
        .blocks[0];
    let weights: Vec<f64> = block.conv1.w.as_slice().iter().map(|&v| v as f64).collect();
    for (name, fmt) in [
        ("Q11.20 (paper)", QFormat::new(32, 20)),
        ("Q7.24", QFormat::new(32, 24)),
        ("Q7.8 (16-bit)", QFormat::new(16, 8)),
        ("Q3.12 (16-bit)", QFormat::new(16, 12)),
        ("Q3.4 (8-bit)", QFormat::new(8, 4)),
    ] {
        let bytes = rodenet::params::block_bytes(LayerName::Layer3_2, true, 4, fmt.bytes());
        let brams = zynq_sim::resources::bram36_at_width(LayerName::Layer3_2, 16, fmt.bytes());
        t.row(vec![
            name.into(),
            bytes.to_string(),
            format!("{brams} BRAM36 (full circuit)"),
            format!("{:.1}", fmt.sqnr_db(&weights)),
        ]);
    }
    t.emit("quantization");
    println!("float32 test accuracy of the trained model: {base_acc:.3}");
    println!("(lower widths halve BRAM but lose SQNR — the paper's footnote-2 trade-off)");
}

fn macpolicy_cmd() {
    // Extension: accumulator construction. WideAccumulate (DSP cascade)
    // truncates once per output; TruncateEach loses precision per product.
    let mut t = Table::new(
        "Extension: MAC accumulator policy divergence (1024-term dot products)",
        &["Policy", "Mean |error| vs f64", "Max |error| vs f64"],
    );
    for policy in [MacPolicy::WideAccumulate, MacPolicy::TruncateEach] {
        let mut sum_err = 0.0f64;
        let mut max_err = 0.0f64;
        let trials = 50;
        for t_i in 0..trials {
            let mut mac = Mac::<20>::new(policy);
            let mut exact = 0.0f64;
            for i in 0..1024 {
                let a = ((i * 31 + t_i * 17) % 997) as f64 / 997.0 - 0.5;
                let b = ((i * 57 + t_i * 23) % 991) as f64 / 991.0 - 0.5;
                let (qa, qb) = (Q20::from_f64(a), Q20::from_f64(b));
                mac.mac(qa, qb);
                exact += qa.to_f64() * qb.to_f64();
            }
            let err = (mac.finish().to_f64() - exact).abs();
            sum_err += err;
            max_err = max_err.max(err);
        }
        t.row(vec![
            format!("{policy:?}"),
            format!("{:.3e}", sum_err / trials as f64),
            format!("{max_err:.3e}"),
        ]);
    }
    t.emit("macpolicy");
}

fn solver_cmd(flags: &Flags) {
    use odesolve::{ode_solve, ClosureField, Method, SolveOpts};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    // Extension (paper future work): more accurate ODE solvers on the
    // same block dynamics, plus the adjoint-vs-unrolled gradient gap the
    // paper cites as its accuracy-loss issue.
    let mut rng = StdRng::seed_from_u64(flags.seed);
    let block = rodenet::ResBlock::new(&mut rng, LayerName::Layer1, true);
    let z0 = Tensor::<f32>::from_fn(Shape4::new(1, 16, 8, 8), |_, _, _, _| {
        rng.random::<f32>() - 0.5
    });
    let field = ClosureField::new(|z: &Tensor<f32>, t: f32| block.f_eval(z, t, BnMode::OnTheFly));
    // Ground truth: very fine RK4.
    let truth = ode_solve(&field, &z0, SolveOpts::new(0.0, 1.0, 256, Method::Rk4));
    let mut t = Table::new(
        "Extension: solver accuracy on one trained-shape ODE block (state error vs fine RK4)",
        &["Steps M", "Euler", "Midpoint (RK2)", "RK4"],
    );
    for steps in [1usize, 2, 4, 8, 16] {
        let mut cells = vec![steps.to_string()];
        for method in [Method::Euler, Method::Midpoint, Method::Rk4] {
            let z = ode_solve(&field, &z0, SolveOpts::new(0.0, 1.0, steps, method));
            cells.push(format!("{:.2e}", z.max_abs_diff(&truth)));
        }
        t.row(cells);
    }
    t.emit("solver");

    // Adjoint-vs-unrolled gradient agreement: the gap shrinks with N
    // (more solver steps), matching the paper's small-N instability.
    let cfg = SynthConfig {
        classes: 3,
        per_class: 4,
        hw: 16,
        noise: 0.25,
        jitter: 1,
        seed: flags.seed,
    };
    let data = cifar_data::synth::generate(&cfg);
    let mut t2 = Table::new(
        "Extension: adjoint vs unrolled gradient cosine similarity (ODENet-N)",
        &["N", "cosine(grad_adjoint, grad_unrolled)"],
    );
    for n in [20usize, 56] {
        let spec = NetSpec::new(Variant::OdeNet, n).with_classes(3);
        let grads = |mode: GradMode| -> Vec<f32> {
            let mut net = Network::new(spec, flags.seed);
            let (logits, cache) = net.forward_train(&data.images, mode);
            let (_, g) = tensor::softmax::cross_entropy(&logits, &data.labels);
            net.zero_grads();
            net.backward(&g, &cache);
            let mut out = Vec::new();
            net.visit_params(&mut |p| out.extend_from_slice(p.g));
            out
        };
        let gu = grads(GradMode::Unrolled);
        let ga = grads(GradMode::Adjoint);
        let dot: f64 = gu
            .iter()
            .zip(&ga)
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let nu: f64 = gu.iter().map(|a| (*a as f64).powi(2)).sum::<f64>().sqrt();
        let na: f64 = ga.iter().map(|a| (*a as f64).powi(2)).sum::<f64>().sqrt();
        t2.row(vec![
            n.to_string(),
            format!("{:.5}", dot / (nu * na).max(1e-30)),
        ]);
    }
    t2.emit("solver_adjoint_gap");
}

fn planner_cmd() {
    let ps = PsModel::Calibrated;
    let pl = PlModel::default();
    let mut t = Table::new(
        "Extension: latency-optimal offload plans vs the paper's placement (N = 56)",
        &[
            "Model",
            "Paper target",
            "Planned (ODE-only)",
            "Planned (extended)",
            "Paper total [s]",
            "Planned total [s]",
        ],
    );
    for v in [
        Variant::ROdeNet1,
        Variant::ROdeNet2,
        Variant::ROdeNet12,
        Variant::ROdeNet3,
        Variant::OdeNet,
        Variant::Hybrid3,
    ] {
        let spec = NetSpec::new(v, 56);
        let paper = OffloadTarget::paper_default(v);
        let planned = plan_offload(&spec, &PYNQ_Z2, 16, &ps, &pl);
        let extended = plan_offload_extended(&spec, &PYNQ_Z2, 16, &ps, &pl);
        let t_paper = table5_row(v, 56, &paper, &ps, &pl, &PYNQ_Z2).total_w_pl;
        let t_ext = table5_row(v, 56, &extended, &ps, &pl, &PYNQ_Z2).total_w_pl;
        t.row(vec![
            v.name().into(),
            format!("{paper:?}"),
            format!("{planned:?}"),
            format!("{extended:?}"),
            s2(t_paper),
            s2(t_ext),
        ]);
    }
    t.emit("planner");
    let _ = (
        spec_params(&NetSpec::new(Variant::ResNet, 20)),
        block_kb(LayerName::Fc, false, 100),
    );
}

fn engine_cmd(seed: u64) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::time::Instant;
    use zynq_sim::engine::{BatchSummary, Engine, Offload};
    // Extension: the Engine deployment API. Two things to show:
    // (1) host-side setup amortization — the legacy free function
    //     re-plans and re-quantizes per call, the engine once;
    // (2) batch serving — accumulated modelled PS/PL/DMA timing.
    let mut rng = StdRng::seed_from_u64(seed);
    let net = Network::new(NetSpec::new(Variant::ROdeNet3, 20).with_classes(10), seed);
    // Thumbnail extent keeps each Q20 inference short enough that the
    // fixed per-call setup (planning + quantization) is visible over
    // measurement noise; the modelled board timing is extent-independent.
    let images: Vec<Tensor<f32>> = (0..8)
        .map(|_| {
            Tensor::from_fn(Shape4::new(1, 3, 8, 8), |_, _, _, _| {
                rng.random::<f32>() - 0.5
            })
        })
        .collect();

    let engine = Engine::builder(&net)
        .offload(Offload::Target(OffloadTarget::Layer32))
        .build()
        .expect("layer3_2 fits the fabric");
    println!("\n## Engine deployment API\n");
    println!("configuration: {}", engine.describe());

    // (1) one-shot legacy path vs reused engine, host wall-clock.
    let reps = 10usize;
    let t0 = Instant::now();
    for _ in 0..reps {
        for x in &images {
            #[allow(deprecated)]
            let run = zynq_sim::run_hybrid(
                &net,
                x,
                OffloadTarget::Layer32,
                &PsModel::Calibrated,
                &PlModel::default(),
                &PYNQ_Z2,
            );
            std::hint::black_box(run);
        }
    }
    let one_shot = t0.elapsed().as_secs_f64() / (reps * images.len()) as f64;
    let t1 = Instant::now();
    for _ in 0..reps {
        for x in &images {
            std::hint::black_box(engine.infer(x).expect("CIFAR-shaped input"));
        }
    }
    let reused = t1.elapsed().as_secs_f64() / (reps * images.len()) as f64;
    let mut t = Table::new(
        "Engine setup amortization (host wall-clock per image, rODENet-3-20)",
        &["Path", "ms/image", "vs one-shot"],
    );
    t.row(vec![
        "one-shot run_hybrid".into(),
        format!("{:.2}", one_shot * 1e3),
        "1.00x".into(),
    ]);
    t.row(vec![
        "reused Engine::infer".into(),
        format!("{:.2}", reused * 1e3),
        format!("{:.2}x", one_shot / reused.max(f64::MIN_POSITIVE)),
    ]);
    t.emit("engine_amortization");

    // (2) batch serving with accumulated modelled timing.
    let mut t2 = Table::new(
        "Batch serving (modelled board time, accumulated)",
        &[
            "Batch",
            "Total [s]",
            "PS [s]",
            "PL [s]",
            "DMA words",
            "img/s (modelled)",
        ],
    );
    for batch in [1usize, 4, 8] {
        let runs = engine.infer_batch(&images[..batch]).expect("batch");
        let s = BatchSummary::from_runs(&runs);
        t2.row(vec![
            batch.to_string(),
            format!("{:.3}", s.total_seconds()),
            format!("{:.3}", s.ps_seconds),
            format!("{:.3}", s.pl_seconds),
            s.dma_words.to_string(),
            format!("{:.2}", s.throughput()),
        ]);
    }
    t2.emit("engine_batch");
}

fn widths_cmd(n: usize) {
    // Footnote 2 through the deployment API: sweep the PL word format
    // and let the width-aware planner choose. Everything below comes
    // from `DeploymentPlan`s — no weights, no numerics.
    use zynq_sim::plan::{plan_deployment, PlFormat, PlanRequest};
    let mut t = Table::new(
        &format!("Extension: PL word-width sweep, planner-chosen placement (ODENet-{n}, conv_x16)"),
        &[
            "PL format",
            "Planned placement",
            "PL stages",
            "BRAM36",
            "DMA words",
            "Total w/ PL [s]",
            "Executable",
        ],
    );
    let spec = NetSpec::new(Variant::OdeNet, n);
    for format in [
        PlFormat::Q20,
        PlFormat::Custom(QFormat::new(32, 24)),
        PlFormat::Q16 { frac: 12 },
        PlFormat::Q16 { frac: 10 },
        PlFormat::Custom(QFormat::new(8, 4)),
    ] {
        let plan = plan_deployment(
            &spec,
            &PlanRequest {
                precision: format.into(),
                ..PlanRequest::default()
            },
        )
        .expect("all widths plan");
        t.row(vec![
            format.to_string(),
            format!("{:?}", plan.target()),
            plan.stages().len().to_string(),
            format!("{:.1}", plan.bram36_used()),
            plan.dma_words().to_string(),
            s2(plan.total_seconds()),
            if format.has_datapath() {
                "yes".into()
            } else {
                "plan-only".into()
            },
        ]);
    }
    t.emit("widths");
    println!(
        "(footnote 2: \"using reduced bit widths (e.g., 16-bit or less) can implement more \
         layers in PL part\" — at 16-bit the planner places all three ODE layers)"
    );
}

fn energy_cmd() {
    // Extension: the paper's intro motivates FPGAs as energy-efficient;
    // quantify it with the first-order PowerModel (illustrative
    // constants — compare ratios, not joules).
    let pm = PowerModel::default();
    let mut t = Table::new(
        "Extension: energy per inference at N = 56 (illustrative power model)",
        &[
            "Model",
            "Offload",
            "Time [s]",
            "PS [J]",
            "PL [J]",
            "Total [J]",
            "vs ResNet sw",
        ],
    );
    let base = {
        let row = paper_row(Variant::ResNet, 56);
        pm.energy(&row, &[], &PYNQ_Z2).total_joules
    };
    for v in [
        Variant::ResNet,
        Variant::ROdeNet1,
        Variant::ROdeNet2,
        Variant::ROdeNet3,
        Variant::Hybrid3,
    ] {
        let row = paper_row(v, 56);
        let resources: Vec<_> = row
            .offload
            .iter()
            .map(|&l| ode_block_resources(l, 16))
            .collect();
        let e = pm.energy(&row, &resources, &PYNQ_Z2);
        t.row(vec![
            v.name().into(),
            if row.offload.is_empty() {
                "–".into()
            } else {
                row.offload
                    .iter()
                    .map(|l| l.name())
                    .collect::<Vec<_>>()
                    .join("+")
            },
            s2(row.total_w_pl),
            format!("{:.3}", e.ps_joules),
            format!("{:.3}", e.pl_joules),
            format!("{:.3}", e.total_joules),
            format!("{:.2}x", base / e.total_joules),
        ]);
    }
    t.emit("energy");
}

fn cluster_cmd() {
    use zynq_sim::engine::Offload;
    use zynq_sim::plan::PlFormat;
    use zynq_sim::{
        plan_cluster, Cluster, ClusterRequest, Interconnect, Replication, Schedule, ARTY_Z7_20,
    };

    let request = |boards: usize| ClusterRequest {
        cluster: Cluster::homogeneous(&ARTY_Z7_20, boards, Interconnect::GIGABIT_ETHERNET),
        offload: Offload::Auto,
        bn: BnMode::OnTheFly,
        ps: PsModel::Calibrated,
        pl: PlModel::default(),
        precision: PlFormat::Q20.into(),
        schedule: Schedule::Pipelined,
        partitioner: zynq_sim::Partitioner::FirstFit,
        replication: Replication::None,
    };
    let shards = |plan: &zynq_sim::ClusterPlan| -> String {
        if plan.shards().is_empty() {
            "–".into()
        } else {
            plan.shards()
                .iter()
                .map(|s| format!("b{}:{:?}", s.board, s.target))
                .collect::<Vec<_>>()
                .join(" ")
        }
    };

    // Per-image view over the paper's depths: what a second board buys
    // (everything below is served from plans — zero numerics).
    let mut t = Table::new(
        "Extension: multi-board sharding — ODENet-N on 1 vs 2 Arty Z7-20 (Q20, conv_x16, GigE)",
        &[
            "N",
            "1-board shards",
            "1-board [s/img]",
            "2-board shards",
            "2-board [s/img]",
            "interconnect [ms]",
        ],
    );
    for n in PAPER_DEPTHS {
        let spec = NetSpec::new(Variant::OdeNet, n);
        let one = plan_cluster(&spec, &request(1)).expect("1-board plans");
        let two = plan_cluster(&spec, &request(2)).expect("2-board plans");
        t.row(vec![
            n.to_string(),
            shards(&one),
            s2(one.total_seconds()),
            shards(&two),
            s2(two.total_seconds()),
            format!("{:.3}", two.transfer_seconds() * 1e3),
        ]);
    }
    t.emit("cluster");
    println!(
        "(at Q20 a single XC7Z020 cannot host layer3_2 alongside anything — the second \
         board unlocks the AllOde placement the paper's footnote 2 reaches via 16-bit)"
    );

    // Batch-of-32 schedules on the 2-board chain: additive vs
    // event-driven pipelining (PS of image i+1 overlaps PL of image i).
    let mut t2 = Table::new(
        "Extension: batch-of-32 schedule on 2 Arty Z7-20 — Sequential vs Pipelined",
        &[
            "N",
            "sequential [s]",
            "pipelined [s]",
            "seq [img/s]",
            "pipe [img/s]",
            "latency p50 [s]",
            "latency max [s]",
            "speedup",
        ],
    );
    const BATCH: usize = 32;
    for n in PAPER_DEPTHS {
        let spec = NetSpec::new(Variant::OdeNet, n);
        let plan = plan_cluster(&spec, &request(2)).expect("plans");
        let seq = plan.batch_seconds(BATCH, Schedule::Sequential);
        let run = zynq_sim::cluster::pipelined_schedule(plan.timeline(), BATCH);
        t2.row(vec![
            n.to_string(),
            s2(seq),
            s2(run.makespan),
            format!("{:.2}", BATCH as f64 / seq),
            format!("{:.2}", BATCH as f64 / run.makespan),
            s2(run.latency_p50()),
            s2(run.latency_max()),
            format!("{:.2}x", seq / run.makespan),
        ]);
    }
    t2.emit("cluster_schedule");
    println!(
        "(assumptions: head-board PS runs all software stages without preemption, one \
         in-flight image per board, transfers occupy no compute resource)"
    );
}

fn partition_cmd() {
    use zynq_sim::engine::Offload;
    use zynq_sim::plan::PlFormat;
    use zynq_sim::{
        plan_cluster, Cluster, ClusterRequest, Interconnect, Partitioner, Replication, Schedule,
        ARTY_Z7_10, ARTY_Z7_20,
    };

    // The partitioner story on a heterogeneous rack: an XC7Z020 head
    // (Arty Z7-20) next to the half-size XC7Z010 of an Arty Z7-10, at
    // the footnote-2 16-bit width where all three ODE circuits fit the
    // head alone — which is exactly the trap first-fit walks into.
    let request = |partitioner: Partitioner| ClusterRequest {
        cluster: Cluster::new(vec![ARTY_Z7_20, ARTY_Z7_10], Interconnect::GIGABIT_ETHERNET),
        offload: Offload::Auto,
        bn: BnMode::OnTheFly,
        ps: PsModel::Calibrated,
        pl: PlModel::default(),
        precision: PlFormat::Q16 { frac: 10 }.into(),
        schedule: Schedule::Pipelined,
        partitioner,
        replication: Replication::None,
    };
    let spec = NetSpec::new(Variant::OdeNet, 56);
    let mut t = Table::new(
        "Extension: cost-driven partitioner — ODENet-56 on Arty Z7-20 + Arty Z7-10 (Q5.10, conv_x16, GigE)",
        &[
            "Partitioner",
            "Shards",
            "Busy per resource [s]",
            "Bottleneck [s]",
            "Batch-32 pipelined [s]",
            "img/s",
        ],
    );
    const BATCH: usize = 32;
    let mut makespans = Vec::new();
    for partitioner in [Partitioner::FirstFit, Partitioner::BalancedMakespan] {
        let plan = plan_cluster(&spec, &request(partitioner)).expect("the rack fits AllOde at Q16");
        let shards = plan
            .shards()
            .iter()
            .map(|s| format!("b{}:{:?}", s.board, s.target))
            .collect::<Vec<_>>()
            .join(" ");
        let busy = plan
            .resource_busy()
            .iter()
            .map(|&(r, b)| format!("{} {b:.2}", zynq_sim::trace::resource_label(r)))
            .collect::<Vec<_>>()
            .join(" | ");
        let makespan = plan.batch_seconds(BATCH, Schedule::Pipelined);
        makespans.push(makespan);
        t.row(vec![
            format!("{partitioner:?}"),
            shards,
            busy,
            format!("{:.3}", plan.bottleneck_seconds()),
            s2(makespan),
            format!("{:.2}", BATCH as f64 / makespan),
        ]);
    }
    t.emit("partition");
    println!(
        "(BalancedMakespan puts the heavy layer2_2+layer3_2 pair on the XC7Z020 and layer1 \
         on the XC7Z010: {:.2}x batch-32 pipelined throughput over first-fit, bit-identical \
         logits — the search changes where stages run, never what they compute)",
        makespans[0] / makespans[1]
    );
}

fn replicate_cmd() {
    use zynq_sim::engine::Offload;
    use zynq_sim::plan::PlFormat;
    use zynq_sim::serve::{sweep_timeline, LoadSweep};
    use zynq_sim::{
        plan_cluster, Cluster, ClusterRequest, Interconnect, Partitioner, Replication, Schedule,
        ARTY_Z7_20,
    };

    const BATCH: usize = 32;
    let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(100);
    let request = |boards: usize, pl: PlModel, replication: Replication| ClusterRequest {
        cluster: Cluster::homogeneous(&ARTY_Z7_20, boards, Interconnect::GIGABIT_ETHERNET),
        offload: Offload::Auto,
        bn: BnMode::OnTheFly,
        ps: PsModel::Calibrated,
        pl,
        precision: PlFormat::Q20.into(),
        schedule: Schedule::Pipelined,
        partitioner: Partitioner::BalancedMakespan,
        replication,
    };
    let busy_of = |plan: &zynq_sim::ClusterPlan| {
        plan.resource_busy()
            .iter()
            .map(|&(r, b)| format!("{} {b:.3}", zynq_sim::trace::resource_label(r)))
            .collect::<Vec<_>>()
            .join(" | ")
    };

    // Stage replication at conv_x8, where a 2-board placement is
    // PL-bound (layer1 + layer2_2 share a fabric): doubling the
    // bottleneck stage's fabric on a 3×Arty rack retires the PL
    // bottleneck down to the head PS's floor.
    let x8 = PlModel { parallelism: 8 };
    let mut t = Table::new(
        "Extension: stage replication — ODENet-20 on 3×Arty Z7-20 (Q20, conv_x8, GigE)",
        &[
            "Deployment",
            "Busy per replica [s]",
            "Bottleneck [s]",
            "Batch-32 [s]",
            "img/s",
            "Broadcast [ms]",
        ],
    );
    let mut makespans = Vec::new();
    for (label, boards, replication) in [
        ("2 boards, unreplicated", 2, Replication::None),
        ("3 boards, unreplicated", 3, Replication::None),
        (
            "3 boards, layer1 ×2",
            3,
            Replication::Stage(LayerName::Layer1, 2),
        ),
    ] {
        let plan = plan_cluster(&spec, &request(boards, x8, replication))
            .expect("every rack here fits ODENet-20 at Q20/conv_x8");
        let makespan = plan.batch_seconds(BATCH, Schedule::Pipelined);
        makespans.push(makespan);
        t.row(vec![
            label.into(),
            busy_of(&plan),
            format!("{:.4}", plan.bottleneck_seconds()),
            s2(makespan),
            format!("{:.2}", BATCH as f64 / makespan),
            format!("{:.1}", plan.broadcast_seconds() * 1e3),
        ]);
    }
    t.emit("replicate");
    println!(
        "(replicating the bottleneck ODE stage buys {:.2}x batch-32 throughput over the best \
         2-board placement — down to the head PS's busy floor, the same wall the paper's \
         PS-PL split hits; the one-time weight broadcast overlaps deployment and logits are \
         bit-identical)",
        makespans[0] / makespans[2]
    );

    // Placement groups: the only mode that scales past the PS floor,
    // because every group brings its own ARM. Judged where it matters —
    // goodput at 1.2× offered load, past saturation.
    let mut t = Table::new(
        "Extension: placement groups — ODENet-20 data parallelism (Q20, conv_x16, GigE)",
        &[
            "Deployment",
            "Bottleneck [s]",
            "Batch-32 [s]",
            "Goodput @1.2x [img/s]",
        ],
    );
    let mut goodputs = Vec::new();
    for (label, boards, replication) in [
        ("2 boards, 1 group", 2, Replication::None),
        ("4 boards, 2 groups", 4, Replication::Placement(2)),
    ] {
        let plan = plan_cluster(&spec, &request(boards, PlModel::default(), replication))
            .expect("every rack here fits ODENet-20 at Q20");
        let points =
            sweep_timeline(plan.timeline(), &LoadSweep::default()).expect("the default sweep runs");
        let overload = points.last().expect("the default grid ends at 1.2x");
        goodputs.push(overload.report.goodput);
        t.row(vec![
            label.into(),
            format!("{:.4}", plan.bottleneck_seconds()),
            s2(plan.batch_seconds(BATCH, Schedule::Pipelined)),
            format!("{:.2}", overload.report.goodput),
        ]);
    }
    t.emit("replicate");
    println!(
        "(two groups sustain {:.2}x a single group's goodput at 1.2x offered load: group \
         heads replicate the PS stages too, so the rack scales past the single-ARM floor)",
        goodputs[1] / goodputs[0]
    );
}

fn calibrate_cmd(flags: &Flags) {
    use zynq_sim::engine::Engine;
    use zynq_sim::plan::PlFormat;
    use zynq_sim::precision::Precision;
    // Extension (ROADMAP "reduced-width accuracy calibration"): train a
    // small synthcifar network, then compare three precision policies
    // through the engine — the paper's uniform Q20, a hand-picked
    // uniform Q16, and the zero-training calibrated policy that
    // measures per-stage activation ranges and picks each `frac`
    // itself. PS stages run BnMode::Running (deployment parity without
    // the §4.3 on-the-fly hazard); offloaded circuits compute their
    // statistics per feature map as the PL always does.
    let cfg = SynthConfig {
        classes: 3,
        per_class: 16,
        hw: 32,
        noise: 0.1,
        jitter: 1,
        seed: flags.seed,
    };
    let (train, test) = generate_split(&cfg, 8);
    let spec = NetSpec::new(Variant::ROdeNet3, 20).with_classes(3);
    let mut net = Network::new(spec, flags.seed);
    let mut tc = TrainConfig::quick(flags.epochs.unwrap_or(4), 12);
    tc.seed = flags.seed;
    let hist = train_epochs(&mut net, &train.images, &train.labels, None, None, tc);
    println!(
        "calibrate: trained {} to train-acc {:.3} ({} train / {} test images)",
        spec.display_name(),
        hist.last().expect("at least one epoch").train_acc,
        train.len(),
        test.len()
    );

    let sample: Vec<Tensor<f32>> = (0..6).map(|i| train.images.item_tensor(i)).collect();
    // The measured envelopes, before any policy consumes them.
    let ranges = rodenet::stage_ranges(&net, &sample, BnMode::OnTheFly);
    let mut t0 = Table::new(
        "Measured per-stage activation envelopes (6-image sample)",
        &["Stage", "max |activation|", "max |weight|", "values folded"],
    );
    for r in &ranges {
        t0.row(vec![
            r.layer.name().into(),
            format!("{:.3}", r.max_abs_activation),
            format!("{:.3}", r.max_abs_weight),
            r.samples.to_string(),
        ]);
    }
    t0.emit("calibrate_ranges");

    let batch = {
        let one = test.images.item_tensor(0);
        let s = one.shape();
        Tensor::from_fn(Shape4::new(test.len(), s.c, s.h, s.w), |n, c, h, w| {
            test.images.item_tensor(n).get(0, c, h, w)
        })
    };
    let mut t = Table::new(
        "Extension: precision policies on a trained rODENet-3-20 (synthcifar, BnMode::Running)",
        &[
            "Policy",
            "layer3_2 format",
            "Offload",
            "DMA words/img",
            "Test accuracy",
        ],
    );
    let policies: [(&str, Precision); 3] = [
        ("Uniform Q20", Precision::Uniform(PlFormat::Q20)),
        (
            "Uniform Q16.10",
            Precision::Uniform(PlFormat::Q16 { frac: 10 }),
        ),
        (
            "Calibrated 16-bit (headroom 1)",
            Precision::Calibrated {
                total_bits: 16,
                headroom_bits: 1,
                sample: sample.clone(),
            },
        ),
    ];
    for (name, policy) in policies {
        let engine = Engine::builder(&net)
            .bn_mode(BnMode::Running)
            .precision(policy)
            .build()
            .expect("every policy deploys rODENet-3 on the XC7Z020");
        let run = engine.infer(&batch).expect("serves");
        let preds = tensor::softmax::argmax(&run.logits);
        let correct = preds
            .iter()
            .zip(&test.labels)
            .filter(|(p, l)| p == l)
            .count();
        t.row(vec![
            name.into(),
            engine
                .precision()
                .format_of(LayerName::Layer3_2)
                .to_string(),
            format!("{:?}", engine.target()),
            run.dma_words.to_string(),
            format!("{:.3}", correct as f64 / test.len() as f64),
        ]);
    }
    t.emit("calibrate");
    println!(
        "(the calibrated policy picks each stage's frac from the measured envelope plus a \
         1-bit headroom margin — half the DMA words of Q20 at matching accuracy; calibration \
         assumptions: float forward as the range proxy, envelope over stage inputs, Euler \
         states, f evaluations, and parameters)"
    );
}

fn serve_cmd(flags: &Flags) {
    use zynq_sim::engine::Offload;
    use zynq_sim::plan::PlFormat;
    use zynq_sim::serve::{
        serve_timeline, sweep_timeline, ArrivalProcess, Dispatch, LoadSweep, ServeRequest, Window,
    };
    use zynq_sim::{
        plan_cluster, Cluster, ClusterRequest, Interconnect, Replication, Schedule, ARTY_Z7_20,
    };

    // The serving rack: the cluster command's 2-board ODENet-20 at Q20
    // — the placement a single XC7Z020 cannot host. Everything below
    // replays seeded virtual-time arrivals over the plan's stage
    // pipeline: zero numerics, bit-stable across machines.
    let request = ClusterRequest {
        cluster: Cluster::homogeneous(&ARTY_Z7_20, 2, Interconnect::GIGABIT_ETHERNET),
        offload: Offload::Auto,
        bn: BnMode::OnTheFly,
        ps: PsModel::Calibrated,
        pl: PlModel::default(),
        precision: PlFormat::Q20.into(),
        schedule: Schedule::Pipelined,
        partitioner: zynq_sim::Partitioner::FirstFit,
        replication: Replication::None,
    };
    let spec = NetSpec::new(Variant::OdeNet, 20);
    let plan = plan_cluster(&spec, &request).expect("two XC7Z020s carry ODENet-20 at Q20");
    let ceiling = 1.0 / plan.bottleneck_seconds();
    let images = flags.images.unwrap_or(256);
    println!(
        "serving {} · unloaded {:.3}s/img · pipelined ceiling {:.2} img/s",
        plan.describe(),
        plan.total_seconds(),
        ceiling,
    );

    // The load/latency curve: Poisson offered load from 0.1x to 1.2x
    // of the ceiling under deadline dispatch. The knee sits where
    // queueing starts dominating service; past 1.0x the queue diverges
    // and only the stream's finite length bounds the tail.
    let sweep = LoadSweep {
        images,
        seed: flags.seed,
        ..LoadSweep::default()
    };
    let points = sweep_timeline(plan.timeline(), &sweep).expect("valid sweep");
    let mut t = Table::new(
        "Extension: online serving — Poisson load sweep, ODENet-20 on 2 Arty Z7-20 (Q20, deadline 50ms)",
        &[
            "load [x ceiling]",
            "offered [img/s]",
            "goodput [img/s]",
            "p50 [s]",
            "p99 [s]",
            "p99.9 [s]",
            "queue <=",
            "mean batch",
        ],
    );
    for p in &points {
        t.row(vec![
            format!("{:.1}", p.fraction),
            format!("{:.2}", p.offered),
            format!("{:.2}", p.report.goodput),
            s2(p.report.latency_p50),
            s2(p.report.latency_p99),
            s2(p.report.latency_p999),
            p.report.queue_peak.to_string(),
            format!("{:.1}", p.report.mean_batch()),
        ]);
    }
    t.emit("serve");
    println!(
        "(open-loop Poisson arrivals, seed {}; {} images per point; latency is total \
         arrival-to-completion — queueing, batching delay, hand-offs, and pipeline \
         contention priced together)",
        flags.seed, images,
    );

    // Dispatch-policy face-off at half the ceiling: continuous
    // micro-batching against the classical fixed batch the closed-loop
    // benchmarks use. Fixed-32 makes early images wait for the batch
    // to fill — its p99 pays the whole accumulation window.
    let mut t2 = Table::new(
        "Extension: dispatch policies at 0.5x ceiling — deadline vs head-idle vs fixed batch",
        &[
            "policy",
            "p50 [s]",
            "p99 [s]",
            "max [s]",
            "goodput [img/s]",
            "batches",
        ],
    );
    let policies: [(&str, Dispatch); 4] = [
        ("admit on arrival", Dispatch::Deadline { deadline: 0.0 }),
        ("deadline 50ms", Dispatch::default()),
        (
            "head-idle only",
            Dispatch::Deadline {
                deadline: f64::INFINITY,
            },
        ),
        ("fixed batch 32", Dispatch::FixedBatch { size: 32 }),
    ];
    for (name, dispatch) in policies {
        let report = serve_timeline(
            plan.timeline(),
            &ServeRequest {
                arrivals: ArrivalProcess::Poisson {
                    rate: 0.5 * ceiling,
                },
                images,
                dispatch,
                seed: flags.seed,
                window: Window::default(),
            },
        )
        .expect("valid request");
        t2.row(vec![
            name.into(),
            s2(report.latency_p50),
            s2(report.latency_p99),
            s2(report.latency_max),
            format!("{:.2}", report.goodput),
            report.batches.to_string(),
        ]);
    }
    t2.emit("serve_dispatch");
    println!(
        "(assumptions inherited from the pipelined scheduler: head-board PS runs all \
         software stages without preemption, one in-flight image per board, transfers \
         occupy no compute resource)"
    );
}

fn trace_cmd(flags: &Flags) {
    use zynq_sim::engine::Offload;
    use zynq_sim::plan::PlFormat;
    use zynq_sim::serve::{serve_timeline_traced, ArrivalProcess, Dispatch, ServeRequest, Window};
    use zynq_sim::trace::{check_chrome_json, resource_label};
    use zynq_sim::{
        plan_cluster, Cluster, ClusterRequest, Interconnect, Partitioner, Replication, Schedule,
        ARTY_Z7_20,
    };

    // The replicate command's headline rack: 3×Arty with layer1 burned
    // onto two fabrics, which retires the PL bottleneck down to the
    // head PS's floor. The trace should *show* that — the attribution
    // table names the head PS as the resource everyone else waits on.
    let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(100);
    let request = ClusterRequest {
        cluster: Cluster::homogeneous(&ARTY_Z7_20, 3, Interconnect::GIGABIT_ETHERNET),
        offload: Offload::Auto,
        bn: BnMode::OnTheFly,
        ps: PsModel::Calibrated,
        pl: PlModel { parallelism: 8 },
        precision: PlFormat::Q20.into(),
        schedule: Schedule::Pipelined,
        partitioner: Partitioner::BalancedMakespan,
        replication: Replication::Stage(LayerName::Layer1, 2),
    };
    let plan = plan_cluster(&spec, &request).expect("3×Arty carries ODENet-20 at Q20/conv_x8");
    let images = flags.images.unwrap_or(256);
    let serve_req = ServeRequest {
        arrivals: ArrivalProcess::Poisson {
            rate: 0.9 / plan.bottleneck_seconds(),
        },
        images,
        dispatch: Dispatch::default(),
        seed: flags.seed,
        window: Window::default(),
    };
    let report = serve_timeline_traced(plan.timeline(), &serve_req, true)
        .expect("the traced serve replays the same virtual timeline");
    let mut trace = report.trace().expect("tracing was requested").clone();
    trace.set_broadcast_seconds(plan.broadcast_seconds());

    println!("tracing {}", plan.describe());
    println!("serve   {}", report.describe());

    // The stall-attribution table: where each resource's idle time
    // went. "Upstream" = the previous stage hadn't produced the image
    // yet; "gate" = the stage's FIFO order held a ready image back;
    // "no work" = genuinely idle (warm-up, drain, arrival gaps).
    let metrics = trace.metrics();
    let mut t = Table::new(
        "Extension: event trace — per-resource busy/stall attribution (seeded Poisson serve)",
        &[
            "Resource",
            "Spans",
            "Busy [s]",
            "Util",
            "Upstream [s]",
            "Gate [s]",
            "No-work [s]",
        ],
    );
    for r in &metrics.resources {
        t.row(vec![
            resource_label(r.resource),
            r.spans.to_string(),
            format!("{:.3}", r.busy),
            format!("{:.0}%", r.utilization * 100.0),
            format!("{:.3}", r.stall.upstream),
            format!("{:.3}", r.stall.gate),
            format!("{:.3}", r.stall.no_work),
        ]);
    }
    t.emit("trace");
    if let Some(bottleneck) = metrics.bottleneck() {
        println!(
            "bottleneck: {} — busy {:.3}s of {:.3}s horizon ({:.4}s/img vs plan's \
             bottleneck {:.4}s); admission queue peaked at {}",
            resource_label(bottleneck.resource),
            bottleneck.busy,
            metrics.horizon,
            bottleneck.busy / images as f64,
            plan.bottleneck_seconds(),
            metrics.queue_peak,
        );
    }

    let json = trace.to_chrome_json();
    let events = check_chrome_json(&json).expect("the exporter emits well-formed Chrome JSON");
    let path = flags
        .out
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("results/trace.json"));
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!(
            "[saved {} — {events} events; open in chrome://tracing or https://ui.perfetto.dev]",
            path.display()
        ),
        Err(e) => eprintln!("(could not write {}: {e})", path.display()),
    }
}

fn hotpath_cmd(flags: &Flags) {
    use std::hint::black_box;
    use std::time::Instant;
    use tensor::conv::set_force_reference;
    use zynq_sim::engine::{Engine, Offload};

    /// Best-of-`reps` wall-clock seconds for `f` — min damps scheduler
    /// noise without needing criterion's statistics for a smoke table.
    fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            black_box(f());
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    }

    /// Time `f` on the scalar reference kernels, then on the im2col/GEMM
    /// fast path. Numerics are bit-identical either way — the toggle only
    /// reroutes `conv2d` dispatch — so only the clock differs.
    fn face_off<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, f64) {
        set_force_reference(true);
        let reference = best_of(reps, &mut f);
        set_force_reference(false);
        let fast = best_of(reps, &mut f);
        (reference, fast)
    }

    let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(100);
    let net = Network::new(spec, flags.seed);
    let x = bench::random_tensor(Shape4::new(1, 3, 32, 32), flags.seed ^ 0x9e37);

    let mut t = Table::new(
        "Extension: PS hot path — scalar reference kernels vs im2col/GEMM fast path \
         (ODENet-20, wall-clock)",
        &["Stage", "Reference [s]", "Fast [s]", "Speedup"],
    );
    let mut row = |stage: &str, reference: f64, fast: f64| {
        t.row(vec![
            stage.to_string(),
            format!("{reference:.4}"),
            format!("{fast:.4}"),
            format!("{:.1}x", reference / fast),
        ]);
    };

    // Per-stage single-image walk: conv1, each residual stage on its own
    // activation, then the classifier head. `stage_forward` re-runs just
    // that stage, so each row isolates one layer geometry.
    let (r, f) = face_off(3, || net.pre_forward(&x));
    row("conv1 (pre)", r, f);
    let mut z = net.pre_forward(&x);
    for name in [
        LayerName::Layer1,
        LayerName::Layer2_1,
        LayerName::Layer2_2,
        LayerName::Layer3_1,
        LayerName::Layer3_2,
    ] {
        let Some(next) = net.stage_forward(name, &z, BnMode::OnTheFly) else {
            continue;
        };
        let (r, f) = face_off(3, || net.stage_forward(name, &z, BnMode::OnTheFly));
        row(name.name(), r, f);
        z = next;
    }
    let (r, f) = face_off(3, || net.fc_forward(&z));
    row("fc (head)", r, f);

    // End-to-end: the batch-32 PsSoftware run the >=2x pin in
    // tests/hotpath.rs guards. One rep on the reference path keeps the
    // command fast enough for CI smoke; the fast path gets best-of-2.
    let batch = flags.images.unwrap_or(32);
    let xs: Vec<Tensor<f32>> = (0..batch)
        .map(|i| bench::random_tensor(Shape4::new(1, 3, 32, 32), flags.seed + 1 + i as u64))
        .collect();
    let engine = Engine::builder(&net)
        .offload(Offload::Target(OffloadTarget::None))
        .build()
        .expect("pure-software placement always fits");
    set_force_reference(true);
    let reference = best_of(1, || engine.infer_batch(&xs).expect("reference batch"));
    set_force_reference(false);
    let fast = best_of(2, || engine.infer_batch(&xs).expect("fast batch"));
    row(&format!("e2e batch-{batch} (PsSoftware)"), reference, fast);
    t.emit("hotpath");
    println!(
        "(logits are bit-identical on both paths; tests/hotpath.rs pins the \
         end-to-end row at >=2x)"
    );
}

fn faults_cmd(flags: &Flags) {
    use zynq_sim::engine::Offload;
    use zynq_sim::fault::{serve_faulted, FaultEvent, FaultPlan, HealthPolicy};
    use zynq_sim::plan::PlFormat;
    use zynq_sim::serve::{ArrivalProcess, Dispatch, ServeRequest, Window};
    use zynq_sim::{
        plan_cluster, Cluster, ClusterRequest, Interconnect, Replication, Schedule, ARTY_Z7_20,
    };

    // The acceptance rack from tests/fault.rs: two data-parallel
    // placement groups on 4 Arty boards, serving 0.8x Poisson. Board 3
    // carries the second group's PL stages — killing it forces a
    // drain, a replan over {0, 1, 2}, and a priced re-broadcast.
    let request = ClusterRequest {
        cluster: Cluster::homogeneous(&ARTY_Z7_20, 4, Interconnect::GIGABIT_ETHERNET),
        offload: Offload::Auto,
        bn: BnMode::OnTheFly,
        ps: PsModel::Calibrated,
        pl: PlModel::default(),
        precision: PlFormat::Q20.into(),
        schedule: Schedule::Pipelined,
        partitioner: zynq_sim::Partitioner::FirstFit,
        replication: Replication::Placement(2),
    };
    let spec = NetSpec::new(Variant::OdeNet, 20);
    let plan = plan_cluster(&spec, &request).expect("4 XC7Z020s carry two placement groups");
    let images = flags.images.unwrap_or(256);
    let req = ServeRequest {
        arrivals: ArrivalProcess::Poisson {
            rate: 0.8 / plan.bottleneck_seconds(),
        },
        images,
        dispatch: Dispatch::default(),
        seed: flags.seed,
        window: Window::default(),
    };
    println!("serving {} at 0.8x ceiling", plan.describe());

    let free = serve_faulted(
        &plan,
        &req,
        &FaultPlan::none(),
        &HealthPolicy::default(),
        false,
    )
    .expect("fault-free serve");
    let crash_at = 0.4 * free.horizon;
    let faults = FaultPlan::new(vec![FaultEvent::BoardCrash {
        board: 3,
        at: crash_at,
    }]);
    let faulted = serve_faulted(&plan, &req, &faults, &HealthPolicy::default(), false)
        .expect("the faulted serve completes");
    let avail = faulted
        .availability
        .as_ref()
        .expect("faulted serves carry an availability section");

    let mut t = Table::new(
        "Extension: fault injection — board 3 killed mid-run, 4-board rack with 2 placement groups (ODENet-20, Q20, 0.8x Poisson)",
        &[
            "run",
            "goodput [img/s]",
            "horizon [s]",
            "p99 [s]",
            "completed",
            "dropped",
            "availability",
        ],
    );
    t.row(vec![
        "fault-free".into(),
        format!("{:.2}", free.goodput),
        format!("{:.2}", free.horizon),
        s2(free.latency_p99),
        free.images.to_string(),
        "0".into(),
        "100.0%".into(),
    ]);
    t.row(vec![
        format!("board 3 crash @ {crash_at:.2}s"),
        format!("{:.2}", faulted.goodput),
        format!("{:.2}", faulted.horizon),
        s2(faulted.latency_p99),
        avail.completed.to_string(),
        avail.dropped.to_string(),
        format!("{:.1}%", avail.availability * 100.0),
    ]);
    t.emit("faults");

    let f = avail.failovers.first().expect("one failover");
    println!(
        "(recovery window: detected {:.4}s after the crash, drained {:.4}s of in-flight \
         work, re-broadcast the survivor placement's weights in {:.4}s — {:.4}s total; \
         {} image(s) re-dispatched, goodput retained {:.0}% of fault-free{})",
        f.detect_at - f.crash_at,
        f.drain_seconds,
        f.rebroadcast_seconds,
        f.recovery_seconds,
        avail.redispatched,
        100.0 * faulted.goodput / free.goodput,
        if f.degraded {
            " — degraded to head-PS software"
        } else {
            ""
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is `main`'s single source of dispatchable names:
    /// every command the module docs advertise must resolve, exactly
    /// once, and the unknown-command path must have a real list to
    /// print.
    #[test]
    fn every_documented_command_is_registered() {
        let registry = command_registry();
        let names: Vec<&str> = registry.iter().map(|(name, _)| *name).collect();
        let documented = [
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "fig5",
            "fig6",
            "cycles",
            "reductions",
            "amdahl",
            "bitexact",
            "quantization",
            "macpolicy",
            "solver",
            "planner",
            "widths",
            "energy",
            "engine",
            "cluster",
            "partition",
            "replicate",
            "calibrate",
            "serve",
            "trace",
            "hotpath",
            "faults",
            "all",
        ];
        assert_eq!(
            names, documented,
            "registry and module docs must list the same commands in the same order"
        );
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "no duplicate command names");
        for name in documented {
            assert!(
                registry.iter().any(|(n, _)| *n == name),
                "`{name}` must dispatch"
            );
        }
    }
}
