//! Shared infrastructure for the reproduction harness: table/figure
//! formatting, result persistence, and the workload builders used by
//! both the `repro` binary and the criterion benches.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Where [`Table::emit`] additionally appends its markdown (beyond
/// stdout + the per-table CSV), when the caller asked for a single
/// artifact file — `repro`'s `--out=<path>` flag sets this once at
/// startup.
static ARTIFACT_SINK: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Route every subsequent [`Table::emit`]'s markdown into `path` as
/// well (appending — one run's tables accumulate into one artifact).
/// `None` restores stdout-only emission.
pub fn set_artifact_sink(path: Option<PathBuf>) {
    *ARTIFACT_SINK.lock().expect("artifact sink mutex") = path;
}

fn append_artifact(text: &str) {
    let sink = ARTIFACT_SINK.lock().expect("artifact sink mutex");
    let Some(path) = sink.as_ref() else {
        return;
    };
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        let _ = std::fs::create_dir_all(dir);
    }
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, text.as_bytes()));
    if let Err(e) = appended {
        eprintln!("(could not append to {}: {e})", path.display());
    }
}

/// A simple markdown/CSV table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title (printed as a heading).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as aligned markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n## {}\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:>w$} |", w = w);
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<w$}|", "", w = w + 2);
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Print to stdout and persist a CSV under `results/`. When an
    /// artifact sink is set ([`set_artifact_sink`]), the markdown is
    /// also appended there.
    pub fn emit(&self, slug: &str) {
        println!("{}", self.to_markdown());
        append_artifact(&self.to_markdown());
        let dir = Path::new("results");
        if std::fs::create_dir_all(dir).is_ok() {
            let path = dir.join(format!("{slug}.csv"));
            if let Err(e) = std::fs::write(&path, self.to_csv()) {
                eprintln!("(could not write {}: {e})", path.display());
            } else {
                println!("[saved results/{slug}.csv]");
            }
        }
    }
}

/// Format seconds with two decimals, as Table 5 prints them.
pub fn s2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a percentage with two decimals.
pub fn pct2(v: f64) -> String {
    format!("{v:.2}")
}

/// Deterministic random feature map for kernel benches and fixtures.
pub fn random_tensor(shape: tensor::Shape4, seed: u64) -> tensor::Tensor<f32> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    tensor::Tensor::from_fn(shape, |_, _, _, _| rng.random::<f32>() * 2.0 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders() {
        let mut t = Table::new("Demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("## Demo"));
        assert!(md.contains("| 1 |"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["v,w".into()]);
        assert!(t.to_csv().contains("\"v,w\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn artifact_sink_appends_markdown() {
        let path = std::env::temp_dir().join("bench-artifact-sink-test.md");
        let _ = std::fs::remove_file(&path);
        set_artifact_sink(Some(path.clone()));
        append_artifact("first\n");
        append_artifact("second\n");
        set_artifact_sink(None);
        append_artifact("dropped\n");
        let got = std::fs::read_to_string(&path).expect("sink file written");
        let _ = std::fs::remove_file(&path);
        assert_eq!(got, "first\nsecond\n");
    }
}
