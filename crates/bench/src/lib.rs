//! Shared infrastructure for the reproduction harness: table/figure
//! formatting, result persistence, and the workload builders used by
//! both the `repro` binary and the criterion benches.

use std::fmt::Write as _;
use std::path::Path;

/// A simple markdown/CSV table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title (printed as a heading).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as aligned markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n## {}\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:>w$} |", w = w);
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<w$}|", "", w = w + 2);
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Print to stdout and persist a CSV under `results/`.
    pub fn emit(&self, slug: &str) {
        println!("{}", self.to_markdown());
        let dir = Path::new("results");
        if std::fs::create_dir_all(dir).is_ok() {
            let path = dir.join(format!("{slug}.csv"));
            if let Err(e) = std::fs::write(&path, self.to_csv()) {
                eprintln!("(could not write {}: {e})", path.display());
            } else {
                println!("[saved results/{slug}.csv]");
            }
        }
    }
}

/// Format seconds with two decimals, as Table 5 prints them.
pub fn s2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a percentage with two decimals.
pub fn pct2(v: f64) -> String {
    format!("{v:.2}")
}

/// Deterministic random feature map for kernel benches and fixtures.
pub fn random_tensor(shape: tensor::Shape4, seed: u64) -> tensor::Tensor<f32> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    tensor::Tensor::from_fn(shape, |_, _, _, _| rng.random::<f32>() * 2.0 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders() {
        let mut t = Table::new("Demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("## Demo"));
        assert!(md.contains("| 1 |"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["v,w".into()]);
        assert!(t.to_csv().contains("\"v,w\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
