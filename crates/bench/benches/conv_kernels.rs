//! Convolution kernel throughput: f32 vs Q20, thread scaling, and the
//! three offloadable layer geometries of Table 2.

use bench::random_tensor;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qfixed::Q20;
use std::time::Duration;
use tensor::conv::{conv2d, Conv2dParams};
use tensor::{par, Shape4, Tensor};

fn layer_shapes() -> Vec<(&'static str, Shape4, Shape4)> {
    vec![
        // (name, input, weights) — data channels + 1 time channel.
        (
            "layer1",
            Shape4::new(1, 17, 32, 32),
            Shape4::new(16, 17, 3, 3),
        ),
        (
            "layer2_2",
            Shape4::new(1, 33, 16, 16),
            Shape4::new(32, 33, 3, 3),
        ),
        (
            "layer3_2",
            Shape4::new(1, 65, 8, 8),
            Shape4::new(64, 65, 3, 3),
        ),
    ]
}

fn bench_conv(c: &mut Criterion) {
    let mut g = c.benchmark_group("conv2d");
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    for (name, xs, ws) in layer_shapes() {
        let macs = (xs.c * ws.n * 9 * xs.h * xs.w) as u64;
        g.throughput(Throughput::Elements(macs));
        let x = random_tensor(xs, 1);
        let w = random_tensor(ws, 2);
        g.bench_with_input(BenchmarkId::new("f32", name), &(), |b, _| {
            b.iter(|| black_box(conv2d(&x, &w, Conv2dParams::same_3x3())))
        });
        let xq: Tensor<Q20> = Tensor::from_f32_tensor(&x);
        let wq: Tensor<Q20> = Tensor::from_f32_tensor(&w);
        g.bench_with_input(BenchmarkId::new("q20", name), &(), |b, _| {
            b.iter(|| black_box(conv2d(&xq, &wq, Conv2dParams::same_3x3())))
        });
    }
    g.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let x = random_tensor(Shape4::new(4, 17, 32, 32), 3);
    let w = random_tensor(Shape4::new(16, 17, 3, 3), 4);
    let mut g = c.benchmark_group("conv2d_threads");
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    for threads in [1usize, 2] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            par::set_threads(t);
            b.iter(|| black_box(conv2d(&x, &w, Conv2dParams::same_3x3())));
        });
    }
    par::set_threads(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    g.finish();
}

criterion_group!(benches, bench_conv, bench_thread_scaling);
criterion_main!(benches);
