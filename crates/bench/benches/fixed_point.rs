//! Throughput of the Q20 fixed-point primitives — the operations the
//! simulated PL datapath executes billions of times.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use qfixed::{Mac, MacPolicy, Q20};
use std::time::Duration;

fn bench_ops(c: &mut Criterion) {
    let xs: Vec<Q20> = (0..4096)
        .map(|i| Q20::from_f64((i as f64 * 0.37).sin() * 3.0))
        .collect();
    let ys: Vec<Q20> = (0..4096)
        .map(|i| Q20::from_f64((i as f64 * 0.11).cos() * 2.0 + 0.01))
        .collect();

    let mut g = c.benchmark_group("q20");
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    g.throughput(Throughput::Elements(4096));
    g.bench_function("mul_trunc", |b| {
        b.iter(|| {
            let mut acc = Q20::ZERO;
            for (x, y) in xs.iter().zip(&ys) {
                acc = acc.wrapping_add(x.mul_trunc(*y));
            }
            black_box(acc)
        })
    });
    g.bench_function("div_trunc", |b| {
        b.iter(|| {
            let mut acc = Q20::ZERO;
            for (x, y) in xs.iter().zip(&ys) {
                acc = acc.wrapping_add(x.div_trunc(*y));
            }
            black_box(acc)
        })
    });
    g.bench_function("sqrt", |b| {
        b.iter(|| {
            let mut acc = Q20::ZERO;
            for x in &xs {
                acc = acc.wrapping_add(x.abs().sqrt());
            }
            black_box(acc)
        })
    });
    g.bench_function("mac_wide", |b| {
        b.iter(|| {
            let mut mac = Mac::<20>::new(MacPolicy::WideAccumulate);
            for (x, y) in xs.iter().zip(&ys) {
                mac.mac(*x, *y);
            }
            black_box(mac.finish())
        })
    });
    g.bench_function("mac_truncate_each", |b| {
        b.iter(|| {
            let mut mac = Mac::<20>::new(MacPolicy::TruncateEach);
            for (x, y) in xs.iter().zip(&ys) {
                mac.mac(*x, *y);
            }
            black_box(mac.finish())
        })
    });
    // f32 baseline for the same dot product.
    let xf: Vec<f32> = xs.iter().map(|v| v.to_f32()).collect();
    let yf: Vec<f32> = ys.iter().map(|v| v.to_f32()).collect();
    g.bench_function("f32_dot_baseline", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for (x, y) in xf.iter().zip(&yf) {
                acc += x * y;
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
