//! Trace-recorder benches: what observability costs the scheduler.
//!
//! * `trace_schedule/*` — the 64-image pipelined schedule on the
//!   prebuilt 2-board plan timeline, three ways: the plain untraced
//!   wrapper, the traced entry point with a **disabled** recorder
//!   (must be indistinguishable — the zero-cost-when-off contract the
//!   inlined early-return buys), and a fully **enabled** recorder
//!   (prices the event log itself).
//! * `trace_aggregate/*` — turning one captured trace into the stall
//!   attribution metrics and the Chrome JSON export.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rodenet::{BnMode, NetSpec, Variant};
use std::time::Duration;
use zynq_sim::engine::Offload;
use zynq_sim::plan::PlFormat;
use zynq_sim::timing::{PlModel, PsModel};
use zynq_sim::trace::Recorder;
use zynq_sim::{
    pipelined_schedule_released, plan_cluster, Cluster, ClusterPlan, ClusterRequest, Interconnect,
    Partitioner, Replication, Schedule, ARTY_Z7_20,
};

const IMAGES: usize = 64;

fn rack_plan() -> ClusterPlan {
    let spec = NetSpec::new(Variant::OdeNet, 20);
    plan_cluster(
        &spec,
        &ClusterRequest {
            cluster: Cluster::homogeneous(&ARTY_Z7_20, 2, Interconnect::GIGABIT_ETHERNET),
            offload: Offload::Auto,
            bn: BnMode::OnTheFly,
            ps: PsModel::Calibrated,
            pl: PlModel::default(),
            precision: PlFormat::Q20.into(),
            schedule: Schedule::Pipelined,
            partitioner: Partitioner::FirstFit,
            replication: Replication::None,
        },
    )
    .expect("two XC7Z020s carry ODENet-20 at Q20")
}

fn bench_schedule(c: &mut Criterion) {
    let plan = rack_plan();
    let timeline = plan.timeline().to_vec();
    let releases: Vec<f64> = (0..IMAGES).map(|i| 0.05 * i as f64).collect();

    let mut g = c.benchmark_group("trace_schedule");
    g.measurement_time(Duration::from_secs(3));
    g.throughput(Throughput::Elements(IMAGES as u64));
    g.bench_function("untraced", |b| {
        b.iter(|| pipelined_schedule_released(black_box(&timeline), black_box(&releases)))
    });
    g.bench_function("recorder-disabled", |b| {
        b.iter(|| {
            let mut rec = Recorder::disabled();
            zynq_sim::cluster::pipelined_schedule_released_traced(
                black_box(&timeline),
                black_box(&releases),
                &mut rec,
            )
        })
    });
    g.bench_function("recorder-enabled", |b| {
        b.iter(|| {
            let mut rec = Recorder::enabled();
            let run = zynq_sim::cluster::pipelined_schedule_released_traced(
                black_box(&timeline),
                black_box(&releases),
                &mut rec,
            );
            black_box(rec.finish());
            run
        })
    });
    g.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let plan = rack_plan();
    let releases: Vec<f64> = (0..IMAGES).map(|i| 0.05 * i as f64).collect();
    let mut rec = Recorder::enabled();
    zynq_sim::cluster::pipelined_schedule_released_traced(plan.timeline(), &releases, &mut rec);
    let trace = rec.finish();

    let mut g = c.benchmark_group("trace_aggregate");
    g.measurement_time(Duration::from_secs(3));
    g.throughput(Throughput::Elements(trace.stages.len() as u64));
    g.bench_function("metrics", |b| b.iter(|| black_box(&trace).metrics()));
    g.bench_function("chrome-json", |b| {
        b.iter(|| black_box(&trace).to_chrome_json())
    });
    g.finish();
}

criterion_group!(benches, bench_schedule, bench_aggregate);
criterion_main!(benches);
