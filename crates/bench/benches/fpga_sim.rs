//! Simulator throughput: how fast the bit-exact Q20 ODEBlock runs on the
//! host, against the cycles it models — i.e. the simulation slowdown
//! factor relative to the real 100 MHz fabric.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qfixed::Q20;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rodenet::{LayerName, ResBlock};
use std::time::Duration;
use tensor::{Shape4, Tensor};
use zynq_sim::{OdeBlockAccel, PYNQ_Z2};

fn bench_accel(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let mut g = c.benchmark_group("accel_run_f");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    for layer in [LayerName::Layer1, LayerName::Layer2_2, LayerName::Layer3_2] {
        let block = ResBlock::new(&mut rng, layer, true);
        let accel = OdeBlockAccel::new(&block, 16, &PYNQ_Z2);
        let (ch, hw) = layer.geometry();
        let x = Tensor::<f32>::from_fn(Shape4::new(1, ch, hw, hw), |_, _, _, _| {
            rng.random::<f32>() - 0.5
        });
        let xq: Tensor<Q20> = Tensor::from_f32_tensor(&x);
        g.bench_with_input(BenchmarkId::from_parameter(layer.name()), &(), |b, _| {
            b.iter(|| black_box(accel.run_f(&xq, Q20::ZERO)))
        });
    }
    g.finish();
}

fn bench_full_stage(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(10);
    let block = ResBlock::new(&mut rng, LayerName::Layer3_2, true);
    let accel = OdeBlockAccel::new(&block, 16, &PYNQ_Z2);
    let x = Tensor::<f32>::from_fn(Shape4::new(1, 64, 8, 8), |_, _, _, _| {
        rng.random::<f32>() - 0.5
    });
    let xq: Tensor<Q20> = Tensor::from_f32_tensor(&x);
    let mut g = c.benchmark_group("accel_stage");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("layer3_2_x6", |b| {
        b.iter(|| black_box(accel.run_stage(&xq, 6)))
    });
    g.finish();
}

criterion_group!(benches, bench_accel, bench_full_stage);
criterion_main!(benches);
