//! End-to-end inference cost of the seven architectures on the host
//! (32×32 input, single image) — the software analogue of Table 5's
//! "Total w/o PL" column, measured rather than modelled.

use bench::random_tensor;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rodenet::{BnMode, NetSpec, Network, Variant};
use std::time::Duration;
use tensor::Shape4;

fn bench_variants(c: &mut Criterion) {
    let x = random_tensor(Shape4::new(1, 3, 32, 32), 5);
    let mut g = c.benchmark_group("e2e_forward_n20");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    for v in Variant::ALL {
        let net = Network::new(NetSpec::new(v, 20).with_classes(100), 3);
        g.bench_with_input(BenchmarkId::from_parameter(v.name()), &(), |b, _| {
            b.iter(|| black_box(net.forward(&x, BnMode::OnTheFly)))
        });
    }
    g.finish();
}

fn bench_depth_scaling(c: &mut Criterion) {
    let x = random_tensor(Shape4::new(1, 3, 32, 32), 6);
    let mut g = c.benchmark_group("e2e_resnet_depth");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    for n in [20usize, 32] {
        let net = Network::new(NetSpec::new(Variant::ResNet, n).with_classes(100), 4);
        g.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, _| {
            b.iter(|| black_box(net.forward(&x, BnMode::OnTheFly)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_variants, bench_depth_scaling);
criterion_main!(benches);
