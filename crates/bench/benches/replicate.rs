//! Replication benches: what resolving a replicated plan costs.
//!
//! Stage replication runs the joint balanced search (board subsets ×
//! layer assignments, busy-bound pruned), so its cost grows with both
//! the rack and the replica count; placement groups only re-validate
//! the base placement per clone. Planning happens once per build,
//! never per inference — but `Replication::Auto` multiplies the whole
//! thing by every candidate policy, so the curve is worth watching.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rodenet::{BnMode, LayerName, NetSpec, Variant};
use zynq_sim::engine::Offload;
use zynq_sim::plan::PlFormat;
use zynq_sim::timing::{PlModel, PsModel};
use zynq_sim::{
    plan_cluster, Cluster, ClusterRequest, Interconnect, Partitioner, Replication, Schedule,
    ARTY_Z7_20,
};

fn request(boards: usize, replication: Replication) -> ClusterRequest {
    ClusterRequest {
        cluster: Cluster::homogeneous(&ARTY_Z7_20, boards, Interconnect::GIGABIT_ETHERNET),
        offload: Offload::Auto,
        bn: BnMode::OnTheFly,
        ps: PsModel::Calibrated,
        // conv_x8: the width where stage replication has real work to
        // do (a 2-board placement is PL-bound, layer3_2 pins a board).
        pl: PlModel { parallelism: 8 },
        precision: PlFormat::Q20.into(),
        schedule: Schedule::Pipelined,
        partitioner: Partitioner::BalancedMakespan,
        replication,
    }
}

fn bench_replica_resolve(c: &mut Criterion) {
    let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(100);
    let mut g = c.benchmark_group("replica_resolve");
    for boards in [3usize, 4, 6] {
        let mut policies = vec![
            ("none", Replication::None),
            ("stage_x2", Replication::Stage(LayerName::Layer1, 2)),
            ("groups", Replication::Placement(2)),
            ("auto", Replication::Auto),
        ];
        if boards >= 4 {
            // ×3 needs three boards with spare fabric next to the one
            // layer3_2 fills — a 3-board rack has only two.
            policies.insert(2, ("stage_x3", Replication::Stage(LayerName::Layer1, 3)));
        }
        for (label, replication) in policies {
            let req = request(boards, replication);
            g.bench_with_input(BenchmarkId::new(label, boards), &(), |b, _| {
                b.iter(|| black_box(plan_cluster(&spec, &req).expect("every policy fits here")))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_replica_resolve);
criterion_main!(benches);
