//! Partitioner benches: what the placement search costs as the rack
//! grows.
//!
//! `FirstFit` walks the layer list once per board (linear); the
//! `BalancedMakespan` search enumerates boards^layers candidate
//! assignments and scores each with the event-driven pipelined
//! schedule of a 32-image reference batch — still trivial for lab-rack
//! sizes (≤ 3 offloadable layers caps the exponent at 3), but the
//! growth curve is worth watching: planning happens once per build,
//! never per inference.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rodenet::{BnMode, NetSpec, Variant};
use zynq_sim::engine::Offload;
use zynq_sim::plan::PlFormat;
use zynq_sim::planner::OffloadTarget;
use zynq_sim::timing::{PlModel, PsModel};
use zynq_sim::{
    partition_placement, Cluster, ClusterRequest, Interconnect, Partitioner, Replication, Schedule,
    ARTY_Z7_20,
};

fn request(boards: usize, partitioner: Partitioner) -> ClusterRequest {
    ClusterRequest {
        cluster: Cluster::homogeneous(&ARTY_Z7_20, boards, Interconnect::GIGABIT_ETHERNET),
        offload: Offload::Target(OffloadTarget::AllOde),
        bn: BnMode::OnTheFly,
        ps: PsModel::Calibrated,
        pl: PlModel::default(),
        precision: PlFormat::Q16 { frac: 10 }.into(),
        schedule: Schedule::Pipelined,
        partitioner,
        replication: Replication::None,
    }
}

fn bench_partition_search(c: &mut Criterion) {
    let spec = NetSpec::new(Variant::OdeNet, 56);
    let mut g = c.benchmark_group("partition_search");
    for boards in [1usize, 2, 4, 8] {
        for partitioner in [Partitioner::FirstFit, Partitioner::BalancedMakespan] {
            let req = request(boards, partitioner);
            g.bench_with_input(
                BenchmarkId::new(format!("{partitioner:?}"), boards),
                &(),
                |b, _| {
                    b.iter(|| {
                        black_box(
                            partition_placement(&spec, OffloadTarget::AllOde, &req)
                                .expect("AllOde fits one XC7Z020 at Q16"),
                        )
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_partition_search);
criterion_main!(benches);
