//! Fault-subsystem benches: the empty plan must cost nothing, and a
//! failover's replan must stay planning-scale (milliseconds), not
//! serving-scale.
//!
//! `schedule/*` pits the unfaulted pipelined scheduler against the
//! fault-aware wrapper with the empty plan — the wrapper delegates
//! after one windows check, so the two bars must be indistinguishable
//! — and against a plan with a live degradation window, which pays for
//! its per-start window lookups. `failover_replan/*` prices the
//! partition + replica re-search a crash triggers on racks of growing
//! size: the dominant term of a recovery window the simulator does
//! *not* bill into virtual time (recorded in the ROADMAP).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rodenet::{BnMode, NetSpec, Variant};
use zynq_sim::engine::Offload;
use zynq_sim::fault::{faulted_schedule_released, FaultEvent, FaultPlan};
use zynq_sim::plan::PlFormat;
use zynq_sim::timing::{PlModel, PsModel};
use zynq_sim::{
    pipelined_schedule_released, plan_cluster, Cluster, ClusterRequest, Interconnect, Partitioner,
    Replication, Schedule, ARTY_Z7_20,
};

fn request(boards: usize) -> ClusterRequest {
    ClusterRequest {
        cluster: Cluster::homogeneous(&ARTY_Z7_20, boards, Interconnect::GIGABIT_ETHERNET),
        offload: Offload::Auto,
        bn: BnMode::OnTheFly,
        ps: PsModel::Calibrated,
        pl: PlModel { parallelism: 8 },
        precision: PlFormat::Q20.into(),
        schedule: Schedule::Pipelined,
        partitioner: Partitioner::BalancedMakespan,
        replication: Replication::Auto,
    }
}

fn bench_faulted_schedule(c: &mut Criterion) {
    let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(100);
    let plan = plan_cluster(&spec, &request(3)).expect("3×Arty carries ODENet-20");
    let timeline = plan.timeline().to_vec();
    let releases: Vec<f64> = (0..256)
        .map(|i| i as f64 * 0.8 * plan.bottleneck_seconds())
        .collect();
    let degraded = FaultPlan::new(vec![FaultEvent::BoardSlowdown {
        board: 1,
        at: 0.0,
        factor: 2.0,
        duration: 10.0,
    }]);

    let mut g = c.benchmark_group("schedule");
    g.bench_with_input(BenchmarkId::new("unfaulted", 256), &(), |b, _| {
        b.iter(|| black_box(pipelined_schedule_released(&timeline, &releases)))
    });
    // The acceptance bar: with the empty plan the wrapper must price
    // like the line above — one windows check, then delegation.
    g.bench_with_input(BenchmarkId::new("empty_plan", 256), &(), |b, _| {
        b.iter(|| {
            black_box(faulted_schedule_released(
                &timeline,
                &releases,
                &FaultPlan::none(),
            ))
        })
    });
    g.bench_with_input(BenchmarkId::new("degraded", 256), &(), |b, _| {
        b.iter(|| black_box(faulted_schedule_released(&timeline, &releases, &degraded)))
    });
    g.finish();
}

fn bench_failover_replan(c: &mut Criterion) {
    let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(100);
    let mut g = c.benchmark_group("failover_replan");
    // What the orchestrator runs at a crash: Offload::Auto +
    // Replication::Auto over the survivors.
    for survivors in [1usize, 2, 3, 5] {
        let req = request(survivors);
        g.bench_with_input(BenchmarkId::new("auto", survivors), &(), |b, _| {
            b.iter(|| black_box(plan_cluster(&spec, &req).expect("survivor racks plan")))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_faulted_schedule, bench_failover_replan);
criterion_main!(benches);
