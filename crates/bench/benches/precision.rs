//! Precision-policy benches: what resolving each policy costs at build
//! time.
//!
//! `Uniform`/`PerStage` are table lookups (nanoseconds); `Calibrated`
//! runs a float forward per sample image to measure activation
//! envelopes — the zero-training calibration pass. Both happen once
//! per engine build, never per inference, but the calibration cost
//! scales with the sample size and is worth watching: a serving stack
//! that rebuilds engines on config changes pays it each time.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rodenet::{BnMode, NetSpec, Network, Variant};
use tensor::{Shape4, Tensor};
use zynq_sim::plan::PlFormat;
use zynq_sim::precision::{Precision, StageFormats};
use zynq_sim::Engine;

fn image(seed: u64) -> Tensor<f32> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_fn(Shape4::new(1, 3, 32, 32), |_, _, _, _| {
        rng.random::<f32>() - 0.5
    })
}

fn bench_policy_resolution(c: &mut Criterion) {
    let net = Network::new(NetSpec::new(Variant::OdeNet, 20).with_classes(10), 3);
    let mut g = c.benchmark_group("precision_resolve");

    let uniform = Precision::Uniform(PlFormat::Q20);
    g.bench_function("uniform", |b| {
        b.iter(|| black_box(uniform.resolve(&net, BnMode::OnTheFly).unwrap()))
    });

    let table = StageFormats::uniform(PlFormat::Q20)
        .with(rodenet::LayerName::Layer1, PlFormat::Q16 { frac: 10 });
    let per_stage = Precision::PerStage(table);
    g.bench_function("per_stage", |b| {
        b.iter(|| black_box(per_stage.resolve(&net, BnMode::OnTheFly).unwrap()))
    });

    // The calibration pass scales with the sample: one float forward
    // (plus per-stage envelope folds) per image.
    for samples in [1usize, 2, 4] {
        let policy = Precision::Calibrated {
            total_bits: 16,
            headroom_bits: 1,
            sample: (0..samples as u64).map(image).collect(),
        };
        g.bench_with_input(BenchmarkId::new("calibrated", samples), &(), |b, _| {
            b.iter(|| black_box(policy.resolve(&net, BnMode::OnTheFly).unwrap()))
        });
    }
    g.finish();
}

fn bench_mixed_build_and_infer(c: &mut Criterion) {
    use zynq_sim::engine::Offload;
    use zynq_sim::planner::OffloadTarget;
    let net = Network::new(NetSpec::new(Variant::OdeNet, 20).with_classes(10), 4);
    let mixed = StageFormats::uniform(PlFormat::Q20)
        .with(rodenet::LayerName::Layer3_2, PlFormat::Q16 { frac: 10 });
    let mut g = c.benchmark_group("precision_engine");
    g.bench_function("build_mixed_l1q20_l32q16", |b| {
        b.iter(|| {
            black_box(
                Engine::builder(&net)
                    .offload(Offload::Target(OffloadTarget::Layer1And32))
                    .precision(Precision::PerStage(mixed))
                    .build()
                    .unwrap(),
            )
        })
    });
    let engine = Engine::builder(&net)
        .offload(Offload::Target(OffloadTarget::Layer1And32))
        .precision(Precision::PerStage(mixed))
        .build()
        .unwrap();
    let x = image(9);
    g.bench_function("infer_mixed_l1q20_l32q16", |b| {
        b.iter(|| black_box(engine.infer(&x).unwrap()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_policy_resolution,
    bench_mixed_build_and_infer
);
criterion_main!(benches);
