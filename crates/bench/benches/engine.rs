//! Engine deployment-API benches: what the builder buys you.
//!
//! * `engine_setup/*` — per-image host cost of the one-shot legacy
//!   `run_hybrid` (re-plans + re-quantizes every call) vs a reused
//!   `Engine::infer` (planning + quantization amortized at build), at
//!   CIFAR spatial extent (32×32, numerics-dominated) and at thumbnail
//!   extent (8×8, where the fixed setup cost is a visible fraction);
//! * `engine_batch/*` — `infer_batch` throughput at batch 1/8/32;
//! * `engine_build` — the one-time cost being amortized.

use bench::random_tensor;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rodenet::{NetSpec, Network, Variant};
use std::time::Duration;
use tensor::{Shape4, Tensor};
use zynq_sim::engine::{Engine, Offload};
use zynq_sim::planner::OffloadTarget;
use zynq_sim::timing::{PlModel, PsModel};
use zynq_sim::PYNQ_Z2;

fn deployment() -> Network {
    Network::new(NetSpec::new(Variant::ROdeNet3, 20).with_classes(100), 11)
}

fn bench_setup_amortization(c: &mut Criterion) {
    let net = deployment();
    let mut g = c.benchmark_group("engine_setup");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    for hw in [32usize, 8] {
        let x = random_tensor(Shape4::new(1, 3, hw, hw), 12);
        g.bench_with_input(BenchmarkId::new("one_shot_run_hybrid", hw), &(), |b, _| {
            b.iter(|| {
                #[allow(deprecated)]
                let run = zynq_sim::run_hybrid(
                    &net,
                    &x,
                    OffloadTarget::Layer32,
                    &PsModel::Calibrated,
                    &PlModel::default(),
                    &PYNQ_Z2,
                );
                black_box(run)
            })
        });
        let engine = Engine::builder(&net)
            .offload(Offload::Target(OffloadTarget::Layer32))
            .build()
            .expect("layer3_2 fits");
        g.bench_with_input(BenchmarkId::new("reused_engine_infer", hw), &(), |b, _| {
            b.iter(|| black_box(engine.infer(&x).expect("CIFAR-shaped input")))
        });
    }
    g.finish();
}

fn bench_batch_throughput(c: &mut Criterion) {
    let net = deployment();
    let engine = Engine::builder(&net)
        .offload(Offload::Target(OffloadTarget::Layer32))
        .build()
        .expect("layer3_2 fits");
    let mut g = c.benchmark_group("engine_batch");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    for batch in [1usize, 8, 32] {
        let xs: Vec<Tensor<f32>> = (0..batch)
            .map(|i| random_tensor(Shape4::new(1, 3, 8, 8), 100 + i as u64))
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(batch), &(), |b, _| {
            b.iter(|| black_box(engine.infer_batch(&xs).expect("batch")))
        });
    }
    g.finish();
}

fn bench_build_cost(c: &mut Criterion) {
    let net = deployment();
    let mut g = c.benchmark_group("engine_build");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    g.bench_function("validate_and_quantize", |b| {
        b.iter(|| {
            black_box(
                Engine::builder(&net)
                    .offload(Offload::Target(OffloadTarget::Layer32))
                    .build()
                    .expect("layer3_2 fits"),
            )
        })
    });
    g.finish();
}

/// The plan-centric split: a `DeploymentPlan` answers latency queries
/// without quantizing a weight or running an inference — compare
/// `plan()` and `latency_report()` against `build()` and `infer()`.
fn bench_plan_vs_execute(c: &mut Criterion) {
    let net = deployment();
    let mut g = c.benchmark_group("engine_plan");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    g.bench_function("plan_only", |b| {
        b.iter(|| {
            black_box(
                Engine::builder(&net)
                    .offload(Offload::Target(OffloadTarget::Layer32))
                    .plan()
                    .expect("plans"),
            )
        })
    });
    let engine = Engine::builder(&net)
        .offload(Offload::Target(OffloadTarget::Layer32))
        .build()
        .expect("layer3_2 fits");
    g.bench_function("cached_latency_report", |b| {
        b.iter(|| black_box(engine.latency_report().expect("cached").total_w_pl))
    });
    let x = random_tensor(Shape4::new(1, 3, 8, 8), 13);
    g.bench_function("infer_for_timing", |b| {
        b.iter(|| black_box(engine.infer(&x).expect("runs").total_seconds()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_setup_amortization,
    bench_batch_throughput,
    bench_build_cost,
    bench_plan_vs_execute
);
criterion_main!(benches);
