//! Online-serving benches: what the serving simulator itself costs.
//!
//! * `serve_dispatch/*` — the micro-batcher's release planning over a
//!   256-image Poisson stream on the prebuilt 2-board plan timeline:
//!   the zero-deadline fast path (no pipeline replays), the deadline
//!   policy (one event-sim replay per dispatch), and fixed-batch-32.
//!   Dispatch is the per-request hot path of a real serving loop, so
//!   its cost must stay far below one bottleneck interval.
//! * `serve_sweep/*` — the full 12-point `sweep_timeline` load/latency
//!   curve end to end, the artifact `repro -- serve` and CI regenerate.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rodenet::{BnMode, NetSpec, Variant};
use std::time::Duration;
use zynq_sim::engine::Offload;
use zynq_sim::plan::PlFormat;
use zynq_sim::serve::{sweep_timeline, ArrivalProcess, Dispatch, LoadSweep, MicroBatcher};
use zynq_sim::timing::{PlModel, PsModel};
use zynq_sim::{
    plan_cluster, Cluster, ClusterPlan, ClusterRequest, Interconnect, Partitioner, Replication,
    Schedule, ARTY_Z7_20,
};

const IMAGES: usize = 256;

fn rack_plan() -> ClusterPlan {
    let spec = NetSpec::new(Variant::OdeNet, 20);
    plan_cluster(
        &spec,
        &ClusterRequest {
            cluster: Cluster::homogeneous(&ARTY_Z7_20, 2, Interconnect::GIGABIT_ETHERNET),
            offload: Offload::Auto,
            bn: BnMode::OnTheFly,
            ps: PsModel::Calibrated,
            pl: PlModel::default(),
            precision: PlFormat::Q20.into(),
            schedule: Schedule::Pipelined,
            partitioner: Partitioner::FirstFit,
            replication: Replication::None,
        },
    )
    .expect("two XC7Z020s carry ODENet-20 at Q20")
}

fn bench_dispatch(c: &mut Criterion) {
    let plan = rack_plan();
    let timeline = plan.timeline().to_vec();
    // Half the pipelined ceiling: the moderate-load regime where the
    // deadline policy actually consults head-idle.
    let rate = 0.5 / plan.bottleneck_seconds();
    let arrivals = ArrivalProcess::Poisson { rate }.arrivals(IMAGES, 42);

    let mut g = c.benchmark_group("serve_dispatch");
    g.measurement_time(Duration::from_secs(4));
    g.throughput(Throughput::Elements(IMAGES as u64));
    let policies: [(&str, Dispatch); 3] = [
        ("admit-on-arrival", Dispatch::Deadline { deadline: 0.0 }),
        ("deadline-50ms", Dispatch::Deadline { deadline: 0.05 }),
        ("fixed-batch-32", Dispatch::FixedBatch { size: 32 }),
    ];
    for (name, dispatch) in policies {
        g.bench_with_input(BenchmarkId::new(name, IMAGES), &(), |b, _| {
            b.iter(|| black_box(MicroBatcher::new(dispatch).release_plan(&timeline, &arrivals)))
        });
    }
    g.finish();
}

fn bench_sweep(c: &mut Criterion) {
    let plan = rack_plan();
    let timeline = plan.timeline().to_vec();
    let sweep = LoadSweep::default();
    let mut g = c.benchmark_group("serve_sweep");
    g.measurement_time(Duration::from_secs(6));
    g.sample_size(10);
    g.throughput(Throughput::Elements(
        (sweep.fractions.len() * IMAGES) as u64,
    ));
    g.bench_with_input(BenchmarkId::new("poisson-12pt", IMAGES), &(), |b, _| {
        b.iter(|| black_box(sweep_timeline(&timeline, &sweep).expect("valid sweep")))
    });
    g.finish();
}

criterion_group!(benches, bench_dispatch, bench_sweep);
criterion_main!(benches);
