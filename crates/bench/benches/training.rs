//! One SGD step (forward + backward + update) per gradient mode — the
//! adjoint method trades ~2× compute for O(1) memory, exactly as
//! Section 2.3 describes.

use bench::random_tensor;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rodenet::train::{Sgd, SgdConfig};
use rodenet::{GradMode, NetSpec, Network, Variant};
use std::time::Duration;
use tensor::softmax::cross_entropy;
use tensor::Shape4;

fn bench_step(c: &mut Criterion) {
    let x = random_tensor(Shape4::new(2, 3, 16, 16), 7);
    let labels = [0usize, 1];
    let mut g = c.benchmark_group("train_step_odenet20");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    for mode in [GradMode::Unrolled, GradMode::Adjoint] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &mode,
            |b, &m| {
                let mut net = Network::new(NetSpec::new(Variant::OdeNet, 20).with_classes(4), 8);
                let mut opt = Sgd::new(SgdConfig::default());
                b.iter(|| {
                    let (logits, cache) = net.forward_train(&x, m);
                    let (loss, glogits) = cross_entropy(&logits, &labels);
                    net.zero_grads();
                    net.backward(&glogits, &cache);
                    opt.step(&mut net);
                    black_box(loss)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_step);
criterion_main!(benches);
