//! PS hot-path face-off: the retained scalar reference kernel vs the
//! im2col/GEMM fast path, per offloadable layer geometry and end-to-end.
//!
//! * `hotpath_conv/{reference,fast}/*` — one convolution of each Table 2
//!   layer geometry (stride 1) plus the stride-2 downsample entry;
//! * `hotpath_e2e/{reference,fast}` — batch-32 ODENet-20 inference on the
//!   `PsSoftware` backend, routed through [`tensor::conv::set_force_reference`]
//!   so both runs share every call site.
//!
//! The two paths are pinned bit-identical (`tests/hotpath.rs`), so this
//! bench measures pure wall-clock, not a numerics trade.

use bench::random_tensor;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rodenet::{NetSpec, Network, Variant};
use std::time::Duration;
use tensor::conv::{conv2d_im2col_3x3, conv2d_reference, set_force_reference, Conv2dParams};
use tensor::{Shape4, Tensor};
use zynq_sim::engine::{Engine, Offload};
use zynq_sim::planner::OffloadTarget;

fn layer_shapes() -> Vec<(&'static str, Shape4, Shape4, Conv2dParams)> {
    vec![
        // (name, input, weights, params) — data channels + 1 time channel.
        (
            "layer1",
            Shape4::new(1, 17, 32, 32),
            Shape4::new(16, 17, 3, 3),
            Conv2dParams::same_3x3(),
        ),
        (
            "layer2_2",
            Shape4::new(1, 33, 16, 16),
            Shape4::new(32, 33, 3, 3),
            Conv2dParams::same_3x3(),
        ),
        (
            "layer3_2",
            Shape4::new(1, 65, 8, 8),
            Shape4::new(64, 65, 3, 3),
            Conv2dParams::same_3x3(),
        ),
        (
            "down2_1",
            Shape4::new(1, 17, 32, 32),
            Shape4::new(32, 17, 3, 3),
            Conv2dParams::down_3x3(),
        ),
    ]
}

fn bench_conv_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath_conv");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    for (name, xs, ws, p) in layer_shapes() {
        let os_h = p.out_extent(xs.h, 3);
        let os_w = p.out_extent(xs.w, 3);
        let macs = (xs.c * ws.n * 9 * os_h * os_w) as u64;
        g.throughput(Throughput::Elements(macs));
        let x = random_tensor(xs, 1);
        let w = random_tensor(ws, 2);
        g.bench_with_input(BenchmarkId::new("reference", name), &(), |b, _| {
            b.iter(|| black_box(conv2d_reference(&x, &w, p)))
        });
        g.bench_with_input(BenchmarkId::new("fast", name), &(), |b, _| {
            b.iter(|| black_box(conv2d_im2col_3x3(&x, &w, p)))
        });
    }
    g.finish();
}

fn bench_e2e_batch(c: &mut Criterion) {
    let net = Network::new(NetSpec::new(Variant::ROdeNet3, 20).with_classes(100), 11);
    let engine = Engine::builder(&net)
        .offload(Offload::Target(OffloadTarget::None))
        .build()
        .expect("pure-software placement always fits");
    let xs: Vec<Tensor<f32>> = (0..32)
        .map(|i| random_tensor(Shape4::new(1, 3, 32, 32), 100 + i as u64))
        .collect();
    let mut g = c.benchmark_group("hotpath_e2e");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(6));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("reference", |b| {
        set_force_reference(true);
        b.iter(|| black_box(engine.infer_batch(&xs).expect("batch runs")));
        set_force_reference(false);
    });
    g.bench_function("fast", |b| {
        b.iter(|| black_box(engine.infer_batch(&xs).expect("batch runs")))
    });
    g.finish();
}

criterion_group!(benches, bench_conv_kernels, bench_e2e_batch);
criterion_main!(benches);
