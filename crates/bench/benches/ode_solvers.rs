//! Cost of the ODE solvers per solve on block-shaped states, and the
//! adaptive solver's evaluation budget.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use odesolve::adaptive::{rkf45, AdaptiveOpts};
use odesolve::{ode_solve, ClosureField, Method, SolveOpts};
use std::time::Duration;
use tensor::{Shape4, Tensor};

fn bench_fixed_step(c: &mut Criterion) {
    // A cheap nonlinear field over a layer3_2-shaped state.
    let field = ClosureField::new(|z: &Tensor<f32>, t: f32| z.map(|v| (t - 0.5) * v - 0.1 * v * v));
    let z0 = Tensor::from_fn(Shape4::new(1, 64, 8, 8), |_, c, h, w| {
        ((c + h + w) % 7) as f32 * 0.1 - 0.3
    });
    let mut g = c.benchmark_group("ode_solve_8steps");
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    for method in [Method::Euler, Method::Midpoint, Method::Rk4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{method:?}")),
            &(),
            |b, _| {
                b.iter(|| black_box(ode_solve(&field, &z0, SolveOpts::new(0.0, 1.0, 8, method))))
            },
        );
    }
    g.finish();
}

fn bench_adaptive(c: &mut Criterion) {
    let field = ClosureField::new(|z: &Tensor<f32>, t: f32| z.map(|v| (t - 0.5) * v - 0.1 * v * v));
    let z0 = Tensor::from_fn(Shape4::new(1, 16, 8, 8), |_, c, h, w| {
        ((c + h + w) % 5) as f32 * 0.1 - 0.2
    });
    c.bench_function("rkf45_default_tol", |b| {
        b.iter(|| black_box(rkf45(&field, &z0, 0.0, 1.0, AdaptiveOpts::default())))
    });
}

criterion_group!(benches, bench_fixed_step, bench_adaptive);
criterion_main!(benches);
