//! Cluster-backend benches: what the pipelined batch scheduler costs
//! and what it buys.
//!
//! * `cluster_schedule/*` — the pure scheduling models on a prebuilt
//!   2-board plan timeline (batch of 32): the additive fold vs the
//!   event-driven pipeline simulation. This is the code that runs on
//!   every `infer_batch_summary`, so it must stay cheap next to the
//!   numerics it summarizes.
//! * `cluster_infer_batch/*` — end-to-end `infer_batch_summary` of a
//!   batch of 32 thumbnails through the 2-board engine, sequential vs
//!   pipelined schedule (identical numerics, different summary).

use bench::random_tensor;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rodenet::{BnMode, NetSpec, Network, Variant};
use std::time::Duration;
use tensor::{Shape4, Tensor};
use zynq_sim::cluster::{pipelined_schedule, sequential_makespan};
use zynq_sim::engine::{Engine, Offload};
use zynq_sim::plan::PlFormat;
use zynq_sim::timing::{PlModel, PsModel};
use zynq_sim::{
    plan_cluster, Cluster, ClusterRequest, Interconnect, Partitioner, Replication, Schedule,
    ARTY_Z7_20,
};

const BATCH: usize = 32;

fn two_board_request(schedule: Schedule) -> ClusterRequest {
    ClusterRequest {
        cluster: Cluster::homogeneous(&ARTY_Z7_20, 2, Interconnect::GIGABIT_ETHERNET),
        offload: Offload::Auto,
        bn: BnMode::OnTheFly,
        ps: PsModel::Calibrated,
        pl: PlModel::default(),
        precision: PlFormat::Q20.into(),
        schedule,
        partitioner: Partitioner::FirstFit,
        replication: Replication::None,
    }
}

fn bench_schedulers(c: &mut Criterion) {
    let spec = NetSpec::new(Variant::OdeNet, 20);
    let plan = plan_cluster(&spec, &two_board_request(Schedule::Pipelined)).expect("plans");
    let timeline = plan.timeline().to_vec();
    let mut g = c.benchmark_group("cluster_schedule");
    g.throughput(Throughput::Elements(BATCH as u64));
    g.bench_with_input(BenchmarkId::new("sequential", BATCH), &(), |b, _| {
        b.iter(|| black_box(sequential_makespan(&timeline, BATCH)))
    });
    g.bench_with_input(BenchmarkId::new("pipelined", BATCH), &(), |b, _| {
        b.iter(|| black_box(pipelined_schedule(&timeline, BATCH).makespan))
    });
    g.finish();
}

fn bench_batch_schedules(c: &mut Criterion) {
    let net = Network::new(NetSpec::new(Variant::OdeNet, 20).with_classes(100), 13);
    let xs: Vec<Tensor<f32>> = (0..BATCH)
        .map(|i| random_tensor(Shape4::new(1, 3, 8, 8), 100 + i as u64))
        .collect();
    let mut g = c.benchmark_group("cluster_infer_batch");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    g.throughput(Throughput::Elements(BATCH as u64));
    for schedule in [Schedule::Sequential, Schedule::Pipelined] {
        let engine = Engine::builder(&net)
            .cluster(Cluster::homogeneous(
                &ARTY_Z7_20,
                2,
                Interconnect::GIGABIT_ETHERNET,
            ))
            .schedule(schedule)
            .build()
            .expect("two boards fit AllOde at Q20");
        g.bench_with_input(
            BenchmarkId::new("infer_batch_summary", format!("{schedule:?}")),
            &(),
            |b, _| {
                b.iter(|| {
                    let (runs, summary) = engine.infer_batch_summary(&xs).expect("batch");
                    black_box((runs.len(), summary.wall_seconds))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_schedulers, bench_batch_schedules);
criterion_main!(benches);
