//! Property tests for the solver crate: structural identities that hold
//! for whole families of fields, not just the unit-test examples.

use odesolve::adaptive::{rkf45, AdaptiveOpts};
use odesolve::{ode_solve, ode_solve_trajectory, ClosureField, Method, SolveOpts};
use proptest::prelude::*;
use tensor::{Shape4, Tensor};

fn state(values: Vec<f32>) -> Tensor<f32> {
    Tensor::from_vec(Shape4::new(1, 1, 1, values.len()), values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Linearity: for dz/dt = a(t)·z, solves scale linearly in z0 (all
    /// fixed-step methods are linear maps for linear fields).
    #[test]
    fn solves_are_linear_for_linear_fields(
        z0 in -3.0f32..3.0,
        scale in -2.0f32..2.0,
        steps in 1usize..16,
    ) {
        for method in [Method::Euler, Method::Midpoint, Method::Rk4] {
            let f = ClosureField::new(|z: &Tensor<f32>, t: f32| z.map(|v| (0.3 * t - 0.5) * v));
            let opts = SolveOpts::new(0.0, 1.0, steps, method);
            let a = ode_solve(&f, &state(vec![z0]), opts);
            let b = ode_solve(&f, &state(vec![z0 * scale]), opts);
            prop_assert!(
                (a.get(0, 0, 0, 0) * scale - b.get(0, 0, 0, 0)).abs() < 1e-4,
                "{method:?}"
            );
        }
    }

    /// Autonomy: for a time-independent field, shifting the time window
    /// leaves the solution unchanged.
    #[test]
    fn autonomous_fields_are_time_shift_invariant(
        z0 in 0.1f32..2.0,
        shift in -5.0f32..5.0,
        steps in 1usize..12,
    ) {
        let f = ClosureField::new(|z: &Tensor<f32>, _t: f32| z.map(|v| -0.4 * v));
        let a = ode_solve(&f, &state(vec![z0]), SolveOpts::new(0.0, 1.0, steps, Method::Euler));
        let b = ode_solve(
            &f,
            &state(vec![z0]),
            SolveOpts::new(shift, shift + 1.0, steps, Method::Euler),
        );
        prop_assert!((a.get(0, 0, 0, 0) - b.get(0, 0, 0, 0)).abs() < 1e-5);
    }

    /// Composition: integrating [0, 1] in one solve equals integrating
    /// [0, ½] then [½, 1] with the same step density.
    #[test]
    fn solves_compose(steps in 1usize..10, lam in -1.0f32..0.5) {
        let f = ClosureField::new(move |z: &Tensor<f32>, _t| z.map(|v| lam * v));
        let whole = ode_solve(&f, &state(vec![1.0]), SolveOpts::new(0.0, 1.0, 2 * steps, Method::Euler));
        let first = ode_solve(&f, &state(vec![1.0]), SolveOpts::new(0.0, 0.5, steps, Method::Euler));
        let second = ode_solve(&f, &first, SolveOpts::new(0.5, 1.0, steps, Method::Euler));
        prop_assert!((whole.get(0, 0, 0, 0) - second.get(0, 0, 0, 0)).abs() < 1e-5);
    }

    /// The trajectory's last element always equals the plain solve, and
    /// consecutive entries satisfy the Euler recurrence exactly.
    #[test]
    fn trajectory_satisfies_recurrence(steps in 1usize..12, lam in -1.0f32..1.0) {
        let f = ClosureField::new(move |z: &Tensor<f32>, _t| z.map(|v| lam * v));
        let opts = SolveOpts::new(0.0, 1.0, steps, Method::Euler);
        let traj = ode_solve_trajectory(&f, &state(vec![1.0]), opts);
        prop_assert_eq!(traj.len(), steps + 1);
        let h = opts.h();
        for i in 0..steps {
            let z = traj[i].get(0, 0, 0, 0);
            let expect = z + h * lam * z;
            prop_assert!((traj[i + 1].get(0, 0, 0, 0) - expect).abs() < 1e-6);
        }
    }

    /// Higher-order methods never do worse than Euler on smooth decay.
    #[test]
    fn order_hierarchy(steps in 2usize..12) {
        let f = ClosureField::new(|z: &Tensor<f32>, _t| z.map(|v| -v));
        let exact = (-1.0f32).exp();
        let err = |m: Method| -> f32 {
            let z = ode_solve(&f, &state(vec![1.0]), SolveOpts::new(0.0, 1.0, steps, m));
            (z.get(0, 0, 0, 0) - exact).abs()
        };
        let (e1, e2, e4) = (err(Method::Euler), err(Method::Midpoint), err(Method::Rk4));
        prop_assert!(e2 <= e1 * 1.05, "midpoint {e2} vs euler {e1}");
        prop_assert!(e4 <= e2 * 1.05, "rk4 {e4} vs midpoint {e2}");
    }

    /// The adaptive solver agrees with a fine fixed-step RK4 reference
    /// for smooth scalar fields.
    #[test]
    fn adaptive_matches_fixed_reference(lam in -2.0f32..0.5, z0 in 0.2f32..2.0) {
        let f = ClosureField::new(move |z: &Tensor<f32>, _t| z.map(|v| lam * v));
        let reference = ode_solve(&f, &state(vec![z0]), SolveOpts::new(0.0, 1.0, 512, Method::Rk4));
        let adaptive = rkf45(&f, &state(vec![z0]), 0.0, 1.0, AdaptiveOpts::default());
        prop_assert!(
            (reference.get(0, 0, 0, 0) - adaptive.z.get(0, 0, 0, 0)).abs() < 1e-4,
            "λ={lam}"
        );
    }

    /// Vector states integrate component-wise for diagonal fields.
    #[test]
    fn diagonal_fields_decouple(a in -1.0f32..0.5, b in -1.0f32..0.5) {
        let f = ClosureField::new(move |z: &Tensor<f32>, _t| {
            let mut out = z.clone();
            let s = out.as_mut_slice();
            s[0] *= a;
            s[1] *= b;
            out
        });
        let opts = SolveOpts::new(0.0, 1.0, 32, Method::Rk4);
        let joint = ode_solve(&f, &state(vec![1.0, 1.0]), opts);
        // Each component should match the scalar solve with its own rate.
        for (idx, lam) in [(0usize, a), (1, b)] {
            let g = ClosureField::new(move |z: &Tensor<f32>, _t| z.map(|v| lam * v));
            let solo = ode_solve(&g, &state(vec![1.0]), opts);
            prop_assert!(
                (joint.as_slice()[idx] - solo.get(0, 0, 0, 0)).abs() < 1e-5,
                "component {idx}"
            );
        }
    }
}
