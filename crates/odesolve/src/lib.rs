//! # odesolve — ODE solvers and adjoint gradients for ODENet
//!
//! Implements Section 2.2/2.3 of the paper:
//!
//! * [`ode_solve`] — the `ODESolve(z(t0), t0, t1, f)` function
//!   (Equation 4) with fixed-step [`Method::Euler`] (the paper's
//!   prediction-time solver), [`Method::Midpoint`] (second-order
//!   Runge–Kutta) and [`Method::Rk4`] (fourth-order), all generic over
//!   the scalar type so the Q20 PL datapath can drive them;
//! * [`adaptive::rkf45`] — an adaptive Runge–Kutta–Fehlberg 4(5) solver
//!   (the "more accurate ODE solvers" of the paper's future work);
//! * [`adjoint`] — the training-time gradient computations of
//!   Equations 7–9: the memory-efficient **adjoint method** (backward
//!   recomputation of z(t), constant memory) and the exact **unrolled**
//!   discretize-then-optimize backward pass, whose disagreement is the
//!   accuracy-loss issue the paper cites from ANODE.
//!
//! ```
//! use odesolve::{ode_solve, ClosureField, Method, SolveOpts};
//! use tensor::{Shape4, Tensor};
//!
//! // dz/dt = -z, z(0) = 1  =>  z(1) = e^-1.
//! let f = ClosureField::new(|z: &Tensor<f32>, _t| z.map(|v| -v));
//! let z0 = Tensor::full(Shape4::new(1, 1, 1, 1), 1.0f32);
//! let z1 = ode_solve(&f, &z0, SolveOpts::new(0.0, 1.0, 1000, Method::Rk4));
//! assert!((z1.get(0, 0, 0, 0) - (-1.0f32).exp()).abs() < 1e-5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod adjoint;
mod field;
mod fixed_step;

pub use field::{ClosureField, OdeField, OdeVjp};
pub use fixed_step::{ode_solve, ode_solve_trajectory, Method, SolveOpts};
