//! Training-time gradients through `ODESolve` (Equations 6–9).
//!
//! Two backward passes are provided:
//!
//! * [`adjoint_backward`] — the paper's **adjoint method** (Equation 9):
//!   re-integrates `z(t)` *backwards* from `z(t1)` alongside the adjoint
//!   `a(t)`, so nothing but the endpoint is stored. Memory-free but
//!   inexact for the discretized system: the recomputed z̃ drifts from
//!   the forward trajectory and the continuous adjoint is itself
//!   discretized — the accuracy-loss issue the paper cites from ANODE
//!   and lists as future work.
//! * [`unrolled_backward`] — exact discretize-then-optimize backprop
//!   through the Euler recurrence using the stored forward trajectory
//!   (`O(steps)` memory).
//!
//! Both accumulate parameter gradients through [`OdeVjp::vjp`], which the
//! caller's ODE block implements.

use crate::{OdeVjp, SolveOpts};
use tensor::ops::axpy;
use tensor::Tensor;

/// Adjoint-method backward pass (Equation 9).
///
/// Arguments: the field (whose `vjp` accumulates θ-gradients), the
/// **forward output** `z1 = z(t1)`, the loss gradient `a1 = ∂L/∂z(t1)`,
/// and the forward solve options (must be Euler; the PL/paper pairing).
///
/// Returns `(z0_recomputed, a0)` where `a0 = ∂L/∂z(t0)`.
pub fn adjoint_backward<F: OdeVjp + ?Sized>(
    f: &mut F,
    z1: &Tensor<f32>,
    a1: &Tensor<f32>,
    opts: SolveOpts,
) -> (Tensor<f32>, Tensor<f32>) {
    assert_eq!(
        opts.method,
        crate::Method::Euler,
        "the adjoint pairing implemented here discretizes with Euler, as the paper does"
    );
    let h = opts.h();
    let mut z = z1.clone();
    let mut a = a1.clone();
    // March t from t1 down to t0. At each step, evaluate everything at the
    // right endpoint (t_{i+1}, z̃_{i+1}) — the continuous adjoint
    // discretized backwards.
    for i in (0..opts.steps).rev() {
        let t_right = opts.t0 + h * (i + 1) as f32;
        // dθ += h · aᵀ ∂f/∂θ |_(z̃, t_right); also get aᵀ ∂f/∂z.
        let a_dfdz = f.vjp(&z, t_right, &a, h);
        // a_i = a_{i+1} + h · aᵀ ∂f/∂z   (da/dt = −aᵀ∂f/∂z, reversed)
        a = axpy(&a, h, &a_dfdz);
        // z̃_i = z̃_{i+1} − h · f(z̃_{i+1}, t_right)   (reverse Euler)
        let fz = f.eval(&z, t_right);
        z = axpy(&z, -h, &fz);
    }
    (z, a)
}

/// Exact backprop through the forward Euler recurrence.
///
/// `trajectory` must be the output of
/// [`crate::ode_solve_trajectory`] for the same options (length
/// `steps + 1`). Returns `a0 = ∂L/∂z(t0)`.
pub fn unrolled_backward<F: OdeVjp + ?Sized>(
    f: &mut F,
    trajectory: &[Tensor<f32>],
    a1: &Tensor<f32>,
    opts: SolveOpts,
) -> Tensor<f32> {
    assert_eq!(
        opts.method,
        crate::Method::Euler,
        "unrolled backward currently covers the Euler recurrence"
    );
    assert_eq!(
        trajectory.len(),
        opts.steps + 1,
        "trajectory must hold steps+1 states"
    );
    let h = opts.h();
    let mut a = a1.clone();
    // z_{i+1} = z_i + h f(z_i, t_i)  =>  a_i = a_{i+1} + h ∂f/∂zᵀ a_{i+1},
    // with everything evaluated at the *stored* left endpoint.
    for i in (0..opts.steps).rev() {
        let t_left = opts.t0 + h * i as f32;
        let a_dfdz = f.vjp(&trajectory[i], t_left, &a, h);
        a = axpy(&a, h, &a_dfdz);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ode_solve, ode_solve_trajectory, Method, OdeField, SolveOpts};
    use tensor::{Shape4, Tensor};

    /// f(z, t) = θ·z — a linear field with one scalar parameter, so every
    /// gradient has a closed form: z(1) = z0·e^θ, dL/dz0 = e^θ,
    /// dL/dθ = z0·e^θ for L = z(1).
    struct LinearField {
        theta: f32,
        dtheta: f32,
    }

    impl OdeField<f32> for LinearField {
        fn eval(&self, z: &Tensor<f32>, _t: f32) -> Tensor<f32> {
            z.map(|v| self.theta * v)
        }
    }

    impl OdeVjp for LinearField {
        fn vjp(&mut self, z: &Tensor<f32>, _t: f32, a: &Tensor<f32>, weight: f32) -> Tensor<f32> {
            // aᵀ ∂f/∂θ = aᵀ z; aᵀ ∂f/∂z = θ a.
            let dot: f32 = a
                .as_slice()
                .iter()
                .zip(z.as_slice())
                .map(|(x, y)| x * y)
                .sum();
            self.dtheta += weight * dot;
            a.map(|v| self.theta * v)
        }
    }

    fn state(v: f32) -> Tensor<f32> {
        Tensor::full(Shape4::new(1, 1, 1, 1), v)
    }

    #[test]
    fn unrolled_gradient_is_exact_for_discrete_system() {
        // For the discrete Euler map z -> (1 + θh)^M z0:
        // dz1/dz0 = (1+θh)^M exactly; unrolled backprop must match it.
        let theta = -0.7f32;
        let steps = 16;
        let opts = SolveOpts::new(0.0, 1.0, steps, Method::Euler);
        let mut f = LinearField { theta, dtheta: 0.0 };
        let traj = ode_solve_trajectory(&f, &state(1.3), opts);
        let a0 = unrolled_backward(&mut f, &traj, &state(1.0), opts);
        let h = opts.h();
        let exact = (1.0 + theta * h).powi(steps as i32);
        assert!(
            (a0.get(0, 0, 0, 0) - exact).abs() < 1e-6,
            "unrolled {} vs discrete-exact {exact}",
            a0.get(0, 0, 0, 0)
        );
        // dθ for the discrete map: z0·M·h·(1+θh)^{M−1}·… — check against
        // finite differences instead of deriving the formula.
        let num = {
            let eps = 1e-3;
            let zp = ode_solve(
                &LinearField {
                    theta: theta + eps,
                    dtheta: 0.0,
                },
                &state(1.3),
                opts,
            );
            let zm = ode_solve(
                &LinearField {
                    theta: theta - eps,
                    dtheta: 0.0,
                },
                &state(1.3),
                opts,
            );
            (zp.get(0, 0, 0, 0) - zm.get(0, 0, 0, 0)) / (2.0 * eps)
        };
        assert!(
            (f.dtheta - num).abs() < 1e-3,
            "dθ {} vs numeric {num}",
            f.dtheta
        );
    }

    #[test]
    fn adjoint_approximates_continuous_gradient() {
        // dL/dz0 for L = z(1) of dz/dt = θz is e^θ in the continuum.
        let theta = -0.7f32;
        let opts = SolveOpts::new(0.0, 1.0, 256, Method::Euler);
        let mut f = LinearField { theta, dtheta: 0.0 };
        let z1 = ode_solve(&f, &state(1.3), opts);
        let (z0_rec, a0) = adjoint_backward(&mut f, &z1, &state(1.0), opts);
        assert!(
            (z0_rec.get(0, 0, 0, 0) - 1.3).abs() < 1e-2,
            "z recomputation drifts O(h)"
        );
        let exact = theta.exp();
        assert!(
            (a0.get(0, 0, 0, 0) - exact).abs() < 2e-2,
            "adjoint {} vs continuous {exact}",
            a0.get(0, 0, 0, 0)
        );
        // dθ ≈ z0 e^θ.
        assert!((f.dtheta - 1.3 * exact).abs() < 3e-2, "dθ {}", f.dtheta);
    }

    /// f(z, t) = θ·z² — ∂f/∂z = 2θz depends on the state, so the adjoint
    /// method's backward-recomputed z̃ actually matters (unlike a linear
    /// field, where adjoint and unrolled coincide identically).
    struct QuadraticField {
        theta: f32,
        dtheta: f32,
    }

    impl OdeField<f32> for QuadraticField {
        fn eval(&self, z: &Tensor<f32>, _t: f32) -> Tensor<f32> {
            z.map(|v| self.theta * v * v)
        }
    }

    impl OdeVjp for QuadraticField {
        fn vjp(&mut self, z: &Tensor<f32>, _t: f32, a: &Tensor<f32>, weight: f32) -> Tensor<f32> {
            let dot: f32 = a
                .as_slice()
                .iter()
                .zip(z.as_slice())
                .map(|(x, y)| x * y * y)
                .sum();
            self.dtheta += weight * dot;
            a.zip_map(z, |av, zv| 2.0 * self.theta * zv * av)
        }
    }

    #[test]
    fn adjoint_and_unrolled_agree_as_h_shrinks() {
        // The two estimators converge to each other at rate O(h) — and
        // differ measurably for coarse steps, which is the instability the
        // paper observes for small N (few solver steps).
        let theta = -0.8f32;
        let gap = |steps: usize| -> f32 {
            let opts = SolveOpts::new(0.0, 1.0, steps, Method::Euler);
            let mut fa = QuadraticField { theta, dtheta: 0.0 };
            let z1 = ode_solve(&fa, &state(1.0), opts);
            let (_, a_adj) = adjoint_backward(&mut fa, &z1, &state(1.0), opts);
            let mut fu = QuadraticField { theta, dtheta: 0.0 };
            let traj = ode_solve_trajectory(&fu, &state(1.0), opts);
            let a_unr = unrolled_backward(&mut fu, &traj, &state(1.0), opts);
            (a_adj.get(0, 0, 0, 0) - a_unr.get(0, 0, 0, 0)).abs()
        };
        let coarse = gap(2);
        let fine = gap(64);
        assert!(coarse > fine * 4.0, "gap must shrink: {coarse} -> {fine}");
        assert!(fine < 0.02, "fine gap {fine}");
        assert!(
            coarse > 0.005,
            "coarse steps show the adjoint mismatch: {coarse}"
        );
    }

    #[test]
    fn adjoint_param_grads_accumulate_across_calls() {
        let opts = SolveOpts::new(0.0, 1.0, 8, Method::Euler);
        let mut f = LinearField {
            theta: 0.3,
            dtheta: 0.0,
        };
        let z1 = ode_solve(&f, &state(1.0), opts);
        let _ = adjoint_backward(&mut f, &z1, &state(1.0), opts);
        let first = f.dtheta;
        let _ = adjoint_backward(&mut f, &z1, &state(1.0), opts);
        assert!(
            (f.dtheta - 2.0 * first).abs() < 1e-6,
            "vjp accumulates, caller resets"
        );
    }

    #[test]
    #[should_panic(expected = "steps+1")]
    fn unrolled_checks_trajectory_length() {
        let opts = SolveOpts::new(0.0, 1.0, 4, Method::Euler);
        let mut f = LinearField {
            theta: 0.1,
            dtheta: 0.0,
        };
        let _ = unrolled_backward(&mut f, &[state(1.0)], &state(1.0), opts);
    }
}
