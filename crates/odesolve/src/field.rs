//! The dynamics traits: what an ODE block must expose to the solvers.

use tensor::{Scalar, Tensor};

/// A time-dependent vector field `f(z, t, θ)` over tensor states.
///
/// The parameters θ live inside the implementor (an ODE block holds its
/// convolution weights and batch-norm parameters); the solver only sees
/// the state and the scalar time.
pub trait OdeField<S: Scalar> {
    /// Evaluate `f(z, t)`.
    fn eval(&self, z: &Tensor<S>, t: S) -> Tensor<S>;
}

/// Reverse-mode hooks for training through a solve (f32 only, training
/// happens in float as in the paper).
pub trait OdeVjp: OdeField<f32> {
    /// Vector–Jacobian product: returns `aᵀ ∂f/∂z` evaluated at `(z, t)`
    /// and accumulates `weight · aᵀ ∂f/∂θ` into the implementor's
    /// parameter-gradient buffers.
    fn vjp(&mut self, z: &Tensor<f32>, t: f32, a: &Tensor<f32>, weight: f32) -> Tensor<f32>;
}

/// Adapter turning a closure into an [`OdeField`] (handy for tests and
/// classic textbook ODEs).
pub struct ClosureField<F> {
    f: F,
}

impl<F> ClosureField<F> {
    /// Wrap a closure `f(z, t) -> dz/dt`.
    pub fn new(f: F) -> Self {
        ClosureField { f }
    }
}

impl<S, F> OdeField<S> for ClosureField<F>
where
    S: Scalar,
    F: Fn(&Tensor<S>, S) -> Tensor<S>,
{
    fn eval(&self, z: &Tensor<S>, t: S) -> Tensor<S> {
        (self.f)(z, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Shape4;

    #[test]
    fn closure_field_evaluates() {
        let f = ClosureField::new(|z: &Tensor<f32>, t: f32| z.map(|v| v * t));
        let z = Tensor::full(Shape4::new(1, 1, 1, 2), 3.0f32);
        let out = f.eval(&z, 2.0);
        assert_eq!(out.as_slice(), &[6.0, 6.0]);
    }
}
