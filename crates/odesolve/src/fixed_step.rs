//! Fixed-step solvers: Euler (the paper's prediction solver), midpoint
//! (RK2) and classical RK4.

use crate::OdeField;
use tensor::ops::axpy;
use tensor::{Scalar, Tensor};

/// Which fixed-step scheme to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// First order; one field evaluation per step. What the paper deploys
    /// on the FPGA ("simple and requires only a small temporary memory").
    Euler,
    /// Second-order Runge–Kutta; two evaluations per step.
    Midpoint,
    /// Classical fourth-order Runge–Kutta; four evaluations per step.
    Rk4,
}

impl Method {
    /// Field evaluations per step.
    pub const fn evals_per_step(&self) -> usize {
        match self {
            Method::Euler => 1,
            Method::Midpoint => 2,
            Method::Rk4 => 4,
        }
    }

    /// Classical order of accuracy.
    pub const fn order(&self) -> usize {
        match self {
            Method::Euler => 1,
            Method::Midpoint => 2,
            Method::Rk4 => 4,
        }
    }
}

/// Integration range and discretization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolveOpts {
    /// Start time.
    pub t0: f32,
    /// End time (may be below `t0` for reverse-time solves).
    pub t1: f32,
    /// Number of steps (M in the paper: an ODENet block executed M times
    /// corresponds to M solver steps).
    pub steps: usize,
    /// The scheme.
    pub method: Method,
}

impl SolveOpts {
    /// Construct options.
    pub fn new(t0: f32, t1: f32, steps: usize, method: Method) -> Self {
        assert!(steps > 0, "at least one step");
        SolveOpts {
            t0,
            t1,
            steps,
            method,
        }
    }

    /// The paper's default: Euler over `[0, 1]` in `steps` executions.
    pub fn euler_unit(steps: usize) -> Self {
        Self::new(0.0, 1.0, steps, Method::Euler)
    }

    /// Step size h (signed).
    pub fn h(&self) -> f32 {
        (self.t1 - self.t0) / self.steps as f32
    }
}

fn step<S: Scalar, F: OdeField<S> + ?Sized>(
    f: &F,
    z: &Tensor<S>,
    t: f32,
    h: f32,
    method: Method,
) -> Tensor<S> {
    let hs = S::from_f32(h);
    match method {
        Method::Euler => {
            let k1 = f.eval(z, S::from_f32(t));
            axpy(z, hs, &k1)
        }
        Method::Midpoint => {
            let k1 = f.eval(z, S::from_f32(t));
            let zmid = axpy(z, S::from_f32(h * 0.5), &k1);
            let k2 = f.eval(&zmid, S::from_f32(t + h * 0.5));
            axpy(z, hs, &k2)
        }
        Method::Rk4 => {
            let k1 = f.eval(z, S::from_f32(t));
            let z2 = axpy(z, S::from_f32(h * 0.5), &k1);
            let k2 = f.eval(&z2, S::from_f32(t + h * 0.5));
            let z3 = axpy(z, S::from_f32(h * 0.5), &k2);
            let k3 = f.eval(&z3, S::from_f32(t + h * 0.5));
            let z4 = axpy(z, hs, &k3);
            let k4 = f.eval(&z4, S::from_f32(t + h));
            // z + h/6 (k1 + 2k2 + 2k3 + k4)
            let h6 = S::from_f32(h / 6.0);
            let h3 = S::from_f32(h / 3.0);
            let mut out = axpy(z, h6, &k1);
            out = axpy(&out, h3, &k2);
            out = axpy(&out, h3, &k3);
            axpy(&out, h6, &k4)
        }
    }
}

/// `ODESolve(z0, t0, t1, f)`: integrate and return the final state.
pub fn ode_solve<S: Scalar, F: OdeField<S> + ?Sized>(
    f: &F,
    z0: &Tensor<S>,
    opts: SolveOpts,
) -> Tensor<S> {
    let h = opts.h();
    let mut z = z0.clone();
    for i in 0..opts.steps {
        let t = opts.t0 + h * i as f32;
        z = step(f, &z, t, h, opts.method);
    }
    z
}

/// Like [`ode_solve`] but keeps every intermediate state:
/// returns `[z0, z1, …, z_steps]` (length `steps + 1`).
///
/// This is the memory-hungry trajectory the adjoint method avoids storing
/// (the paper's Section 2.3) — and exactly what the unrolled backward
/// pass needs.
pub fn ode_solve_trajectory<S: Scalar, F: OdeField<S> + ?Sized>(
    f: &F,
    z0: &Tensor<S>,
    opts: SolveOpts,
) -> Vec<Tensor<S>> {
    let h = opts.h();
    let mut out = Vec::with_capacity(opts.steps + 1);
    out.push(z0.clone());
    for i in 0..opts.steps {
        let t = opts.t0 + h * i as f32;
        let next = step(f, out.last().expect("non-empty"), t, h, opts.method);
        out.push(next);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClosureField;
    use qfixed::Q20;
    use tensor::Shape4;

    fn scalar_state(v: f32) -> Tensor<f32> {
        Tensor::full(Shape4::new(1, 1, 1, 1), v)
    }

    /// dz/dt = -z  =>  z(1) = z0·e^{-1}.
    fn decay() -> ClosureField<impl Fn(&Tensor<f32>, f32) -> Tensor<f32>> {
        ClosureField::new(|z: &Tensor<f32>, _t| z.map(|v| -v))
    }

    #[test]
    fn euler_decay_converges() {
        let exact = (-1.0f32).exp();
        let coarse = ode_solve(&decay(), &scalar_state(1.0), SolveOpts::euler_unit(10));
        let fine = ode_solve(&decay(), &scalar_state(1.0), SolveOpts::euler_unit(1000));
        let e_coarse = (coarse.get(0, 0, 0, 0) - exact).abs();
        let e_fine = (fine.get(0, 0, 0, 0) - exact).abs();
        assert!(
            e_fine < e_coarse / 50.0,
            "Euler is first order: {e_coarse} -> {e_fine}"
        );
    }

    #[test]
    fn convergence_orders() {
        // Halving h should cut the error by ~2^order.
        let exact = (-1.0f32).exp();
        for (method, order) in [
            (Method::Euler, 1.0f32),
            (Method::Midpoint, 2.0),
            (Method::Rk4, 4.0),
        ] {
            let err = |steps: usize| -> f32 {
                let z = ode_solve(
                    &decay(),
                    &scalar_state(1.0),
                    SolveOpts::new(0.0, 1.0, steps, method),
                );
                (z.get(0, 0, 0, 0) - exact).abs()
            };
            let (e1, e2) = (err(8), err(16));
            let ratio = e1 / e2.max(1e-12);
            let expect = 2.0f32.powf(order);
            // Only a lower bound: once the truncation error reaches f32
            // roundoff (RK4 gets there immediately) the ratio can exceed
            // the theoretical 2^order arbitrarily.
            assert!(
                ratio > expect * 0.5,
                "{method:?}: ratio {ratio} vs expected ≥{expect}"
            );
            assert!(e2 <= e1, "{method:?}: error must not grow when halving h");
        }
    }

    #[test]
    fn time_dependent_field() {
        // dz/dt = t  =>  z(1) = z0 + 0.5.
        let f = ClosureField::new(|z: &Tensor<f32>, t: f32| z.map(|_| t));
        let z1 = ode_solve(
            &f,
            &scalar_state(2.0),
            SolveOpts::new(0.0, 1.0, 512, Method::Midpoint),
        );
        assert!((z1.get(0, 0, 0, 0) - 2.5).abs() < 1e-4);
    }

    #[test]
    fn reverse_time_solve_inverts_forward() {
        // Integrate forward then backward with RK4: should come home.
        let fwd = ode_solve(
            &decay(),
            &scalar_state(1.0),
            SolveOpts::new(0.0, 1.0, 64, Method::Rk4),
        );
        let back = ode_solve(&decay(), &fwd, SolveOpts::new(1.0, 0.0, 64, Method::Rk4));
        assert!((back.get(0, 0, 0, 0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn trajectory_endpoints_match_solve() {
        let opts = SolveOpts::euler_unit(7);
        let traj = ode_solve_trajectory(&decay(), &scalar_state(1.0), opts);
        assert_eq!(traj.len(), 8);
        let z1 = ode_solve(&decay(), &scalar_state(1.0), opts);
        assert_eq!(traj.last().unwrap().as_slice(), z1.as_slice());
        assert_eq!(traj[0].as_slice(), &[1.0]);
    }

    #[test]
    fn euler_step_matches_resnet_block_semantics() {
        // One Euler step with h=1 is exactly z + f(z): Equation 1 == Equation 5.
        let f = ClosureField::new(|z: &Tensor<f32>, _t| z.map(|v| 0.5 * v + 1.0));
        let z1 = ode_solve(
            &f,
            &scalar_state(2.0),
            SolveOpts::new(0.0, 1.0, 1, Method::Euler),
        );
        assert_eq!(z1.get(0, 0, 0, 0), 2.0 + (0.5 * 2.0 + 1.0));
    }

    #[test]
    fn fixed_point_euler_runs() {
        // Same decay ODE in Q20: dz/dt = -z.
        let f = ClosureField::new(|z: &Tensor<Q20>, _t: Q20| z.map(|v| -v));
        let z0 = Tensor::full(Shape4::new(1, 1, 1, 1), Q20::from_f32(1.0));
        let z1 = ode_solve(&f, &z0, SolveOpts::new(0.0, 1.0, 100, Method::Euler));
        let exact = (-1.0f32).exp();
        assert!((z1.get(0, 0, 0, 0).to_f32() - exact).abs() < 2e-2);
    }

    #[test]
    fn method_metadata() {
        assert_eq!(Method::Euler.evals_per_step(), 1);
        assert_eq!(Method::Rk4.order(), 4);
        assert_eq!(SolveOpts::euler_unit(10).h(), 0.1);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_rejected() {
        let _ = SolveOpts::new(0.0, 1.0, 0, Method::Euler);
    }
}
