//! Adaptive Runge–Kutta–Fehlberg 4(5) — the "more accurate ODE solvers"
//! of the paper's future work, with embedded error control.
//!
//! `f32` only: adaptivity is a training/analysis tool; the PL datapath
//! always runs fixed-step Euler.

use crate::OdeField;
use tensor::ops::axpy;
use tensor::Tensor;

/// Outcome of an adaptive solve.
#[derive(Clone, Debug)]
pub struct AdaptiveResult {
    /// Final state at `t1`.
    pub z: Tensor<f32>,
    /// Accepted steps.
    pub accepted: usize,
    /// Rejected (re-tried) steps.
    pub rejected: usize,
    /// Total field evaluations (6 per attempted step).
    pub evals: usize,
}

/// Tolerances and step bounds.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveOpts {
    /// Absolute error tolerance per step.
    pub atol: f32,
    /// Relative error tolerance per step.
    pub rtol: f32,
    /// Initial step size (positive magnitude).
    pub h0: f32,
    /// Hard cap on attempted steps (guards against pathological fields).
    pub max_steps: usize,
}

impl Default for AdaptiveOpts {
    fn default() -> Self {
        AdaptiveOpts {
            atol: 1e-6,
            rtol: 1e-5,
            h0: 0.1,
            max_steps: 100_000,
        }
    }
}

// Fehlberg coefficients (RKF45).
const A: [[f32; 5]; 5] = [
    [1.0 / 4.0, 0.0, 0.0, 0.0, 0.0],
    [3.0 / 32.0, 9.0 / 32.0, 0.0, 0.0, 0.0],
    [1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0, 0.0, 0.0],
    [439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0, 0.0],
    [
        -8.0 / 27.0,
        2.0,
        -3544.0 / 2565.0,
        1859.0 / 4104.0,
        -11.0 / 40.0,
    ],
];
const C: [f32; 6] = [0.0, 1.0 / 4.0, 3.0 / 8.0, 12.0 / 13.0, 1.0, 1.0 / 2.0];
const B4: [f32; 6] = [
    25.0 / 216.0,
    0.0,
    1408.0 / 2565.0,
    2197.0 / 4104.0,
    -1.0 / 5.0,
    0.0,
];
const B5: [f32; 6] = [
    16.0 / 135.0,
    0.0,
    6656.0 / 12825.0,
    28561.0 / 56430.0,
    -9.0 / 50.0,
    2.0 / 55.0,
];

/// Integrate `f` from `t0` to `t1` with adaptive step control.
pub fn rkf45<F: OdeField<f32> + ?Sized>(
    f: &F,
    z0: &Tensor<f32>,
    t0: f32,
    t1: f32,
    opts: AdaptiveOpts,
) -> AdaptiveResult {
    assert!(t1 > t0, "adaptive solver integrates forward (t1 > t0)");
    let mut z = z0.clone();
    let mut t = t0;
    let mut h = opts.h0.min(t1 - t0).max(1e-9);
    let mut accepted = 0;
    let mut rejected = 0;
    let mut evals = 0;

    while t < t1 && accepted + rejected < opts.max_steps {
        if t + h > t1 {
            h = t1 - t;
        }
        // Six stages.
        let mut k: Vec<Tensor<f32>> = Vec::with_capacity(6);
        k.push(f.eval(&z, t));
        for s in 1..6 {
            let mut zs = z.clone();
            for (j, kj) in k.iter().enumerate() {
                let a = A[s - 1][j];
                if a != 0.0 {
                    zs = axpy(&zs, h * a, kj);
                }
            }
            k.push(f.eval(&zs, t + C[s] * h));
        }
        evals += 6;
        // 4th and 5th order estimates.
        let mut z4 = z.clone();
        let mut z5 = z.clone();
        for (j, kj) in k.iter().enumerate() {
            if B4[j] != 0.0 {
                z4 = axpy(&z4, h * B4[j], kj);
            }
            if B5[j] != 0.0 {
                z5 = axpy(&z5, h * B5[j], kj);
            }
        }
        // Scaled error norm.
        let mut err_max = 0.0f32;
        for (a, b) in z4.as_slice().iter().zip(z5.as_slice()) {
            let scale = opts.atol + opts.rtol * a.abs().max(b.abs());
            err_max = err_max.max((a - b).abs() / scale);
        }
        if err_max <= 1.0 {
            t += h;
            z = z5; // local extrapolation: accept the 5th-order estimate
            accepted += 1;
        } else {
            rejected += 1;
        }
        // PI-free classic step update, clamped to [0.1, 4]x.
        let factor = if err_max > 0.0 {
            (0.9 * err_max.powf(-0.2)).clamp(0.1, 4.0)
        } else {
            4.0
        };
        h = (h * factor).max(1e-9);
    }
    AdaptiveResult {
        z,
        accepted,
        rejected,
        evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClosureField;
    use tensor::Shape4;

    fn state(v: f32) -> Tensor<f32> {
        Tensor::full(Shape4::new(1, 1, 1, 1), v)
    }

    #[test]
    fn decay_matches_exact() {
        let f = ClosureField::new(|z: &Tensor<f32>, _t| z.map(|v| -v));
        let r = rkf45(&f, &state(1.0), 0.0, 1.0, AdaptiveOpts::default());
        assert!((r.z.get(0, 0, 0, 0) - (-1.0f32).exp()).abs() < 1e-5);
        assert!(r.accepted > 0);
    }

    #[test]
    fn stiff_region_shrinks_steps() {
        // dz/dt = -50 z needs smaller steps than dz/dt = -0.1 z.
        let gentle = ClosureField::new(|z: &Tensor<f32>, _t| z.map(|v| -0.1 * v));
        let stiff = ClosureField::new(|z: &Tensor<f32>, _t| z.map(|v| -50.0 * v));
        let rg = rkf45(&gentle, &state(1.0), 0.0, 1.0, AdaptiveOpts::default());
        let rs = rkf45(&stiff, &state(1.0), 0.0, 1.0, AdaptiveOpts::default());
        assert!(
            rs.accepted > rg.accepted,
            "{} vs {}",
            rs.accepted,
            rg.accepted
        );
        assert!((rs.z.get(0, 0, 0, 0) - (-50.0f32).exp()).abs() < 1e-4);
    }

    #[test]
    fn oscillator_energy_roughly_conserved() {
        // (x, v): x' = v, v' = -x. Energy x² + v² stays 1.
        let f = ClosureField::new(|z: &Tensor<f32>, _t| {
            let x = z.get(0, 0, 0, 0);
            let v = z.get(0, 0, 0, 1);
            Tensor::from_vec(z.shape(), vec![v, -x])
        });
        let z0 = Tensor::from_vec(Shape4::new(1, 1, 1, 2), vec![1.0, 0.0]);
        let r = rkf45(
            &f,
            &z0,
            0.0,
            core::f32::consts::TAU,
            AdaptiveOpts::default(),
        );
        let (x, v) = (r.z.get(0, 0, 0, 0), r.z.get(0, 0, 0, 1));
        assert!((x * x + v * v - 1.0).abs() < 1e-3, "energy drift");
        assert!((x - 1.0).abs() < 1e-2 && v.abs() < 1e-2, "period TAU");
    }

    #[test]
    fn respects_max_steps() {
        let f = ClosureField::new(|z: &Tensor<f32>, _t| z.map(|v| -1000.0 * v));
        let opts = AdaptiveOpts {
            max_steps: 10,
            ..Default::default()
        };
        let r = rkf45(&f, &state(1.0), 0.0, 1.0, opts);
        assert!(r.accepted + r.rejected <= 10);
    }

    #[test]
    fn tighter_tolerance_more_steps() {
        let f = ClosureField::new(|z: &Tensor<f32>, t: f32| z.map(|v| (t * 3.0).sin() - 0.5 * v));
        let loose = rkf45(
            &f,
            &state(1.0),
            0.0,
            4.0,
            AdaptiveOpts {
                rtol: 1e-3,
                atol: 1e-4,
                ..Default::default()
            },
        );
        let tight = rkf45(
            &f,
            &state(1.0),
            0.0,
            4.0,
            AdaptiveOpts {
                rtol: 1e-8,
                atol: 1e-9,
                ..Default::default()
            },
        );
        assert!(tight.accepted >= loose.accepted);
        assert!((tight.z.get(0, 0, 0, 0) - loose.z.get(0, 0, 0, 0)).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn backward_range_rejected() {
        let f = ClosureField::new(|z: &Tensor<f32>, _t| z.clone());
        let _ = rkf45(&f, &state(1.0), 1.0, 0.0, AdaptiveOpts::default());
    }
}
