//! Weight checkpointing: a small self-describing binary format so trained
//! networks survive the process (the deployment flow is train once,
//! predict many times — the weights must be persistable without pulling
//! in a serialization framework).
//!
//! Format (all little-endian):
//!
//! ```text
//! magic   "RODN"            4 bytes
//! version u32                = 1
//! variant u32                (index into Variant::ALL)
//! n       u32
//! classes u32
//! seedless param blob: for every parameter group in visit_params order:
//!   len   u32
//!   data  len × f32
//! ```
//!
//! Running statistics are saved as additional trailing groups in a fixed
//! order so that `BnMode::Running` inference reproduces exactly.

use crate::arch::{NetSpec, Variant};
use crate::model::Network;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"RODN";
const VERSION: u32 = 1;

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn write_f32s(w: &mut impl Write, data: &[f32]) -> io::Result<()> {
    write_u32(w, data.len() as u32)?;
    for v in data {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_f32s(r: &mut impl Read, expect_len: usize) -> io::Result<Vec<f32>> {
    let len = read_u32(r)? as usize;
    if len != expect_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("parameter group length {len} does not match the architecture ({expect_len})"),
        ));
    }
    let mut out = Vec::with_capacity(len);
    let mut b = [0u8; 4];
    for _ in 0..len {
        r.read_exact(&mut b)?;
        out.push(f32::from_le_bytes(b));
    }
    Ok(out)
}

/// Collect the running statistics groups in a fixed traversal order.
fn running_stats(net: &mut Network) -> Vec<Vec<f32>> {
    let mut groups = Vec::new();
    groups.push(net.pre.bn_running().0.to_vec());
    groups.push(net.pre.bn_running().1.to_vec());
    for stage in &net.stages {
        for block in &stage.blocks {
            groups.push(block.bn1.running_mean.clone());
            groups.push(block.bn1.running_var.clone());
            groups.push(block.bn2.running_mean.clone());
            groups.push(block.bn2.running_var.clone());
        }
    }
    groups
}

/// Serialize the network's weights (and running statistics) to a writer.
pub fn save(net: &mut Network, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, VERSION)?;
    let variant_idx = Variant::ALL
        .iter()
        .position(|&v| v == net.spec.variant)
        .expect("variant is always one of the seven") as u32;
    write_u32(w, variant_idx)?;
    write_u32(w, net.spec.n as u32)?;
    write_u32(w, net.spec.classes as u32)?;
    let mut groups: Vec<Vec<f32>> = Vec::new();
    net.visit_params(&mut |p| groups.push(p.w.to_vec()));
    for g in &groups {
        write_f32s(w, g)?;
    }
    for g in running_stats(net) {
        write_f32s(w, &g)?;
    }
    Ok(())
}

/// Deserialize a network saved by [`save`].
pub fn load(r: &mut impl Read) -> io::Result<Network> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a RODN checkpoint",
        ));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported checkpoint version {version}"),
        ));
    }
    let variant = Variant::ALL
        .get(read_u32(r)? as usize)
        .copied()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad variant index"))?;
    let n = read_u32(r)? as usize;
    let classes = read_u32(r)? as usize;
    let spec = NetSpec::new(variant, n).with_classes(classes);
    let mut net = Network::new(spec, 0);
    // Parameters.
    let mut err: Option<io::Error> = None;
    net.visit_params(&mut |p| {
        if err.is_some() {
            return;
        }
        match read_f32s(r, p.w.len()) {
            Ok(vals) => p.w.copy_from_slice(&vals),
            Err(e) => err = Some(e),
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    // Running statistics, same order as `running_stats`.
    {
        let (m, v) = net.pre.bn_running_mut();
        let mv = read_f32s(r, m.len())?;
        m.copy_from_slice(&mv);
        let vv = read_f32s(r, v.len())?;
        v.copy_from_slice(&vv);
    }
    for stage in &mut net.stages {
        for block in &mut stage.blocks {
            let g = read_f32s(r, block.bn1.running_mean.len())?;
            block.bn1.running_mean.copy_from_slice(&g);
            let g = read_f32s(r, block.bn1.running_var.len())?;
            block.bn1.running_var.copy_from_slice(&g);
            let g = read_f32s(r, block.bn2.running_mean.len())?;
            block.bn2.running_mean.copy_from_slice(&g);
            let g = read_f32s(r, block.bn2.running_var.len())?;
            block.bn2.running_var.copy_from_slice(&g);
        }
    }
    Ok(net)
}

/// Save to a file path.
pub fn save_file(net: &mut Network, path: impl AsRef<Path>) -> io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    save(net, &mut f)
}

/// Load from a file path.
pub fn load_file(path: impl AsRef<Path>) -> io::Result<Network> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    load(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BnMode;
    use tensor::{Shape4, Tensor};

    fn probe_net() -> Network {
        Network::new(NetSpec::new(Variant::ROdeNet3, 20).with_classes(7), 99)
    }

    #[test]
    fn roundtrip_preserves_outputs_exactly() {
        let mut net = probe_net();
        let mut buf = Vec::new();
        save(&mut net, &mut buf).unwrap();
        let loaded = load(&mut buf.as_slice()).unwrap();
        let x = Tensor::<f32>::from_fn(Shape4::new(1, 3, 16, 16), |_, c, h, w| {
            ((c * 31 + h * 7 + w) % 13) as f32 * 0.1 - 0.6
        });
        let a = net.forward(&x, BnMode::OnTheFly);
        let b = loaded.forward(&x, BnMode::OnTheFly);
        assert_eq!(a.as_slice(), b.as_slice(), "bit-identical after reload");
        assert_eq!(loaded.spec, net.spec);
    }

    #[test]
    fn roundtrip_preserves_running_stats() {
        let mut net = probe_net();
        // Perturb running stats so the test is not vacuous.
        net.stages[0].blocks[0].bn1.running_mean[3] = 1.25;
        net.stages[0].blocks[0].bn2.running_var[5] = 9.5;
        let mut buf = Vec::new();
        save(&mut net, &mut buf).unwrap();
        let loaded = load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.stages[0].blocks[0].bn1.running_mean[3], 1.25);
        assert_eq!(loaded.stages[0].blocks[0].bn2.running_var[5], 9.5);
    }

    #[test]
    fn rejects_bad_magic() {
        match load(&mut &b"XXXX0000"[..]) {
            Ok(_) => panic!("bad magic must be rejected"),
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidData),
        }
    }

    #[test]
    fn rejects_truncated() {
        let mut net = probe_net();
        let mut buf = Vec::new();
        save(&mut net, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        if load(&mut buf.as_slice()).is_ok() {
            panic!("truncated checkpoint must be rejected");
        }
    }

    #[test]
    fn file_helpers() {
        let mut net = probe_net();
        let dir = std::env::temp_dir().join("rodenet_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.rodn");
        save_file(&mut net, &path).unwrap();
        let loaded = load_file(&path).unwrap();
        assert_eq!(loaded.param_count(), net.param_count());
        let _ = std::fs::remove_file(path);
    }
}
