//! # rodenet — ODENet and reduced-ODENet (rODENet) in Rust
//!
//! The primary contribution of *Accelerating ODE-Based Neural Networks on
//! Low-Cost FPGAs* (Watanabe & Matsutani): a family of ResNet/ODENet
//! variants whose heavily-repeated ODE block is small enough to live in
//! FPGA on-chip memory.
//!
//! * [`arch`] — the seven architectures of Table 4 ([`Variant`],
//!   [`NetSpec`]) and their execution-count algebra;
//! * [`params`] — parameter accounting that reproduces Table 2 and
//!   Figure 5 exactly;
//! * [`block`] — residual / downsample / time-augmented ODE blocks with
//!   forward, backward and Q-format quantization;
//! * [`model`] — the assembled [`Network`] with inference and training
//!   passes (unrolled or adjoint gradients through the ODE solver);
//! * [`train`] — SGD with L2 regularization and the paper's step
//!   learning-rate schedule, plus dataset-agnostic training loops;
//! * [`calibrate`] — zero-training activation-range measurement per
//!   offloadable stage, feeding per-stage fixed-point format selection
//!   in the deployment layer.
//!
//! The FPGA-side execution of these networks lives in the `zynq-sim`
//! crate, which consumes [`block::QuantBlock`] for bit-exact Q20
//! emulation of the PL datapath.
//!
//! ```
//! use rodenet::{NetSpec, Network, Variant, BnMode};
//! use tensor::{Shape4, Tensor};
//!
//! let spec = NetSpec::new(Variant::ROdeNet3, 20).with_classes(10);
//! let net = Network::new(spec, 42);
//! let image = Tensor::<f32>::zeros(Shape4::new(1, 3, 32, 32));
//! let logits = net.forward(&image, BnMode::OnTheFly);
//! assert_eq!(logits.shape().c, 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod block;
pub mod calibrate;
pub mod init;
pub mod io;
pub mod model;
pub mod params;
pub mod quant;
pub mod train;

pub use arch::{LayerName, LayerPlan, NetSpec, Variant, PAPER_DEPTHS};
pub use block::{BnMode, QuantBlock, ResBlock};
pub use calibrate::{stage_ranges, StageRange, OFFLOADABLE_LAYERS};
pub use model::{GradMode, Network, ParamSlice};
pub use quant::QuantNetwork;
pub use train::{train_epochs, train_epochs_with, EpochStats, Sgd, SgdConfig, TrainConfig};
