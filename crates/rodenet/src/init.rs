//! Deterministic weight initialization.
//!
//! He (Kaiming) normal initialization for convolutions — the standard for
//! ReLU ResNets — with a hand-rolled Marsaglia polar sampler so the only
//! dependency is `rand`'s uniform source. Everything is seeded, so any
//! experiment is reproducible bit-for-bit.

use rand::Rng;
use tensor::{Shape4, Tensor};

/// Standard-normal sample via the Marsaglia polar method.
pub fn randn(rng: &mut impl Rng) -> f64 {
    loop {
        let u = rng.random::<f64>() * 2.0 - 1.0;
        let v = rng.random::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// He-normal convolution weights: `std = sqrt(2 / fan_in)`,
/// `fan_in = in_channels · k·k`.
pub fn he_conv(rng: &mut impl Rng, shape: Shape4) -> Tensor<f32> {
    let fan_in = (shape.c * shape.h * shape.w) as f64;
    let std = (2.0 / fan_in).sqrt();
    Tensor::from_fn(shape, |_, _, _, _| (randn(rng) * std) as f32)
}

/// Uniform fully-connected initialization in `±1/sqrt(fan_in)`.
pub fn uniform_fc(rng: &mut impl Rng, out_features: usize, in_features: usize) -> Vec<f32> {
    let bound = 1.0 / (in_features as f64).sqrt();
    (0..out_features * in_features)
        .map(|_| ((rng.random::<f64>() * 2.0 - 1.0) * bound) as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| randn(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn he_conv_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = he_conv(&mut rng, Shape4::new(64, 65, 3, 3));
        let var = w
            .as_slice()
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            / w.len() as f64;
        let expect = 2.0 / (65.0 * 9.0);
        assert!((var / expect - 1.0).abs() < 0.1, "var {var} vs {expect}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = he_conv(&mut StdRng::seed_from_u64(42), Shape4::new(4, 4, 3, 3));
        let b = he_conv(&mut StdRng::seed_from_u64(42), Shape4::new(4, 4, 3, 3));
        assert_eq!(a.as_slice(), b.as_slice());
        let c = he_conv(&mut StdRng::seed_from_u64(43), Shape4::new(4, 4, 3, 3));
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn fc_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = uniform_fc(&mut rng, 100, 64);
        let bound = 1.0 / 8.0;
        assert!(w.iter().all(|&v| v.abs() <= bound as f32));
        assert!(w.iter().any(|&v| v.abs() > bound as f32 * 0.5));
    }
}
