//! Training: SGD with L2 regularization and the paper's learning-rate
//! schedule (§4.3: SGD, L2 = 1e-4, 200 epochs, lr 0.01 ÷10 at epochs 100
//! and 150), scaled down to synthetic workloads by configuration.

use crate::block::BnMode;
use crate::model::{GradMode, Network};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tensor::softmax::{accuracy, cross_entropy};
use tensor::{Shape4, Tensor};

/// SGD hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Heavy-ball momentum (0.9 is the classic ResNet setting; 0 recovers
    /// the plain SGD of the paper's citation).
    pub momentum: f32,
    /// L2 regularization coefficient (1e-4 in the paper).
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 1e-4,
        }
    }
}

/// SGD with momentum and decoupled-order L2 (decay added to the gradient,
/// as classic frameworks do).
pub struct Sgd {
    cfg: SgdConfig,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Fresh optimizer state.
    pub fn new(cfg: SgdConfig) -> Self {
        Sgd {
            cfg,
            velocity: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.cfg.lr
    }

    /// Update the learning rate (schedule steps).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }

    /// Apply one optimizer step using the gradients accumulated in `net`.
    pub fn step(&mut self, net: &mut Network) {
        let cfg = self.cfg;
        let velocity = &mut self.velocity;
        let mut group = 0usize;
        net.visit_params(&mut |p| {
            if velocity.len() == group {
                velocity.push(vec![0.0; p.w.len()]);
            }
            let v = &mut velocity[group];
            debug_assert_eq!(v.len(), p.w.len(), "parameter group shape changed");
            for ((w, g), vel) in p.w.iter_mut().zip(p.g.iter()).zip(v.iter_mut()) {
                let mut g = *g;
                if p.decay {
                    g += cfg.weight_decay * *w;
                }
                *vel = cfg.momentum * *vel + g;
                *w -= cfg.lr * *vel;
            }
            group += 1;
        });
    }
}

/// Per-epoch training metrics.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Learning rate used this epoch.
    pub lr: f32,
    /// Mean training loss over the epoch.
    pub train_loss: f32,
    /// Training accuracy over the epoch.
    pub train_acc: f32,
    /// Held-out accuracy after the epoch (if an eval set was supplied).
    pub test_acc: f32,
}

/// Training-loop configuration.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Optimizer settings.
    pub sgd: SgdConfig,
    /// Epochs at which the learning rate is divided by 10 (the paper
    /// uses 100 and 150 of 200; scaled runs scale these).
    pub lr_drops: [usize; 2],
    /// Gradient mode through ODE blocks.
    pub grad_mode: GradMode,
    /// Batch-norm mode for the per-epoch held-out evaluation. `Running`
    /// mirrors the paper's software accuracy measurements (Figure 6);
    /// `OnTheFly` mirrors deployment on the PL.
    pub eval_mode: BnMode,
    /// Shuffling seed.
    pub seed: u64,
}

impl TrainConfig {
    /// The paper's protocol (200 epochs) — scaled variants divide
    /// everything proportionally.
    pub fn paper() -> Self {
        TrainConfig {
            epochs: 200,
            batch: 128,
            sgd: SgdConfig::default(),
            lr_drops: [100, 150],
            grad_mode: GradMode::Unrolled,
            eval_mode: BnMode::Running,
            seed: 0,
        }
    }

    /// A quick protocol for synthetic-data experiments.
    pub fn quick(epochs: usize, batch: usize) -> Self {
        TrainConfig {
            epochs,
            batch,
            sgd: SgdConfig {
                lr: 0.05,
                ..SgdConfig::default()
            },
            lr_drops: [epochs / 2, epochs * 3 / 4],
            grad_mode: GradMode::Unrolled,
            eval_mode: BnMode::Running,
            seed: 0,
        }
    }
}

/// Assemble a batch tensor from dataset indices.
pub fn make_batch(
    images: &Tensor<f32>,
    labels: &[usize],
    idx: &[usize],
) -> (Tensor<f32>, Vec<usize>) {
    let s = images.shape();
    let mut out = Tensor::<f32>::zeros(Shape4::new(idx.len(), s.c, s.h, s.w));
    let mut out_labels = Vec::with_capacity(idx.len());
    for (row, &i) in idx.iter().enumerate() {
        out.item_mut(row).copy_from_slice(images.item(i));
        out_labels.push(labels[i]);
    }
    (out, out_labels)
}

/// Evaluate accuracy over a dataset in batches.
pub fn evaluate(
    net: &Network,
    images: &Tensor<f32>,
    labels: &[usize],
    batch: usize,
    mode: BnMode,
) -> f32 {
    let n = images.shape().n;
    let mut hits = 0usize;
    let mut seen = 0usize;
    let mut i = 0;
    while i < n {
        let hi = (i + batch).min(n);
        let idx: Vec<usize> = (i..hi).collect();
        let (x, y) = make_batch(images, labels, &idx);
        let logits = net.forward(&x, mode);
        hits += (accuracy(&logits, &y) * y.len() as f32).round() as usize;
        seen += y.len();
        i = hi;
    }
    hits as f32 / seen.max(1) as f32
}

/// Train `net` on `(train_images, train_labels)`, optionally evaluating
/// on a held-out set after every epoch. Returns per-epoch statistics.
#[allow(clippy::too_many_arguments)]
pub fn train_epochs(
    net: &mut Network,
    train_images: &Tensor<f32>,
    train_labels: &[usize],
    test_images: Option<&Tensor<f32>>,
    test_labels: Option<&[usize]>,
    cfg: TrainConfig,
) -> Vec<EpochStats> {
    train_epochs_with(
        net,
        train_images,
        train_labels,
        test_images,
        test_labels,
        cfg,
        &mut |x| x,
    )
}

/// Like [`train_epochs`] but applies `transform` to every training batch
/// before the forward pass — the hook for data augmentation (see
/// `cifar_data::augment`) or input quantization studies. The transform
/// never touches evaluation batches.
#[allow(clippy::too_many_arguments)]
pub fn train_epochs_with(
    net: &mut Network,
    train_images: &Tensor<f32>,
    train_labels: &[usize],
    test_images: Option<&Tensor<f32>>,
    test_labels: Option<&[usize]>,
    cfg: TrainConfig,
    transform: &mut dyn FnMut(Tensor<f32>) -> Tensor<f32>,
) -> Vec<EpochStats> {
    let n = train_images.shape().n;
    assert_eq!(n, train_labels.len(), "one label per training image");
    let mut opt = Sgd::new(cfg.sgd);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut history = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        if cfg.lr_drops.contains(&epoch) && epoch > 0 {
            let lr = opt.lr();
            opt.set_lr(lr / 10.0);
        }
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut acc_sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch) {
            let (x, y) = make_batch(train_images, train_labels, chunk);
            let x = transform(x);
            let (logits, cache) = net.forward_train(&x, cfg.grad_mode);
            let (loss, glogits) = cross_entropy(&logits, &y);
            net.zero_grads();
            net.backward(&glogits, &cache);
            opt.step(net);
            loss_sum += loss as f64;
            acc_sum += accuracy(&logits, &y) as f64;
            batches += 1;
        }
        let test_acc = match (test_images, test_labels) {
            (Some(xi), Some(yi)) => evaluate(net, xi, yi, cfg.batch, cfg.eval_mode),
            _ => f32::NAN,
        };
        history.push(EpochStats {
            epoch,
            lr: opt.lr(),
            train_loss: (loss_sum / batches.max(1) as f64) as f32,
            train_acc: (acc_sum / batches.max(1) as f64) as f32,
            test_acc,
        });
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{NetSpec, Variant};
    use rand::Rng;

    /// A tiny separable dataset with *spatial* class signals (vertical
    /// stripes / horizontal stripes / checkerboard). Spatial patterns
    /// survive the on-the-fly (per-plane) batch norm that constant
    /// brightness signals would not.
    fn toy_dataset(n: usize, hw: usize, seed: u64) -> (Tensor<f32>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut labels = Vec::with_capacity(n);
        let mut imgs = Tensor::<f32>::zeros(Shape4::new(n, 3, hw, hw));
        for i in 0..n {
            let class = rng.random_range(0..3usize);
            labels.push(class);
            for c in 0..3 {
                for h in 0..hw {
                    for w in 0..hw {
                        let pattern = match class {
                            0 => {
                                if w % 2 == 0 {
                                    0.8
                                } else {
                                    -0.8
                                }
                            }
                            1 => {
                                if h % 2 == 0 {
                                    0.8
                                } else {
                                    -0.8
                                }
                            }
                            _ => {
                                if (h + w) % 2 == 0 {
                                    0.8
                                } else {
                                    -0.8
                                }
                            }
                        };
                        let noise = (rng.random::<f32>() - 0.5) * 0.3;
                        imgs.set(i, c, h, w, pattern + noise);
                    }
                }
            }
        }
        (imgs, labels)
    }

    #[test]
    fn sgd_applies_decay_only_where_flagged() {
        let mut net = Network::new(NetSpec::new(Variant::ResNet, 20).with_classes(3), 1);
        net.zero_grads();
        // With zero gradients and wd > 0, decayed weights shrink, BN
        // parameters stay exactly.
        let gamma_before: Vec<f32> = net.stages[0].blocks[0].bn1.gamma.clone();
        let w_before = net.stages[0].blocks[0].conv1.w.as_slice()[0];
        let mut opt = Sgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.1,
        });
        opt.step(&mut net);
        assert_eq!(net.stages[0].blocks[0].bn1.gamma, gamma_before);
        let w_after = net.stages[0].blocks[0].conv1.w.as_slice()[0];
        assert!((w_after - w_before * (1.0 - 0.01)).abs() < 1e-7);
    }

    #[test]
    fn momentum_accumulates() {
        let mut net = Network::new(NetSpec::new(Variant::ResNet, 20).with_classes(3), 2);
        // Constant unit gradient on fc bias; momentum should accelerate.
        let mut opt = Sgd::new(SgdConfig {
            lr: 1.0,
            momentum: 0.5,
            weight_decay: 0.0,
        });
        let mut deltas = Vec::new();
        for _ in 0..3 {
            net.zero_grads();
            net.visit_params(&mut |p| {
                if !p.decay && p.w.len() == 3 {
                    // fc bias group (classes = 3)
                    p.g.fill(1.0);
                }
            });
            let mut before = 0.0;
            net.visit_params(&mut |p| {
                if !p.decay && p.w.len() == 3 {
                    before = p.w[0];
                }
            });
            opt.step(&mut net);
            let mut after = 0.0;
            net.visit_params(&mut |p| {
                if !p.decay && p.w.len() == 3 {
                    after = p.w[0];
                }
            });
            deltas.push(before - after);
        }
        assert!(deltas[1] > deltas[0], "momentum grows the step: {deltas:?}");
        assert!(deltas[2] > deltas[1]);
    }

    #[test]
    fn make_batch_selects_items() {
        let (imgs, labels) = toy_dataset(5, 4, 3);
        let (x, y) = make_batch(&imgs, &labels, &[4, 0]);
        assert_eq!(x.shape().n, 2);
        assert_eq!(y, vec![labels[4], labels[0]]);
        assert_eq!(x.item(0), imgs.item(4));
    }

    #[test]
    fn training_learns_toy_task() {
        let (imgs, labels) = toy_dataset(60, 8, 5);
        let spec = NetSpec::new(Variant::ROdeNet3, 20).with_classes(3);
        let mut net = Network::new(spec, 11);
        let mut cfg = TrainConfig::quick(8, 12);
        cfg.seed = 1;
        let hist = train_epochs(&mut net, &imgs, &labels, Some(&imgs), Some(&labels), cfg);
        assert_eq!(hist.len(), 8);
        let first = hist.first().unwrap();
        let last = hist.last().unwrap();
        assert!(last.train_loss < first.train_loss, "loss decreases");
        assert!(last.test_acc > 0.7, "toy task learned: {}", last.test_acc);
    }

    #[test]
    fn augmentation_hook_applied() {
        let (imgs, labels) = toy_dataset(12, 8, 21);
        let spec = NetSpec::new(Variant::ResNet, 20).with_classes(3);
        let mut net = Network::new(spec, 31);
        let mut calls = 0usize;
        let cfg = TrainConfig::quick(1, 6);
        let _ = train_epochs_with(&mut net, &imgs, &labels, None, None, cfg, &mut |x| {
            calls += 1;
            x.map(|v| v * 0.5)
        });
        assert_eq!(calls, 2, "one call per batch (12 images / batch 6)");
    }

    #[test]
    fn lr_schedule_drops() {
        let (imgs, labels) = toy_dataset(8, 8, 7);
        let spec = NetSpec::new(Variant::ResNet, 20).with_classes(3);
        let mut net = Network::new(spec, 13);
        let cfg = TrainConfig {
            epochs: 4,
            batch: 8,
            sgd: SgdConfig {
                lr: 0.08,
                momentum: 0.9,
                weight_decay: 1e-4,
            },
            lr_drops: [2, 3],
            grad_mode: GradMode::Unrolled,
            eval_mode: BnMode::OnTheFly,
            seed: 3,
        };
        let hist = train_epochs(&mut net, &imgs, &labels, None, None, cfg);
        assert_eq!(hist[0].lr, 0.08);
        assert_eq!(hist[1].lr, 0.08);
        assert!((hist[2].lr - 0.008).abs() < 1e-9);
        assert!((hist[3].lr - 0.0008).abs() < 1e-9);
        assert!(hist[0].test_acc.is_nan(), "no eval set supplied");
    }
}
