//! The full network: conv1 → layer1 → layer2_1 → layer2_2 → layer3_1 →
//! layer3_2 → fc, assembled from a [`NetSpec`] (Figure 1 / Figure 2).

use crate::arch::{LayerName, LayerPlan, NetSpec};
use crate::block::{BnMode, BnParam, ConvParam, CoreCache, ResBlock};
use crate::init::{he_conv, uniform_fc};
use odesolve::adjoint::adjoint_backward;
use odesolve::{OdeField, OdeVjp, SolveOpts};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::bn::BnCache;
use tensor::conv::{conv2d, conv2d_backward_weights, Conv2dParams};
use tensor::linear::{fc_backward, fc_forward};
use tensor::ops::{relu, relu_backward};
use tensor::pool::{global_avg_pool, global_avg_pool_backward};
use tensor::{Shape4, Tensor};

/// How gradients flow through ODE blocks during training.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GradMode {
    /// Exact discretize-then-optimize backprop through the stored Euler
    /// trajectory (`O(M)` memory).
    Unrolled,
    /// The paper's adjoint method (Equation 9): backward recomputation,
    /// `O(1)` memory, O(h) gradient error.
    Adjoint,
}

/// A mutable view of one parameter group for the optimizer.
pub struct ParamSlice<'a> {
    /// The weights.
    pub w: &'a mut [f32],
    /// Their accumulated gradients.
    pub g: &'a mut [f32],
    /// Whether L2 weight decay applies (convolution/FC weights yes,
    /// batch-norm scale/shift and biases no).
    pub decay: bool,
}

/// The conv1 pre-processing layer: 3×3 conv (3→16), BN, ReLU.
#[derive(Clone, Debug)]
pub struct PreLayer {
    conv: ConvParam,
    bn: BnParam,
}

/// Cache for the pre-layer backward pass.
#[derive(Clone, Debug)]
pub struct PreCache {
    x: Tensor<f32>,
    bn: BnCache,
    b: Tensor<f32>,
}

impl PreLayer {
    fn new(rng: &mut StdRng) -> Self {
        PreLayer {
            conv: ConvParam {
                w: he_conv(rng, Shape4::new(16, 3, 3, 3)),
                g: Tensor::zeros(Shape4::new(16, 3, 3, 3)),
                cfg: Conv2dParams::same_3x3(),
            },
            bn: BnParam::new(16),
        }
    }

    fn forward(&self, x: &Tensor<f32>, mode: BnMode) -> Tensor<f32> {
        let c = conv2d(x, &self.conv.w, self.conv.cfg);
        relu(&self.bn.infer_forward(&c, mode))
    }

    fn forward_train(&mut self, x: &Tensor<f32>) -> (Tensor<f32>, PreCache) {
        let c = conv2d(x, &self.conv.w, self.conv.cfg);
        let (b, bn) = self.bn.train_forward(&c, true);
        (
            relu(&b),
            PreCache {
                x: x.clone(),
                bn,
                b,
            },
        )
    }

    /// Running statistics of the pre-layer BN (mean, var).
    pub fn bn_running(&self) -> (&[f32], &[f32]) {
        (&self.bn.running_mean, &self.bn.running_var)
    }

    /// Mutable running statistics of the pre-layer BN.
    pub fn bn_running_mut(&mut self) -> (&mut Vec<f32>, &mut Vec<f32>) {
        (&mut self.bn.running_mean, &mut self.bn.running_var)
    }

    fn backward(&mut self, gout: &Tensor<f32>, cache: &PreCache) {
        let gb = relu_backward(gout, &cache.b);
        let (gc, dg, db) = tensor::bn::bn_backward(&gb, &cache.bn, &self.bn.gamma);
        for (a, v) in self.bn.ggamma.iter_mut().zip(&dg) {
            *a += v;
        }
        for (a, v) in self.bn.gbeta.iter_mut().zip(&db) {
            *a += v;
        }
        let gw = conv2d_backward_weights(&gc, &cache.x, self.conv.w.shape(), self.conv.cfg);
        for (a, v) in self.conv.g.as_mut_slice().iter_mut().zip(gw.as_slice()) {
            *a += v;
        }
        // Input gradient unused (x is the image).
    }
}

/// The fc post-processing layer: global average pool → 100-way affine.
#[derive(Clone, Debug)]
pub struct FcLayer {
    w: Vec<f32>,
    b: Vec<f32>,
    gw: Vec<f32>,
    gb: Vec<f32>,
    in_features: usize,
    out_features: usize,
}

/// Cache for the fc backward pass.
#[derive(Clone, Debug)]
pub struct FcCache {
    feat_shape: Shape4,
    pooled: Tensor<f32>,
}

impl FcLayer {
    fn new(rng: &mut StdRng, in_features: usize, out_features: usize) -> Self {
        FcLayer {
            w: uniform_fc(rng, out_features, in_features),
            b: vec![0.0; out_features],
            gw: vec![0.0; out_features * in_features],
            gb: vec![0.0; out_features],
            in_features,
            out_features,
        }
    }

    fn forward(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let pooled = global_avg_pool(x);
        fc_forward(&pooled, &self.w, &self.b, self.out_features)
    }

    fn forward_train(&mut self, x: &Tensor<f32>) -> (Tensor<f32>, FcCache) {
        let pooled = global_avg_pool(x);
        let logits = fc_forward(&pooled, &self.w, &self.b, self.out_features);
        (
            logits,
            FcCache {
                feat_shape: x.shape(),
                pooled,
            },
        )
    }

    fn backward(&mut self, glogits: &Tensor<f32>, cache: &FcCache) -> Tensor<f32> {
        debug_assert_eq!(cache.pooled.shape().item(), self.in_features);
        let (gpooled, gw, gb) = fc_backward(glogits, &cache.pooled, &self.w);
        for (a, v) in self.gw.iter_mut().zip(&gw) {
            *a += v;
        }
        for (a, v) in self.gb.iter_mut().zip(&gb) {
            *a += v;
        }
        global_avg_pool_backward(&gpooled, cache.feat_shape)
    }
}

/// One of the five residual stages.
#[derive(Clone, Debug)]
pub struct Stage {
    /// Which Table 2 layer.
    pub name: LayerName,
    /// The Table 4 plan realized by this stage.
    pub plan: LayerPlan,
    /// Block instances (1 for ODE stages, the stack for ResNet stages;
    /// empty when the variant removes the layer).
    pub blocks: Vec<ResBlock>,
}

/// Per-block training trace.
#[allow(clippy::large_enum_variant)] // Plain's cache is the common case
enum BlockTrace {
    Plain {
        x_shape: Shape4,
        cache: CoreCache,
    },
    OdeUnrolled {
        traj: Vec<Tensor<f32>>,
        caches: Vec<CoreCache>,
    },
    OdeAdjoint {
        z1: Tensor<f32>,
    },
}

/// Everything the backward pass needs from one forward pass.
pub struct NetCache {
    pre: PreCache,
    traces: Vec<Vec<BlockTrace>>,
    fc: FcCache,
}

/// Adapter implementing the solver-facing dynamics traits for one block.
struct BlockField<'a> {
    block: &'a mut ResBlock,
}

impl OdeField<f32> for BlockField<'_> {
    fn eval(&self, z: &Tensor<f32>, t: f32) -> Tensor<f32> {
        self.block.f_eval_batch(z, t)
    }
}

impl OdeVjp for BlockField<'_> {
    fn vjp(&mut self, z: &Tensor<f32>, t: f32, a: &Tensor<f32>, weight: f32) -> Tensor<f32> {
        let (_, cache) = self.block.f_train(z, t, false);
        self.block.f_backward(a, &cache, weight)
    }
}

/// The assembled network.
pub struct Network {
    /// The architecture this network realizes.
    pub spec: NetSpec,
    /// conv1.
    pub pre: PreLayer,
    /// layer1 … layer3_2 in execution order.
    pub stages: Vec<Stage>,
    /// fc.
    pub fc: FcLayer,
}

impl Network {
    /// Build and initialize a network for `spec` with a deterministic seed.
    pub fn new(spec: NetSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let pre = PreLayer::new(&mut rng);
        let stage_names = [
            LayerName::Layer1,
            LayerName::Layer2_1,
            LayerName::Layer2_2,
            LayerName::Layer3_1,
            LayerName::Layer3_2,
        ];
        let stages = stage_names
            .iter()
            .map(|&name| {
                let plan = spec.plan(name);
                let blocks = (0..plan.stacked)
                    .map(|_| ResBlock::new(&mut rng, name, plan.is_ode))
                    .collect();
                Stage { name, plan, blocks }
            })
            .collect();
        let fc = FcLayer::new(&mut rng, 64, spec.classes);
        Network {
            spec,
            pre,
            stages,
            fc,
        }
    }

    /// Total trainable parameters (matches [`crate::params::spec_params`]).
    pub fn param_count(&self) -> usize {
        let mut total = self.pre.conv.w.len() + 2 * self.pre.bn.gamma.len();
        for stage in &self.stages {
            for block in &stage.blocks {
                total += block.param_count();
            }
        }
        total + self.fc.w.len() + self.fc.b.len()
    }

    /// Inference forward pass to logits.
    pub fn forward(&self, x: &Tensor<f32>, mode: BnMode) -> Tensor<f32> {
        let mut z = self.pre.forward(x, mode);
        for stage in &self.stages {
            for block in &stage.blocks {
                z = if stage.plan.is_ode {
                    block.ode_forward(&z, stage.plan.execs, mode)
                } else {
                    block.residual_forward(&z, mode)
                };
            }
        }
        self.fc.forward(&z)
    }

    /// Class predictions.
    pub fn predict(&self, x: &Tensor<f32>, mode: BnMode) -> Vec<usize> {
        tensor::softmax::argmax(&self.forward(x, mode))
    }

    /// Training forward pass: batch-stat BN everywhere, caches for
    /// backward, running statistics updated.
    pub fn forward_train(
        &mut self,
        x: &Tensor<f32>,
        grad_mode: GradMode,
    ) -> (Tensor<f32>, NetCache) {
        let (mut z, pre_cache) = self.pre.forward_train(x);
        let mut traces: Vec<Vec<BlockTrace>> = Vec::with_capacity(self.stages.len());
        for stage in &mut self.stages {
            let mut stage_traces = Vec::with_capacity(stage.blocks.len());
            for block in &mut stage.blocks {
                if stage.plan.is_ode {
                    let steps = stage.plan.execs;
                    let h = 1.0 / steps as f32;
                    match grad_mode {
                        GradMode::Unrolled => {
                            let mut traj = Vec::with_capacity(steps + 1);
                            let mut caches = Vec::with_capacity(steps);
                            traj.push(z.clone());
                            for i in 0..steps {
                                let t = i as f32 * h;
                                let (f, cache) = block.f_train(&z, t, true);
                                z = z.zip_map(&f, |a, b| a + h * b);
                                traj.push(z.clone());
                                caches.push(cache);
                            }
                            stage_traces.push(BlockTrace::OdeUnrolled { traj, caches });
                        }
                        GradMode::Adjoint => {
                            for i in 0..steps {
                                let t = i as f32 * h;
                                let (f, _) = block.f_train(&z, t, true);
                                z = z.zip_map(&f, |a, b| a + h * b);
                            }
                            stage_traces.push(BlockTrace::OdeAdjoint { z1: z.clone() });
                        }
                    }
                } else {
                    let x_shape = z.shape();
                    let (y, cache) = block.residual_train(&z);
                    z = y;
                    stage_traces.push(BlockTrace::Plain { x_shape, cache });
                }
            }
            traces.push(stage_traces);
        }
        let (logits, fc_cache) = self.fc.forward_train(&z);
        (
            logits,
            NetCache {
                pre: pre_cache,
                traces,
                fc: fc_cache,
            },
        )
    }

    /// Backward pass from the logits gradient; accumulates parameter
    /// gradients throughout the network.
    pub fn backward(&mut self, glogits: &Tensor<f32>, cache: &NetCache) {
        let mut a = self.fc.backward(glogits, &cache.fc);
        for (stage, stage_traces) in self.stages.iter_mut().zip(&cache.traces).rev() {
            for (block, trace) in stage.blocks.iter_mut().zip(stage_traces).rev() {
                a = match trace {
                    BlockTrace::Plain { x_shape, cache } => {
                        block.residual_backward(&a, cache, *x_shape)
                    }
                    BlockTrace::OdeUnrolled { traj, caches } => {
                        let steps = caches.len();
                        let h = 1.0 / steps as f32;
                        let mut acc = a;
                        for i in (0..steps).rev() {
                            // Recompute is unnecessary: reuse the stored cache.
                            let _ = &traj[i];
                            let adf = block.f_backward(&acc, &caches[i], h);
                            acc = acc.zip_map(&adf, |x, y| x + h * y);
                        }
                        acc
                    }
                    BlockTrace::OdeAdjoint { z1 } => {
                        let steps = stage.plan.execs;
                        let opts = SolveOpts::euler_unit(steps);
                        let mut field = BlockField { block };
                        let (_z0, a0) = adjoint_backward(&mut field, z1, &a, opts);
                        a0
                    }
                };
            }
        }
        self.pre.backward(&a, &cache.pre);
    }

    /// Visit every parameter group in a fixed order (for the optimizer).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(ParamSlice<'_>)) {
        f(ParamSlice {
            w: self.pre.conv.w.as_mut_slice(),
            g: self.pre.conv.g.as_mut_slice(),
            decay: true,
        });
        f(ParamSlice {
            w: &mut self.pre.bn.gamma,
            g: &mut self.pre.bn.ggamma,
            decay: false,
        });
        f(ParamSlice {
            w: &mut self.pre.bn.beta,
            g: &mut self.pre.bn.gbeta,
            decay: false,
        });
        for stage in &mut self.stages {
            for block in &mut stage.blocks {
                f(ParamSlice {
                    w: block.conv1.w.as_mut_slice(),
                    g: block.conv1.g.as_mut_slice(),
                    decay: true,
                });
                f(ParamSlice {
                    w: &mut block.bn1.gamma,
                    g: &mut block.bn1.ggamma,
                    decay: false,
                });
                f(ParamSlice {
                    w: &mut block.bn1.beta,
                    g: &mut block.bn1.gbeta,
                    decay: false,
                });
                f(ParamSlice {
                    w: block.conv2.w.as_mut_slice(),
                    g: block.conv2.g.as_mut_slice(),
                    decay: true,
                });
                f(ParamSlice {
                    w: &mut block.bn2.gamma,
                    g: &mut block.bn2.ggamma,
                    decay: false,
                });
                f(ParamSlice {
                    w: &mut block.bn2.beta,
                    g: &mut block.bn2.gbeta,
                    decay: false,
                });
            }
        }
        f(ParamSlice {
            w: &mut self.fc.w,
            g: &mut self.fc.gw,
            decay: true,
        });
        f(ParamSlice {
            w: &mut self.fc.b,
            g: &mut self.fc.gb,
            decay: false,
        });
    }

    /// Zero all gradient accumulators.
    pub fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.g.fill(0.0));
    }

    /// conv1 forward only — for external executors (e.g. the FPGA
    /// system simulator) that route the residual stages themselves.
    pub fn pre_forward(&self, x: &Tensor<f32>) -> Tensor<f32> {
        self.pre.forward(x, BnMode::OnTheFly)
    }

    /// fc forward only — counterpart of [`Network::pre_forward`].
    pub fn fc_forward(&self, z: &Tensor<f32>) -> Tensor<f32> {
        self.fc.forward(z)
    }

    /// A stage by layer name (None when the variant removed it).
    pub fn stage(&self, name: LayerName) -> Option<&Stage> {
        self.stages
            .iter()
            .find(|s| s.name == name && !s.blocks.is_empty())
    }

    /// Run a single residual stage on an activation — the per-stage
    /// counterpart of [`Network::pre_forward`] / [`Network::fc_forward`],
    /// used by external executors and the hot-path profiler to time PS
    /// stages one at a time. Returns `None` when the variant removed the
    /// stage (its activation passes through unchanged in [`forward`]).
    ///
    /// [`forward`]: Network::forward
    pub fn stage_forward(
        &self,
        name: LayerName,
        z: &Tensor<f32>,
        mode: BnMode,
    ) -> Option<Tensor<f32>> {
        let stage = self.stage(name)?;
        let mut z = z.clone();
        for block in &stage.blocks {
            z = if stage.plan.is_ode {
                block.ode_forward(&z, stage.plan.execs, mode)
            } else {
                block.residual_forward(&z, mode)
            };
        }
        Some(z)
    }

    /// Quantize the whole network into scalar type `S` — conv1, every
    /// residual stage, and the classification head — producing the
    /// forward-only deployment artifact the fully-fixed-point engine
    /// backend executes. Batch norm runs on-the-fly everywhere, as the
    /// PL circuit computes it.
    pub fn quantize<S: tensor::Scalar>(&self) -> crate::quant::QuantNetwork<S> {
        use crate::quant::{QuantFc, QuantNetwork, QuantPre, QuantStage};
        let qv = |v: &[f32]| -> Vec<S> { v.iter().map(|&x| S::from_f32(x)).collect() };
        QuantNetwork {
            spec: self.spec,
            pre: QuantPre {
                w: Tensor::from_f32_tensor(&self.pre.conv.w),
                cfg: self.pre.conv.cfg,
                gamma: qv(&self.pre.bn.gamma),
                beta: qv(&self.pre.bn.beta),
                eps: S::from_f32(self.pre.bn.eps),
            },
            stages: self
                .stages
                .iter()
                .map(|stage| QuantStage {
                    name: stage.name,
                    plan: stage.plan,
                    blocks: stage.blocks.iter().map(|b| b.quantize()).collect(),
                })
                .collect(),
            fc: QuantFc {
                w: qv(&self.fc.w),
                b: qv(&self.fc.b),
                out_features: self.fc.out_features,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Variant;
    use crate::params::spec_params;
    use tensor::softmax::cross_entropy;

    fn tiny_input(n: usize, hw: usize, seed: u64) -> Tensor<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        Tensor::from_fn(Shape4::new(n, 3, hw, hw), |_, _, _, _| {
            rng.random::<f32>() * 2.0 - 1.0
        })
    }

    #[test]
    fn param_count_matches_accounting_all_variants() {
        for v in Variant::ALL {
            let spec = NetSpec::new(v, 20);
            let net = Network::new(spec, 1);
            assert_eq!(net.param_count(), spec_params(&spec), "{v}");
        }
    }

    #[test]
    fn forward_shapes() {
        let net = Network::new(NetSpec::new(Variant::ROdeNet3, 20).with_classes(10), 2);
        let x = tiny_input(2, 32, 3);
        let logits = net.forward(&x, BnMode::OnTheFly);
        assert_eq!(logits.shape(), Shape4::new(2, 10, 1, 1));
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn stage_forward_chain_matches_forward() {
        // pre → each stage individually → fc must reproduce the fused
        // forward pass bit-for-bit (same kernels, same order), for a
        // variant with removed stages and one with all present.
        for v in [Variant::ROdeNet3, Variant::ResNet] {
            let net = Network::new(NetSpec::new(v, 20).with_classes(10), 5);
            let x = tiny_input(2, 16, 3);
            let full = net.forward(&x, BnMode::OnTheFly);
            let mut z = net.pre_forward(&x);
            for name in [
                LayerName::Layer1,
                LayerName::Layer2_1,
                LayerName::Layer2_2,
                LayerName::Layer3_1,
                LayerName::Layer3_2,
            ] {
                if let Some(out) = net.stage_forward(name, &z, BnMode::OnTheFly) {
                    z = out;
                }
            }
            let logits = net.fc_forward(&z);
            assert_eq!(full.as_slice(), logits.as_slice(), "{v}");
        }
    }

    #[test]
    fn all_variants_forward_small_input() {
        // 16×16 inputs shrink the spatial pyramid but every variant must
        // still produce finite logits.
        for v in Variant::ALL {
            let net = Network::new(NetSpec::new(v, 20).with_classes(5), 7);
            let x = tiny_input(1, 16, 11);
            let logits = net.forward(&x, BnMode::OnTheFly);
            assert_eq!(logits.shape().c, 5, "{v}");
            assert!(logits.as_slice().iter().all(|f| f.is_finite()), "{v}");
        }
    }

    #[test]
    fn training_step_reduces_loss_unrolled() {
        let mut net = Network::new(NetSpec::new(Variant::ROdeNet3, 20).with_classes(4), 5);
        let x = tiny_input(4, 16, 13);
        let labels = [0usize, 1, 2, 3];
        let (logits, cache) = net.forward_train(&x, GradMode::Unrolled);
        let (loss0, glogits) = cross_entropy(&logits, &labels);
        net.zero_grads();
        net.backward(&glogits, &cache);
        // Plain SGD step.
        net.visit_params(&mut |p| {
            for (w, g) in p.w.iter_mut().zip(p.g.iter()) {
                *w -= 0.05 * g;
            }
        });
        let (logits1, _) = net.forward_train(&x, GradMode::Unrolled);
        let (loss1, _) = cross_entropy(&logits1, &labels);
        assert!(
            loss1 < loss0,
            "one SGD step must reduce loss: {loss0} -> {loss1}"
        );
    }

    #[test]
    fn training_step_reduces_loss_adjoint() {
        let mut net = Network::new(NetSpec::new(Variant::OdeNet, 20).with_classes(4), 6);
        let x = tiny_input(4, 16, 17);
        let labels = [0usize, 1, 2, 3];
        let (logits, cache) = net.forward_train(&x, GradMode::Adjoint);
        let (loss0, glogits) = cross_entropy(&logits, &labels);
        net.zero_grads();
        net.backward(&glogits, &cache);
        net.visit_params(&mut |p| {
            for (w, g) in p.w.iter_mut().zip(p.g.iter()) {
                *w -= 0.05 * g;
            }
        });
        let (logits1, _) = net.forward_train(&x, GradMode::Adjoint);
        let (loss1, _) = cross_entropy(&logits1, &labels);
        assert!(
            loss1 < loss0,
            "adjoint step must reduce loss: {loss0} -> {loss1}"
        );
    }

    #[test]
    fn adjoint_and_unrolled_gradients_close() {
        // Same network, same batch: the two grad modes should produce
        // similar (not identical) parameter gradients.
        let spec = NetSpec::new(Variant::Hybrid3, 20).with_classes(3);
        let x = tiny_input(2, 16, 23);
        let labels = [0usize, 2];
        let grads = |mode: GradMode| -> Vec<f32> {
            let mut net = Network::new(spec, 9);
            let (logits, cache) = net.forward_train(&x, mode);
            let (_, glogits) = cross_entropy(&logits, &labels);
            net.zero_grads();
            net.backward(&glogits, &cache);
            let mut out = Vec::new();
            net.visit_params(&mut |p| out.extend_from_slice(p.g));
            out
        };
        let gu = grads(GradMode::Unrolled);
        let ga = grads(GradMode::Adjoint);
        let dot: f64 = gu
            .iter()
            .zip(&ga)
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let nu: f64 = gu.iter().map(|a| (*a as f64).powi(2)).sum::<f64>().sqrt();
        let na: f64 = ga.iter().map(|a| (*a as f64).powi(2)).sum::<f64>().sqrt();
        let cosine = dot / (nu * na).max(1e-30);
        assert!(cosine > 0.95, "gradient directions agree: cos = {cosine}");
    }

    #[test]
    fn visit_params_count_consistent() {
        let mut net = Network::new(NetSpec::new(Variant::ResNet, 20), 3);
        let mut total = 0usize;
        net.visit_params(&mut |p| {
            assert_eq!(p.w.len(), p.g.len());
            total += p.w.len();
        });
        assert_eq!(total, net.param_count());
    }

    #[test]
    fn zero_grads_clears() {
        let mut net = Network::new(NetSpec::new(Variant::ROdeNet1, 20).with_classes(3), 4);
        let x = tiny_input(2, 16, 29);
        let (logits, cache) = net.forward_train(&x, GradMode::Unrolled);
        let (_, g) = cross_entropy(&logits, &[0, 1]);
        net.backward(&g, &cache);
        net.zero_grads();
        net.visit_params(&mut |p| assert!(p.g.iter().all(|&v| v == 0.0)));
    }
}
