//! Whole-network quantization — the deployment artifact behind the
//! `zynq-sim` engine's fully-fixed-point backend.
//!
//! [`crate::QuantBlock`] has always provided the *per-block* Q-format
//! datapath (what one ODEBlock circuit computes). [`QuantNetwork`]
//! extends that to the whole pipeline: conv1, every residual stage, and
//! the classification head, all in one scalar type `S`, with the same
//! hardware semantics (wide-accumulate convolutions, on-the-fly batch
//! norm — the circuit has no running statistics to consult).
//!
//! Built once via [`crate::Network::quantize`]; forward-only.

use crate::arch::{LayerName, LayerPlan, NetSpec};
use crate::block::QuantBlock;
use tensor::bn::bn_onthefly;
use tensor::conv::{conv2d, Conv2dParams};
use tensor::linear::fc_forward_s;
use tensor::ops::relu;
use tensor::pool::global_avg_pool;
use tensor::{Scalar, Tensor};

/// conv1 (3×3 conv + BN + ReLU) in the quantized number system.
#[derive(Clone, Debug)]
pub struct QuantPre<S: Scalar> {
    /// Quantized convolution weights `(16, 3, 3, 3)`.
    pub w: Tensor<S>,
    /// Stride/padding.
    pub cfg: Conv2dParams,
    /// Quantized BN scale.
    pub gamma: Vec<S>,
    /// Quantized BN shift.
    pub beta: Vec<S>,
    /// Quantized BN ε.
    pub eps: S,
}

impl<S: Scalar> QuantPre<S> {
    /// conv1 forward (on-the-fly statistics, as the PL computes them).
    pub fn forward(&self, x: &Tensor<S>) -> Tensor<S> {
        let c = conv2d(x, &self.w, self.cfg);
        relu(&bn_onthefly(&c, &self.gamma, &self.beta, self.eps))
    }
}

/// One residual stage: the quantized block instances plus the plan that
/// drives them.
#[derive(Clone, Debug)]
pub struct QuantStage<S: Scalar> {
    /// Which Table 2 layer.
    pub name: LayerName,
    /// Stack size / execution count / ODE flag.
    pub plan: LayerPlan,
    /// Quantized block instances (empty when the variant removed the
    /// layer).
    pub blocks: Vec<QuantBlock<S>>,
}

/// The classification head in the quantized number system.
#[derive(Clone, Debug)]
pub struct QuantFc<S: Scalar> {
    /// Quantized weights, `(out, in)` row major.
    pub w: Vec<S>,
    /// Quantized biases.
    pub b: Vec<S>,
    /// Output classes.
    pub out_features: usize,
}

impl<S: Scalar> QuantFc<S> {
    /// Global average pool + affine head.
    pub fn forward(&self, z: &Tensor<S>) -> Tensor<S> {
        fc_forward_s(&global_avg_pool(z), &self.w, &self.b, self.out_features)
    }
}

/// A whole network quantized into scalar type `S` — forward-only, every
/// stage in the PL's number system.
#[derive(Clone, Debug)]
pub struct QuantNetwork<S: Scalar> {
    /// The architecture this network realizes.
    pub spec: NetSpec,
    /// Quantized conv1.
    pub pre: QuantPre<S>,
    /// Quantized residual stages in execution order.
    pub stages: Vec<QuantStage<S>>,
    /// Quantized classification head.
    pub fc: QuantFc<S>,
}

impl<S: Scalar> QuantNetwork<S> {
    /// Full quantized inference to logits.
    pub fn forward(&self, x: &Tensor<S>) -> Tensor<S> {
        let mut z = self.pre.forward(x);
        for stage in &self.stages {
            for block in &stage.blocks {
                z = if stage.plan.is_ode {
                    block.ode_forward(&z, stage.plan.execs)
                } else {
                    block.residual_forward(&z)
                };
            }
        }
        self.fc.forward(&z)
    }

    /// A stage by layer name (`None` when the variant removed it).
    pub fn stage(&self, name: LayerName) -> Option<&QuantStage<S>> {
        self.stages
            .iter()
            .find(|s| s.name == name && !s.blocks.is_empty())
    }

    /// Storage bytes per value in this network's number system (4 for
    /// the paper's Q20, 2 for the footnote-2 16-bit formats).
    pub fn bytes_per_value(&self) -> usize {
        S::BYTES
    }

    /// Total storage bytes of the quantized parameters — the size of
    /// the deployment artifact at this width. Halving the word halves
    /// this, which is exactly the BRAM headroom the reduced-width
    /// placements spend.
    pub fn param_bytes(&self) -> usize {
        let mut values = self.pre.w.len() + self.pre.gamma.len() + self.pre.beta.len();
        for stage in &self.stages {
            for b in &stage.blocks {
                values += b.w1.len()
                    + b.w2.len()
                    + b.gamma1.len()
                    + b.beta1.len()
                    + b.gamma2.len()
                    + b.beta2.len();
            }
        }
        values += self.fc.w.len() + self.fc.b.len();
        values * S::BYTES
    }
}

#[cfg(test)]
mod tests {
    use crate::arch::{NetSpec, Variant};
    use crate::block::BnMode;
    use crate::model::Network;
    use qfixed::Q20;
    use tensor::{Shape4, Tensor};

    fn image(seed: u64) -> Tensor<f32> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(Shape4::new(1, 3, 16, 16), |_, _, _, _| {
            rng.random::<f32>() - 0.5
        })
    }

    #[test]
    fn quant_network_tracks_float_network() {
        for v in [Variant::ROdeNet3, Variant::ResNet, Variant::OdeNet] {
            let net = Network::new(NetSpec::new(v, 20).with_classes(6), 33);
            let qnet = net.quantize::<Q20>();
            let x = image(40);
            let logits_f = net.forward(&x, BnMode::OnTheFly);
            let logits_q = qnet.forward(&Tensor::<Q20>::from_f32_tensor(&x)).to_f32();
            assert_eq!(logits_q.shape(), logits_f.shape(), "{v}");
            let d = logits_f.max_abs_diff(&logits_q);
            assert!(d < 0.25, "{v}: full-Q20 logits drift {d}");
        }
    }

    #[test]
    fn quantize_preserves_structure() {
        let net = Network::new(NetSpec::new(Variant::ROdeNet3, 20).with_classes(10), 1);
        let q = net.quantize::<Q20>();
        assert_eq!(q.spec, net.spec);
        assert_eq!(q.stages.len(), net.stages.len());
        for (qs, fs) in q.stages.iter().zip(&net.stages) {
            assert_eq!(qs.name, fs.name);
            assert_eq!(qs.plan, fs.plan);
            assert_eq!(qs.blocks.len(), fs.blocks.len());
        }
        assert_eq!(q.fc.out_features, 10);
    }

    #[test]
    fn reduced_width_halves_param_bytes() {
        use qfixed::Fix16;
        let net = Network::new(NetSpec::new(Variant::ROdeNet3, 20).with_classes(10), 2);
        let q32 = net.quantize::<Q20>();
        let q16 = net.quantize::<Fix16<10>>();
        assert_eq!(q32.bytes_per_value(), 4);
        assert_eq!(q16.bytes_per_value(), 2);
        assert_eq!(q32.param_bytes(), 2 * q16.param_bytes());
    }

    #[test]
    fn quant_forward_is_deterministic() {
        let net = Network::new(NetSpec::new(Variant::Hybrid3, 20).with_classes(4), 9);
        let q = net.quantize::<Q20>();
        let xq = Tensor::<Q20>::from_f32_tensor(&image(7));
        assert_eq!(q.forward(&xq).as_slice(), q.forward(&xq).as_slice());
    }
}
