//! Parameter accounting — Table 2, Figure 5 and the §4.2 reduction quotes.
//!
//! Counting rules (validated to reproduce the paper's kB figures exactly,
//! see DESIGN.md §4):
//!
//! * convolutions are bias-free; batch norms contribute γ and β;
//! * ODE blocks use time-augmented convolutions (`C+1` input channels);
//! * blocks executed once (plain stacked blocks, and the once-executed
//!   layer1 of rODENet-2/-3) are ordinary residual blocks;
//! * a parameter is 4 bytes (32-bit), and the paper's kB is 1000 bytes.

use crate::arch::{LayerName, NetSpec, Variant};

/// Input/output channels of each residual layer's convolutions.
pub fn layer_channels(layer: LayerName) -> (usize, usize) {
    match layer {
        LayerName::Conv1 => (3, 16),
        LayerName::Layer1 => (16, 16),
        LayerName::Layer2_1 => (16, 32),
        LayerName::Layer2_2 => (32, 32),
        LayerName::Layer3_1 => (32, 64),
        LayerName::Layer3_2 => (64, 64),
        LayerName::Fc => (64, 100),
    }
}

/// Parameters of one block instance of `layer`.
///
/// For `Conv1` and `Fc` this is the whole layer; for residual layers it
/// is a single block (multiply by the stack size for ResNet).
pub fn block_params(layer: LayerName, is_ode: bool, classes: usize) -> usize {
    let (cin, cout) = layer_channels(layer);
    match layer {
        LayerName::Conv1 => 9 * cin * cout + 2 * cout,
        LayerName::Fc => cin * classes + classes,
        _ => {
            // conv1(k=3) + conv2(k=3) + two BNs (γ, β each).
            let t = usize::from(is_ode); // the concatenated time channel
            9 * (cin + t) * cout + 9 * (cout + t) * cout + 4 * cout
        }
    }
}

/// Bytes of one block instance at `bytes_per_param` (4 in the paper).
pub fn block_bytes(
    layer: LayerName,
    is_ode: bool,
    classes: usize,
    bytes_per_param: usize,
) -> usize {
    block_params(layer, is_ode, classes) * bytes_per_param
}

/// Paper-style kB (1000 bytes) of one block instance at 32-bit.
pub fn block_kb(layer: LayerName, is_ode: bool, classes: usize) -> f64 {
    block_bytes(layer, is_ode, classes, 4) as f64 / 1000.0
}

/// Total parameters of a resolved architecture.
pub fn spec_params(spec: &NetSpec) -> usize {
    let mut total = block_params(LayerName::Conv1, false, spec.classes);
    for layer in [
        LayerName::Layer1,
        LayerName::Layer2_1,
        LayerName::Layer2_2,
        LayerName::Layer3_1,
        LayerName::Layer3_2,
    ] {
        let plan = spec.plan(layer);
        total += plan.stacked * block_params(layer, plan.is_ode, spec.classes);
    }
    total + block_params(LayerName::Fc, false, spec.classes)
}

/// Total size in paper-style kB (32-bit parameters, 1000-byte kB).
pub fn spec_kb(spec: &NetSpec) -> f64 {
    spec_params(spec) as f64 * 4.0 / 1000.0
}

/// Percentage reduction of `variant`'s parameter size versus ResNet at
/// the same depth (the §4.2 quotes: ODENet-20 = 36.24 %, …).
pub fn reduction_vs_resnet(variant: Variant, n: usize) -> f64 {
    let base = spec_kb(&NetSpec::new(Variant::ResNet, n));
    let ours = spec_kb(&NetSpec::new(variant, n));
    (1.0 - ours / base) * 100.0
}

/// One row of Table 2 (ODENet structure).
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Layer name.
    pub layer: LayerName,
    /// Output geometry `(channels, extent)`.
    pub out: (usize, usize),
    /// Parameter size in kB of one block instance (ODE form where the
    /// ODENet uses an ODE block).
    pub kb: f64,
    /// Executions per block in ODENet-N (`(N-2)/6` style strings resolve
    /// to this number).
    pub execs: usize,
}

/// Reproduce Table 2 for depth `n` (ODENet-N structure, 100 classes).
pub fn table2(n: usize) -> Vec<Table2Row> {
    let spec = NetSpec::new(Variant::OdeNet, n);
    LayerName::ALL
        .iter()
        .map(|&layer| {
            let plan = spec.plan(layer);
            Table2Row {
                layer,
                out: layer.geometry(),
                kb: block_kb(layer, plan.is_ode, spec.classes),
                execs: plan.execs,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::PAPER_DEPTHS;

    fn kb2(v: f64) -> f64 {
        (v * 100.0).round() / 100.0
    }

    #[test]
    fn table2_parameter_sizes_exact() {
        // The seven kB values of Table 2, to the printed precision.
        assert_eq!(kb2(block_kb(LayerName::Conv1, false, 100)), 1.86);
        assert_eq!(kb2(block_kb(LayerName::Layer1, true, 100)), 19.84);
        assert_eq!(kb2(block_kb(LayerName::Layer2_1, false, 100)), 55.81);
        assert_eq!(kb2(block_kb(LayerName::Layer2_2, true, 100)), 76.54);
        assert_eq!(kb2(block_kb(LayerName::Layer3_1, false, 100)), 222.21);
        assert_eq!(kb2(block_kb(LayerName::Layer3_2, true, 100)), 300.54);
        assert_eq!(kb2(block_kb(LayerName::Fc, false, 100)), 26.00);
    }

    #[test]
    fn table2_execution_counts() {
        let rows = table2(56);
        let by_name = |l: LayerName| rows.iter().find(|r| r.layer == l).unwrap().execs;
        assert_eq!(by_name(LayerName::Conv1), 1);
        assert_eq!(by_name(LayerName::Layer1), 9); // (56-2)/6
        assert_eq!(by_name(LayerName::Layer2_2), 8); // (56-8)/6
        assert_eq!(by_name(LayerName::Layer3_2), 8);
        assert_eq!(by_name(LayerName::Fc), 1);
    }

    #[test]
    fn section42_reduction_quotes() {
        // "parameter sizes of ODENet-N and rODENet-3 are 36.24% and
        //  43.29% less than that of ResNet-20"
        assert!((reduction_vs_resnet(Variant::OdeNet, 20) - 36.24).abs() < 0.01);
        assert!((reduction_vs_resnet(Variant::ROdeNet3, 20) - 43.29).abs() < 0.01);
        // "…79.54% and 81.80% less than that of ResNet-56"
        assert!((reduction_vs_resnet(Variant::OdeNet, 56) - 79.54).abs() < 0.01);
        assert!((reduction_vs_resnet(Variant::ROdeNet3, 56) - 81.80).abs() < 0.01);
        // Hybrid-3: 26.43% (N=20) and 60.16% (N=56).
        assert!((reduction_vs_resnet(Variant::Hybrid3, 20) - 26.43).abs() < 0.01);
        assert!((reduction_vs_resnet(Variant::Hybrid3, 56) - 60.16).abs() < 0.01);
    }

    #[test]
    fn ode_sizes_independent_of_depth() {
        let kb20 = spec_kb(&NetSpec::new(Variant::OdeNet, 20));
        for n in PAPER_DEPTHS {
            assert_eq!(spec_kb(&NetSpec::new(Variant::OdeNet, n)), kb20);
        }
        // ResNet grows with N.
        assert!(
            spec_kb(&NetSpec::new(Variant::ResNet, 56))
                > 3.0 * spec_kb(&NetSpec::new(Variant::ResNet, 20))
        );
    }

    #[test]
    fn resnet_totals() {
        // Derived in DESIGN.md §4: ResNet-20 = 275 572 params = 1102.288 kB.
        let s20 = NetSpec::new(Variant::ResNet, 20);
        assert_eq!(spec_params(&s20), 275_572);
        let s56 = NetSpec::new(Variant::ResNet, 56);
        assert_eq!(spec_params(&s56), 858_868);
    }

    #[test]
    fn rodenet3_smallest_nontrivial() {
        // Figure 5 ordering at any depth: rODENet variants < ODENet < Hybrid < ResNet
        // (rODENet-1 is smallest since it keeps only 16-channel blocks).
        let n = 32;
        let kb = |v: Variant| spec_kb(&NetSpec::new(v, n));
        assert!(kb(Variant::ROdeNet1) < kb(Variant::ROdeNet2));
        // rODENet-2's once-executed layer1 is plain (288 params lighter
        // than the ODE form), so it undercuts rODENet-1+2 slightly.
        assert!(kb(Variant::ROdeNet2) < kb(Variant::ROdeNet12));
        assert!(kb(Variant::ROdeNet12) < kb(Variant::ROdeNet3));
        assert!(kb(Variant::ROdeNet3) < kb(Variant::OdeNet));
        assert!(kb(Variant::OdeNet) < kb(Variant::Hybrid3));
        assert!(kb(Variant::Hybrid3) < kb(Variant::ResNet));
    }

    #[test]
    fn quantization_scales_bytes() {
        let b32 = block_bytes(LayerName::Layer3_2, true, 100, 4);
        let b16 = block_bytes(LayerName::Layer3_2, true, 100, 2);
        assert_eq!(b32, 2 * b16);
        assert_eq!(b32, 300_544);
    }
}
