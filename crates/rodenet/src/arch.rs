//! Network architecture specifications — Table 4 of the paper.
//!
//! Seven variants are defined over the depth parameter N (the ResNet-N
//! naming: N counts convolution + fully-connected steps). Every variant
//! executes **the same total number of building blocks** as ResNet-N;
//! the rODENets differ in *which* block instance they execute repeatedly
//! (and therefore which one is worth offloading to the PL).

use core::fmt;

/// The seven architectures of Table 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Baseline ResNet-N: all blocks stacked, each executed once.
    ResNet,
    /// ODENet-N: layer1, layer2_2, layer3_2 replaced by ODE blocks.
    OdeNet,
    /// rODENet-1-N: only layer1 survives as an ODE block; layer2_2 and
    /// layer3_2 are removed and layer1 absorbs their execution budget.
    ROdeNet1,
    /// rODENet-2-N: only layer2_2 survives (as an ODE block).
    ROdeNet2,
    /// rODENet-1+2-N: layer1 and layer2_2 survive as ODE blocks.
    ROdeNet12,
    /// rODENet-3-N: only layer3_2 survives (as an ODE block).
    ROdeNet3,
    /// Hybrid-3-N: ResNet everywhere except layer3_2, which is an ODE
    /// block (the high-accuracy variant).
    Hybrid3,
}

impl Variant {
    /// All variants, in the paper's Table 4 column order.
    pub const ALL: [Variant; 7] = [
        Variant::ResNet,
        Variant::OdeNet,
        Variant::ROdeNet1,
        Variant::ROdeNet2,
        Variant::ROdeNet12,
        Variant::ROdeNet3,
        Variant::Hybrid3,
    ];

    /// The paper's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::ResNet => "ResNet",
            Variant::OdeNet => "ODENet",
            Variant::ROdeNet1 => "rODENet-1",
            Variant::ROdeNet2 => "rODENet-2",
            Variant::ROdeNet12 => "rODENet-1+2",
            Variant::ROdeNet3 => "rODENet-3",
            Variant::Hybrid3 => "Hybrid-3",
        }
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The seven rows of Table 2 / Table 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LayerName {
    /// Pre-processing 3×3 conv (3→16ch) + BN + ReLU.
    Conv1,
    /// 16-channel 32×32 residual/ODE blocks.
    Layer1,
    /// Stride-2 downsample block 16→32ch.
    Layer2_1,
    /// 32-channel 16×16 residual/ODE blocks.
    Layer2_2,
    /// Stride-2 downsample block 32→64ch.
    Layer3_1,
    /// 64-channel 8×8 residual/ODE blocks.
    Layer3_2,
    /// Post-processing: global average pool + 100-way FC + softmax.
    Fc,
}

impl LayerName {
    /// All layers in execution order.
    pub const ALL: [LayerName; 7] = [
        LayerName::Conv1,
        LayerName::Layer1,
        LayerName::Layer2_1,
        LayerName::Layer2_2,
        LayerName::Layer3_1,
        LayerName::Layer3_2,
        LayerName::Fc,
    ];

    /// The paper's display name.
    pub fn name(&self) -> &'static str {
        match self {
            LayerName::Conv1 => "conv1",
            LayerName::Layer1 => "layer1",
            LayerName::Layer2_1 => "layer2_1",
            LayerName::Layer2_2 => "layer2_2",
            LayerName::Layer3_1 => "layer3_1",
            LayerName::Layer3_2 => "layer3_2",
            LayerName::Fc => "fc",
        }
    }

    /// `(channels, height/width)` of the layer's **output** feature map
    /// (Table 2; note the paper's §3.1 prose swaps layer1/layer3_2 —
    /// Table 2 is authoritative).
    pub fn geometry(&self) -> (usize, usize) {
        match self {
            LayerName::Conv1 | LayerName::Layer1 => (16, 32),
            LayerName::Layer2_1 | LayerName::Layer2_2 => (32, 16),
            LayerName::Layer3_1 | LayerName::Layer3_2 => (64, 8),
            LayerName::Fc => (100, 1),
        }
    }
}

impl fmt::Display for LayerName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How one of the residual layers appears in a variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayerPlan {
    /// Number of block instances that physically exist (hold parameters).
    pub stacked: usize,
    /// Executions of each instance (`> 1` only for ODE blocks).
    pub execs: usize,
    /// Whether the instance is an ODE block (time-augmented convolutions,
    /// solver-driven). Plain stacked blocks are ordinary residual blocks.
    pub is_ode: bool,
}

impl LayerPlan {
    const fn absent() -> Self {
        LayerPlan {
            stacked: 0,
            execs: 0,
            is_ode: false,
        }
    }

    const fn plain(stacked: usize) -> Self {
        LayerPlan {
            stacked,
            execs: 1,
            is_ode: false,
        }
    }

    const fn ode(execs: usize) -> Self {
        LayerPlan {
            stacked: 1,
            execs,
            is_ode: true,
        }
    }

    /// Total building-block executions this layer contributes.
    pub const fn total_execs(&self) -> usize {
        self.stacked * self.execs
    }
}

/// A fully resolved architecture: variant × depth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetSpec {
    /// Which of the seven architectures.
    pub variant: Variant,
    /// The depth parameter N (20, 32, 44, 56 in the paper).
    pub n: usize,
    /// Plan for layer1.
    pub layer1: LayerPlan,
    /// Plan for layer2_1 (always one plain downsample block).
    pub layer2_1: LayerPlan,
    /// Plan for layer2_2.
    pub layer2_2: LayerPlan,
    /// Plan for layer3_1 (always one plain downsample block).
    pub layer3_1: LayerPlan,
    /// Plan for layer3_2.
    pub layer3_2: LayerPlan,
    /// Number of classification classes (100 for CIFAR-100).
    pub classes: usize,
}

/// Depths evaluated in the paper.
pub const PAPER_DEPTHS: [usize; 4] = [20, 32, 44, 56];

impl NetSpec {
    /// Build the Table 4 plan for `variant` at depth `n`.
    ///
    /// # Panics
    /// If the depth is incompatible with the variant's execution-count
    /// formulas (all paper depths 20/32/44/56 are valid for every
    /// variant).
    pub fn new(variant: Variant, n: usize) -> Self {
        assert!(n >= 14, "depth N must be at least 14 (got {n})");
        let div = |num: usize, den: usize, what: &str| -> usize {
            assert!(
                num.is_multiple_of(den),
                "{what}: ({num}) must be divisible by {den} for N={n} in {variant}"
            );
            num / den
        };
        // ResNet stack sizes.
        let s1 = div(n - 2, 6, "(N-2)/6");
        let s2 = div(n - 8, 6, "(N-8)/6");
        let (layer1, layer2_2, layer3_2) = match variant {
            Variant::ResNet => (
                LayerPlan::plain(s1),
                LayerPlan::plain(s2),
                LayerPlan::plain(s2),
            ),
            Variant::OdeNet => (LayerPlan::ode(s1), LayerPlan::ode(s2), LayerPlan::ode(s2)),
            Variant::ROdeNet1 => (
                LayerPlan::ode(div(n - 6, 2, "(N-6)/2")),
                LayerPlan::absent(),
                LayerPlan::absent(),
            ),
            Variant::ROdeNet2 => (
                LayerPlan::plain(1),
                LayerPlan::ode(div(n - 8, 2, "(N-8)/2")),
                LayerPlan::absent(),
            ),
            Variant::ROdeNet12 => (
                LayerPlan::ode(div(n - 4, 4, "(N-4)/4")),
                LayerPlan::ode(div(n - 8, 4, "(N-8)/4")),
                LayerPlan::absent(),
            ),
            Variant::ROdeNet3 => (
                LayerPlan::plain(1),
                LayerPlan::absent(),
                LayerPlan::ode(div(n - 8, 2, "(N-8)/2")),
            ),
            Variant::Hybrid3 => (
                LayerPlan::plain(s1),
                LayerPlan::plain(s2),
                LayerPlan::ode(s2),
            ),
        };
        NetSpec {
            variant,
            n,
            layer1,
            layer2_1: LayerPlan::plain(1),
            layer2_2,
            layer3_1: LayerPlan::plain(1),
            layer3_2,
            classes: 100,
        }
    }

    /// Same spec with a different class count (e.g. the synthetic dataset).
    pub fn with_classes(mut self, classes: usize) -> Self {
        assert!(classes >= 2);
        self.classes = classes;
        self
    }

    /// The plan for a residual layer.
    pub fn plan(&self, layer: LayerName) -> LayerPlan {
        match layer {
            LayerName::Conv1 | LayerName::Fc => LayerPlan::plain(1),
            LayerName::Layer1 => self.layer1,
            LayerName::Layer2_1 => self.layer2_1,
            LayerName::Layer2_2 => self.layer2_2,
            LayerName::Layer3_1 => self.layer3_1,
            LayerName::Layer3_2 => self.layer3_2,
        }
    }

    /// Total building-block executions (must equal ResNet-N's block count
    /// for every variant — the paper's equal-compute design rule).
    pub fn total_block_execs(&self) -> usize {
        self.layer1.total_execs()
            + self.layer2_1.total_execs()
            + self.layer2_2.total_execs()
            + self.layer3_1.total_execs()
            + self.layer3_2.total_execs()
    }

    /// Display name like `rODENet-3-56`.
    pub fn display_name(&self) -> String {
        format!("{}-{}", self.variant.name(), self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet20_stacks() {
        let s = NetSpec::new(Variant::ResNet, 20);
        assert_eq!(s.layer1, LayerPlan::plain(3));
        assert_eq!(s.layer2_2, LayerPlan::plain(2));
        assert_eq!(s.layer3_2, LayerPlan::plain(2));
        assert_eq!(s.total_block_execs(), 9);
    }

    #[test]
    fn table4_execution_counts_n20() {
        // Paper Table 4, N = 20.
        let cases = [
            (Variant::OdeNet, (1, 3, true), (1, 2, true), (1, 2, true)),
            (
                Variant::ROdeNet1,
                (1, 7, true),
                (0, 0, false),
                (0, 0, false),
            ),
            (
                Variant::ROdeNet2,
                (1, 1, false),
                (1, 6, true),
                (0, 0, false),
            ),
            (
                Variant::ROdeNet12,
                (1, 4, true),
                (1, 3, true),
                (0, 0, false),
            ),
            (
                Variant::ROdeNet3,
                (1, 1, false),
                (0, 0, false),
                (1, 6, true),
            ),
            (Variant::Hybrid3, (3, 1, false), (2, 1, false), (1, 2, true)),
        ];
        for (variant, l1, l22, l32) in cases {
            let s = NetSpec::new(variant, 20);
            for (plan, (stacked, execs, is_ode), name) in [
                (s.layer1, l1, "layer1"),
                (s.layer2_2, l22, "layer2_2"),
                (s.layer3_2, l32, "layer3_2"),
            ] {
                assert_eq!(plan.stacked, stacked, "{variant} {name} stacked");
                assert_eq!(plan.execs, execs, "{variant} {name} execs");
                assert_eq!(plan.is_ode, is_ode, "{variant} {name} is_ode");
            }
        }
    }

    #[test]
    fn equal_compute_invariant_all_variants_all_depths() {
        // Every variant executes exactly as many building blocks as
        // ResNet-N — the design rule behind Table 4.
        for n in PAPER_DEPTHS {
            let baseline = NetSpec::new(Variant::ResNet, n).total_block_execs();
            for v in Variant::ALL {
                assert_eq!(
                    NetSpec::new(v, n).total_block_execs(),
                    baseline,
                    "{v}-{n} must execute {baseline} blocks"
                );
            }
        }
    }

    #[test]
    fn ode_layers_have_single_instance() {
        for n in PAPER_DEPTHS {
            for v in Variant::ALL {
                let s = NetSpec::new(v, n);
                for plan in [s.layer1, s.layer2_2, s.layer3_2] {
                    if plan.is_ode {
                        assert_eq!(plan.stacked, 1, "ODE blocks are single instances");
                    }
                    if plan.stacked > 1 {
                        assert_eq!(plan.execs, 1, "stacked blocks execute once");
                    }
                }
            }
        }
    }

    #[test]
    fn rodenet3_heavily_uses_layer3_2() {
        let s = NetSpec::new(Variant::ROdeNet3, 56);
        assert_eq!(s.layer3_2.execs, 24);
        assert_eq!(s.layer1, LayerPlan::plain(1));
        assert_eq!(s.layer2_2, LayerPlan::absent());
    }

    #[test]
    fn downsample_blocks_always_present() {
        for n in PAPER_DEPTHS {
            for v in Variant::ALL {
                let s = NetSpec::new(v, n);
                assert_eq!(s.layer2_1, LayerPlan::plain(1));
                assert_eq!(s.layer3_1, LayerPlan::plain(1));
            }
        }
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn invalid_depth_rejected() {
        let _ = NetSpec::new(Variant::ResNet, 21);
    }

    #[test]
    fn geometry_matches_table2() {
        assert_eq!(LayerName::Layer1.geometry(), (16, 32));
        assert_eq!(LayerName::Layer2_2.geometry(), (32, 16));
        assert_eq!(LayerName::Layer3_2.geometry(), (64, 8));
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(
            NetSpec::new(Variant::ROdeNet3, 56).display_name(),
            "rODENet-3-56"
        );
        assert_eq!(Variant::ROdeNet12.name(), "rODENet-1+2");
    }

    #[test]
    fn with_classes() {
        let s = NetSpec::new(Variant::ResNet, 20).with_classes(10);
        assert_eq!(s.classes, 10);
    }
}
