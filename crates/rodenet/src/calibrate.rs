//! Activation-range calibration — the zero-training measurement pass
//! behind per-stage fixed-point format selection.
//!
//! The paper's footnote 2 observes that reduced bit widths fit more
//! layers in the PL; *which* reduced format a stage tolerates depends on
//! the dynamic range of everything the stage's circuit touches: the
//! feature map entering the DMA boundary, every intermediate Euler state
//! and `f(z, t)` evaluation while the map is resident in BRAM, and the
//! quantized parameters themselves. [`stage_ranges`] measures exactly
//! that set on a sample batch, per offloadable stage, using the float
//! network as the reference signal (the standard post-training
//! calibration assumption: the quantized trajectory tracks the float one
//! closely enough that the float envelope plus an integer-bit headroom
//! margin covers it).
//!
//! The consumer is `zynq_sim`'s `Precision::Calibrated` policy, which
//! turns each measured envelope into the largest-`frac` executable
//! Q-format with the requested headroom.

use crate::arch::LayerName;
use crate::block::{BnMode, ResBlock};
use crate::model::Network;
use tensor::Tensor;

/// The layers a PL circuit can host (shape-preserving stages), in
/// network order — the rows of a calibration report.
pub const OFFLOADABLE_LAYERS: [LayerName; 3] =
    [LayerName::Layer1, LayerName::Layer2_2, LayerName::Layer3_2];

/// The measured dynamic-range envelope of one offloadable stage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StageRange {
    /// The stage the envelope belongs to.
    pub layer: LayerName,
    /// Largest |value| seen across the stage's inputs, every
    /// intermediate Euler state, and every `f(z, t)` evaluation, over
    /// the whole sample batch.
    pub max_abs_activation: f32,
    /// Largest |parameter| of the stage's block (conv weights and batch
    /// norm scale/shift — everything quantized into the stage format).
    pub max_abs_weight: f32,
    /// Values folded into `max_abs_activation` (envelope sample count).
    pub samples: usize,
}

impl StageRange {
    /// The envelope the stage's Q-format must represent: activations
    /// and parameters share one number system on the circuit.
    pub fn max_abs(&self) -> f32 {
        self.max_abs_activation.max(self.max_abs_weight)
    }
}

/// Fold a tensor into a running max-|value| envelope.
fn fold_max(acc: &mut f32, count: &mut usize, t: &Tensor<f32>) {
    for &v in t.as_slice() {
        if v.abs() > *acc {
            *acc = v.abs();
        }
    }
    *count += t.len();
}

fn weight_max(block: &ResBlock) -> f32 {
    let mut m = 0.0f32;
    let slices: [&[f32]; 6] = [
        block.conv1.w.as_slice(),
        block.conv2.w.as_slice(),
        &block.bn1.gamma,
        &block.bn1.beta,
        &block.bn2.gamma,
        &block.bn2.beta,
    ];
    for s in slices {
        for &v in s {
            m = m.max(v.abs());
        }
    }
    m
}

/// Measure the per-stage activation envelope of `net` over `sample`.
///
/// Runs the float network forward on every sample input (conv1 first,
/// stages in network order) exactly as the deployed hybrid walk does,
/// and for each **offloadable single-instance stage** records the max
/// |value| of the stage input, every Euler step's state, and every
/// `f(z, t)` evaluation — the values the PL number system must
/// represent while the feature map is BRAM-resident. Non-offloadable
/// stages (downsample blocks, stacked ResNet stages) only propagate the
/// state. Returns one [`StageRange`] per offloadable stage present in
/// the architecture, in network order; an empty sample yields an empty
/// report (callers decide whether that is an error).
///
/// `bn` is the **PS-side** statistics mode and applies only to the
/// non-measured stages' propagation. A measured stage is always
/// evaluated with [`BnMode::OnTheFly`] — the float analogue of the PL
/// circuit, which computes its statistics per feature map regardless of
/// how the PS runs — so the envelope reflects what the circuit will
/// actually produce, and its output propagates as the offloaded
/// deployment would hand it downstream. (A measured stage that ends up
/// *not* offloaded simply never uses its chosen format.)
pub fn stage_ranges(net: &Network, sample: &[Tensor<f32>], bn: BnMode) -> Vec<StageRange> {
    let mut ranges: Vec<StageRange> = net
        .stages
        .iter()
        .filter(|s| {
            OFFLOADABLE_LAYERS.contains(&s.name) && s.blocks.len() == 1 && s.plan.total_execs() > 0
        })
        .map(|s| StageRange {
            layer: s.name,
            max_abs_activation: 0.0,
            max_abs_weight: weight_max(&s.blocks[0]),
            samples: 0,
        })
        .collect();

    for x in sample {
        let mut z = net.pre_forward(x);
        for stage in &net.stages {
            if stage.blocks.is_empty() {
                continue;
            }
            let record = ranges.iter_mut().find(|r| r.layer == stage.name);
            if let Some(r) = record {
                let block = &stage.blocks[0];
                fold_max(&mut r.max_abs_activation, &mut r.samples, &z);
                if stage.plan.is_ode {
                    // Re-run the Euler loop of `ode_forward`, recording
                    // each f evaluation and intermediate state — with
                    // on-the-fly statistics, as the circuit computes
                    // them (see the doc comment above).
                    let steps = stage.plan.execs;
                    let h = 1.0 / steps as f32;
                    for i in 0..steps {
                        let t = i as f32 * h;
                        let f = block.f_eval(&z, t, BnMode::OnTheFly);
                        fold_max(&mut r.max_abs_activation, &mut r.samples, &f);
                        z = z.zip_map(&f, |a, b| a + h * b);
                        fold_max(&mut r.max_abs_activation, &mut r.samples, &z);
                    }
                } else {
                    z = block.residual_forward(&z, BnMode::OnTheFly);
                    fold_max(&mut r.max_abs_activation, &mut r.samples, &z);
                }
            } else {
                for block in &stage.blocks {
                    z = if stage.plan.is_ode {
                        block.ode_forward(&z, stage.plan.execs, bn)
                    } else {
                        block.residual_forward(&z, bn)
                    };
                }
            }
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{NetSpec, Variant};
    use tensor::Shape4;

    fn image(seed: u64) -> Tensor<f32> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(Shape4::new(1, 3, 16, 16), |_, _, _, _| {
            rng.random::<f32>() - 0.5
        })
    }

    #[test]
    fn reports_one_range_per_offloadable_stage() {
        let net = Network::new(NetSpec::new(Variant::OdeNet, 20).with_classes(5), 3);
        let ranges = stage_ranges(&net, &[image(1), image(2)], BnMode::OnTheFly);
        let layers: Vec<LayerName> = ranges.iter().map(|r| r.layer).collect();
        assert_eq!(layers, OFFLOADABLE_LAYERS.to_vec());
        for r in &ranges {
            assert!(r.max_abs_activation > 0.0, "{:?}", r.layer);
            assert!(r.max_abs_weight > 0.0);
            assert!(r.samples > 0);
            assert!(r.max_abs() >= r.max_abs_activation);
        }
    }

    #[test]
    fn stacked_resnet_stages_are_excluded() {
        let net = Network::new(NetSpec::new(Variant::ResNet, 20).with_classes(5), 4);
        assert!(stage_ranges(&net, &[image(3)], BnMode::OnTheFly).is_empty());
    }

    #[test]
    fn removed_layers_are_excluded() {
        // rODENet-3 keeps layer3_2 as its only ODE stage; layer1 remains
        // as a once-executed plain block (still offloadable-extended and
        // shape-preserving, so it calibrates too), layer2_2 is removed.
        let net = Network::new(NetSpec::new(Variant::ROdeNet3, 20).with_classes(5), 5);
        let layers: Vec<LayerName> = stage_ranges(&net, &[image(4)], BnMode::OnTheFly)
            .iter()
            .map(|r| r.layer)
            .collect();
        assert_eq!(layers, vec![LayerName::Layer1, LayerName::Layer3_2]);
    }

    #[test]
    fn empty_sample_is_an_empty_envelope() {
        let net = Network::new(NetSpec::new(Variant::OdeNet, 20).with_classes(5), 6);
        let ranges = stage_ranges(&net, &[], BnMode::OnTheFly);
        assert_eq!(ranges.len(), 3, "stages still enumerated");
        assert!(ranges.iter().all(|r| r.samples == 0));
        assert!(ranges.iter().all(|r| r.max_abs_activation == 0.0));
    }

    #[test]
    fn measured_stages_use_circuit_statistics_regardless_of_ps_mode() {
        // The PL circuit always computes batch-norm statistics on the
        // fly; a PS-side Running mode must not leak into the measured
        // envelope (it would undershoot what the circuit produces).
        let net = Network::new(NetSpec::new(Variant::OdeNet, 20).with_classes(5), 9);
        let sample = [image(20), image(21)];
        let fly = stage_ranges(&net, &sample, BnMode::OnTheFly);
        let run = stage_ranges(&net, &sample, BnMode::Running);
        // layer1 sits before any PS-resident stage, so its envelope —
        // input from the always-on-the-fly conv1 plus the measured
        // Euler loop — must be identical under both PS modes. (Later
        // stages may legitimately differ: the PS-resident downsample
        // blocks in between propagate with the PS mode.)
        assert_eq!(fly[0].layer, LayerName::Layer1);
        assert_eq!(fly[0], run[0], "the measured stage ignores the PS mode");
    }

    #[test]
    fn envelope_grows_monotonically_with_the_sample() {
        let net = Network::new(NetSpec::new(Variant::OdeNet, 20).with_classes(5), 7);
        let one = stage_ranges(&net, &[image(10)], BnMode::OnTheFly);
        let two = stage_ranges(&net, &[image(10), image(11)], BnMode::OnTheFly);
        for (a, b) in one.iter().zip(&two) {
            assert_eq!(a.layer, b.layer);
            assert!(b.max_abs_activation >= a.max_abs_activation);
            assert!(b.samples > a.samples);
        }
    }
}
