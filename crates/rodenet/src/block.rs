//! The building blocks: plain residual blocks, downsample blocks, and the
//! time-augmented ODE blocks (Figures 1–2 of the paper).
//!
//! Every block computes the residual function
//!
//! ```text
//! f(z, t) = BN₂(conv₂(ReLU(BN₁(conv₁(z̃)))))        z̃ = [t ∥ z] if ODE
//! ```
//!
//! A **plain** block then outputs `shortcut(x) + f(x)` (one Euler step
//! with h = 1, Equation 1); an **ODE** block hands `f` to the solver and
//! is executed M times (Equation 5). The downsample blocks (layer2_1,
//! layer3_1) use stride-2 first convolutions and the parameter-free
//! option-A shortcut.

use crate::arch::LayerName;
use crate::init::he_conv;
use crate::params::layer_channels;
use rand::Rng;
use tensor::bn::{bn_apply, bn_backward, bn_onthefly, bn_train_forward, BnCache, DEFAULT_EPS};
use tensor::conv::{conv2d, conv2d_backward_input, conv2d_backward_weights, Conv2dParams};
use tensor::ops::{concat_time_channel, relu, relu_backward, split_time_channel_grad};
use tensor::pool::{shortcut_a, shortcut_a_backward};
use tensor::{Scalar, Shape4, Tensor};

/// How batch norm resolves its statistics outside of training.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BnMode {
    /// Use the stored running statistics (standard deployment).
    Running,
    /// Compute statistics from the current feature map — the paper's PL
    /// implementation (it instantiates divider and square-root units for
    /// exactly this).
    OnTheFly,
}

/// A convolution with its gradient buffer.
#[derive(Clone, Debug)]
pub struct ConvParam {
    /// Weights `(O, I, 3, 3)`.
    pub w: Tensor<f32>,
    /// Gradient accumulator, same shape.
    pub g: Tensor<f32>,
    /// Stride/padding.
    pub cfg: Conv2dParams,
}

impl ConvParam {
    fn new(rng: &mut impl Rng, shape: Shape4, cfg: Conv2dParams) -> Self {
        ConvParam {
            w: he_conv(rng, shape),
            g: Tensor::zeros(shape),
            cfg,
        }
    }
}

/// A batch-norm parameter set with gradients and running statistics.
#[derive(Clone, Debug)]
pub struct BnParam {
    /// Scale γ (initialized to 1).
    pub gamma: Vec<f32>,
    /// Shift β (initialized to 0).
    pub beta: Vec<f32>,
    /// γ gradient accumulator.
    pub ggamma: Vec<f32>,
    /// β gradient accumulator.
    pub gbeta: Vec<f32>,
    /// Running mean (momentum-averaged during training).
    pub running_mean: Vec<f32>,
    /// Running variance.
    pub running_var: Vec<f32>,
    /// Running-average momentum (0.1 like common frameworks).
    pub momentum: f32,
    /// Numerical-stability ε.
    pub eps: f32,
}

impl BnParam {
    /// Fresh BN parameters for `channels` channels.
    pub fn new(channels: usize) -> Self {
        BnParam {
            gamma: vec![1.0; channels],
            beta: vec![0.0; channels],
            ggamma: vec![0.0; channels],
            gbeta: vec![0.0; channels],
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: DEFAULT_EPS,
        }
    }

    /// Batch-statistics forward; `track` also updates running stats.
    pub fn train_forward(&mut self, x: &Tensor<f32>, track: bool) -> (Tensor<f32>, BnCache) {
        let (y, cache) = bn_train_forward(x, &self.gamma, &self.beta, self.eps);
        if track {
            for c in 0..self.gamma.len() {
                self.running_mean[c] =
                    (1.0 - self.momentum) * self.running_mean[c] + self.momentum * cache.mean[c];
                self.running_var[c] =
                    (1.0 - self.momentum) * self.running_var[c] + self.momentum * cache.var[c];
            }
        }
        (y, cache)
    }

    /// Inference forward with the requested statistics mode.
    pub fn infer_forward(&self, x: &Tensor<f32>, mode: BnMode) -> Tensor<f32> {
        match mode {
            BnMode::Running => bn_apply(
                x,
                &self.gamma,
                &self.beta,
                &self.running_mean,
                &self.running_var,
                self.eps,
            ),
            BnMode::OnTheFly => bn_onthefly(x, &self.gamma, &self.beta, self.eps),
        }
    }
}

/// Cache of one evaluation of the residual function `f`.
#[derive(Clone, Debug)]
pub struct CoreCache {
    zc: Tensor<f32>,
    bn1: BnCache,
    b1: Tensor<f32>,
    rc: Tensor<f32>,
    bn2: BnCache,
}

/// A residual / ODE building block.
#[derive(Clone, Debug)]
pub struct ResBlock {
    /// Which Table 2 layer this block instantiates.
    pub layer: LayerName,
    /// True for ODE blocks (time-augmented convolutions).
    pub time_aug: bool,
    /// Stride of the first convolution (2 for downsample blocks).
    pub stride: usize,
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// First convolution.
    pub conv1: ConvParam,
    /// First batch norm.
    pub bn1: BnParam,
    /// Second convolution.
    pub conv2: ConvParam,
    /// Second batch norm.
    pub bn2: BnParam,
}

impl ResBlock {
    /// Create a block for `layer`; `is_ode` selects the time-augmented
    /// form. Downsample layers (layer2_1/layer3_1) get stride 2.
    pub fn new(rng: &mut impl Rng, layer: LayerName, is_ode: bool) -> Self {
        let (cin, cout) = layer_channels(layer);
        let stride = match layer {
            LayerName::Layer2_1 | LayerName::Layer3_1 => 2,
            _ => 1,
        };
        assert!(
            !(is_ode && (stride != 1 || cin != cout)),
            "ODE blocks must preserve shape ({layer:?})"
        );
        let t = usize::from(is_ode);
        let cfg1 = Conv2dParams { stride, pad: 1 };
        let cfg2 = Conv2dParams::same_3x3();
        ResBlock {
            layer,
            time_aug: is_ode,
            stride,
            in_ch: cin,
            out_ch: cout,
            conv1: ConvParam::new(rng, Shape4::new(cout, cin + t, 3, 3), cfg1),
            bn1: BnParam::new(cout),
            conv2: ConvParam::new(rng, Shape4::new(cout, cout + t, 3, 3), cfg2),
            bn2: BnParam::new(cout),
        }
    }

    /// Number of trainable parameters (validates against Table 2).
    pub fn param_count(&self) -> usize {
        self.conv1.w.len() + self.conv2.w.len() + 2 * (self.bn1.gamma.len() + self.bn2.gamma.len())
    }

    /// The residual function `f(z, t)` — inference, no state mutation.
    pub fn f_eval(&self, z: &Tensor<f32>, t: f32, mode: BnMode) -> Tensor<f32> {
        let zc = if self.time_aug {
            concat_time_channel(z, t)
        } else {
            z.clone()
        };
        let c1 = conv2d(&zc, &self.conv1.w, self.conv1.cfg);
        let b1 = self.bn1.infer_forward(&c1, mode);
        let r = relu(&b1);
        let rc = if self.time_aug {
            concat_time_channel(&r, t)
        } else {
            r
        };
        let c2 = conv2d(&rc, &self.conv2.w, self.conv2.cfg);
        self.bn2.infer_forward(&c2, mode)
    }

    /// The residual function with **batch statistics** but no state
    /// mutation — what the solver sees during training-time forward
    /// evaluations (running statistics are tracked separately).
    pub fn f_eval_batch(&self, z: &Tensor<f32>, t: f32) -> Tensor<f32> {
        let zc = if self.time_aug {
            concat_time_channel(z, t)
        } else {
            z.clone()
        };
        let c1 = conv2d(&zc, &self.conv1.w, self.conv1.cfg);
        let (b1, _) = bn_train_forward(&c1, &self.bn1.gamma, &self.bn1.beta, self.bn1.eps);
        let r = relu(&b1);
        let rc = if self.time_aug {
            concat_time_channel(&r, t)
        } else {
            r
        };
        let c2 = conv2d(&rc, &self.conv2.w, self.conv2.cfg);
        let (b2, _) = bn_train_forward(&c2, &self.bn2.gamma, &self.bn2.beta, self.bn2.eps);
        b2
    }

    /// The residual function with batch statistics, returning the cache
    /// needed by [`ResBlock::f_backward`]. `track` updates running stats.
    pub fn f_train(&mut self, z: &Tensor<f32>, t: f32, track: bool) -> (Tensor<f32>, CoreCache) {
        let zc = if self.time_aug {
            concat_time_channel(z, t)
        } else {
            z.clone()
        };
        let c1 = conv2d(&zc, &self.conv1.w, self.conv1.cfg);
        let (b1, bn1) = self.bn1.train_forward(&c1, track);
        let r = relu(&b1);
        let rc = if self.time_aug {
            concat_time_channel(&r, t)
        } else {
            r
        };
        let c2 = conv2d(&rc, &self.conv2.w, self.conv2.cfg);
        let (f, bn2) = self.bn2.train_forward(&c2, track);
        (
            f,
            CoreCache {
                zc,
                bn1,
                b1,
                rc,
                bn2,
            },
        )
    }

    /// Backward through `f`: accumulates `weight ·` parameter gradients
    /// and returns `weight`-free `∂f/∂zᵀ a`.
    pub fn f_backward(&mut self, a: &Tensor<f32>, cache: &CoreCache, weight: f32) -> Tensor<f32> {
        // bn2
        let (gc2, dg2, db2) = bn_backward(a, &cache.bn2, &self.bn2.gamma);
        axpy_vec(&mut self.bn2.ggamma, weight, &dg2);
        axpy_vec(&mut self.bn2.gbeta, weight, &db2);
        // conv2
        let gw2 = conv2d_backward_weights(&gc2, &cache.rc, self.conv2.w.shape(), self.conv2.cfg);
        axpy_tensor(&mut self.conv2.g, weight, &gw2);
        let grc = conv2d_backward_input(&gc2, &self.conv2.w, cache.rc.shape(), self.conv2.cfg);
        let gr = if self.time_aug {
            split_time_channel_grad(&grc)
        } else {
            grc
        };
        // relu
        let grelu = relu_backward(&gr, &cache.b1);
        // bn1
        let (gc1, dg1, db1) = bn_backward(&grelu, &cache.bn1, &self.bn1.gamma);
        axpy_vec(&mut self.bn1.ggamma, weight, &dg1);
        axpy_vec(&mut self.bn1.gbeta, weight, &db1);
        // conv1
        let gw1 = conv2d_backward_weights(&gc1, &cache.zc, self.conv1.w.shape(), self.conv1.cfg);
        axpy_tensor(&mut self.conv1.g, weight, &gw1);
        let gzc = conv2d_backward_input(&gc1, &self.conv1.w, cache.zc.shape(), self.conv1.cfg);
        if self.time_aug {
            split_time_channel_grad(&gzc)
        } else {
            gzc
        }
    }

    /// Plain residual forward (Equation 1): `shortcut(x) + f(x)`.
    pub fn residual_forward(&self, x: &Tensor<f32>, mode: BnMode) -> Tensor<f32> {
        let f = self.f_eval(x, 0.0, mode);
        let shortcut = self.shortcut(x);
        shortcut.zip_map(&f, |s, v| s + v)
    }

    /// Training-mode residual forward with cache.
    pub fn residual_train(&mut self, x: &Tensor<f32>) -> (Tensor<f32>, CoreCache) {
        let (f, cache) = self.f_train(x, 0.0, true);
        let shortcut = self.shortcut(x);
        (shortcut.zip_map(&f, |s, v| s + v), cache)
    }

    /// Backward through the residual forward; returns `∂L/∂x`.
    pub fn residual_backward(
        &mut self,
        gout: &Tensor<f32>,
        cache: &CoreCache,
        x_shape: Shape4,
    ) -> Tensor<f32> {
        let gf = self.f_backward(gout, cache, 1.0);
        let gshort = self.shortcut_backward(gout, x_shape);
        gf.zip_map(&gshort, |a, b| a + b)
    }

    fn shortcut(&self, x: &Tensor<f32>) -> Tensor<f32> {
        if self.stride == 1 && self.in_ch == self.out_ch {
            x.clone()
        } else {
            shortcut_a(x, self.out_ch, self.stride)
        }
    }

    fn shortcut_backward(&self, gout: &Tensor<f32>, x_shape: Shape4) -> Tensor<f32> {
        if self.stride == 1 && self.in_ch == self.out_ch {
            gout.clone()
        } else {
            shortcut_a_backward(gout, x_shape, self.stride)
        }
    }

    /// ODE forward (Equation 5): M Euler steps over `t ∈ [0, 1]`.
    pub fn ode_forward(&self, z: &Tensor<f32>, steps: usize, mode: BnMode) -> Tensor<f32> {
        assert!(self.time_aug, "ode_forward requires an ODE block");
        let h = 1.0 / steps as f32;
        let mut z = z.clone();
        for i in 0..steps {
            let t = i as f32 * h;
            let f = self.f_eval(&z, t, mode);
            z = z.zip_map(&f, |a, b| a + h * b);
        }
        z
    }

    /// Zero every gradient accumulator.
    pub fn zero_grads(&mut self) {
        self.conv1.g.as_mut_slice().fill(0.0);
        self.conv2.g.as_mut_slice().fill(0.0);
        self.bn1.ggamma.fill(0.0);
        self.bn1.gbeta.fill(0.0);
        self.bn2.ggamma.fill(0.0);
        self.bn2.gbeta.fill(0.0);
    }

    /// Quantize the block into scalar type `S` for the PL datapath.
    pub fn quantize<S: Scalar>(&self) -> QuantBlock<S> {
        let qv = |v: &[f32]| -> Vec<S> { v.iter().map(|&x| S::from_f32(x)).collect() };
        QuantBlock {
            layer: self.layer,
            time_aug: self.time_aug,
            stride: self.stride,
            in_ch: self.in_ch,
            out_ch: self.out_ch,
            w1: Tensor::from_f32_tensor(&self.conv1.w),
            cfg1: self.conv1.cfg,
            gamma1: qv(&self.bn1.gamma),
            beta1: qv(&self.bn1.beta),
            w2: Tensor::from_f32_tensor(&self.conv2.w),
            cfg2: self.conv2.cfg,
            gamma2: qv(&self.bn2.gamma),
            beta2: qv(&self.bn2.beta),
            eps: S::from_f32(self.bn1.eps),
        }
    }
}

fn axpy_vec(acc: &mut [f32], s: f32, v: &[f32]) {
    for (a, b) in acc.iter_mut().zip(v) {
        *a += s * b;
    }
}

fn axpy_tensor(acc: &mut Tensor<f32>, s: f32, v: &Tensor<f32>) {
    for (a, b) in acc.as_mut_slice().iter_mut().zip(v.as_slice()) {
        *a += s * b;
    }
}

/// A block quantized into a fixed-point scalar type — the weights and
/// parameters exactly as the PL BRAM holds them. Forward-only; batch
/// norm always runs in the on-the-fly mode, as the circuit does.
#[derive(Clone, Debug)]
pub struct QuantBlock<S: Scalar> {
    /// Source layer.
    pub layer: LayerName,
    /// Time augmentation flag.
    pub time_aug: bool,
    /// First-conv stride.
    pub stride: usize,
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Quantized conv1 weights.
    pub w1: Tensor<S>,
    /// conv1 stride/pad.
    pub cfg1: Conv2dParams,
    /// Quantized BN1 γ.
    pub gamma1: Vec<S>,
    /// Quantized BN1 β.
    pub beta1: Vec<S>,
    /// Quantized conv2 weights.
    pub w2: Tensor<S>,
    /// conv2 stride/pad.
    pub cfg2: Conv2dParams,
    /// Quantized BN2 γ.
    pub gamma2: Vec<S>,
    /// Quantized BN2 β.
    pub beta2: Vec<S>,
    /// Quantized ε.
    pub eps: S,
}

impl<S: Scalar> QuantBlock<S> {
    /// The residual function in the quantized datapath.
    pub fn f_eval(&self, z: &Tensor<S>, t: S) -> Tensor<S> {
        let zc = if self.time_aug {
            concat_time_channel(z, t)
        } else {
            z.clone()
        };
        let c1 = conv2d(&zc, &self.w1, self.cfg1);
        let b1 = bn_onthefly(&c1, &self.gamma1, &self.beta1, self.eps);
        let r = relu(&b1);
        let rc = if self.time_aug {
            concat_time_channel(&r, t)
        } else {
            r
        };
        let c2 = conv2d(&rc, &self.w2, self.cfg2);
        bn_onthefly(&c2, &self.gamma2, &self.beta2, self.eps)
    }

    /// Plain residual forward in the quantized datapath.
    pub fn residual_forward(&self, x: &Tensor<S>) -> Tensor<S> {
        let f = self.f_eval(x, S::ZERO);
        let shortcut = if self.stride == 1 && self.in_ch == self.out_ch {
            x.clone()
        } else {
            shortcut_a(x, self.out_ch, self.stride)
        };
        shortcut.zip_map(&f, |s, v| s.add(v))
    }

    /// M Euler steps over `t ∈ [0, 1]` in the quantized datapath.
    pub fn ode_forward(&self, z: &Tensor<S>, steps: usize) -> Tensor<S> {
        assert!(self.time_aug, "ode_forward requires an ODE block");
        let h = S::from_f32(1.0 / steps as f32);
        let mut z = z.clone();
        for i in 0..steps {
            let t = S::from_f32(i as f32 / steps as f32);
            let f = self.f_eval(&z, t);
            z = z.zip_map(&f, |a, b| a.add(h.mul(b)));
        }
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfixed::Q20;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDEC0DE)
    }

    fn input(shape: Shape4, seed: u64) -> Tensor<f32> {
        let mut r = StdRng::seed_from_u64(seed);
        Tensor::from_fn(shape, |_, _, _, _| (r.random::<f64>() as f32 - 0.5) * 2.0)
    }

    #[test]
    fn param_counts_match_table2() {
        let mut r = rng();
        // ODE blocks.
        assert_eq!(
            ResBlock::new(&mut r, LayerName::Layer1, true).param_count(),
            4_960
        );
        assert_eq!(
            ResBlock::new(&mut r, LayerName::Layer2_2, true).param_count(),
            19_136
        );
        assert_eq!(
            ResBlock::new(&mut r, LayerName::Layer3_2, true).param_count(),
            75_136
        );
        // Plain blocks.
        assert_eq!(
            ResBlock::new(&mut r, LayerName::Layer1, false).param_count(),
            4_672
        );
        assert_eq!(
            ResBlock::new(&mut r, LayerName::Layer2_1, false).param_count(),
            13_952
        );
        assert_eq!(
            ResBlock::new(&mut r, LayerName::Layer3_1, false).param_count(),
            55_552
        );
    }

    #[test]
    fn shapes_preserved_by_ode_block() {
        let block = ResBlock::new(&mut rng(), LayerName::Layer1, true);
        let x = input(Shape4::new(2, 16, 8, 8), 1);
        let y = block.ode_forward(&x, 3, BnMode::OnTheFly);
        assert_eq!(y.shape(), x.shape());
    }

    #[test]
    fn downsample_block_halves_and_widens() {
        let block = ResBlock::new(&mut rng(), LayerName::Layer2_1, false);
        let x = input(Shape4::new(1, 16, 32, 32), 2);
        let y = block.residual_forward(&x, BnMode::OnTheFly);
        assert_eq!(y.shape(), Shape4::new(1, 32, 16, 16));
    }

    #[test]
    fn residual_block_is_input_plus_f() {
        let mut block = ResBlock::new(&mut rng(), LayerName::Layer1, false);
        let x = input(Shape4::new(1, 16, 8, 8), 3);
        let (y, _) = block.residual_train(&x);
        let f = block.f_train(&x, 0.0, false).0;
        let diff = y.zip_map(&x, |a, b| a - b);
        assert!(diff.max_abs_diff(&f) < 1e-5);
    }

    #[test]
    fn ode_one_step_equals_residual_semantics() {
        // With 1 step, h = 1: z + f(z, 0) — identical to a residual block
        // built from the same parameters.
        let block = ResBlock::new(&mut rng(), LayerName::Layer1, true);
        let x = input(Shape4::new(1, 16, 8, 8), 4);
        let y = block.ode_forward(&x, 1, BnMode::OnTheFly);
        let f = block.f_eval(&x, 0.0, BnMode::OnTheFly);
        let manual = x.zip_map(&f, |a, b| a + b);
        assert!(y.max_abs_diff(&manual) < 1e-6);
    }

    #[test]
    fn f_backward_matches_finite_differences() {
        let mut block = ResBlock::new(&mut rng(), LayerName::Layer1, true);
        let x = input(Shape4::new(1, 16, 4, 4), 5);
        let r = input(Shape4::new(1, 16, 4, 4), 6); // loss = <f, r>
        let loss = |b: &mut ResBlock, x: &Tensor<f32>| -> f32 {
            let (f, _) = b.f_train(x, 0.25, false);
            f.as_slice()
                .iter()
                .zip(r.as_slice())
                .map(|(a, c)| a * c)
                .sum()
        };
        let (_, cache) = block.f_train(&x, 0.25, false);
        block.zero_grads();
        let gx = block.f_backward(&r, &cache, 1.0);
        // Input gradient.
        let eps = 1e-2f32;
        for probe in [0usize, 33, 101, 255] {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[probe] -= eps;
            let num = (loss(&mut block, &xp) - loss(&mut block, &xm)) / (2.0 * eps);
            let ana = gx.as_slice()[probe];
            assert!(
                (num - ana).abs() < 0.05 * (1.0 + num.abs()),
                "gx[{probe}] {ana} vs {num}"
            );
        }
        // A weight gradient.
        for probe in [0usize, 77] {
            let orig = block.conv1.w.as_slice()[probe];
            block.conv1.w.as_mut_slice()[probe] = orig + eps;
            let fp = loss(&mut block, &x);
            block.conv1.w.as_mut_slice()[probe] = orig - eps;
            let fm = loss(&mut block, &x);
            block.conv1.w.as_mut_slice()[probe] = orig;
            let num = (fp - fm) / (2.0 * eps);
            let ana = block.conv1.g.as_slice()[probe];
            assert!(
                (num - ana).abs() < 0.05 * (1.0 + num.abs()),
                "gw[{probe}] {ana} vs {num}"
            );
        }
        // γ gradient.
        let orig = block.bn2.gamma[3];
        block.bn2.gamma[3] = orig + eps;
        let fp = loss(&mut block, &x);
        block.bn2.gamma[3] = orig - eps;
        let fm = loss(&mut block, &x);
        block.bn2.gamma[3] = orig;
        let num = (fp - fm) / (2.0 * eps);
        assert!((num - block.bn2.ggamma[3]).abs() < 0.02 * (1.0 + num.abs()));
    }

    #[test]
    fn residual_backward_includes_shortcut() {
        let mut block = ResBlock::new(&mut rng(), LayerName::Layer1, false);
        let x = input(Shape4::new(1, 16, 4, 4), 7);
        let (_, cache) = block.residual_train(&x);
        block.zero_grads();
        let gout = Tensor::full(x.shape(), 1.0);
        let gx = block.residual_backward(&gout, &cache, x.shape());
        // The identity shortcut guarantees gradient magnitude ≥ ~1 on
        // average — the vanishing-gradient mitigation of Section 2.1.
        let mean_abs: f32 = gx.as_slice().iter().map(|v| v.abs()).sum::<f32>() / gx.len() as f32;
        assert!(mean_abs > 0.5, "short-circuited gradient flows: {mean_abs}");
    }

    #[test]
    fn weight_scales_param_grads() {
        let mut block = ResBlock::new(&mut rng(), LayerName::Layer1, true);
        let x = input(Shape4::new(1, 16, 4, 4), 8);
        let a = input(Shape4::new(1, 16, 4, 4), 9);
        let (_, cache) = block.f_train(&x, 0.5, false);
        block.zero_grads();
        let _ = block.f_backward(&a, &cache, 1.0);
        let g1 = block.conv2.g.clone();
        block.zero_grads();
        let _ = block.f_backward(&a, &cache, 0.25);
        let scaled = block.conv2.g.clone();
        for (a, b) in g1.as_slice().iter().zip(scaled.as_slice()) {
            assert!((a * 0.25 - b).abs() < 1e-6);
        }
    }

    #[test]
    fn running_stats_update_only_when_tracking() {
        let mut block = ResBlock::new(&mut rng(), LayerName::Layer1, false);
        let x = input(Shape4::new(2, 16, 4, 4), 10);
        let before = block.bn1.running_mean.clone();
        let _ = block.f_train(&x, 0.0, false);
        assert_eq!(block.bn1.running_mean, before, "track=false leaves stats");
        let _ = block.f_train(&x, 0.0, true);
        assert_ne!(block.bn1.running_mean, before, "track=true updates stats");
    }

    #[test]
    fn quantized_block_tracks_float_onthefly() {
        let block = ResBlock::new(&mut rng(), LayerName::Layer1, true);
        let x = input(Shape4::new(1, 16, 8, 8), 11);
        let yf = block.f_eval(&x, 0.5, BnMode::OnTheFly);
        let qb: QuantBlock<Q20> = block.quantize();
        let xq: Tensor<Q20> = Tensor::from_f32_tensor(&x);
        let yq = qb.f_eval(&xq, Q20::from_f32(0.5));
        // Q20 resolution is ~1e-6; BN divisions amplify noise but the
        // output must stay within a tight band of the float path.
        assert!(
            yf.max_abs_diff(&yq.to_f32()) < 0.02,
            "{}",
            yf.max_abs_diff(&yq.to_f32())
        );
    }

    #[test]
    fn quantized_ode_forward_runs() {
        let block = ResBlock::new(&mut rng(), LayerName::Layer3_2, true);
        let x = input(Shape4::new(1, 64, 8, 8), 12);
        let xq: Tensor<Q20> = Tensor::from_f32_tensor(&x);
        let qb: QuantBlock<Q20> = block.quantize();
        let yq = qb.ode_forward(&xq, 2);
        let yf = block.ode_forward(&x, 2, BnMode::OnTheFly);
        assert_eq!(yq.shape(), x.shape());
        assert!(yf.max_abs_diff(&yq.to_f32()) < 0.05);
    }

    #[test]
    #[should_panic(expected = "ODE blocks must preserve shape")]
    fn ode_downsample_rejected() {
        let _ = ResBlock::new(&mut rng(), LayerName::Layer2_1, true);
    }
}
