//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate
//! provides the group/bencher API subset the workspace's benches use,
//! backed by a straightforward wall-clock harness:
//!
//! * warm-up for the configured `warm_up_time` (default 1 s);
//! * iteration-count calibration so one sample lasts roughly
//!   `measurement_time / sample_size`;
//! * `sample_size` samples (default 20), reporting min / median / mean,
//!   plus throughput when [`BenchmarkGroup::throughput`] was set.
//!
//! No statistical outlier analysis, plots, or saved baselines — results
//! print to stdout in a stable single-line format:
//!
//! ```text
//! conv2d/f32/layer1    median   1.234 ms   min 1.201 ms   mean 1.250 ms   37.2 Melem/s
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it the harness-chosen number of times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            throughput: None,
        }
    }
}

fn format_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn run_one(id: &str, settings: Settings, mut routine: impl FnMut(&mut Bencher)) {
    // Warm-up: repeat single-shot samples until the budget is spent,
    // tracking the fastest to calibrate the measurement iteration count.
    let mut best = f64::INFINITY;
    let warm_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        best = best.min(b.elapsed.as_secs_f64().max(1e-9));
        if warm_start.elapsed() >= settings.warm_up_time {
            break;
        }
    }
    let per_sample = settings.measurement_time.as_secs_f64() / settings.sample_size as f64;
    let iters = ((per_sample / best).round() as u64).clamp(1, 1_000_000_000);

    let mut samples: Vec<f64> = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;

    let throughput = match settings.throughput {
        Some(Throughput::Elements(n)) => {
            format!("   {:.1} Melem/s", n as f64 / median / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            format!("   {:.1} MiB/s", n as f64 / median / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!(
        "{id:<44} median {:>10}   min {:>10}   mean {:>10}{throughput}",
        format_duration(median),
        format_duration(min),
        format_duration(mean),
    );
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "need at least 2 samples");
        self.settings.sample_size = n;
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Warm-up budget before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Annotate subsequent benchmarks with a throughput rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.settings.throughput = Some(t);
        self
    }

    /// Benchmark a closure under `group/id`.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        routine: R,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.settings, routine);
        self
    }

    /// Benchmark a closure that receives `input` by reference.
    pub fn bench_with_input<I, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.settings, |b| {
            routine(b, input)
        });
        self
    }

    /// End the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            settings: Settings::default(),
            _criterion: self,
        }
    }

    /// Benchmark a single closure with default settings.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        routine: R,
    ) -> &mut Self {
        run_one(&id.to_string(), Settings::default(), routine);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_selftest");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5))
            .throughput(Throughput::Elements(64));
        g.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
    }
}
