//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate
//! implements the subset of proptest the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range
//! and tuple strategies, `collection::vec`, `sample::select`,
//! [`Just`], [`any`], the [`proptest!`] macro, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from upstream, on purpose:
//!
//! * **no shrinking** — a failing case reports its inputs via the
//!   assertion message and the per-test RNG is deterministic (seeded
//!   from the test name), so failures reproduce exactly on re-run;
//! * fixed case counts ([`ProptestConfig::with_cases`] is honored,
//!   default 64).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-test RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name so every test draws an independent,
    /// reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// A recoverable test-case failure (what `prop_assert!` raises).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then a dependent strategy from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy producing one fixed (cloned) value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Strategies for whole-domain primitives (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw from the full domain of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u64, i64, u32, i32, u16, i16, u8, i8, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The full-domain strategy for `T`.
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// The `prop::` namespace (collection and sampling strategies).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// An inclusive length band for generated collections.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            min: usize,
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty length range");
                SizeRange {
                    min: r.start,
                    max: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty length range");
                SizeRange {
                    min: *r.start(),
                    max: *r.end(),
                }
            }
        }

        /// A `Vec` of values from `element`, with a length drawn from
        /// `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: SizeRange,
        }

        /// `vec(element, len)` — `len` may be an exact `usize`, a
        /// `min..max` range, or a `min..=max` range.
        pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                len: len.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.len.max - self.len.min) as u64 + 1;
                let n = self.len.min + rng.below(span) as usize;
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Sampling from explicit value sets.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Uniform choice among the given values.
        pub struct Select<T: Clone>(Vec<T>);

        /// `select(values)` — one of `values`, uniformly.
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select needs at least one value");
            Select(values)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Assert a condition inside a `proptest!` body; failures report the
/// generated inputs' context message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__prop_lhs, __prop_rhs) = (&$a, &$b);
        $crate::prop_assert!(
            __prop_lhs == __prop_rhs,
            "assertion failed: {:?} == {:?}",
            __prop_lhs,
            __prop_rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        $crate::prop_assert!($a == $b, $($fmt)*);
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__prop_lhs, __prop_rhs) = (&$a, &$b);
        $crate::prop_assert!(
            __prop_lhs != __prop_rhs,
            "assertion failed: {:?} != {:?}",
            __prop_lhs,
            __prop_rhs
        );
    }};
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0u64..100, b in 0u64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($args:tt)*) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    let result = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $crate::__prop_bind!(rng, $($args)*);
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = result {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal: bind `pat in strategy` argument lists (recursive so the
/// final strategy expression may sit at the end of the token stream).
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $pat:pat_param in $strat:expr) => {
        let $pat = $crate::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident, $pat:pat_param in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::__prop_bind!($rng, $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_in_bounds(a in 3usize..10, b in -1.5f32..1.5, c in 1u32..=4) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-1.5..1.5).contains(&b));
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn tuples_and_maps((x, y) in (0u64..5, 0u64..5).prop_map(|(a, b)| (a * 2, b))) {
            prop_assert!(x % 2 == 0);
            prop_assert!(y < 5);
        }

        #[test]
        fn flat_map_dependent(v in (1usize..4).prop_flat_map(|n| prop::collection::vec(0u32..10, n..n + 1))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn select_and_just(k in prop::sample::select(vec![2usize, 4, 8]), j in Just(7usize)) {
            prop_assert!(k.is_power_of_two());
            prop_assert_eq!(j, 7);
        }
    }

    #[test]
    fn deterministic_streams() {
        let draw = || -> Vec<u64> {
            let mut rng = TestRng::from_name("stream");
            (0..5).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(draw(), draw());
    }

    proptest! {
        fn always_fails(x in 0u64..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_context() {
        always_fails();
    }
}
