//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so this crate provides the *subset* of the `rand` 0.9 API the
//! workspace uses, with the same shapes and semantics:
//!
//! * [`rngs::StdRng`] — a deterministic, seedable generator
//!   (xoshiro256++ seeded through SplitMix64). Unlike upstream `rand`,
//!   the stream is **stable across versions of this shim** — experiment
//!   seeds reproduce forever;
//! * [`Rng::random`] / [`Rng::random_range`] — uniform sampling for the
//!   primitive types the kernels need;
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! Statistical quality: xoshiro256++ passes BigCrush; it is not
//! cryptographically secure, which is irrelevant here (weight init and
//! data augmentation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an RNG.
///
/// Mirrors `rand`'s `StandardUniform` distribution: floats land in
/// `[0, 1)`, integers cover their full range, `bool` is a fair coin.
pub trait UniformSample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa bits -> uniform on the [0, 1) grid.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl UniformSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl UniformSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl UniformSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl UniformSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < 2^-40 for the spans used here.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u8);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + <$t as UniformSample>::sample(rng) * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

impl SampleRange<i32> for core::ops::Range<i32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> i32 {
        assert!(self.start < self.end, "empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + (rng.next_u64() % span) as i64) as i32
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of `T` (floats in `[0, 1)`).
    fn random<T: UniformSample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A fair (or biased, with probability `p`) coin flip.
    fn random_bool(&mut self, p: f64) -> bool {
        <f64 as UniformSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded via SplitMix64 (the reference seeding procedure).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.random::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.random::<u64>()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..8).map(|_| r.random::<u64>()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = r.random::<f32>();
            assert!((0.0..1.0).contains(&f));
            let d = r.random::<f64>();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.random_range(0..3usize);
            assert!(v < 3);
            let w = r.random_range(0..=8usize);
            assert!(w <= 8);
            let f = r.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle is not identity");
    }
}
