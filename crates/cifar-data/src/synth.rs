//! SynthCIFAR — a deterministic, procedurally generated stand-in for
//! CIFAR-100 (see DESIGN.md §3, substitution 2).
//!
//! Each class is a point in a texture-parameter space derived from the
//! class index by an integer hash: an oriented sinusoidal grating
//! (orientation, spatial frequency, color phase) combined with a
//! class-positioned Gaussian blob. Per-sample nuisance factors (random
//! translation, phase jitter, pixel noise) create intra-class variance.
//! Two properties matter for fidelity to the real benchmark:
//!
//! * the class signal is **spatial structure**, not global brightness —
//!   it survives per-feature-map normalization (the PL's on-the-fly BN);
//! * difficulty scales smoothly with the noise level and class count, so
//!   scaled-down Figure 6 runs still order architectures meaningfully.

use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::{Shape4, Tensor};

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// Number of classes (100 to mirror CIFAR-100; fewer for quick runs).
    pub classes: usize,
    /// Images generated per class.
    pub per_class: usize,
    /// Image height = width (32 to mirror CIFAR).
    pub hw: usize,
    /// Pixel-noise standard deviation (0.25 default).
    pub noise: f32,
    /// Maximum per-sample translation in pixels.
    pub jitter: usize,
    /// Master seed; everything is deterministic given the config.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            classes: 10,
            per_class: 100,
            hw: 32,
            noise: 0.25,
            jitter: 3,
            seed: 0,
        }
    }
}

/// SplitMix64 — a tiny, high-quality integer hash for class parameters.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

fn unit(x: u64, lane: u64) -> f32 {
    (splitmix(x ^ lane.wrapping_mul(0xA5A5_5A5A_1234_5678)) >> 40) as f32 / (1u64 << 24) as f32
}

/// The texture parameters of one class.
#[derive(Clone, Copy, Debug)]
pub struct ClassParams {
    /// Grating orientation in radians.
    pub theta: f32,
    /// Spatial frequency in cycles per image.
    pub freq: f32,
    /// Per-channel phase offsets (what makes color informative).
    pub phase: [f32; 3],
    /// Blob centre in unit coordinates.
    pub blob: (f32, f32),
    /// Blob amplitude sign.
    pub blob_amp: f32,
}

/// Derive the deterministic parameters of class `k` under `seed`.
pub fn class_params(k: usize, seed: u64) -> ClassParams {
    let h = splitmix(seed ^ (k as u64).wrapping_mul(0x9E37_79B9));
    ClassParams {
        theta: unit(h, 1) * core::f32::consts::PI,
        freq: 1.5 + unit(h, 2) * 4.5,
        phase: [
            unit(h, 3) * core::f32::consts::TAU,
            unit(h, 4) * core::f32::consts::TAU,
            unit(h, 5) * core::f32::consts::TAU,
        ],
        blob: (0.2 + unit(h, 6) * 0.6, 0.2 + unit(h, 7) * 0.6),
        blob_amp: if unit(h, 8) > 0.5 { 1.0 } else { -1.0 },
    }
}

/// Render one sample of class `k` into `out` (3 planes of `hw`²).
#[allow(clippy::too_many_arguments)]
fn render(
    out: &mut Tensor<f32>,
    item: usize,
    p: &ClassParams,
    hw: usize,
    dx: f32,
    dy: f32,
    phase_jit: f32,
    noise: f32,
    rng: &mut StdRng,
) {
    let (ct, st) = (p.theta.cos(), p.theta.sin());
    let scale = core::f32::consts::TAU * p.freq / hw as f32;
    for c in 0..3 {
        for y in 0..hw {
            for x in 0..hw {
                let xf = x as f32 + dx;
                let yf = y as f32 + dy;
                // Oriented grating.
                let u = (xf * ct + yf * st) * scale + p.phase[c] + phase_jit;
                let mut v = 0.7 * u.sin();
                // Class blob.
                let bx = (xf / hw as f32) - p.blob.0;
                let by = (yf / hw as f32) - p.blob.1;
                let r2 = bx * bx + by * by;
                v += p.blob_amp * 0.8 * (-r2 * 30.0).exp();
                // Pixel noise.
                v += (rng.random::<f32>() - 0.5) * 2.0 * noise;
                out.set(item, c, y, x, v);
            }
        }
    }
}

/// Generate a SynthCIFAR dataset (class-balanced, label order shuffled
/// deterministically).
pub fn generate(cfg: &SynthConfig) -> Dataset {
    assert!(cfg.classes >= 2, "need at least two classes");
    assert!(cfg.hw >= 8, "images must be at least 8×8");
    let n = cfg.classes * cfg.per_class;
    let mut images = Tensor::<f32>::zeros(Shape4::new(n, 3, cfg.hw, cfg.hw));
    let mut labels = Vec::with_capacity(n);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC1FA_0100);
    // Interleave classes so any contiguous split stays balanced.
    for i in 0..n {
        let k = i % cfg.classes;
        labels.push(k);
        let p = class_params(k, cfg.seed);
        let dx = (rng.random::<f32>() - 0.5) * 2.0 * cfg.jitter as f32;
        let dy = (rng.random::<f32>() - 0.5) * 2.0 * cfg.jitter as f32;
        let phase_jit = (rng.random::<f32>() - 0.5) * 0.6;
        render(
            &mut images,
            i,
            &p,
            cfg.hw,
            dx,
            dy,
            phase_jit,
            cfg.noise,
            &mut rng,
        );
    }
    Dataset::new(images, labels, cfg.classes)
}

/// Generate a train/test pair with disjoint sample noise but identical
/// class structure (the test set uses a derived seed).
pub fn generate_split(cfg: &SynthConfig, test_per_class: usize) -> (Dataset, Dataset) {
    let train = generate(cfg);
    let test_cfg = SynthConfig {
        per_class: test_per_class,
        // Same class parameters (same seed is passed to class_params via
        // cfg.seed), different sample noise stream.
        ..*cfg
    };
    // Re-seed only the nuisance RNG by generating with a marker bit mixed
    // into the sample stream: shift the master seed for render noise but
    // keep class parameters anchored to cfg.seed.
    let mut test = generate_with_noise_seed(&test_cfg, cfg.seed ^ 0x7E57_7E57);
    test.classes = cfg.classes;
    (train, test)
}

fn generate_with_noise_seed(cfg: &SynthConfig, noise_seed: u64) -> Dataset {
    let n = cfg.classes * cfg.per_class;
    let mut images = Tensor::<f32>::zeros(Shape4::new(n, 3, cfg.hw, cfg.hw));
    let mut labels = Vec::with_capacity(n);
    let mut rng = StdRng::seed_from_u64(noise_seed);
    for i in 0..n {
        let k = i % cfg.classes;
        labels.push(k);
        let p = class_params(k, cfg.seed);
        let dx = (rng.random::<f32>() - 0.5) * 2.0 * cfg.jitter as f32;
        let dy = (rng.random::<f32>() - 0.5) * 2.0 * cfg.jitter as f32;
        let phase_jit = (rng.random::<f32>() - 0.5) * 0.6;
        render(
            &mut images,
            i,
            &p,
            cfg.hw,
            dx,
            dy,
            phase_jit,
            cfg.noise,
            &mut rng,
        );
    }
    Dataset::new(images, labels, cfg.classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = SynthConfig {
            classes: 4,
            per_class: 3,
            hw: 16,
            ..Default::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.images.as_slice(), b.images.as_slice());
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn seeds_differ() {
        let cfg = SynthConfig {
            classes: 4,
            per_class: 3,
            hw: 16,
            ..Default::default()
        };
        let a = generate(&cfg);
        let b = generate(&SynthConfig { seed: 1, ..cfg });
        assert_ne!(a.images.as_slice(), b.images.as_slice());
    }

    #[test]
    fn balanced_and_interleaved() {
        let cfg = SynthConfig {
            classes: 5,
            per_class: 4,
            hw: 8,
            ..Default::default()
        };
        let ds = generate(&cfg);
        assert_eq!(ds.class_histogram(), vec![4; 5]);
        assert_eq!(&ds.labels[..5], &[0, 1, 2, 3, 4], "interleaved labels");
        // A contiguous half-split stays balanced.
        let (a, _) = ds.split(10);
        assert_eq!(a.class_histogram(), vec![2; 5]);
    }

    #[test]
    fn class_signal_is_spatial_not_brightness() {
        // Per-plane mean must carry almost no class information: the mean
        // over each channel is near zero for every class (gratings are
        // zero-mean; the blob is small).
        let cfg = SynthConfig {
            classes: 3,
            per_class: 8,
            hw: 16,
            noise: 0.0,
            jitter: 0,
            ..Default::default()
        };
        let ds = generate(&cfg);
        for i in 0..ds.len() {
            for c in 0..3 {
                let plane = ds.images.plane(i, c);
                let mean: f32 = plane.iter().sum::<f32>() / plane.len() as f32;
                assert!(mean.abs() < 0.25, "plane mean {mean} leaks class info");
            }
        }
    }

    #[test]
    fn classes_are_separable_by_template_matching() {
        // Nearest-class-template classification on noiseless samples must
        // be perfect — the task is learnable by construction.
        let clean = SynthConfig {
            classes: 6,
            per_class: 4,
            hw: 16,
            noise: 0.0,
            jitter: 0,
            ..Default::default()
        };
        let templates = generate(&clean);
        let noisy = SynthConfig {
            noise: 0.2,
            jitter: 1,
            ..clean
        };
        let probes = generate_with_noise_seed(&noisy, 999);
        let mut hits = 0;
        for i in 0..probes.len() {
            let x = probes.images.item(i);
            let mut best = (f32::INFINITY, 0usize);
            for k in 0..clean.classes {
                // Template = first clean exemplar of class k (index k by
                // interleaving).
                let t = templates.images.item(k);
                let d: f32 = x.iter().zip(t).map(|(a, b)| (a - b) * (a - b)).sum();
                if d < best.0 {
                    best = (d, k);
                }
            }
            if best.1 == probes.labels[i] {
                hits += 1;
            }
        }
        let acc = hits as f32 / probes.len() as f32;
        assert!(acc > 0.95, "template matching accuracy {acc}");
    }

    #[test]
    fn split_has_same_classes_fresh_noise() {
        let cfg = SynthConfig {
            classes: 3,
            per_class: 5,
            hw: 8,
            ..Default::default()
        };
        let (train, test) = generate_split(&cfg, 2);
        assert_eq!(train.classes, test.classes);
        assert_eq!(test.len(), 6);
        assert_ne!(train.images.item(0), test.images.item(0));
    }

    #[test]
    fn values_bounded() {
        let ds = generate(&SynthConfig {
            classes: 3,
            per_class: 2,
            hw: 8,
            ..Default::default()
        });
        for &v in ds.images.as_slice() {
            assert!(v.is_finite() && v.abs() < 3.0, "pixel {v}");
        }
    }
}
