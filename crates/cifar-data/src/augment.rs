//! Standard CIFAR training augmentation: 4-pixel zero padding followed by
//! a random crop back to the original size, plus a random horizontal
//! flip. Deterministic given the RNG.

use rand::Rng;
#[cfg(test)]
use tensor::Shape4;
use tensor::Tensor;

/// Augmentation configuration.
#[derive(Clone, Copy, Debug)]
pub struct AugmentConfig {
    /// Padding before the random crop (4 is the CIFAR standard).
    pub pad: usize,
    /// Probability of a horizontal flip.
    pub flip_prob: f32,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        AugmentConfig {
            pad: 4,
            flip_prob: 0.5,
        }
    }
}

/// Augment one batch (out-of-place).
pub fn augment_batch(x: &Tensor<f32>, cfg: &AugmentConfig, rng: &mut impl Rng) -> Tensor<f32> {
    let s = x.shape();
    let mut out = Tensor::<f32>::zeros(s);
    for n in 0..s.n {
        let dy = rng.random_range(0..=2 * cfg.pad) as isize - cfg.pad as isize;
        let dx = rng.random_range(0..=2 * cfg.pad) as isize - cfg.pad as isize;
        let flip = rng.random::<f32>() < cfg.flip_prob;
        for c in 0..s.c {
            let src = x.plane(n, c);
            let dst = out.plane_mut(n, c);
            for y in 0..s.h {
                let sy = y as isize + dy;
                if sy < 0 || sy >= s.h as isize {
                    continue; // zero padding
                }
                for xcol in 0..s.w {
                    let sx0 = if flip { s.w - 1 - xcol } else { xcol };
                    let sx = sx0 as isize + dx;
                    if sx < 0 || sx >= s.w as isize {
                        continue;
                    }
                    dst[y * s.w + xcol] = src[sy as usize * s.w + sx as usize];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn probe() -> Tensor<f32> {
        Tensor::from_fn(Shape4::new(1, 1, 8, 8), |_, _, h, w| {
            (h * 8 + w) as f32 + 1.0
        })
    }

    #[test]
    fn zero_pad_zero_flip_is_identity() {
        let x = probe();
        let cfg = AugmentConfig {
            pad: 0,
            flip_prob: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let y = augment_batch(&x, &cfg, &mut rng);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn always_flip_mirrors() {
        let x = probe();
        let cfg = AugmentConfig {
            pad: 0,
            flip_prob: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let y = augment_batch(&x, &cfg, &mut rng);
        assert_eq!(y.get(0, 0, 0, 0), x.get(0, 0, 0, 7));
        assert_eq!(y.get(0, 0, 3, 2), x.get(0, 0, 3, 5));
    }

    #[test]
    fn crop_shifts_content() {
        let x = probe();
        let cfg = AugmentConfig {
            pad: 2,
            flip_prob: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let y = augment_batch(&x, &cfg, &mut rng);
        assert_eq!(y.shape(), x.shape());
        // Values are either zeros (padding) or values from x.
        for &v in y.as_slice() {
            assert!(v == 0.0 || (1.0..=64.0).contains(&v));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let x = probe();
        let cfg = AugmentConfig::default();
        let a = augment_batch(&x, &cfg, &mut StdRng::seed_from_u64(3));
        let b = augment_batch(&x, &cfg, &mut StdRng::seed_from_u64(3));
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn per_item_independent_randomness() {
        // Two identical items in one batch should usually receive
        // different crops.
        let mut x = Tensor::<f32>::zeros(Shape4::new(2, 1, 8, 8));
        for n in 0..2 {
            for i in 0..64 {
                x.item_mut(n)[i] = i as f32;
            }
        }
        let cfg = AugmentConfig {
            pad: 3,
            flip_prob: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let y = augment_batch(&x, &cfg, &mut rng);
        assert_ne!(y.item(0), y.item(1));
    }
}
