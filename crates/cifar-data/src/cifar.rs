//! Loader for the real CIFAR-100 binary distribution.
//!
//! Format (per record): 1 coarse-label byte, 1 fine-label byte, then
//! 3 072 pixel bytes (three 32×32 planes, R, G, B). `train.bin` holds
//! 50 000 records, `test.bin` 10 000.
//!
//! The loader is exercised automatically when the data is present (the
//! `CIFAR_DATA` environment variable or `data/cifar-100-binary/`); the
//! rest of the stack falls back to [`crate::synth`] otherwise, so the
//! repository works offline.

use crate::Dataset;
use std::io::Read;
use std::path::{Path, PathBuf};
use tensor::{Shape4, Tensor};

/// Bytes per CIFAR-100 record.
pub const RECORD_BYTES: usize = 2 + 3 * 32 * 32;
/// Fine-label class count.
pub const CLASSES: usize = 100;

/// Per-channel normalization constants (the standard CIFAR statistics).
pub const MEAN: [f32; 3] = [0.5071, 0.4865, 0.4409];
/// Per-channel standard deviations.
pub const STD: [f32; 3] = [0.2673, 0.2564, 0.2762];

/// Where to look for the binary files.
pub fn default_data_dir() -> Option<PathBuf> {
    if let Ok(dir) = std::env::var("CIFAR_DATA") {
        let p = PathBuf::from(dir);
        if p.is_dir() {
            return Some(p);
        }
    }
    let local = Path::new("data/cifar-100-binary");
    if local.is_dir() {
        return Some(local.to_path_buf());
    }
    None
}

/// Parse raw CIFAR-100 records into a normalized dataset.
///
/// `max_records` truncates (0 = everything). Labels are the fine labels.
pub fn parse_records(bytes: &[u8], max_records: usize) -> Dataset {
    assert!(
        bytes.len().is_multiple_of(RECORD_BYTES),
        "byte length {} is not a multiple of the {RECORD_BYTES}-byte record",
        bytes.len()
    );
    let total = bytes.len() / RECORD_BYTES;
    let n = if max_records == 0 {
        total
    } else {
        total.min(max_records)
    };
    let mut images = Tensor::<f32>::zeros(Shape4::new(n, 3, 32, 32));
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let rec = &bytes[i * RECORD_BYTES..(i + 1) * RECORD_BYTES];
        labels.push(rec[1] as usize); // fine label
        for c in 0..3 {
            let plane = &rec[2 + c * 1024..2 + (c + 1) * 1024];
            let out = images.plane_mut(i, c);
            for (o, &b) in out.iter_mut().zip(plane) {
                *o = (b as f32 / 255.0 - MEAN[c]) / STD[c];
            }
        }
    }
    Dataset::new(images, labels, CLASSES)
}

/// Load `train.bin` / `test.bin` from `dir`.
pub fn load(dir: &Path, file: &str, max_records: usize) -> std::io::Result<Dataset> {
    let mut bytes = Vec::new();
    std::fs::File::open(dir.join(file))?.read_to_end(&mut bytes)?;
    Ok(parse_records(&bytes, max_records))
}

/// Load the real dataset if available, otherwise `None`.
pub fn load_if_available(max_train: usize, max_test: usize) -> Option<(Dataset, Dataset)> {
    let dir = default_data_dir()?;
    let train = load(&dir, "train.bin", max_train).ok()?;
    let test = load(&dir, "test.bin", max_test).ok()?;
    Some((train, test))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build two synthetic CIFAR-format records.
    fn fake_records() -> Vec<u8> {
        let mut bytes = Vec::new();
        for (coarse, fine) in [(3u8, 42u8), (7, 99)] {
            bytes.push(coarse);
            bytes.push(fine);
            for c in 0..3u32 {
                for px in 0..1024u32 {
                    bytes.push(((px + c * 37) % 256) as u8);
                }
            }
        }
        bytes
    }

    #[test]
    fn parses_labels_and_shape() {
        let ds = parse_records(&fake_records(), 0);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.labels, vec![42, 99]);
        assert_eq!(ds.images.shape(), Shape4::new(2, 3, 32, 32));
        assert_eq!(ds.classes, 100);
    }

    #[test]
    fn normalization_applied() {
        let ds = parse_records(&fake_records(), 0);
        // First pixel of channel 0 is byte 0 → (0/255 − mean)/std.
        let expect = (0.0 - MEAN[0]) / STD[0];
        assert!((ds.images.get(0, 0, 0, 0) - expect).abs() < 1e-6);
    }

    #[test]
    fn truncation() {
        let ds = parse_records(&fake_records(), 1);
        assert_eq!(ds.len(), 1);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_ragged_input() {
        let _ = parse_records(&[0u8; 100], 0);
    }

    #[test]
    fn planes_are_channel_major() {
        let ds = parse_records(&fake_records(), 0);
        // Channel 1's first byte is 37 (px0 + 1*37).
        let expect = (37.0 / 255.0 - MEAN[1]) / STD[1];
        assert!((ds.images.get(0, 1, 0, 0) - expect).abs() < 1e-6);
    }
}
