//! # cifar-data — the dataset substrate
//!
//! The paper evaluates on CIFAR-100. That dataset cannot be shipped with
//! this repository, so this crate provides:
//!
//! * [`cifar`] — a loader for the standard CIFAR-100 binary format
//!   (`train.bin`/`test.bin`), used automatically when the data is
//!   present (`CIFAR_DATA` env var or `data/cifar-100-binary/`);
//! * [`synth`] — **SynthCIFAR**, a deterministic procedural stand-in:
//!   3×32×32 images whose classes are defined by spatial structure
//!   (oriented gratings, blobs, checkers) rather than raw brightness, so
//!   the signal survives the on-the-fly batch norm of the PL datapath;
//! * [`augment`] — the standard CIFAR augmentation pipeline (4-pixel pad
//!   + random crop, horizontal flip);
//! * [`Dataset`] — a tiny container with split/subset helpers.
//!
//! ```
//! use cifar_data::synth::{SynthConfig, generate};
//!
//! let ds = generate(&SynthConfig { classes: 10, per_class: 20, hw: 32, seed: 7, ..Default::default() });
//! assert_eq!(ds.images.shape().n, 200);
//! assert_eq!(ds.classes, 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augment;
pub mod cifar;
pub mod synth;

use tensor::{Shape4, Tensor};

/// An in-memory labelled image dataset (NCHW, f32, roughly zero-mean).
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Images, shape `(N, 3, H, W)`.
    pub images: Tensor<f32>,
    /// One label per image, in `0..classes`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Construct, validating shapes.
    pub fn new(images: Tensor<f32>, labels: Vec<usize>, classes: usize) -> Self {
        assert_eq!(images.shape().n, labels.len(), "one label per image");
        assert!(labels.iter().all(|&l| l < classes), "labels within range");
        Dataset {
            images,
            labels,
            classes,
        }
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Split into `(first n, rest)`.
    pub fn split(&self, n: usize) -> (Dataset, Dataset) {
        assert!(n <= self.len());
        (self.subset(0..n), self.subset(n..self.len()))
    }

    /// Copy a contiguous range into a new dataset.
    pub fn subset(&self, range: core::ops::Range<usize>) -> Dataset {
        let s = self.images.shape();
        let shape = Shape4::new(range.len(), s.c, s.h, s.w);
        let mut images = Tensor::<f32>::zeros(shape);
        for (row, i) in range.clone().enumerate() {
            images.item_mut(row).copy_from_slice(self.images.item(i));
        }
        Dataset {
            images,
            labels: self.labels[range].to_vec(),
            classes: self.classes,
        }
    }

    /// Per-class counts (sanity metric for generators and loaders).
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.classes];
        for &l in &self.labels {
            h[l] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let images = Tensor::<f32>::from_fn(Shape4::new(4, 3, 2, 2), |n, _, _, _| n as f32);
        Dataset::new(images, vec![0, 1, 0, 1], 2)
    }

    #[test]
    fn split_partitions() {
        let ds = tiny();
        let (a, b) = ds.split(3);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 1);
        assert_eq!(b.labels, vec![1]);
        assert_eq!(b.images.get(0, 0, 0, 0), 3.0);
    }

    #[test]
    fn histogram() {
        assert_eq!(tiny().class_histogram(), vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "one label per image")]
    fn label_count_checked() {
        let images = Tensor::<f32>::zeros(Shape4::new(2, 3, 2, 2));
        let _ = Dataset::new(images, vec![0], 2);
    }

    #[test]
    #[should_panic(expected = "within range")]
    fn label_range_checked() {
        let images = Tensor::<f32>::zeros(Shape4::new(1, 3, 2, 2));
        let _ = Dataset::new(images, vec![5], 2);
    }
}
