//! Hardware/software co-design sweep: how many multiply–add units should
//! the ODEBlock circuit instantiate? Sweeps conv_x1 … conv_x64 for each
//! offloadable layer, printing cycles, modelled latency, resources, and
//! whether the configuration closes timing and fits the XC7Z020 — the
//! §3.1/§3.2 exploration as a reusable tool. The sweep closes with the
//! deployment [`Engine`]'s verdict per parallelism (its builder rejects
//! configurations the fabric cannot host).
//!
//! ```text
//! cargo run --release --example hw_codesign [N]
//! ```

use odenet_suite::prelude::*;
use zynq_sim::datapath::{block_exec_cycles, stage_cycles};
use zynq_sim::resources::timing_closure_hz;

fn main() {
    let n_depth: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(56);
    let spec = NetSpec::new(Variant::ROdeNet3, n_depth);
    println!(
        "co-design sweep for {} (offload target layer3_2)\n",
        spec.display_name()
    );
    for layer in [LayerName::Layer1, LayerName::Layer2_2, LayerName::Layer3_2] {
        let execs = match layer {
            LayerName::Layer1 => spec.layer1.execs,
            LayerName::Layer2_2 => 6, // representative: rODENet-2-20
            _ => spec.layer3_2.execs,
        };
        let (c, _) = layer.geometry();
        println!("{} ({} executions per inference):", layer.name(), execs);
        println!(
            "  {:>8} {:>12} {:>10} {:>8} {:>6} {:>7} {:>7} {:>8} {:>6}",
            "config", "cycles/exec", "stage[ms]", "BRAM", "DSP", "LUT", "FF", "clock", "fits"
        );
        let mut n_units = 1usize;
        while n_units <= c {
            let r = ode_block_resources(layer, n_units);
            let clock = timing_closure_hz(n_units);
            let cycles = block_exec_cycles(layer, n_units);
            let stage_ms = stage_cycles(layer, n_units, execs) as f64 / clock as f64 * 1e3;
            let fits = r.fits(&PYNQ_Z2);
            println!(
                "  {:>8} {:>12} {:>10.1} {:>8.1} {:>6} {:>7} {:>7} {:>5}MHz {:>6}",
                format!("conv_x{n_units}"),
                cycles,
                stage_ms,
                r.bram36_used(),
                r.dsp,
                r.lut,
                r.ff,
                clock / 1_000_000,
                if fits { "yes" } else { "NO" },
            );
            n_units *= 2;
        }
        println!();
    }
    println!("(the paper settles on conv_x16: conv_x32 misses the 100 MHz timing constraint\n and DSP/LUT growth outpaces the shrinking cycle count)");

    // The engine's build-time verdict for each parallelism: modelled
    // per-image latency when the placement deploys, the builder's error
    // when it does not.
    println!(
        "\nengine verdict for {} (layer3_2 placement):",
        spec.display_name()
    );
    let net = Network::new(spec.with_classes(10), 3);
    for parallelism in [1usize, 4, 8, 16, 32, 64] {
        let verdict = Engine::builder(&net)
            .board(&PYNQ_Z2)
            .offload(Offload::Target(OffloadTarget::Layer32))
            .pl_model(PlModel { parallelism })
            .build();
        match verdict {
            Ok(engine) => {
                let x = Tensor::<f32>::zeros(Shape4::new(1, 3, 32, 32));
                let run = engine.infer(&x).expect("CIFAR-shaped input");
                println!(
                    "  conv_x{parallelism:<3} deploys: {:.3}s per image",
                    run.total_seconds()
                );
            }
            Err(e) => println!("  conv_x{parallelism:<3} rejected: {e}"),
        }
    }

    // The second co-design axis (footnote 2): the PL word width. The
    // width-aware planner trades precision for fabric space — at 16-bit
    // layer3_2 stops monopolizing BRAM and placements that are typed
    // errors at Q20 deploy.
    println!("\nword-width verdicts (Offload::Auto, conv_x16):");
    for format in [
        PlFormat::Q20,
        PlFormat::Q16 { frac: 12 },
        PlFormat::Q16 { frac: 10 },
    ] {
        match Engine::builder(&net).precision(format).plan() {
            Ok(plan) => println!(
                "  {:<16} plans {:?}: {:.1} BRAM36, {:.3}s per image",
                format.to_string(),
                plan.target(),
                plan.bram36_used(),
                plan.total_seconds(),
            ),
            Err(e) => println!("  {format:<16} rejected: {e}"),
        }
    }
}
