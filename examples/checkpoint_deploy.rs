//! Checkpoint & deploy: the production flow split across two "machines".
//!
//! Phase 1 (the training workstation): train a network, save a `.rodn`
//! checkpoint. Phase 2 (the board): load the checkpoint fresh, verify
//! bit-identical behaviour, build the deployment [`Engine`] **once**
//! (planning + Q20 quantization), then serve predictions through it.
//!
//! ```text
//! cargo run --release --example checkpoint_deploy
//! ```

use odenet_suite::prelude::*;
use rodenet::io;

fn main() {
    let dir = std::env::temp_dir().join("odenet_checkpoint_demo");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("rodenet3-20.rodn");

    // ---- Phase 1: train and checkpoint --------------------------------
    let cfg = SynthConfig {
        classes: 4,
        per_class: 20,
        hw: 16,
        noise: 0.2,
        jitter: 1,
        seed: 77,
    };
    let (train, test) = generate_split(&cfg, 8);
    let spec = NetSpec::new(Variant::ROdeNet3, 20).with_classes(4);
    let mut net = Network::new(spec, 7);
    println!(
        "phase 1: training {} ({} params)…",
        spec.display_name(),
        net.param_count()
    );
    let hist = train_epochs(
        &mut net,
        &train.images,
        &train.labels,
        Some(&test.images),
        Some(&test.labels),
        TrainConfig::quick(4, 16),
    );
    let final_acc = hist.last().unwrap().test_acc;
    println!("phase 1: final test accuracy {final_acc:.3}");
    io::save_file(&mut net, &path).expect("save checkpoint");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("phase 1: wrote {} ({bytes} bytes)", path.display());

    // ---- Phase 2: load on the "board" and serve ------------------------
    let deployed = io::load_file(&path).expect("load checkpoint");
    println!("\nphase 2: loaded {}", deployed.spec.display_name());
    let x = test.images.item_tensor(0);
    let before = net.forward(&x, BnMode::OnTheFly);
    let after = deployed.forward(&x, BnMode::OnTheFly);
    assert_eq!(
        before.as_slice(),
        after.as_slice(),
        "reload must be bit-identical"
    );
    println!("phase 2: reload is bit-identical ✓");

    // One engine for the whole serving loop: the placement is planned
    // and the PL weights quantized exactly once, not per request.
    let engine = Engine::builder(&deployed)
        .board(&PYNQ_Z2)
        .offload(Offload::Auto)
        .build()
        .expect("checkpointed architecture deploys");
    println!("phase 2: {}", engine.describe());

    let requests: Vec<Tensor<f32>> = (0..test.len())
        .map(|i| test.images.item_tensor(i))
        .collect();
    let runs = engine.infer_batch(&requests).expect("serving batch");
    let hits = runs
        .iter()
        .zip(&test.labels)
        .filter(|(run, &label)| tensor::softmax::argmax(&run.logits)[0] == label)
        .count();
    let summary = BatchSummary::from_runs(&runs);
    println!(
        "phase 2: served {} images — accuracy {:.3}, mean modelled latency {:.3}s, {:.2} img/s",
        summary.images,
        hits as f32 / test.len() as f32,
        summary.total_seconds() / summary.images as f64,
        summary.throughput(),
    );
    let _ = std::fs::remove_file(&path);
}
