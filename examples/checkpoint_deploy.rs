//! Checkpoint & deploy: the production flow split across two "machines".
//!
//! Phase 1 (the training workstation): train a network, save a `.rodn`
//! checkpoint. Phase 2 (the board): load the checkpoint fresh, verify
//! bit-identical behaviour, then serve predictions through the hybrid
//! PS+PL executor with the planner's placement.
//!
//! ```text
//! cargo run --release --example checkpoint_deploy
//! ```

use odenet_suite::prelude::*;
use rodenet::io;

fn main() {
    let dir = std::env::temp_dir().join("odenet_checkpoint_demo");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("rodenet3-20.rodn");

    // ---- Phase 1: train and checkpoint --------------------------------
    let cfg = SynthConfig { classes: 4, per_class: 20, hw: 16, noise: 0.2, jitter: 1, seed: 77 };
    let (train, test) = generate_split(&cfg, 8);
    let spec = NetSpec::new(Variant::ROdeNet3, 20).with_classes(4);
    let mut net = Network::new(spec, 7);
    println!("phase 1: training {} ({} params)…", spec.display_name(), net.param_count());
    let hist = train_epochs(
        &mut net,
        &train.images,
        &train.labels,
        Some(&test.images),
        Some(&test.labels),
        TrainConfig::quick(4, 16),
    );
    let final_acc = hist.last().unwrap().test_acc;
    println!("phase 1: final test accuracy {final_acc:.3}");
    io::save_file(&mut net, &path).expect("save checkpoint");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("phase 1: wrote {} ({bytes} bytes)", path.display());

    // ---- Phase 2: load on the "board" and serve ------------------------
    let deployed = io::load_file(&path).expect("load checkpoint");
    println!("\nphase 2: loaded {}", deployed.spec.display_name());
    let x = test.images.item_tensor(0);
    let before = net.forward(&x, BnMode::OnTheFly);
    let after = deployed.forward(&x, BnMode::OnTheFly);
    assert_eq!(before.as_slice(), after.as_slice(), "reload must be bit-identical");
    println!("phase 2: reload is bit-identical ✓");

    let ps = PsModel::Calibrated;
    let pl = PlModel::default();
    let target = plan_offload(&deployed.spec, &PYNQ_Z2, 16, &ps, &pl);
    println!("phase 2: planner placed {target:?} on the PL");
    let mut hits = 0usize;
    let mut total_time = 0.0f64;
    for i in 0..test.len() {
        let xi = test.images.item_tensor(i);
        let run = run_hybrid(&deployed, &xi, target, &ps, &pl, &PYNQ_Z2);
        let pred = tensor::softmax::argmax(&run.logits)[0];
        hits += usize::from(pred == test.labels[i]);
        total_time += run.total_seconds();
    }
    println!(
        "phase 2: served {} images — accuracy {:.3}, mean modelled latency {:.3}s",
        test.len(),
        hits as f32 / test.len() as f32,
        total_time / test.len() as f64
    );
    let _ = std::fs::remove_file(&path);
}
