//! Fault tolerance on a heterogeneous rack: serve an open-loop Poisson
//! stream at 0.8× the pipelined ceiling while a link brownout and then
//! a board crash hit mid-run, and watch the health monitor drain,
//! replan over the survivors, and resume — with the recovery priced
//! into an availability report and every fault marker on the Perfetto
//! timeline.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use odenet_suite::prelude::*;

fn main() {
    // 1. The rack: two XC7Z020 fabrics plus a half-size XC7Z010 over
    //    gigabit Ethernet, balanced-makespan partitioned at Q5.10 so
    //    all three boards carry pipeline stages.
    let spec = NetSpec::new(Variant::OdeNet, 56).with_classes(100);
    let net = Network::new(spec, 42);
    let rack = Cluster::new(
        vec![ARTY_Z7_20, ARTY_Z7_20, ARTY_Z7_10],
        Interconnect::GIGABIT_ETHERNET,
    );
    let baseline = Engine::builder(&net)
        .cluster(rack.clone())
        .precision(PlFormat::Q16 { frac: 10 })
        .schedule(Schedule::Pipelined)
        .partitioner(Partitioner::BalancedMakespan)
        .build()
        .expect("the rack carries ODENet-56 at Q5.10");
    let plan = baseline
        .cluster_plan()
        .expect("cluster engines keep a plan");
    println!("rack       : {}", plan.describe());

    // 2. The fault-free reference run: 0.8× Poisson, 256 images.
    let req = ServeRequest {
        arrivals: ArrivalProcess::Poisson {
            rate: 0.8 / plan.bottleneck_seconds(),
        },
        images: 256,
        dispatch: Dispatch::default(),
        seed: 42,
        window: Window::default(),
    };
    let free = baseline.serve(&req).expect("fault-free serve");
    println!(
        "fault-free : {:.2} img/s over {:.2} s · p99 {:.3} s",
        free.goodput, free.horizon, free.latency_p99
    );

    // 3. The fault plan, in the same virtual clock the arrivals use:
    //    the interconnect browns out to 40% bandwidth early on, and
    //    board 1 — a load-bearing XC7Z020 — dies mid-run.
    let brownout_until = 0.25 * free.horizon;
    let crash_at = 0.45 * free.horizon;
    let faults = FaultPlan::new(vec![
        FaultEvent::LinkDegrade {
            at: 0.05 * free.horizon,
            bandwidth_factor: 0.4,
            duration: brownout_until,
        },
        FaultEvent::BoardCrash {
            board: 1,
            at: crash_at,
        },
    ]);
    let engine = Engine::builder(&net)
        .cluster(rack)
        .precision(PlFormat::Q16 { frac: 10 })
        .schedule(Schedule::Pipelined)
        .partitioner(Partitioner::BalancedMakespan)
        .faults(faults)
        .trace(true)
        .build()
        .expect("the fault plan validates against the rack");
    let report = engine.serve(&req).expect("the faulted serve completes");

    // 4. What it cost. The health monitor timed board 1 out, committed
    //    the in-flight images it could drain, re-dispatched the work
    //    that died with the board, re-ran the partition search over
    //    {0, 2}, and billed the weight re-broadcast before resuming.
    let avail = report
        .availability
        .as_ref()
        .expect("faulted serves carry an availability section");
    println!(
        "faulted    : {:.2} img/s over {:.2} s",
        report.goodput, report.horizon
    );
    println!("availability: {}", avail.describe());
    for f in &avail.failovers {
        println!(
            "  board {}: crash {:.3} s → detected {:.3} s → drained {:.4} s + \
             re-broadcast {:.4} s → resumed {:.3} s{}",
            f.board,
            f.crash_at,
            f.detect_at,
            f.drain_seconds,
            f.rebroadcast_seconds,
            f.resume_at,
            if f.degraded {
                " (degraded: head-PS software)"
            } else {
                ""
            },
        );
    }
    println!(
        "retained   : {:.0}% of fault-free goodput",
        100.0 * report.goodput / free.goodput
    );

    // 5. The timeline, with the fault instants and the failover window
    //    marked on their own track — open in Perfetto / chrome://tracing.
    let trace = report.trace().expect("tracing was requested");
    let json = trace.to_chrome_json();
    check_chrome_json(&json).expect("well-formed Chrome trace");
    let _ = std::fs::create_dir_all("results");
    let path = "results/fault_tolerance_trace.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("trace      : {path} ({} events)", trace.faults.len()),
        Err(e) => println!("trace      : not written ({e})"),
    }
}
