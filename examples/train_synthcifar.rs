//! Train rODENet-3 on SynthCIFAR end to end, then deploy it through the
//! [`Engine`] to the simulated FPGA and compare float-software vs
//! Q20-hybrid vs fully-quantized accuracy — the full life cycle the
//! paper implies (train offline in float, predict on the board in fixed
//! point).
//!
//! ```text
//! cargo run --release --example train_synthcifar [epochs]
//! ```

use odenet_suite::prelude::*;

fn main() {
    let epochs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let cfg = SynthConfig {
        classes: 5,
        per_class: 30,
        hw: 16,
        noise: 0.3,
        jitter: 2,
        seed: 9,
    };
    let (train, test) = generate_split(&cfg, 10);
    println!(
        "SynthCIFAR: {} train / {} test images, {} classes, 16×16",
        train.len(),
        test.len(),
        cfg.classes
    );

    let spec = NetSpec::new(Variant::ROdeNet3, 20).with_classes(cfg.classes);
    let mut net = Network::new(spec, 1234);
    let mut tc = TrainConfig::quick(epochs, 15);
    tc.grad_mode = GradMode::Unrolled;
    println!(
        "training {} ({} params) for {epochs} epochs…",
        spec.display_name(),
        net.param_count()
    );
    let history = train_epochs(
        &mut net,
        &train.images,
        &train.labels,
        Some(&test.images),
        Some(&test.labels),
        tc,
    );
    for h in &history {
        println!(
            "  epoch {:>2}  lr {:<7.4} loss {:<7.4} train acc {:<6.3} test acc {:.3}",
            h.epoch, h.lr, h.train_loss, h.train_acc, h.test_acc
        );
    }

    // Deployment: the same trained network behind three engine backends,
    // each validated and quantized once.
    let hybrid = Engine::builder(&net)
        .offload(Offload::Target(OffloadTarget::Layer32))
        .build()
        .expect("layer3_2 fits the fabric");
    let full_q20 = Engine::builder(&net)
        .offload(Offload::Target(OffloadTarget::Layer32))
        .backend(BackendKind::PlBitExact)
        .build()
        .expect("fully-quantized deployment");

    let mut agree = 0usize;
    let mut float_hits = 0usize;
    let mut hybrid_hits = 0usize;
    let mut fullq_hits = 0usize;
    for i in 0..test.len() {
        let x = test.images.item_tensor(i);
        let sw = net.predict(&x, BnMode::OnTheFly)[0];
        let hy = tensor::softmax::argmax(&hybrid.infer(&x).expect("hybrid").logits)[0];
        let fq = tensor::softmax::argmax(&full_q20.infer(&x).expect("full q20").logits)[0];
        agree += usize::from(sw == hy);
        float_hits += usize::from(sw == test.labels[i]);
        hybrid_hits += usize::from(hy == test.labels[i]);
        fullq_hits += usize::from(fq == test.labels[i]);
    }
    let n = test.len() as f32;
    println!("\ndeployment on the simulated PYNQ-Z2 (layer3_2 → PL, Q20):");
    println!("  float accuracy          {:.3}", float_hits as f32 / n);
    println!("  hybrid accuracy         {:.3}", hybrid_hits as f32 / n);
    println!("  fully-quantized accuracy {:.3}", fullq_hits as f32 / n);
    println!(
        "  prediction agreement float↔hybrid: {:.3}",
        agree as f32 / n
    );
}
