//! Replicated rack deployment: stage replicas and data-parallel
//! placement groups on stacks of Arty Z7-20 boards.
//!
//! Two scaling grains, one mechanism:
//!
//! * **Stage replication** — at conv_x8 the best 2-board ODENet-20
//!   placement is PL-bound (layer1 + layer2_2 share a fabric at
//!   ~0.18 s/img). `Replication::Stage(Layer1, 2)` burns layer1's
//!   circuit onto a second fabric; images round-robin between the
//!   replicas and the pipelined ceiling drops to the head PS's busy
//!   floor — the same wall the paper's PS–PL split hits.
//! * **Placement groups** — `Replication::Placement(2)` clones the
//!   whole placement (software stages included) across two 2-board
//!   groups. Every group brings its own ARM, so this is the only mode
//!   that scales *past* the PS floor: ~2× goodput under overload.
//!
//! Replication decides where and when an image runs, never what:
//! logits are bit-identical throughout.
//!
//! ```text
//! cargo run --release --example replicated_rack
//! ```

use odenet_suite::prelude::*;
use zynq_sim::cluster::StageResource;

fn busy_table(plan: &ClusterPlan) {
    for (resource, busy) in plan.resource_busy() {
        let name = match resource {
            StageResource::Ps => "head PS".to_string(),
            StageResource::PsOn(k) => format!("board {k} PS"),
            StageResource::Pl(k) => format!("board {k} PL"),
        };
        println!("  busy       : {name:<11} {busy:.3}s/img");
    }
}

fn main() {
    let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(100);
    let net = Network::new(spec, 42);
    println!("architecture : {}", spec.display_name());

    let rack = |boards| Cluster::homogeneous(&ARTY_Z7_20, boards, Interconnect::GIGABIT_ETHERNET);

    // 1. Stage replication at conv_x8: 2 boards unreplicated vs 3
    //    boards with layer1 ×2.
    let x8 = PlModel { parallelism: 8 };
    let build = |boards, replication| {
        Engine::builder(&net)
            .cluster(rack(boards))
            .pl_model(x8)
            .schedule(Schedule::Pipelined)
            .partitioner(Partitioner::BalancedMakespan)
            .replication(replication)
            .build()
            .expect("the rack carries ODENet-20 at Q20/conv_x8")
    };
    let mut batch32 = Vec::new();
    for (label, boards, replication) in [
        ("2 boards, unreplicated", 2, Replication::None),
        (
            "3 boards, layer1 ×2",
            3,
            Replication::Stage(LayerName::Layer1, 2),
        ),
    ] {
        let engine = build(boards, replication);
        let plan = engine.cluster_plan().expect("cluster engines keep plans");
        println!("\n{label}");
        println!("  plan       : {}", plan.describe());
        busy_table(plan);
        let seconds = plan.batch_seconds(32, Schedule::Pipelined);
        batch32.push(seconds);
        println!(
            "  bottleneck : {:.4}s → batch-32 pipelined {:.2} img/s (broadcast {:.1} ms, one-time)",
            plan.bottleneck_seconds(),
            32.0 / seconds,
            plan.broadcast_seconds() * 1e3,
        );
    }
    println!(
        "\nstage replication: {:.2}x batch-32 throughput — the PL bottleneck retired \
         down to the head PS's floor",
        batch32[0] / batch32[1]
    );

    // 2. Placement groups at the default conv_x16: one 2-board group
    //    vs two of them, judged by goodput at 1.2× offered load.
    let grouped = |boards, replication| {
        Engine::builder(&net)
            .cluster(rack(boards))
            .schedule(Schedule::Pipelined)
            .replication(replication)
            .build()
            .expect("the rack carries ODENet-20 at Q20")
    };
    let mut goodput = Vec::new();
    for (label, boards, replication) in [
        ("2 boards, 1 group", 2, Replication::None),
        ("4 boards, 2 groups", 4, Replication::Placement(2)),
    ] {
        let engine = grouped(boards, replication);
        let points = engine
            .load_sweep(&LoadSweep::default())
            .expect("the default sweep serves");
        let overload = points.last().expect("grid ends at 1.2x");
        goodput.push(overload.report.goodput);
        println!(
            "{label:<20}: goodput {:.2} img/s at 1.2x offered, p99 {:.3}s",
            overload.report.goodput, overload.report.latency_p99,
        );
    }
    println!(
        "placement groups: {:.2}x goodput under overload — each group head brings its \
         own ARM, so the rack scales past the single-PS floor",
        goodput[1] / goodput[0]
    );

    // 3. The invariant everything above rests on: replication never
    //    moves a logit.
    let x = Tensor::from_fn(Shape4::new(1, 3, 32, 32), |_, c, h, w| {
        ((c * 1024 + h * 32 + w) as f32).sin() * 0.5
    });
    let a = build(3, Replication::Stage(LayerName::Layer1, 2))
        .infer(&x)
        .expect("replicated rack runs");
    let b = grouped(4, Replication::Placement(2))
        .infer(&x)
        .expect("grouped rack runs");
    let c = build(2, Replication::None)
        .infer(&x)
        .expect("baseline runs");
    assert_eq!(a.logits.as_slice(), c.logits.as_slice());
    assert_eq!(b.logits.as_slice(), c.logits.as_slice());
    println!("\nlogits       : bit-identical across all three deployments ✓");
}
