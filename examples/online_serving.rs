//! Online serving on a heterogeneous rack: an Arty Z7-20 next to the
//! half-size Arty Z7-10, balanced-makespan partitioned at the
//! footnote-2 16-bit width, serving an open-loop Poisson stream with
//! continuous micro-batching — and the knee of the load/latency curve,
//! the operating point an SLO budget should be provisioned against.
//!
//! ```text
//! cargo run --release --example online_serving
//! ```

use odenet_suite::prelude::*;

fn main() {
    // 1. The rack: one XC7Z020 fabric plus one XC7Z010, gigabit
    //    Ethernet between them. At Q5.10 all three ODE circuits fit
    //    the big board alone — the trap first-fit walks into. The
    //    balanced search instead keeps the heavy layer2_2 + layer3_2
    //    pair on the big fabric and moves layer1 to the XC7Z010, so
    //    both boards pipeline.
    let spec = NetSpec::new(Variant::OdeNet, 56).with_classes(100);
    let net = Network::new(spec, 42);
    let engine = Engine::builder(&net)
        .cluster(Cluster::new(
            vec![ARTY_Z7_20, ARTY_Z7_10],
            Interconnect::GIGABIT_ETHERNET,
        ))
        .precision(PlFormat::Q16 { frac: 10 })
        .schedule(Schedule::Pipelined)
        .partitioner(Partitioner::BalancedMakespan)
        .build()
        .expect("the rack carries ODENet-56 at Q5.10");
    let plan = engine.cluster_plan().expect("cluster engines keep a plan");
    println!("rack      : {}", plan.describe());
    let unloaded = plan.total_seconds();
    let ceiling = 1.0 / plan.bottleneck_seconds();
    println!(
        "unloaded  : {:.3}s/img · pipelined ceiling {:.2} img/s",
        unloaded, ceiling
    );

    // 2. Sweep Poisson offered load across the ceiling. Everything is
    //    virtual-time and seeded — the curve below is bit-stable, and
    //    no inference runs (serving decides *when*, never *what*).
    let sweep = LoadSweep::default();
    let points = engine.load_sweep(&sweep).expect("valid sweep");
    println!("\n  load   offered  goodput    p50     p99    queue");
    for p in &points {
        println!(
            "  {:>4.1}x  {:>6.2}  {:>7.2}  {:>6.3}s {:>6.3}s  {:>5}",
            p.fraction,
            p.offered,
            p.report.goodput,
            p.report.latency_p50,
            p.report.latency_p99,
            p.report.queue_peak,
        );
    }

    // 3. The knee: the last load point whose p99 still holds within
    //    2× the unloaded latency. Below it the server absorbs bursts;
    //    above it queueing dominates and the tail runs away.
    let knee = points
        .iter()
        .take_while(|p| p.report.latency_p99 <= 2.0 * unloaded)
        .last()
        .expect("the lightest load point holds the SLO");
    println!(
        "\nknee      : {:.1}x ceiling ({:.2} img/s) — last point with p99 ≤ 2x unloaded \
         ({:.3}s ≤ {:.3}s)",
        knee.fraction,
        knee.offered,
        knee.report.latency_p99,
        2.0 * unloaded,
    );
    let past = &points[points.len() - 1];
    println!(
        "past it   : at {:.1}x the p99 is {:.2}s ({:.1}x unloaded) — goodput pins at the \
         ceiling and the queue only grows",
        past.fraction,
        past.report.latency_p99,
        past.report.latency_p99 / unloaded,
    );
}
