//! Edge-deployment design-space exploration — the scenario the paper's
//! introduction motivates: a resource-limited edge device must run a
//! CIFAR-class CNN; which variant, which depth, and which offload?
//!
//! Sweeps all seven architectures × paper depths; for each, builds a
//! deployment [`Engine`] (planner-chosen placement, validated against
//! the fabric), scores parameter size (must fit alongside everything
//! else in 512 MB / in BRAM for the offloaded part), modelled latency,
//! and the PL resources of the chosen offload; prints a decision table.
//!
//! ```text
//! cargo run --release --example edge_deployment
//! ```

use odenet_suite::prelude::*;
use rodenet::params::spec_kb;
use zynq_sim::timing::table5_row;

fn main() {
    println!("Design-space exploration on the simulated PYNQ-Z2\n");
    println!(
        "{:<14} {:>3} {:>10} {:>12} {:>12} {:>9} {:>22}",
        "model", "N", "params[kB]", "sw time[s]", "hyb time[s]", "speedup", "PL placement"
    );
    let ps = PsModel::Calibrated;
    let pl = PlModel::default();
    let mut best: Option<(f64, String)> = None;
    for v in Variant::ALL {
        for n in PAPER_DEPTHS {
            let spec = NetSpec::new(v, n);
            let net = Network::new(spec, 1);
            // The engine plans the placement and validates the fit; its
            // target feeds the same Table 5 timing model the run uses.
            let engine = Engine::builder(&net)
                .board(&PYNQ_Z2)
                .offload(Offload::Auto)
                .ps_model(ps)
                .pl_model(pl)
                .build()
                .expect("Auto placement is always feasible (None at worst)");
            let target = engine.target();
            let row = table5_row(v, n, &target, &ps, &pl, &PYNQ_Z2);
            let kb = spec_kb(&spec);
            println!(
                "{:<14} {:>3} {:>10.1} {:>12.2} {:>12.2} {:>8.2}x {:>22}",
                v.name(),
                n,
                kb,
                row.total_wo_pl,
                row.total_w_pl,
                row.speedup,
                format!("{target:?}"),
            );
            // Decision rule: smallest latency whose parameters stay under
            // 700 kB (leave headroom in the 630 kB BRAM + DMA budget for
            // weights of the offloaded block plus activations).
            if kb < 700.0 {
                let cand = (row.total_w_pl, format!("{}-{n}", v.name()));
                if best.as_ref().map(|(t, _)| cand.0 < *t).unwrap_or(true) {
                    best = Some(cand);
                }
            }
        }
    }
    if let Some((t, name)) = best {
        println!("\nrecommended under the 700 kB parameter budget: {name} at {t:.2}s per image");
    }

    // Resource detail of the recommended placement.
    println!("\nPL resources of the rODENet-3 placement (layer3_2, conv_x16):");
    let r = ode_block_resources(LayerName::Layer3_2, 16);
    let [b, d, l, f] = r.utilization(&PYNQ_Z2);
    println!(
        "  BRAM {:>5.1} ({b:.1}%)   DSP {:>3} ({d:.1}%)   LUT {:>5} ({l:.1}%)   FF {:>5} ({f:.1}%)",
        r.bram36_used(),
        r.dsp,
        r.lut,
        r.ff,
    );
}
