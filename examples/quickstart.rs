//! Quickstart: build the paper's recommended architecture (rODENet-3),
//! configure a deployment [`Engine`] for the simulated PYNQ-Z2, run one
//! image through the hybrid PS+PL system, and print what the paper's
//! Table 5 row would say about it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use odenet_suite::prelude::*;

fn main() {
    // 1. The architecture: rODENet-3-20 — layer3_2 as a single ODE block
    //    executed (N-8)/2 = 6 times, layer2_2 removed, layer1 plain.
    let spec = NetSpec::new(Variant::ROdeNet3, 20).with_classes(100);
    let net = Network::new(spec, 42);
    println!("architecture : {}", spec.display_name());
    println!(
        "parameters   : {} ({:.1} kB)",
        net.param_count(),
        net.param_count() as f64 * 4.0 / 1000.0
    );

    // 2. A CIFAR-shaped input (synthetic here; swap in cifar_data::cifar
    //    when you have the real binaries).
    let ds = generate(&SynthConfig {
        classes: 100,
        per_class: 1,
        hw: 32,
        ..Default::default()
    });
    let image = ds.images.item_tensor(0);

    // 3. Pure-software inference on the PS.
    let logits_sw = net.forward(&image, BnMode::OnTheFly);
    let sw_secs = PsModel::Calibrated.spec_seconds(&spec, &PYNQ_Z2);
    println!(
        "\nPS-only      : argmax={:?}  modelled latency {:.3}s",
        tensor::softmax::argmax(&logits_sw),
        sw_secs
    );

    // 4. Plan first — placement, feasibility, and the full latency
    //    decomposition resolve without touching a weight. The plan is
    //    the contract the engine will execute.
    let builder = Engine::builder(&net)
        .board(&PYNQ_Z2)
        .offload(Offload::Auto)
        .precision(Precision::Uniform(PlFormat::Q20)) // the per-stage word-width dial
        .ps_model(PsModel::Calibrated)
        .pl_model(PlModel::default())
        .bn_mode(BnMode::OnTheFly);
    let plan = builder.plan().expect("rODENet-3 plans on the XC7Z020");
    println!("plan         : {}", plan.describe());
    println!(
        "predicted    : {:.3}s/img ({:.1} BRAM36, {} DMA words) — no inference ran",
        plan.total_seconds(),
        plan.bram36_used(),
        plan.dma_words(),
    );

    // 5. Build the engine from the same configuration: the plan is
    //    re-derived and kept, and the offloaded blocks quantize once.
    let engine = builder
        .build()
        .expect("rODENet-3's layer3_2 fits the XC7Z020 at conv_x16");
    println!("engine       : {}", engine.describe());

    let run = engine.infer(&image).expect("CIFAR-shaped input");
    println!(
        "PS + PL      : argmax={:?}  modelled latency {:.3}s (PS {:.3}s + PL {:.3}s, {} DMA words)",
        tensor::softmax::argmax(&run.logits),
        run.total_seconds(),
        run.ps_seconds,
        run.pl_seconds,
        run.dma_words,
    );
    println!("speedup      : {:.2}×", sw_secs / run.total_seconds());
    println!(
        "logit drift  : {:.2e} (f32 vs Q20 datapath)",
        logits_sw.max_abs_diff(&run.logits)
    );

    println!(
        "plan vs run  : cached latency {:.3}s == executed {:.3}s (input-independent model)",
        engine
            .latency_report()
            .expect("built-in backend")
            .total_w_pl,
        run.total_seconds(),
    );

    // 6. Batched serving: the board still processes one image at a time,
    //    but the engine's setup (planning + quantization) is amortized.
    let batch: Vec<Tensor<f32>> = (0..8)
        .map(|i| ds.images.item_tensor(i % ds.len()))
        .collect();
    let summary = BatchSummary::from_runs(&engine.infer_batch(&batch).expect("batch"));
    println!(
        "batch of {}   : modelled {:.3}s total, {:.2} img/s",
        summary.images,
        summary.total_seconds(),
        summary.throughput()
    );

    // 7. The Table 5 row this corresponds to at N = 56 (the headline).
    let row = paper_row(Variant::ROdeNet3, 56);
    println!(
        "\nTable 5 row  : rODENet-3-56  total w/o PL {:.2}s → w/ PL {:.2}s  ({:.2}×; paper: 1.57 → 0.59, 2.66×)",
        row.total_wo_pl, row.total_w_pl, row.speedup
    );

    // 8. Footnote 2 in one breath: the same builder at 16-bit lets the
    //    planner keep MORE layers on the PL than Q20 ever could.
    let net16 = Network::new(NetSpec::new(Variant::OdeNet, 20).with_classes(100), 42);
    let plan16 = Engine::builder(&net16)
        .precision(PlFormat::Q16 { frac: 10 })
        .plan()
        .expect("16-bit plans");
    println!(
        "16-bit bonus : ODENet-20 at {} places {:?} — infeasible at Q20",
        plan16.precision(),
        plan16.target(),
    );
}
