//! Mixed-precision deployment: give each ODE stage its own PL word
//! format.
//!
//! Three acts:
//!
//! 1. an explicit per-stage table ([`Precision::PerStage`]) places
//!    layer1 at the paper's Q20 next to a Q16 layer3_2 on one PYNQ-Z2
//!    — a pairing uniform Q20 can never fit (64 + 140 BRAM36 > 140);
//! 2. the same idea across a heterogeneous rack: layer1 at Q16 on the
//!    half-size XC7Z010, layer3_2 at Q20 on the XC7Z020;
//! 3. [`Precision::Calibrated`] picks each stage's `frac` from
//!    activation ranges measured on a sample batch — no training, no
//!    labels, just a forward pass and an integer-bit headroom margin.
//!
//! ```text
//! cargo run --release --example mixed_precision
//! ```

use odenet_suite::prelude::*;
use zynq_sim::{ARTY_Z7_10, ARTY_Z7_20};

fn main() {
    let net = Network::new(NetSpec::new(Variant::OdeNet, 20).with_classes(10), 7);
    let image = Tensor::<f32>::zeros(Shape4::new(1, 3, 32, 32));
    let q16 = PlFormat::Q16 { frac: 10 };

    // ---- Act 1: one board, two widths -------------------------------
    let target = Offload::Target(OffloadTarget::Layer1And32);
    let uniform = Engine::builder(&net).offload(target).build();
    println!(
        "uniform Q20, layer1+layer3_2 on one XC7Z020: {}",
        uniform
            .map(|_| "ok".into())
            .unwrap_or_else(|e| format!("rejected — {e}"))
    );

    let mixed = StageFormats::uniform(PlFormat::Q20).with(LayerName::Layer3_2, q16);
    let engine = Engine::builder(&net)
        .offload(target)
        .precision(Precision::PerStage(mixed))
        .build()
        .expect("the mixed pair fits: 64 + 70 BRAM36");
    println!("mixed table : {}", engine.describe());
    let plan = engine.plan().expect("built-in backend");
    for s in plan.stages() {
        println!(
            "  {:<9} {:>16}  {:>5.1} BRAM36  {:>3} DSP  {:>6} DMA words",
            s.layer.name(),
            s.format.to_string(),
            s.bram36,
            s.dsp,
            s.dma_words
        );
    }
    let run = engine.infer(&image).expect("serves");
    println!(
        "  -> {:.3}s/img, {} DMA words (plan predicted {:.3}s, {})",
        run.total_seconds(),
        run.dma_words,
        plan.total_seconds(),
        plan.dma_words()
    );

    // ---- Act 2: a rack, each stage on the fabric its width fits -----
    let rack = Cluster::new(vec![ARTY_Z7_10, ARTY_Z7_20], Interconnect::GIGABIT_ETHERNET);
    let table = StageFormats::uniform(PlFormat::Q20).with(LayerName::Layer1, q16);
    let engine = Engine::builder(&net)
        .cluster(rack)
        .offload(target)
        .precision(Precision::PerStage(table))
        .build()
        .expect("layer1@Q16 fits the XC7Z010, layer3_2@Q20 the XC7Z020");
    let cplan = engine.cluster_plan().expect("cluster plan");
    println!("\nrack        : {}", cplan.describe());
    for shard in cplan.shards() {
        for s in &shard.stages {
            println!(
                "  board{} {:<9} {:>16}  {:>5.1} BRAM36",
                shard.board,
                s.layer.name(),
                s.format.to_string(),
                s.bram36
            );
        }
    }

    // ---- Act 3: let measurement pick the fracs ----------------------
    let sample: Vec<Tensor<f32>> = (0..4)
        .map(|i| {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(100 + i);
            Tensor::from_fn(Shape4::new(1, 3, 32, 32), |_, _, _, _| {
                rng.random::<f32>() - 0.5
            })
        })
        .collect();
    let engine = Engine::builder(&net)
        .precision(Precision::Calibrated {
            total_bits: 16,
            headroom_bits: 1,
            sample,
        })
        .build()
        .expect("calibration resolves executable 16-bit formats");
    println!("\ncalibrated  : {}", engine.describe());
    println!(
        "  measured activation envelopes chose: {}",
        engine.precision()
    );
    let run = engine.infer(&image).expect("serves");
    println!(
        "  -> target {:?}, {} DMA words/img (Q20 uniform would pay {})",
        engine.target(),
        run.dma_words,
        2 * run.dma_words
    );
}
